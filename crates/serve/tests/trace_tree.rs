//! Span-tree completeness for the token server: every admitted request
//! must yield exactly one `serve.request` root event tagged with its
//! request id, with `serve.queue_wait` and `serve.request.generate`
//! children parented on that root.
//!
//! Uses the process-global collector, so the whole scenario lives in a
//! single `#[test]` — this test binary must not share the global with
//! other telemetry-mutating tests.

#![cfg(feature = "telemetry")]

use std::collections::HashMap;

use pdac_nn::{ExactGemm, TransformerConfig, TransformerModel};
use pdac_serve::{Request, TokenServer};
use pdac_telemetry::SpanEvent;

fn prompt_rows(model: &TransformerModel, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            (0..model.config().hidden)
                .map(|_| rng.gen_range_f64(-1.0, 1.0))
                .collect()
        })
        .collect()
}

/// Children of `root` among `events`, by name.
fn children<'e>(events: &'e [SpanEvent], root: &SpanEvent, name: &str) -> Vec<&'e SpanEvent> {
    events
        .iter()
        .filter(|e| e.name == name && e.parent == root.id)
        .collect()
}

#[test]
fn every_admitted_request_yields_one_complete_span_tree() {
    pdac_telemetry::enable();
    pdac_telemetry::set_tracing(true);
    pdac_telemetry::reset();

    let model = TransformerModel::random(TransformerConfig::tiny(), 4, 7);
    // More requests than batch slots so some requests genuinely queue,
    // including a zero-budget request that completes at admission.
    let specs = [(10u64, 0usize, 3usize), (11, 2, 4), (12, 1, 2), (13, 3, 1)];
    let mut server = TokenServer::new(&model, 2);
    for &(id, p, n) in &specs {
        server.admit(Request {
            id,
            prompt: prompt_rows(&model, p, 100 + id),
            max_new_tokens: n,
        });
    }
    server.admit(Request {
        id: 14,
        prompt: Vec::new(),
        max_new_tokens: 0,
    });

    let mut completions = Vec::new();
    let mut guard = 0;
    while !server.is_idle() {
        completions.extend(server.step(&ExactGemm));
        guard += 1;
        assert!(guard < 100, "server failed to drain");
    }
    let events = pdac_telemetry::global().events();
    let dropped = pdac_telemetry::global().trace_buffer().dropped();
    pdac_telemetry::disable();
    assert_eq!(dropped, 0, "ring overflowed; test needs a larger capacity");

    // Exactly one root per admitted id, carrying the request id as arg.
    let admitted: Vec<u64> = specs.iter().map(|s| s.0).chain([14]).collect();
    let roots: HashMap<u64, &SpanEvent> = events
        .iter()
        .filter(|e| e.name == "serve.request")
        .map(|e| (e.arg.expect("request root carries id"), e))
        .collect();
    assert_eq!(
        roots.len(),
        admitted.len(),
        "one serve.request root per admitted request"
    );
    for id in &admitted {
        let root = roots[id];
        assert_eq!(root.parent, 0, "request {id}: root must be parentless");
        assert!(root.end_ns >= root.start_ns, "request {id}: negative span");

        if *id == 14 {
            // Zero-budget requests retire at admission: no scheduling, no
            // queue wait, no generate phase — just the root.
            assert!(children(&events, root, "serve.queue_wait").is_empty());
            assert!(children(&events, root, "serve.request.generate").is_empty());
            continue;
        }
        let waits = children(&events, root, "serve.queue_wait");
        assert_eq!(waits.len(), 1, "request {id}: one queue-wait child");
        let gens = children(&events, root, "serve.request.generate");
        assert_eq!(gens.len(), 1, "request {id}: one generate child");
        // Children nest inside the root's interval, in phase order.
        for child in waits.iter().chain(&gens) {
            assert!(child.start_ns >= root.start_ns, "request {id}: child early");
            assert!(child.end_ns <= root.end_ns, "request {id}: child late");
        }
        assert!(
            waits[0].end_ns <= gens[0].start_ns,
            "request {id}: queue wait must precede generation"
        );
    }

    // Every budgeted request completed with its full token count.
    assert_eq!(completions.len(), admitted.len() - 1);
    for &(id, _, n) in &specs {
        let c = completions.iter().find(|c| c.id == id).expect("completed");
        assert_eq!(c.hidden.len(), n, "request {id}");
    }

    // Step-level spans exist and parent the decode work.
    let steps: Vec<&SpanEvent> = events.iter().filter(|e| e.name == "serve.step").collect();
    assert!(!steps.is_empty(), "serve.step spans recorded");
    let step_ids: Vec<u64> = steps.iter().map(|e| e.id).collect();
    let decodes: Vec<&SpanEvent> = events
        .iter()
        .filter(|e| e.name == "nn.inference.decode_batch")
        .collect();
    assert!(!decodes.is_empty(), "decode_batch spans recorded");
    for d in &decodes {
        assert!(
            step_ids.contains(&d.parent),
            "decode_batch span must nest under a serve.step span"
        );
    }
}
