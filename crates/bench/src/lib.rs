#![warn(missing_docs)]

//! Figure-regeneration harness.
//!
//! One function per paper figure, each returning the formatted report its
//! `bin/` wrapper prints. Keeping the logic in the library makes every
//! figure testable: the test suite asserts the regenerated numbers match
//! the paper's within documented tolerances (see EXPERIMENTS.md).
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Fig. 5 (a,b) | [`fig5::report`] | `fig5_power_breakdown` |
//! | Fig. 8 | [`fig8::report`] | `fig8_approx_error` |
//! | Fig. 9 (a,b) | [`fig9_10::report_bert`] | `fig9_bert_energy` |
//! | Fig. 10 (a,b) | [`fig9_10::report_deit`] | `fig10_deit_energy` |
//! | Fig. 11 (a–d) | [`fig11::report`] | `fig11_compute_bound` |
//! | k-sweep ablation | [`ablations::k_sweep`] | `ablation_k_sweep` |
//! | bit-sweep ablation | [`ablations::bit_sweep`] | `ablation_bit_sweep` |
//! | fidelity study | [`fidelity::report`] | `fidelity_study` |

pub mod ablations;
pub mod artifacts;
pub mod bit_error;
pub mod crosstalk;
pub mod fidelity;
pub mod fig11;
pub mod fig5;
pub mod fig8;
pub mod fig9_10;
pub mod gate;
pub mod generative;
pub mod hybrid;
pub mod microbench;
pub mod mzi_baseline;
pub mod scaling;

use pdac_power::model::{DriverKind, PowerModel};
use pdac_power::{ArchConfig, TechParams};

/// The calibrated LT-B power models `(baseline, pdac)` used by every
/// figure.
pub fn lt_b_models() -> (PowerModel, PowerModel) {
    let arch = ArchConfig::lt_b();
    let tech = TechParams::calibrated();
    (
        PowerModel::new(arch.clone(), tech.clone(), DriverKind::ElectricalDac),
        PowerModel::new(arch, tech, DriverKind::PhotonicDac),
    )
}

/// Renders a labelled percentage row for report tables.
pub fn pct_row(label: &str, measured: f64, paper: f64) -> String {
    format!(
        "  {label:<42} measured {measured:>6.1}%   paper {paper:>6.1}%   Δ {delta:>+5.1} pp",
        measured = 100.0 * measured,
        paper = 100.0 * paper,
        delta = 100.0 * (measured - paper),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_construct() {
        let (base, pdac) = lt_b_models();
        assert!(base.breakdown(8).total_watts() > pdac.breakdown(8).total_watts());
    }

    #[test]
    fn pct_row_formats() {
        let row = pct_row("test", 0.123, 0.120);
        assert!(row.contains("12.3%"));
        assert!(row.contains("12.0%"));
        assert!(row.contains("+0.3"));
    }
}
