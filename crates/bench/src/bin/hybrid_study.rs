//! Extension: the hybrid (P-DAC rows / e-DAC columns) design point.
fn main() {
    print!("{}", pdac_bench::hybrid::report(8));
}
