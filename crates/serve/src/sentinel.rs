//! Serve-side glue for the analog drift sentinel (`sentinel` feature).
//!
//! The scoring engine lives in [`pdac_verify::sentinel`]; this module
//! re-exports it and adds the two pieces a serving process needs:
//! [`install_from_env`] to arm the sentinel from `PDAC_SENTINEL_RATE`,
//! and [`fault_spec`] to translate the `PDAC_SENTINEL_FAULT` knob into a
//! deterministic [`FaultSpec`] so CI can inject each fault class into a
//! live serve run and watch the matching alert trip.
//!
//! Fault knob grammar (case-insensitive class, optional `:magnitude`):
//!
//! | value          | fault                                 | default magnitude |
//! |----------------|---------------------------------------|-------------------|
//! | `tia[:f]`      | TIA gain drift of fraction `f`        | `0.5`             |
//! | `dark[:f]`     | photodetector dark current ratio `f`  | `0.5`             |
//! | `droop[:f]`    | laser power droop fraction `f`        | `0.5`             |
//! | `stuck[:slot]` | optical slot stuck lit                | slot `1` (MSB)    |
//! | `flipped[:slot]` | optical slot polarity inverted      | slot `1` (MSB)    |

pub use pdac_verify::sentinel::{
    score, DriftScore, Sentinel, SentinelConfig, SentinelHandle, SentinelStats, Severity,
};
pub use pdac_verify::{FaultSpec, FaultyPDac, SlotFault};

/// Installs a [`Sentinel`] configured from the environment
/// (`PDAC_SENTINEL_RATE`; see [`SentinelConfig::from_env`]) and returns
/// the handle owning its scoring worker. Returns `None` when the
/// resolved rate is zero — nothing would ever be sampled, so no tap or
/// worker is worth paying for.
pub fn install_from_env() -> Option<SentinelHandle> {
    let cfg = SentinelConfig::from_env();
    if cfg.rate <= 0.0 {
        return None;
    }
    Some(Sentinel::install(cfg))
}

/// Parses a `PDAC_SENTINEL_FAULT` value into the fault to inject.
///
/// Returns `None` for an empty/`none` value and `Err` with a usage
/// message for anything unparsable (callers print it and exit nonzero —
/// a typo must not silently run the clean backend and report green).
pub fn fault_spec(raw: &str) -> Result<Option<FaultSpec>, String> {
    let raw = raw.trim();
    if raw.is_empty() || raw.eq_ignore_ascii_case("none") {
        return Ok(None);
    }
    let (class, magnitude) = match raw.split_once(':') {
        Some((c, m)) => (c, Some(m)),
        None => (raw, None),
    };
    let fraction = |default: f64| -> Result<f64, String> {
        match magnitude {
            None => Ok(default),
            Some(m) => m
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|f| f.is_finite())
                .ok_or_else(|| format!("bad fault magnitude {m:?} in {raw:?}")),
        }
    };
    let slot = |default: usize| -> Result<usize, String> {
        match magnitude {
            None => Ok(default),
            Some(m) => m
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad slot index {m:?} in {raw:?}")),
        }
    };
    let spec = match class.to_ascii_lowercase().as_str() {
        "tia" => FaultSpec::none().with_tia_gain_drift(fraction(0.5)?),
        "dark" => FaultSpec::none().with_dark_current_ratio(fraction(0.5)?),
        "droop" => FaultSpec::none().with_laser_droop(fraction(0.5)?),
        "stuck" => FaultSpec::none().with_slot_fault(SlotFault::StuckOn(slot(1)?)),
        "flipped" => FaultSpec::none().with_slot_fault(SlotFault::Flipped(slot(1)?)),
        other => {
            return Err(format!(
                "unknown fault class {other:?} (use tia|dark|droop|stuck|flipped[:magnitude])"
            ))
        }
    };
    Ok(Some(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_grammar_covers_every_class() {
        assert_eq!(fault_spec("").unwrap(), None);
        assert_eq!(fault_spec("none").unwrap(), None);
        assert_eq!(
            fault_spec("tia").unwrap(),
            Some(FaultSpec::none().with_tia_gain_drift(0.5))
        );
        assert_eq!(
            fault_spec("TIA:0.2").unwrap(),
            Some(FaultSpec::none().with_tia_gain_drift(0.2))
        );
        assert_eq!(
            fault_spec("dark:0.1").unwrap(),
            Some(FaultSpec::none().with_dark_current_ratio(0.1))
        );
        assert_eq!(
            fault_spec("droop:0.4").unwrap(),
            Some(FaultSpec::none().with_laser_droop(0.4))
        );
        assert_eq!(
            fault_spec("stuck").unwrap(),
            Some(FaultSpec::none().with_slot_fault(SlotFault::StuckOn(1)))
        );
        assert_eq!(
            fault_spec("stuck:3").unwrap(),
            Some(FaultSpec::none().with_slot_fault(SlotFault::StuckOn(3)))
        );
        assert_eq!(
            fault_spec("flipped:2").unwrap(),
            Some(FaultSpec::none().with_slot_fault(SlotFault::Flipped(2)))
        );
        assert!(fault_spec("gamma").is_err());
        assert!(fault_spec("tia:lots").is_err());
        assert!(fault_spec("stuck:msb").is_err());
    }
}
