//! Thread-count determinism of the GEMM engine.
//!
//! `scripts/ci.sh` runs this suite twice — under `PDAC_THREADS=1` and
//! `PDAC_THREADS=8` — so the env-driven default path is exercised at both
//! extremes in separate processes (the thread count is cached per
//! process). Within one process the explicit-thread-count API must agree
//! with the reference loop bit for bit at every count.

use pdac_math::rng::SplitMix64;
use pdac_math::Mat;

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = SplitMix64::seed_from_u64(seed);
    Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-3.0, 3.0))
}

#[test]
fn gemm_outputs_bit_identical_across_thread_counts() {
    for (m, k, n, seed) in [
        (64, 64, 64, 1u64),
        (100, 37, 51, 2),
        (7, 129, 30, 3),
        (1, 256, 192, 4),
        (130, 130, 130, 5),
    ] {
        let a = random_mat(m, k, seed);
        let b = random_mat(k, n, seed + 100);
        let reference = a.matmul_reference(&b).unwrap();
        // The env-driven default (PDAC_THREADS when set).
        assert_eq!(a.matmul(&b).unwrap(), reference, "{m}x{k}x{n} default");
        // Every explicit thread count, including oversubscription.
        for threads in [1, 2, 3, 8, 16] {
            assert_eq!(
                a.matmul_with_threads(&b, threads).unwrap(),
                reference,
                "{m}x{k}x{n} threads={threads}"
            );
        }
    }
}

#[test]
fn matvec_outputs_bit_identical_across_thread_counts() {
    for (m, k, seed) in [(64, 64, 11u64), (300, 257, 12), (1, 500, 13)] {
        let a = random_mat(m, k, seed);
        let v: Vec<f64> = random_mat(1, k, seed + 50).row(0);
        assert_eq!(
            a.matvec(&v).unwrap(),
            a.matvec_reference(&v).unwrap(),
            "{m}x{k}"
        );
    }
}
