//! Ablation: Eq. 17 objective across breakpoints k (extends Fig. 8).
fn main() {
    print!("{}", pdac_bench::ablations::k_sweep_report(39));
}
