//! Microbenches of the power/energy model evaluation.

use pdac_bench::lt_b_models;
use pdac_bench::microbench::{bench, black_box};
use pdac_nn::config::TransformerConfig;
use pdac_nn::workload::op_trace;
use pdac_power::EnergyModel;

fn main() {
    let (baseline, pdac) = lt_b_models();
    bench("power/breakdown", || {
        baseline.breakdown(black_box(8)).total_watts()
    });
    let trace = op_trace(&TransformerConfig::bert_base());
    let em = EnergyModel::new(pdac);
    bench("power/bert_energy", || {
        em.energy(black_box(&trace), 8).total_j()
    });
    bench("power/trace_generation", || {
        op_trace(black_box(&TransformerConfig::deit_base()))
    });
}
