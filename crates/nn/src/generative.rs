//! Generative (auto-regressive) inference workloads with a KV cache.
//!
//! The paper's introduction motivates photonic acceleration with LLM
//! *serving*: token-by-token decoding where "the KV cache stores
//! precomputed K and V vectors" and memory bandwidth dominates. This
//! module extends the encoder-style traces of [`crate::workload`] with
//! decode-phase traces: per generated token, each layer projects a single
//! token (S = 1), attends over the cached context of length `L`, and runs
//! its FFN — so compute shrinks by ~S× while weight traffic stays, making
//! decode far more memory-bound than prefill. The P-DAC's savings
//! (compute-side only) are correspondingly smaller: a quantitative
//! extension of the paper's Fig. 9/10 analysis to the serving regime.

use crate::config::TransformerConfig;
use pdac_power::{OpClass, OpTrace, TraceEntry};

/// Attention MACs for decoding one token at context length `context`:
/// four `d×d` projections for the new token plus score/context matmuls
/// against the cache.
pub fn decode_attention_macs(config: &TransformerConfig, context: usize) -> u64 {
    let d = config.hidden as u64;
    let l = context as u64;
    4 * d * d + 2 * l * d
}

/// FFN MACs for one decoded token.
pub fn decode_ffn_macs(config: &TransformerConfig) -> u64 {
    let d = config.hidden as u64;
    2 * d * (config.ff_mult as u64 * d)
}

/// Attention bytes (at 8-bit) for one decoded token: projection weights,
/// the KV-cache read of the full context, the new K/V write, and the
/// small per-token activations.
pub fn decode_attention_bytes(config: &TransformerConfig, context: usize) -> u64 {
    let d = config.hidden as u64;
    let l = context as u64;
    let weights = 4 * d * d;
    let kv_read = 2 * l * d;
    let kv_write = 2 * d;
    let activations = 6 * d + config.heads as u64 * l;
    weights + kv_read + kv_write + activations
}

/// FFN bytes (at 8-bit) for one decoded token.
pub fn decode_ffn_bytes(config: &TransformerConfig) -> u64 {
    let d = config.hidden as u64;
    let ff = config.ff_dim() as u64;
    2 * d * ff + 2 * d + 2 * ff
}

/// Element-wise ops for one decoded token.
pub fn decode_elementwise_ops(config: &TransformerConfig, context: usize) -> u64 {
    let d = config.hidden as u64;
    let softmax = config.heads as u64 * context as u64;
    softmax + 2 * d + config.ff_dim() as u64 + 2 * d
}

/// Builds the op trace for decoding `tokens` new tokens starting from a
/// context of `prompt_len` (the context grows as tokens are emitted).
///
/// # Panics
///
/// Panics if the config fails validation or `tokens == 0`.
///
/// # Examples
///
/// ```
/// use pdac_nn::config::TransformerConfig;
/// use pdac_nn::generative::decode_trace;
///
/// let trace = decode_trace(&TransformerConfig::bert_base(), 128, 32);
/// assert!(trace.total_macs() > 0);
/// ```
pub fn decode_trace(config: &TransformerConfig, prompt_len: usize, tokens: usize) -> OpTrace {
    let _span = pdac_telemetry::span("nn.generative.decode_trace");
    pdac_telemetry::counter_add("nn.generative.trace_tokens", tokens as u64);
    config.validate().expect("config must be valid");
    assert!(tokens > 0, "must decode at least one token");
    let layers = config.layers as u64;
    let mut attn_macs = 0u64;
    let mut attn_bytes = 0u64;
    let mut ffn_macs = 0u64;
    let mut ffn_bytes = 0u64;
    let mut elem = 0u64;
    for t in 0..tokens {
        let context = prompt_len + t + 1;
        attn_macs += decode_attention_macs(config, context);
        attn_bytes += decode_attention_bytes(config, context);
        ffn_macs += decode_ffn_macs(config);
        ffn_bytes += decode_ffn_bytes(config);
        elem += decode_elementwise_ops(config, context);
    }
    OpTrace {
        name: format!("{} decode {tokens} tokens @ ctx {prompt_len}", config.name),
        entries: vec![
            TraceEntry {
                class: OpClass::Attention,
                macs: layers * attn_macs,
                bytes_at_8bit: layers * attn_bytes,
                elementwise_ops: 0,
            },
            TraceEntry {
                class: OpClass::Ffn,
                macs: layers * ffn_macs,
                bytes_at_8bit: layers * ffn_bytes,
                elementwise_ops: 0,
            },
            TraceEntry {
                class: OpClass::Other,
                macs: 0,
                bytes_at_8bit: 0,
                elementwise_ops: layers * elem,
            },
        ],
    }
}

/// KV-cache footprint in bytes for one sequence at `context` length:
/// `2 (K and V) × layers × context × hidden × bytes-per-word`.
///
/// The capacity side of the serving story: once the cache outgrows the
/// shared on-chip SRAM, every decode step streams it from DRAM.
///
/// # Panics
///
/// Panics if `bits` is outside `2..=16`.
pub fn kv_cache_bytes(config: &TransformerConfig, context: usize, bits: u8) -> u64 {
    assert!((2..=16).contains(&bits), "bits outside 2..=16");
    let word = u64::from(bits).div_ceil(8).max(1);
    2 * config.layers as u64 * context as u64 * config.hidden as u64 * word
}

/// Largest context whose KV cache fits in `capacity_bytes`.
pub fn max_cached_context(config: &TransformerConfig, capacity_bytes: u64, bits: u8) -> usize {
    let per_token = kv_cache_bytes(config, 1, bits);
    (capacity_bytes / per_token.max(1)) as usize
}

/// Arithmetic intensity (MACs per byte at 8-bit) of a trace — the
/// quantity that separates the compute-bound prefill from the
/// memory-bound decode.
pub fn arithmetic_intensity(trace: &OpTrace) -> f64 {
    let macs: u64 = trace.entries.iter().map(|e| e.macs).sum();
    let bytes: u64 = trace.entries.iter().map(|e| e.bytes_at_8bit).sum();
    macs as f64 / bytes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::op_trace;

    fn bert() -> TransformerConfig {
        TransformerConfig::bert_base()
    }

    #[test]
    fn single_token_mac_counts() {
        let c = bert();
        // 4·768² + 2·128·768 = 2,359,296 + 196,608.
        assert_eq!(decode_attention_macs(&c, 128), 2_359_296 + 196_608);
        assert_eq!(decode_ffn_macs(&c), 4_718_592);
    }

    #[test]
    fn decode_is_memory_bound_vs_prefill() {
        let c = bert();
        let prefill = op_trace(&c);
        let decode = decode_trace(&c, 128, 1);
        let ai_prefill = arithmetic_intensity(&prefill);
        let ai_decode = arithmetic_intensity(&decode);
        assert!(
            ai_prefill > 20.0 * ai_decode,
            "prefill {ai_prefill} vs decode {ai_decode}"
        );
        // Decode is near 1 MAC/byte: weights read once per token.
        assert!(ai_decode < 2.0);
    }

    #[test]
    fn context_growth_increases_attention_cost() {
        let c = bert();
        let short = decode_trace(&c, 64, 8);
        let long = decode_trace(&c, 2048, 8);
        let attn = |t: &OpTrace| t.entry(OpClass::Attention).unwrap().macs;
        assert!(attn(&long) > attn(&short));
        // FFN cost is context-independent.
        let ffn = |t: &OpTrace| t.entry(OpClass::Ffn).unwrap().macs;
        assert_eq!(ffn(&long), ffn(&short));
    }

    #[test]
    fn kv_cache_bytes_grow_linearly_with_context() {
        let c = bert();
        let b1 = decode_attention_bytes(&c, 1000);
        let b2 = decode_attention_bytes(&c, 2000);
        // Incremental bytes = 1000 · 2d (+ heads·1000 score bytes).
        let expected = 1000 * 2 * 768 + 12 * 1000;
        assert_eq!(b2 - b1, expected);
    }

    #[test]
    fn trace_accumulates_over_tokens() {
        let c = bert();
        let one = decode_trace(&c, 128, 1);
        let ten = decode_trace(&c, 128, 10);
        assert!(ten.total_macs() > 9 * one.total_macs());
        assert!(ten.total_macs() < 11 * one.total_macs());
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_tokens_rejected() {
        decode_trace(&bert(), 10, 0);
    }

    #[test]
    fn kv_cache_footprint_bert() {
        // 2 × 12 layers × 1024 tokens × 768 dims × 1 B = 18.9 MB at 8-bit.
        let bytes = kv_cache_bytes(&bert(), 1024, 8);
        assert_eq!(bytes, 2 * 12 * 1024 * 768);
        // 4-bit halves it (packed nibbles round up per word here: 1 B min).
        assert_eq!(kv_cache_bytes(&bert(), 1024, 16), 2 * bytes);
    }

    #[test]
    fn on_chip_cache_capacity_is_small() {
        // A 4 MiB M2 SRAM holds only ~227 tokens of BERT-base KV at
        // 8-bit: long-context decode necessarily streams from DRAM.
        let max = max_cached_context(&bert(), 4 << 20, 8);
        assert!(max > 200 && max < 250, "max context {max}");
    }
}
