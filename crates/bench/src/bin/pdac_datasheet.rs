//! Prints the hardware datasheet of the 8-bit and 4-bit P-DAC designs.
use pdac_core::pdac::PDac;
use pdac_core::spec::PDacSpec;

fn main() {
    for bits in [4u8, 8] {
        let pdac = PDac::with_optimal_approx(bits).expect("valid bits");
        println!("{}", PDacSpec::from_pdac(&pdac, 1e-3));
    }
}
