//! Continuous-batching serving simulation: drives a multi-request trace
//! through the [`pdac_serve::TokenServer`] and reports throughput.
//!
//! ```text
//! cargo run --release -p pdac-serve --bin serve
//! ```
//!
//! Environment knobs (all optional):
//!
//! * `PDAC_SERVE_REQUESTS` — number of requests in the trace (default 8)
//! * `PDAC_SERVE_PROMPT` — prompt length per request (default 4)
//! * `PDAC_SERVE_MAX_NEW` — tokens generated per request (default 8)
//! * `PDAC_SERVE_BATCH` — batch capacity (default 4)
//! * `PDAC_SERVE_BACKEND` — `exact` | `pdac` | `edac` (default `pdac`)
//! * `PDAC_SERVE_HIDDEN` / `PDAC_SERVE_LAYERS` / `PDAC_SERVE_HEADS` —
//!   model shape (default 64 / 2 / 4)
//!
//! Exits nonzero if no request retires (the CI smoke gate).

use std::time::Instant;

use pdac_core::edac::ElectricalDac;
use pdac_core::pdac::PDac;
use pdac_nn::{AnalogGemm, ExactGemm, GemmBackend, TransformerConfig, TransformerModel};
use pdac_serve::{Request, TokenServer};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let requests = env_usize("PDAC_SERVE_REQUESTS", 8);
    let prompt_len = env_usize("PDAC_SERVE_PROMPT", 4);
    let max_new = env_usize("PDAC_SERVE_MAX_NEW", 8);
    let batch = env_usize("PDAC_SERVE_BATCH", 4);
    let hidden = env_usize("PDAC_SERVE_HIDDEN", 64);
    let layers = env_usize("PDAC_SERVE_LAYERS", 2);
    let heads = env_usize("PDAC_SERVE_HEADS", 4);
    let backend_name = std::env::var("PDAC_SERVE_BACKEND").unwrap_or_else(|_| "pdac".to_string());

    let config = TransformerConfig {
        name: "serve-sim".to_string(),
        layers,
        hidden,
        heads,
        ff_mult: 4,
        seq_len: (prompt_len + max_new).max(1),
    };
    config.validate().expect("valid serving config");
    let model = TransformerModel::random(config, 4, 42);

    let backend: Box<dyn GemmBackend> = match backend_name.as_str() {
        "exact" => Box::new(ExactGemm),
        "edac" => Box::new(AnalogGemm::new(
            ElectricalDac::new(8).expect("8-bit edac"),
            "edac-8b",
        )),
        "pdac" => Box::new(AnalogGemm::new(
            PDac::with_optimal_approx(8).expect("8-bit pdac"),
            "pdac-8b",
        )),
        other => {
            eprintln!("unknown PDAC_SERVE_BACKEND {other:?} (use exact|pdac|edac)");
            std::process::exit(2);
        }
    };

    pdac_telemetry::enable();
    let mut server = TokenServer::new(&model, batch);
    for id in 0..requests {
        let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(1000 + id as u64);
        let prompt = (0..prompt_len)
            .map(|_| {
                (0..model.config().hidden)
                    .map(|_| rng.gen_range_f64(-1.0, 1.0))
                    .collect()
            })
            .collect();
        server.admit(Request {
            id: id as u64,
            prompt,
            max_new_tokens: max_new,
        });
    }

    let start = Instant::now();
    let steps = server.run(&*backend);
    let elapsed = start.elapsed().as_secs_f64();
    let completions = server.take_completions();

    let generated = server.generated_tokens();
    let fed = server.fed_tokens();
    let tok_per_s = generated as f64 / elapsed.max(1e-12);
    println!(
        "serve: backend={} requests={requests} prompt={prompt_len} max_new={max_new} \
         batch_capacity={batch}",
        backend.name()
    );
    println!(
        "serve: steps={steps} fed_tokens={fed} generated_tokens={generated} \
         mean_occupancy={:.2} elapsed_s={elapsed:.4} tokens_per_s={tok_per_s:.1}",
        server.mean_occupancy()
    );

    let snap = pdac_telemetry::snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    println!(
        "serve: telemetry admitted={} retired={}",
        counter("serve.admitted"),
        counter("serve.retired")
    );

    if completions.len() != requests || counter("serve.retired") != requests as u64 {
        eprintln!(
            "serve: FAIL — {} of {requests} requests retired",
            completions.len()
        );
        std::process::exit(1);
    }
    assert!(
        completions.iter().all(|c| c.hidden.len() == max_new),
        "every completion carries max_new hidden states"
    );
    println!("serve: OK — all {requests} requests retired");
}
