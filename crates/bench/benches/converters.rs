//! Criterion benches: P-DAC vs electrical-DAC conversion throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pdac_core::edac::ElectricalDac;
use pdac_core::pdac::PDac;
use pdac_core::MzmDriver;

fn bench_converters(c: &mut Criterion) {
    let mut group = c.benchmark_group("converters");
    for bits in [4u8, 8] {
        let pdac = PDac::with_optimal_approx(bits).unwrap();
        let edac = ElectricalDac::new(bits).unwrap();
        let m = pdac.max_code();
        group.bench_with_input(BenchmarkId::new("pdac_full_sweep", bits), &bits, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for code in -m..=m {
                    acc += pdac.convert(black_box(code));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("edac_full_sweep", bits), &bits, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for code in -m..=m {
                    acc += edac.convert(black_box(code));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_converters);
criterion_main!(benches);
