//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! MZI-array photonic tensor cores (Shen et al., paper Sec. II-A3) map a
//! weight matrix by factoring it as `W = U·Σ·Vᵀ` and programming `U` and
//! `V` into triangular meshes of interferometers. The paper's background
//! argues this *offline decomposition* is the approach's weakness —
//! "mapping a 12×12 matrix takes approximately 1.5 ms" — which motivates
//! Lightening-Transformer's dynamically-operated design. Reproducing that
//! comparison requires an SVD, implemented here from scratch.
//!
//! One-sided Jacobi: orthogonalize the columns of `A·V` by plane
//! rotations until all column pairs are orthogonal; singular values are
//! the resulting column norms. Numerically robust for the small/medium
//! matrices PTCs care about.

use crate::matrix::Mat;

/// The factorization `A = U · diag(s) · Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, `m × n` with orthonormal columns.
    pub u: Mat,
    /// Singular values, descending, length `n`.
    pub s: Vec<f64>,
    /// Right singular vectors, `n × n` orthogonal.
    pub v: Mat,
}

impl Svd {
    /// Reconstructs `U · diag(s) · Vᵀ`.
    pub fn reconstruct(&self) -> Mat {
        let n = self.s.len();
        let mut us = self.u.clone();
        for c in 0..n {
            for r in 0..us.rows() {
                us[(r, c)] *= self.s[c];
            }
        }
        us.matmul(&self.v.transpose())
            .expect("shapes agree by construction")
    }

    /// Largest singular value (0 for the all-zero matrix).
    pub fn spectral_norm(&self) -> f64 {
        self.s.first().copied().unwrap_or(0.0)
    }

    /// Condition number `s_max / s_min`, `INFINITY` if singular.
    pub fn condition_number(&self) -> f64 {
        match (self.s.first(), self.s.last()) {
            (Some(&max), Some(&min)) if min > 0.0 => max / min,
            _ => f64::INFINITY,
        }
    }
}

/// Computes the thin SVD of `a` (requires `rows >= cols`).
///
/// # Panics
///
/// Panics if `a.rows() < a.cols()` — transpose first for wide matrices.
///
/// # Examples
///
/// ```
/// use pdac_math::{svd::svd, Mat};
///
/// let a = Mat::from_rows(2, 2, vec![3.0, 0.0, 0.0, -2.0])?;
/// let f = svd(&a);
/// assert!((f.s[0] - 3.0).abs() < 1e-12);
/// assert!((f.s[1] - 2.0).abs() < 1e-12);
/// assert!(f.reconstruct().distance(&a) < 1e-10);
/// # Ok::<(), pdac_math::matrix::MatError>(())
/// ```
pub fn svd(a: &Mat) -> Svd {
    let m = a.rows();
    let n = a.cols();
    assert!(
        m >= n,
        "one-sided Jacobi SVD requires rows >= cols; transpose first"
    );
    let mut w = a.clone(); // becomes U·Σ
    let mut v = Mat::identity(n);

    let eps = 1e-14;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Column inner products.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for r in 0..m {
                    alpha += w[(r, p)] * w[(r, p)];
                    beta += w[(r, q)] * w[(r, q)];
                    gamma += w[(r, p)] * w[(r, q)];
                }
                off = off.max(gamma.abs() / (alpha * beta).sqrt().max(f64::MIN_POSITIVE));
                if gamma.abs() <= eps * (alpha * beta).sqrt() {
                    continue;
                }
                // Jacobi rotation zeroing the (p, q) column product.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..m {
                    let wp = w[(r, p)];
                    let wq = w[(r, q)];
                    w[(r, p)] = c * wp - s * wq;
                    w[(r, q)] = s * wp + c * wq;
                }
                for r in 0..n {
                    let vp = v[(r, p)];
                    let vq = v[(r, q)];
                    v[(r, p)] = c * vp - s * vq;
                    v[(r, q)] = s * vp + c * vq;
                }
            }
        }
        if off < 1e-13 {
            break;
        }
    }

    // Column norms are the singular values; normalize into U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma = vec![0.0; n];
    for c in 0..n {
        sigma[c] = (0..m).map(|r| w[(r, c)] * w[(r, c)]).sum::<f64>().sqrt();
    }
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).expect("finite norms"));

    let mut u = Mat::zeros(m, n);
    let mut v_sorted = Mat::zeros(n, n);
    let mut s_sorted = vec![0.0; n];
    let rank_tol = sigma.iter().cloned().fold(0.0f64, f64::max) * 1e-12;
    for (new_c, &old_c) in order.iter().enumerate() {
        s_sorted[new_c] = sigma[old_c];
        if sigma[old_c] > rank_tol {
            for r in 0..m {
                u[(r, new_c)] = w[(r, old_c)] / sigma[old_c];
            }
        }
        for r in 0..n {
            v_sorted[(r, new_c)] = v[(r, old_c)];
        }
    }
    // Rank-deficient input leaves null columns in U; complete them to an
    // orthonormal basis (Gram-Schmidt against the filled columns) so U
    // always has orthonormal columns.
    complete_orthonormal_columns(&mut u, &s_sorted, rank_tol);
    Svd {
        u,
        s: s_sorted,
        v: v_sorted,
    }
}

/// Replaces the columns of `u` whose singular value is below `tol` with
/// vectors orthonormal to every other column.
fn complete_orthonormal_columns(u: &mut Mat, s: &[f64], tol: f64) {
    let (m, n) = u.shape();
    for c in 0..n {
        if s[c] > tol {
            continue;
        }
        // Try standard basis seeds until one survives orthogonalization.
        let mut placed = false;
        for seed in 0..m {
            let mut cand = vec![0.0; m];
            cand[seed] = 1.0;
            for prev in 0..n {
                if prev == c || (s[prev] <= tol && prev > c) {
                    continue;
                }
                let dot: f64 = (0..m).map(|r| cand[r] * u[(r, prev)]).sum();
                for (r, item) in cand.iter_mut().enumerate() {
                    *item -= dot * u[(r, prev)];
                }
            }
            let norm: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for (r, item) in cand.iter().enumerate() {
                    u[(r, c)] = item / norm;
                }
                placed = true;
                break;
            }
        }
        debug_assert!(placed, "orthonormal completion must succeed for m >= n");
    }
}

/// Whether the columns of `m` are orthonormal within `tol`.
pub fn has_orthonormal_columns(m: &Mat, tol: f64) -> bool {
    let n = m.cols();
    for p in 0..n {
        for q in p..n {
            let dot: f64 = (0..m.rows()).map(|r| m[(r, p)] * m[(r, q)]).sum();
            let expected = if p == q { 1.0 } else { 0.0 };
            if (dot - expected).abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Mat {
        // Small deterministic LCG so the math crate stays dependency-free.
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Mat::from_rows(3, 3, vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let f = svd(&a);
        assert!((f.s[0] - 5.0).abs() < 1e-12);
        assert!((f.s[1] - 2.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_random_square() {
        for seed in [1u64, 7, 42] {
            let a = pseudo_random(8, 8, seed);
            let f = svd(&a);
            assert!(
                f.reconstruct().distance(&a) < 1e-9,
                "seed {seed}: distance {}",
                f.reconstruct().distance(&a)
            );
        }
    }

    #[test]
    fn reconstruction_random_tall() {
        let a = pseudo_random(12, 5, 3);
        let f = svd(&a);
        assert!(f.reconstruct().distance(&a) < 1e-9);
        assert_eq!(f.u.shape(), (12, 5));
        assert_eq!(f.v.shape(), (5, 5));
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = pseudo_random(9, 9, 11);
        let f = svd(&a);
        assert!(has_orthonormal_columns(&f.u, 1e-9));
        assert!(has_orthonormal_columns(&f.v, 1e-9));
    }

    #[test]
    fn singular_values_descending_and_nonnegative() {
        let a = pseudo_random(10, 6, 5);
        let f = svd(&a);
        for pair in f.s.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(f.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns -> one zero singular value.
        let a = Mat::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let f = svd(&a);
        assert!(f.s[1] < 1e-10);
        assert!(f.condition_number().is_infinite());
        assert!(f.reconstruct().distance(&a) < 1e-10);
    }

    #[test]
    fn spectral_norm_matches_known() {
        // Rotation matrices have all singular values 1.
        let theta: f64 = 0.61;
        let a = Mat::from_rows(
            2,
            2,
            vec![theta.cos(), -theta.sin(), theta.sin(), theta.cos()],
        )
        .unwrap();
        let f = svd(&a);
        assert!((f.spectral_norm() - 1.0).abs() < 1e-12);
        assert!((f.condition_number() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Mat::zeros(4, 3);
        let f = svd(&a);
        assert!(f.s.iter().all(|&s| s == 0.0));
        assert!(f.reconstruct().distance(&a) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn wide_matrix_rejected() {
        svd(&Mat::zeros(2, 5));
    }
}
