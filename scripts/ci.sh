#!/usr/bin/env bash
# Offline CI for the pdac workspace: format, lint, build, test.
# Everything here runs without network access (no registry dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (telemetry on)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (telemetry off)"
cargo clippy --workspace --all-targets --no-default-features -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo build --release --no-default-features (compile-time no-op telemetry)"
cargo build --release -p pdac --no-default-features

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> feature matrix (workspace without default features; gated tests compile)"
cargo build --release --workspace --no-default-features
cargo test -q --workspace --all-features --no-run

echo "==> GEMM thread determinism (PDAC_THREADS=1 vs 8)"
PDAC_THREADS=1 cargo test -q -p pdac-math --test thread_determinism
PDAC_THREADS=8 cargo test -q -p pdac-math --test thread_determinism

echo "==> conformance + fault-injection matrix (pdac-verify)"
PDAC_VERIFY_OUT="$(pwd)/target/verify_report.jsonl" \
    cargo run --release -q -p pdac-verify

echo "==> gemm_engine microbench smoke"
PDAC_BENCH_MS=5 PDAC_BENCH_MAX_DIM=64 PDAC_BENCH_OUT="$(pwd)/target/BENCH_gemm.smoke.json" \
    cargo bench --features microbench -p pdac-bench --bench gemm_engine

echo "==> verify microbench smoke"
PDAC_BENCH_MS=5 PDAC_BENCH_OUT="$(pwd)/target/BENCH_verify.smoke.json" \
    cargo bench --features microbench -p pdac-bench --bench verify

echo "==> serve smoke (continuous-batching token server retires every request)"
PDAC_SERVE_REQUESTS=6 PDAC_SERVE_PROMPT=3 PDAC_SERVE_MAX_NEW=4 PDAC_SERVE_BATCH=4 \
    PDAC_SERVE_HIDDEN=32 PDAC_SERVE_LAYERS=2 PDAC_SERVE_HEADS=4 \
    cargo run --release -q -p pdac-serve --bin serve

echo "==> observability smoke (serve with tracing; bin validates the trace itself)"
PDAC_SERVE_REQUESTS=6 PDAC_SERVE_PROMPT=3 PDAC_SERVE_MAX_NEW=4 PDAC_SERVE_BATCH=4 \
    PDAC_SERVE_HIDDEN=32 PDAC_SERVE_LAYERS=2 PDAC_SERVE_HEADS=4 \
    PDAC_SERVE_TRACE_OUT="$(pwd)/target/trace.smoke.json" \
    cargo run --release -q -p pdac-serve --bin serve
if command -v python3 >/dev/null 2>&1; then
    python3 -c "
import json
doc = json.load(open('target/trace.smoke.json'))
assert doc['traceEvents'], 'empty trace'
"
fi

echo "==> energy observability smoke (metered serve leaves power.* in /metrics)"
PDAC_SERVE_REQUESTS=6 PDAC_SERVE_PROMPT=3 PDAC_SERVE_MAX_NEW=4 PDAC_SERVE_BATCH=4 \
    PDAC_SERVE_HIDDEN=32 PDAC_SERVE_LAYERS=2 PDAC_SERVE_HEADS=4 \
    PDAC_POWER_BUDGET_W=1000 \
    PDAC_SERVE_METRICS_OUT="$(pwd)/target/metrics.smoke.txt" \
    cargo run --release -q -p pdac-serve --bin serve
for series in pdac_power_energy_attention_j pdac_power_energy_total_j \
    pdac_power_compute_w pdac_power_budget_headroom_w pdac_serve_energy_per_token_j; do
    grep -q "^${series}" target/metrics.smoke.txt \
        || { echo "FAIL: ${series} missing from /metrics exposition"; exit 1; }
done

echo "==> paged KV serve smoke (prefix sharing under a byte budget, bit-identical to flat)"
PDAC_SERVE_REQUESTS=6 PDAC_SERVE_PROMPT=5 PDAC_SERVE_MAX_NEW=4 PDAC_SERVE_BATCH=3 \
    PDAC_SERVE_HIDDEN=32 PDAC_SERVE_LAYERS=2 PDAC_SERVE_HEADS=4 \
    PDAC_SERVE_KV=paged PDAC_SERVE_SHARED_PROMPT=4 \
    PDAC_KV_BLOCK_TOKENS=2 PDAC_KV_BUDGET_BYTES=16384 \
    PDAC_SERVE_METRICS_OUT="$(pwd)/target/metrics.kv.txt" \
    cargo run --release -q -p pdac-serve --bin serve
for series in pdac_serve_kv_pages pdac_serve_kv_bytes pdac_serve_kv_shared; do
    grep -q "^${series}" target/metrics.kv.txt \
        || { echo "FAIL: ${series} missing from /metrics exposition"; exit 1; }
done

echo "==> drift sentinel smoke (clean serve green; injected fault latches critical)"
PDAC_SERVE_REQUESTS=6 PDAC_SERVE_PROMPT=3 PDAC_SERVE_MAX_NEW=4 PDAC_SERVE_BATCH=4 \
    PDAC_SERVE_HIDDEN=32 PDAC_SERVE_LAYERS=2 PDAC_SERVE_HEADS=4 \
    PDAC_SENTINEL_RATE=1.0 \
    PDAC_SERVE_METRICS_OUT="$(pwd)/target/metrics.sentinel.txt" \
    cargo run --release -q -p pdac-serve --bin serve -- --health
for series in pdac_health_drift_pdac_ewma pdac_health_drift_pdac_budget_frac \
    pdac_health_drift_pdac_bucket; do
    grep -q "^${series}" target/metrics.sentinel.txt \
        || { echo "FAIL: ${series} missing from /metrics exposition"; exit 1; }
done
if PDAC_SERVE_REQUESTS=4 PDAC_SERVE_PROMPT=3 PDAC_SERVE_MAX_NEW=4 PDAC_SERVE_BATCH=4 \
    PDAC_SERVE_HIDDEN=32 PDAC_SERVE_LAYERS=2 PDAC_SERVE_HEADS=4 \
    PDAC_SENTINEL_RATE=1.0 PDAC_SENTINEL_FAULT=tia \
    cargo run --release -q -p pdac-serve --bin serve -- --health \
    > target/sentinel.fault.log 2>&1; then
    echo "FAIL: fault-injected serve reported healthy"
    cat target/sentinel.fault.log
    exit 1
fi
grep -q "health status=critical" target/sentinel.fault.log \
    || { echo "FAIL: fault run exited nonzero without a critical verdict"; \
         cat target/sentinel.fault.log; exit 1; }

echo "==> telemetry-off feature check (serve/nn/power compile with the no-op mirror)"
cargo check --release -q -p pdac-serve -p pdac-nn -p pdac-power --no-default-features

echo "==> serve http feature check (/metrics + /trace endpoint compiles and tests)"
cargo test -q -p pdac-telemetry --features serve-http --lib
cargo check --release -q -p pdac-serve --features http

echo "==> decode_engine microbench smoke"
PDAC_BENCH_DECODE_HIDDEN=64 PDAC_BENCH_DECODE_LAYERS=2 PDAC_BENCH_DECODE_HEADS=4 \
    PDAC_BENCH_DECODE_PROMPT=2 PDAC_BENCH_DECODE_TOKENS=3 PDAC_BENCH_DECODE_BATCHES=1,4 \
    PDAC_BENCH_OUT="$(pwd)/target/BENCH_decode.smoke.json" \
    cargo bench --features microbench -p pdac-bench --bench decode_engine
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json; json.load(open('target/BENCH_decode.smoke.json'))"
else
    echo "note: python3 unavailable, skipping JSON parse check"
fi

echo "==> decode bench batch sweep (exact backend: no batch size slower than sequential)"
PDAC_BENCH_DECODE_HIDDEN=64 PDAC_BENCH_DECODE_LAYERS=2 PDAC_BENCH_DECODE_HEADS=4 \
    PDAC_BENCH_DECODE_PROMPT=2 PDAC_BENCH_DECODE_TOKENS=16 \
    PDAC_BENCH_DECODE_BATCHES=1,4,8,16 PDAC_BENCH_DECODE_BACKENDS=exact \
    PDAC_BENCH_DECODE_REPS=5 PDAC_BENCH_DECODE_FLOOR=1.0 \
    PDAC_BENCH_OUT="$(pwd)/target/BENCH_decode.sweep.json" \
    cargo bench --features microbench -p pdac-bench --bench decode_engine

echo "==> bench regression gate (fresh runs vs checked-in baselines)"
PDAC_BENCH_DECODE_HIDDEN=128 PDAC_BENCH_DECODE_LAYERS=2 PDAC_BENCH_DECODE_HEADS=4 \
    PDAC_BENCH_DECODE_PROMPT=4 PDAC_BENCH_DECODE_TOKENS=8 PDAC_BENCH_DECODE_BATCHES=8 \
    PDAC_BENCH_OUT="$(pwd)/target/BENCH_decode.fresh.json" \
    cargo bench --features microbench -p pdac-bench --bench decode_engine
PDAC_BENCH_OUT="$(pwd)/target/BENCH_trace.fresh.json" \
    cargo bench --features microbench -p pdac-bench --bench trace_overhead
PDAC_BENCH_OUT="$(pwd)/target/BENCH_sentinel.fresh.json" \
    cargo bench --features microbench -p pdac-bench --bench sentinel_overhead
PDAC_BENCH_MS=40 PDAC_BENCH_MAX_DIM=256 PDAC_BENCH_OUT="$(pwd)/target/BENCH_gemm.fresh.json" \
    cargo bench --features microbench -p pdac-bench --bench gemm_engine

echo "==> integer-route floor (analog_int8 >= 2x analog_lut_cache at 256^3)"
if command -v python3 >/dev/null 2>&1; then
    python3 -c "
import json
doc = json.load(open('target/BENCH_gemm.fresh.json'))
ratios = [r['analog_int8_over_lut_cache'] for r in doc['results']
          if r.get('size') == 256 and 'analog_int8_over_lut_cache' in r]
assert ratios, 'no 256^3 analog_int8_over_lut_cache record in fresh bench'
assert ratios[0] >= 2.0, f'integer route below 2x floor: {ratios[0]:.2f}x'
print(f'int8 floor OK: {ratios[0]:.2f}x >= 2.0x over analog_lut_cache')
"
else
    echo "note: python3 unavailable, relying on the in-bench assertion"
fi

PDAC_BENCH_MS=40 PDAC_BENCH_OUT="$(pwd)/target/BENCH_pool.fresh.json" \
    cargo bench --features microbench -p pdac-bench --bench pool_vs_scope
PDAC_BENCH_OUT="$(pwd)/target/BENCH_energy.fresh.json" \
    cargo bench --features microbench -p pdac-bench --bench energy_ledger
PDAC_BENCH_KV_HIDDEN=64 PDAC_BENCH_KV_LAYERS=2 PDAC_BENCH_KV_HEADS=4 \
    PDAC_BENCH_KV_BATCH=4 PDAC_BENCH_KV_PROMPT=8 PDAC_BENCH_KV_SHARED=4 \
    PDAC_BENCH_KV_TOKENS=2 PDAC_BENCH_KV_BLOCK=2 PDAC_BENCH_KV_REPS=3 \
    PDAC_BENCH_KV_BACKENDS=exact \
    PDAC_BENCH_OUT="$(pwd)/target/BENCH_kv.fresh.json" \
    cargo bench --features microbench -p pdac-bench --bench kv_paged
cargo run --release -q -p pdac-bench --bin bench_gate -- \
    crates/bench/baselines/BENCH_decode.gate.json target/BENCH_decode.fresh.json \
    crates/bench/baselines/BENCH_trace.gate.json target/BENCH_trace.fresh.json \
    crates/bench/baselines/BENCH_gemm.gate.json target/BENCH_gemm.fresh.json \
    crates/bench/baselines/BENCH_pool.gate.json target/BENCH_pool.fresh.json \
    crates/bench/baselines/BENCH_energy.gate.json target/BENCH_energy.fresh.json \
    crates/bench/baselines/BENCH_kv.gate.json target/BENCH_kv.fresh.json \
    crates/bench/baselines/BENCH_sentinel.gate.json target/BENCH_sentinel.fresh.json

echo "CI OK"
