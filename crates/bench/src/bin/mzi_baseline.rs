//! MZI-mesh PTC vs dynamic DDot operation (paper Sec. II-A3 contrast).
fn main() {
    print!("{}", pdac_bench::mzi_baseline::report());
}
