//! Differential conformance and fault-injection harness for the P-DAC
//! stack.
//!
//! The workspace makes two kinds of promises:
//!
//! * **Exactness** — the tuned GEMM kernels, the [`ConverterLut`] fast
//!   path, and the weight-conversion caches all claim *bit identity*
//!   with their slow golden counterparts.
//! * **Bounded error** — the P-DAC's analog reconstruction claims the
//!   paper's ≈8.5% per-element budget (Eq. 18) and a configurable
//!   end-to-end GEMM tolerance.
//!
//! This crate turns each promise into an executable check
//! ([`conformance`]), adds a deterministic fault-injection layer
//! ([`faults`]) that perturbs the photonic signal chain — TIA gain
//! drift, photodetector dark current, laser power droop, stuck/flipped
//! optical bit slots — and verifies *graceful degradation*: errors stay
//! finite, grow monotonically with fault magnitude, and land in the
//! `verify.fault.*` telemetry histograms. Results render as a terminal
//! table and as a JSONL conformance report ([`report`]).
//!
//! The same budgets also run *online*: the [`sentinel`] module
//! shadow-samples live analog GEMMs off the hot path, replays them
//! through the golden reference, and raises drift alerts into the
//! global `pdac-telemetry` health ledger.
//!
//! Run the whole matrix with `cargo run --release -p pdac-verify`, or
//! programmatically:
//!
//! ```
//! use pdac_verify::conformance::{run_conformance, ConformanceConfig};
//!
//! let mut cfg = ConformanceConfig::default();
//! cfg.gemm_shapes.truncate(1); // keep the doctest quick
//! let report = run_conformance(&cfg);
//! assert!(report.passed(), "{}", report.render_table());
//! ```
//!
//! [`ConverterLut`]: pdac_core::lut::ConverterLut

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod conformance;
pub mod faults;
pub mod report;
pub mod sentinel;

pub use conformance::{run_conformance, run_fault_sweeps, run_full, ConformanceConfig};
pub use faults::{AmplitudeFault, FaultSpec, FaultyPDac, SlotFault};
pub use report::{CheckKind, CheckResult, ConformanceReport};
pub use sentinel::{Sentinel, SentinelConfig, SentinelHandle, SentinelStats};
