//! Multi-bit electro-optic (EO) and opto-electric (OE) interfaces.
//!
//! Following CAMON (paper Fig. 2), a multi-bit EO interface encodes `b`
//! bits per laser wavelength within a single clock cycle by dividing the
//! cycle into `b` time slots; the transmitter modulates its MRR during
//! slot `i` to write bit `i`. The P-DAC consumes the resulting *optical
//! digital word* directly: each slot's photocurrent is weighted by a
//! per-bit TIA and superimposed into the MZM drive voltage (Fig. 7).
//!
//! Words are sign-magnitude — one sign slot plus `b−1` magnitude slots,
//! MSB first — matching the symmetric quantizer used throughout the
//! reproduction.

use std::fmt;

/// A digital word carried optically: one bool per time slot, MSB first,
/// preceded by a sign slot.
///
/// # Examples
///
/// ```
/// use pdac_photonics::eo_interface::OpticalWord;
///
/// let w = OpticalWord::encode(64, 8)?; // the paper's 0x40 example
/// assert_eq!(w.bits(), 8);
/// assert_eq!(w.decode(), 64);
/// # Ok::<(), pdac_photonics::eo_interface::EoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpticalWord {
    /// slot 0 = sign (lit ⇔ negative), slots 1.. = magnitude MSB→LSB.
    slots: Vec<bool>,
}

/// Errors from encoding digital values onto the optical interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EoError {
    /// Bit width outside `2..=16`.
    UnsupportedBits(u8),
    /// The value does not fit the symmetric code range of the bit width.
    OutOfRange {
        /// Requested value.
        value: i32,
        /// Magnitude limit `2^(b−1) − 1`.
        limit: i32,
    },
}

impl fmt::Display for EoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EoError::UnsupportedBits(b) => write!(f, "bit width {b} outside 2..=16"),
            EoError::OutOfRange { value, limit } => {
                write!(f, "value {value} outside symmetric range ±{limit}")
            }
        }
    }
}

impl std::error::Error for EoError {}

impl OpticalWord {
    /// Encodes a signed code into a `bits`-slot optical word
    /// (1 sign slot + `bits−1` magnitude slots).
    ///
    /// # Errors
    ///
    /// Returns [`EoError::UnsupportedBits`] or [`EoError::OutOfRange`].
    pub fn encode(value: i32, bits: u8) -> Result<Self, EoError> {
        if !(2..=16).contains(&bits) {
            return Err(EoError::UnsupportedBits(bits));
        }
        let limit = (1i32 << (bits - 1)) - 1;
        if value.abs() > limit {
            return Err(EoError::OutOfRange { value, limit });
        }
        let mag = value.unsigned_abs();
        let mut slots = Vec::with_capacity(bits as usize);
        slots.push(value < 0);
        for i in (0..bits - 1).rev() {
            slots.push(mag & (1 << i) != 0);
        }
        Ok(Self { slots })
    }

    /// Total number of slots (== bit width).
    pub fn bits(&self) -> u8 {
        self.slots.len() as u8
    }

    /// Whether the sign slot is lit (negative value).
    pub fn is_negative(&self) -> bool {
        self.slots[0]
    }

    /// Magnitude slots, MSB first.
    pub fn magnitude_slots(&self) -> &[bool] {
        &self.slots[1..]
    }

    /// All slots including the sign.
    pub fn slots(&self) -> &[bool] {
        &self.slots
    }

    /// Decodes back to the signed code.
    pub fn decode(&self) -> i32 {
        let mut mag = 0i32;
        for &s in &self.slots[1..] {
            mag = (mag << 1) | i32::from(s);
        }
        if self.slots[0] {
            -mag
        } else {
            mag
        }
    }

    /// Photocurrents produced when each slot is sampled by a detector
    /// receiving `on_current` amperes for a lit slot: lit → `on_current`,
    /// dark → 0. This is the input to the P-DAC's TIA bank.
    pub fn slot_currents(&self, on_current: f64) -> Vec<f64> {
        self.slots
            .iter()
            .map(|&s| if s { on_current } else { 0.0 })
            .collect()
    }

    /// Returns a copy with slot `index` forced to `lit` — a stuck-on /
    /// stuck-off device fault on one time slot (slot 0 is the sign slot).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bits()`.
    pub fn with_slot_forced(&self, index: usize, lit: bool) -> Self {
        assert!(index < self.slots.len(), "slot index out of bounds");
        let mut slots = self.slots.clone();
        slots[index] = lit;
        Self { slots }
    }

    /// Returns a copy with slot `index` inverted — a transient bit flip
    /// in the optical digital word (slot 0 is the sign slot).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bits()`.
    pub fn with_slot_flipped(&self, index: usize) -> Self {
        assert!(index < self.slots.len(), "slot index out of bounds");
        let mut slots = self.slots.clone();
        slots[index] = !slots[index];
        Self { slots }
    }
}

/// The transmitting EO interface: encodes electrical words onto one
/// wavelength, tracking modulation events for energy accounting.
///
/// # Examples
///
/// ```
/// use pdac_photonics::eo_interface::EoInterface;
///
/// let mut eo = EoInterface::new(8)?;
/// let w = eo.transmit(-100)?;
/// assert_eq!(w.decode(), -100);
/// assert!(eo.modulation_events() > 0);
/// # Ok::<(), pdac_photonics::eo_interface::EoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EoInterface {
    bits: u8,
    words_sent: u64,
    modulation_events: u64,
}

impl EoInterface {
    /// Creates an interface for `bits`-wide words.
    ///
    /// # Errors
    ///
    /// Returns [`EoError::UnsupportedBits`] outside `2..=16`.
    pub fn new(bits: u8) -> Result<Self, EoError> {
        if !(2..=16).contains(&bits) {
            return Err(EoError::UnsupportedBits(bits));
        }
        Ok(Self {
            bits,
            words_sent: 0,
            modulation_events: 0,
        })
    }

    /// Bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The slot (modulation) rate needed to deliver one full word per
    /// accelerator clock cycle: `bits × clock_hz` (paper Fig. 2 divides
    /// the cycle into `bits` intervals).
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz <= 0`.
    pub fn slot_rate_hz(&self, clock_hz: f64) -> f64 {
        assert!(clock_hz > 0.0, "clock must be positive");
        self.bits as f64 * clock_hz
    }

    /// Whether a ring modulator with the given bandwidth can sustain the
    /// slot rate at `clock_hz`.
    pub fn sustains(&self, clock_hz: f64, modulator_bandwidth_hz: f64) -> bool {
        self.slot_rate_hz(clock_hz) <= modulator_bandwidth_hz
    }

    /// Encodes and "transmits" a word, updating activity counters.
    ///
    /// # Errors
    ///
    /// Returns [`EoError::OutOfRange`] when the value does not fit.
    pub fn transmit(&mut self, value: i32) -> Result<OpticalWord, EoError> {
        let w = OpticalWord::encode(value, self.bits)?;
        self.words_sent += 1;
        // Only lit slots require driving the ring (write events).
        self.modulation_events += w.slots().iter().filter(|&&s| s).count() as u64;
        Ok(w)
    }

    /// Words transmitted so far.
    pub fn words_sent(&self) -> u64 {
        self.words_sent
    }

    /// Ring-modulation events so far (lit slots) — proportional to the
    /// interface's dynamic energy.
    pub fn modulation_events(&self) -> u64 {
        self.modulation_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_all_codes_6bit() {
        for v in -31..=31 {
            let w = OpticalWord::encode(v, 6).unwrap();
            assert_eq!(w.decode(), v, "v={v}");
            assert_eq!(w.bits(), 6);
        }
    }

    #[test]
    fn paper_0x40_example_bits() {
        let w = OpticalWord::encode(0x40, 8).unwrap();
        assert!(!w.is_negative());
        // 0x40 = 1000000 in 7 magnitude bits.
        assert_eq!(
            w.magnitude_slots(),
            &[true, false, false, false, false, false, false]
        );
    }

    #[test]
    fn negative_sign_slot() {
        let w = OpticalWord::encode(-5, 4).unwrap();
        assert!(w.is_negative());
        assert_eq!(w.magnitude_slots(), &[true, false, true]);
        assert_eq!(w.decode(), -5);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = OpticalWord::encode(128, 8).unwrap_err();
        assert_eq!(
            err,
            EoError::OutOfRange {
                value: 128,
                limit: 127
            }
        );
        assert!(OpticalWord::encode(-128, 8).is_err());
        assert!(OpticalWord::encode(127, 8).is_ok());
    }

    #[test]
    fn unsupported_bits_rejected() {
        assert_eq!(OpticalWord::encode(0, 1), Err(EoError::UnsupportedBits(1)));
        assert_eq!(
            OpticalWord::encode(0, 17),
            Err(EoError::UnsupportedBits(17))
        );
    }

    #[test]
    fn slot_currents_map_lit_slots() {
        let w = OpticalWord::encode(-3, 4).unwrap(); // sign=1, mag=011
        assert_eq!(w.slot_currents(2.0), vec![2.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn forced_slot_overrides_and_preserves_rest() {
        let w = OpticalWord::encode(5, 4).unwrap(); // 0 101
        let stuck = w.with_slot_forced(2, true); // 0 111 = 7
        assert_eq!(stuck.decode(), 7);
        // Forcing an already-matching slot is the identity.
        assert_eq!(w.with_slot_forced(1, true), w);
        // Forcing the sign slot negates.
        assert_eq!(w.with_slot_forced(0, true).decode(), -5);
    }

    #[test]
    fn flipped_slot_inverts_one_bit() {
        let w = OpticalWord::encode(5, 4).unwrap(); // 0 101
        assert_eq!(w.with_slot_flipped(3).decode(), 4);
        assert_eq!(w.with_slot_flipped(0).decode(), -5);
        // Double flip round-trips.
        assert_eq!(w.with_slot_flipped(1).with_slot_flipped(1), w);
    }

    #[test]
    #[should_panic(expected = "slot index out of bounds")]
    fn forced_slot_bounds_checked() {
        OpticalWord::encode(1, 4).unwrap().with_slot_forced(4, true);
    }

    #[test]
    fn interface_counts_activity() {
        let mut eo = EoInterface::new(4).unwrap();
        eo.transmit(7).unwrap(); // 0 111 -> 3 events
        eo.transmit(-1).unwrap(); // 1 001 -> 2 events
        eo.transmit(0).unwrap(); // 0 000 -> 0 events
        assert_eq!(eo.words_sent(), 3);
        assert_eq!(eo.modulation_events(), 5);
    }

    #[test]
    fn slot_rate_scales_with_bits() {
        let eo4 = EoInterface::new(4).unwrap();
        let eo8 = EoInterface::new(8).unwrap();
        // 4-bit at 5 GHz needs 20 Gslot/s; 8-bit needs 40.
        assert!((eo4.slot_rate_hz(5e9) - 20e9).abs() < 1.0);
        assert!((eo8.slot_rate_hz(5e9) - 40e9).abs() < 1.0);
        // A 25 GHz ring sustains the 4-bit interface but not the 8-bit:
        // the precision/clock trade the multi-bit interface imposes.
        assert!(eo4.sustains(5e9, 25e9));
        assert!(!eo8.sustains(5e9, 25e9));
    }

    #[test]
    fn interface_propagates_range_errors() {
        let mut eo = EoInterface::new(4).unwrap();
        assert!(eo.transmit(8).is_err());
        assert_eq!(eo.words_sent(), 0);
    }

    #[test]
    fn error_display() {
        let e = EoError::OutOfRange {
            value: 300,
            limit: 127,
        };
        assert!(e.to_string().contains("300"));
    }
}
