#![warn(missing_docs)]

//! Lightening-Transformer accelerator simulator.
//!
//! The substrate the P-DAC integrates with (paper Figs. 3 and 6): DPTC
//! cores whose dual MZM operand banks feed `rows × cols` DDot arrays over
//! `wavelengths` WDM channels. This crate simulates it at two levels:
//!
//! * **Analytical** — [`scheduler`] tiles a GEMM onto the cores and counts
//!   cycles, conversions, ADC samples and memory traffic;
//! * **Functional** — [`functional`] additionally pushes real numbers
//!   through the converter models ([`pdac_core::MzmDriver`]) and the
//!   photonic [`pdac_photonics::DDotUnit`], with per-cycle ADC
//!   requantization of partial products, producing actual output matrices
//!   whose error reflects the chosen drive path.
//!
//! [`memory`] models the M1/M2 SRAM hierarchy and DRAM streaming with
//! byte-level counters, and [`stats`] integrates counts into energy via
//! the `pdac-power` models.
//!
//! # Examples
//!
//! ```
//! use pdac_accel::config::AccelConfig;
//! use pdac_accel::functional::FunctionalGemm;
//! use pdac_math::Mat;
//!
//! let config = AccelConfig::lt_b_pdac(8)?;
//! let engine = FunctionalGemm::new(config)?;
//! let a = Mat::from_fn(4, 16, |r, c| ((r + c) as f64 / 20.0) - 0.4);
//! let b = Mat::from_fn(16, 4, |r, c| ((r * c % 7) as f64 / 7.0) - 0.5);
//! let result = engine.execute(&a, &b)?;
//! let exact = a.matmul(&b)?;
//! assert!(result.output.distance(&exact) < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod backend;
pub mod config;
pub mod dptc;
pub mod functional;
pub mod memory;
pub mod pipeline;
pub mod roofline;
pub mod scheduler;
pub mod stats;
pub mod workload_exec;

pub use backend::AccelBackend;
pub use config::{AccelConfig, DriverChoice};
pub use functional::FunctionalGemm;
pub use scheduler::{GemmShape, TilingPlan};
pub use stats::RunStats;
