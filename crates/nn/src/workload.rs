//! Op-trace generation.
//!
//! Turns a [`TransformerConfig`] into the per-class activity trace the
//! energy model consumes: exact MAC counts, bytes moved (weights plus
//! activations, expressed at 8-bit precision and rescaled by the model),
//! and element-wise op counts (softmax, layer norm, GELU, residuals).
//!
//! The byte accounting follows the calibration story of DESIGN.md §5:
//! attention operands are SRAM-resident (Q/K/V/scores plus the four
//! projection weight tiles), while FFN weights stream from DRAM every
//! layer — which is why the FFN's per-byte energy rate is higher and its
//! P-DAC saving smaller.

use crate::config::TransformerConfig;
use pdac_power::{OpClass, OpTrace, TraceEntry};

/// Bytes moved per layer by the attention block at 8-bit precision:
/// the four projection weights plus Q/K/V/score/context activations.
pub fn attention_bytes_per_layer(config: &TransformerConfig) -> u64 {
    let s = config.seq_len as u64;
    let d = config.hidden as u64;
    let h = config.heads as u64;
    let weights = 4 * d * d;
    // in, q, k, v, context, out = 6·S·d; score matrices h·S².
    let activations = 6 * s * d + h * s * s;
    weights + activations
}

/// Bytes moved per layer by the FFN block at 8-bit precision.
pub fn ffn_bytes_per_layer(config: &TransformerConfig) -> u64 {
    let s = config.seq_len as u64;
    let d = config.hidden as u64;
    let ff = config.ff_dim() as u64;
    let weights = 2 * d * ff;
    // in, intermediate (x2 for read+write of GELU), out.
    let activations = 2 * s * d + 2 * s * ff;
    weights + activations
}

/// Element-wise (non-GEMM) operations per layer: softmax over the score
/// matrices, two layer norms, the GELU, and two residual adds.
pub fn elementwise_ops_per_layer(config: &TransformerConfig) -> u64 {
    let s = config.seq_len as u64;
    let d = config.hidden as u64;
    let h = config.heads as u64;
    let softmax = h * s * s;
    let layer_norms = 2 * s * d;
    let gelu = s * config.ff_dim() as u64;
    let residuals = 2 * s * d;
    softmax + layer_norms + gelu + residuals
}

/// Builds the full-inference op trace for a model: per-class MACs, bytes
/// and element-wise ops across all layers.
///
/// # Panics
///
/// Panics if the config fails validation.
///
/// # Examples
///
/// ```
/// use pdac_nn::config::TransformerConfig;
/// use pdac_nn::workload::op_trace;
/// use pdac_power::OpClass;
///
/// let trace = op_trace(&TransformerConfig::bert_base());
/// let attn = trace.entry(OpClass::Attention).unwrap();
/// assert_eq!(attn.macs, 12 * 327_155_712);
/// ```
pub fn op_trace(config: &TransformerConfig) -> OpTrace {
    config.validate().expect("config must be valid");
    let layers = config.layers as u64;
    OpTrace {
        name: config.name.clone(),
        entries: vec![
            TraceEntry {
                class: OpClass::Attention,
                macs: layers * config.attention_macs_per_layer(),
                bytes_at_8bit: layers * attention_bytes_per_layer(config),
                elementwise_ops: 0,
            },
            TraceEntry {
                class: OpClass::Ffn,
                macs: layers * config.ffn_macs_per_layer(),
                bytes_at_8bit: layers * ffn_bytes_per_layer(config),
                elementwise_ops: 0,
            },
            TraceEntry {
                class: OpClass::Other,
                macs: 0,
                // Element-wise traffic is folded into the per-op energy.
                bytes_at_8bit: 0,
                elementwise_ops: layers * elementwise_ops_per_layer(config),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_byte_counts() {
        let c = TransformerConfig::bert_base();
        // Weights 2,359,296 + activations 6·128·768 + 12·128² = 786,432.
        assert_eq!(attention_bytes_per_layer(&c), 2_359_296 + 786_432);
        // Weights 4,718,592 + activations 2·128·768 + 2·128·3072 = 983,040.
        assert_eq!(ffn_bytes_per_layer(&c), 4_718_592 + 983_040);
    }

    #[test]
    fn bert_elementwise_counts() {
        let c = TransformerConfig::bert_base();
        // 196,608 softmax + 196,608 LN + 393,216 GELU + 196,608 residual.
        assert_eq!(elementwise_ops_per_layer(&c), 983_040);
    }

    #[test]
    fn trace_covers_three_classes() {
        let t = op_trace(&TransformerConfig::bert_base());
        assert_eq!(t.entries.len(), 3);
        assert!(t.entry(OpClass::Attention).is_some());
        assert!(t.entry(OpClass::Ffn).is_some());
        assert!(t.entry(OpClass::Other).is_some());
    }

    #[test]
    fn trace_total_macs_matches_config() {
        let c = TransformerConfig::deit_base();
        let t = op_trace(&c);
        assert_eq!(t.total_macs(), c.total_macs());
    }

    #[test]
    fn ffn_moves_more_bytes_than_attention() {
        for c in [
            TransformerConfig::bert_base(),
            TransformerConfig::deit_base(),
        ] {
            assert!(ffn_bytes_per_layer(&c) > attention_bytes_per_layer(&c));
        }
    }

    #[test]
    fn deit_has_more_elementwise_than_bert() {
        let bert = elementwise_ops_per_layer(&TransformerConfig::bert_base());
        let deit = elementwise_ops_per_layer(&TransformerConfig::deit_base());
        assert!(deit > bert); // longer sequence
    }

    #[test]
    #[should_panic(expected = "config must be valid")]
    fn invalid_config_rejected() {
        let mut c = TransformerConfig::tiny();
        c.heads = 5;
        op_trace(&c);
    }
}
