//! Accelerator simulator configuration.
//!
//! Bundles the architectural shape (from `pdac-power`), the operating
//! bit precision, and the MZM drive path choice into one validated value.

use pdac_core::edac::ElectricalDac;
use pdac_core::pdac::PDac;
use pdac_core::MzmDriver;
use pdac_power::ArchConfig;
use std::fmt;

/// Which converter drives the MZM operand banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverChoice {
    /// Controller + electrical DAC (baseline).
    ElectricalDac,
    /// The P-DAC with the optimal three-segment arccos approximation.
    PhotonicDac,
    /// The P-DAC with only the first-order approximation (ablation).
    PhotonicDacFirstOrder,
}

impl fmt::Display for DriverChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverChoice::ElectricalDac => f.write_str("electrical DAC"),
            DriverChoice::PhotonicDac => f.write_str("P-DAC (optimal)"),
            DriverChoice::PhotonicDacFirstOrder => f.write_str("P-DAC (first order)"),
        }
    }
}

/// Errors from configuration construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The architecture failed validation.
    BadArch(String),
    /// Bit width outside `2..=16`.
    UnsupportedBits(u8),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadArch(msg) => write!(f, "invalid architecture: {msg}"),
            ConfigError::UnsupportedBits(b) => write!(f, "bit width {b} outside 2..=16"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A validated simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfig {
    arch: ArchConfig,
    bits: u8,
    driver: DriverChoice,
}

impl AccelConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid architectures or bit widths.
    pub fn new(arch: ArchConfig, bits: u8, driver: DriverChoice) -> Result<Self, ConfigError> {
        arch.validate().map_err(ConfigError::BadArch)?;
        if !(2..=16).contains(&bits) {
            return Err(ConfigError::UnsupportedBits(bits));
        }
        Ok(Self { arch, bits, driver })
    }

    /// LT-B with the P-DAC drive path.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnsupportedBits`] outside `2..=16`.
    pub fn lt_b_pdac(bits: u8) -> Result<Self, ConfigError> {
        Self::new(ArchConfig::lt_b(), bits, DriverChoice::PhotonicDac)
    }

    /// LT-B with the electrical-DAC baseline.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnsupportedBits`] outside `2..=16`.
    pub fn lt_b_baseline(bits: u8) -> Result<Self, ConfigError> {
        Self::new(ArchConfig::lt_b(), bits, DriverChoice::ElectricalDac)
    }

    /// The architectural shape.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Operating precision.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Drive path.
    pub fn driver_choice(&self) -> DriverChoice {
        self.driver
    }

    /// Instantiates the configured driver.
    ///
    /// # Panics
    ///
    /// Never panics for configurations constructed through [`Self::new`]
    /// (the bit width was validated).
    pub fn build_driver(&self) -> Box<dyn MzmDriver> {
        match self.driver {
            DriverChoice::ElectricalDac => {
                Box::new(ElectricalDac::new(self.bits).expect("validated bit width"))
            }
            DriverChoice::PhotonicDac => {
                Box::new(PDac::with_optimal_approx(self.bits).expect("validated bit width"))
            }
            DriverChoice::PhotonicDacFirstOrder => {
                Box::new(PDac::with_first_order_approx(self.bits).expect("validated bit width"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lt_b_presets() {
        let p = AccelConfig::lt_b_pdac(8).unwrap();
        assert_eq!(p.bits(), 8);
        assert_eq!(p.driver_choice(), DriverChoice::PhotonicDac);
        let b = AccelConfig::lt_b_baseline(4).unwrap();
        assert_eq!(b.driver_choice(), DriverChoice::ElectricalDac);
    }

    #[test]
    fn validation() {
        assert_eq!(
            AccelConfig::lt_b_pdac(1),
            Err(ConfigError::UnsupportedBits(1))
        );
        let mut bad = ArchConfig::lt_b();
        bad.cores = 0;
        assert!(matches!(
            AccelConfig::new(bad, 8, DriverChoice::PhotonicDac),
            Err(ConfigError::BadArch(_))
        ));
    }

    #[test]
    fn build_driver_bit_widths() {
        for choice in [
            DriverChoice::ElectricalDac,
            DriverChoice::PhotonicDac,
            DriverChoice::PhotonicDacFirstOrder,
        ] {
            let c = AccelConfig::new(ArchConfig::lt_b(), 6, choice).unwrap();
            assert_eq!(c.build_driver().bits(), 6, "{choice}");
        }
    }

    #[test]
    fn display_names() {
        assert!(DriverChoice::PhotonicDac.to_string().contains("P-DAC"));
        assert!(ConfigError::UnsupportedBits(1).to_string().contains("1"));
    }
}
