//! `pdac-telemetry`: zero-dependency tracing and metrics for the P-DAC
//! simulation stack.
//!
//! The crate provides atomic [`Counter`]s and [`Gauge`]s, fixed-bucket
//! log-scale [`Histogram`]s, RAII [`Span`] timers with nesting, an
//! injectable [`Clock`] (monotonic or deterministic), and snapshot sinks
//! (in-memory, stderr table, JSONL with a hand-rolled serializer).
//!
//! # Two levels of "off"
//!
//! * **Compile time** — building with `default-features = false` (no
//!   `enabled` feature) replaces the whole hot-path API with inlineable
//!   zero-sized no-ops, so instrumented library code costs literally
//!   nothing.
//! * **Run time** — with the feature on, the global collector starts
//!   *disabled*; every entry point is a single relaxed atomic load until
//!   [`enable`] is called.
//!
//! # Quickstart
//!
//! ```
//! pdac_telemetry::enable();
//! {
//!     let _span = pdac_telemetry::span("demo.work");
//!     pdac_telemetry::counter_add("demo.items", 3);
//! }
//! let snap = pdac_telemetry::snapshot();
//! assert_eq!(snap.counters[0], ("demo.items".to_string(), 3));
//! println!("{}", snap.to_json());
//! # pdac_telemetry::disable();
//! # pdac_telemetry::reset();
//! ```

#[cfg(feature = "enabled")]
pub mod clock;
#[cfg(feature = "enabled")]
pub mod json;
#[cfg(feature = "enabled")]
pub mod metrics;
#[cfg(feature = "enabled")]
pub mod registry;
#[cfg(feature = "enabled")]
pub mod sink;
#[cfg(feature = "enabled")]
pub mod span;

#[cfg(feature = "enabled")]
pub use clock::{Clock, ManualClock, MonotonicClock};
#[cfg(feature = "enabled")]
pub use json::Json;
#[cfg(feature = "enabled")]
pub use metrics::{Counter, Gauge, Histogram};
#[cfg(feature = "enabled")]
pub use registry::{Collector, HistogramSummary, Snapshot, SpanEvent};
#[cfg(feature = "enabled")]
pub use sink::{JsonlSink, MemorySink, Sink, StderrTableSink};
#[cfg(feature = "enabled")]
pub use span::Span;

#[cfg(feature = "enabled")]
mod global {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;

    use crate::registry::{Collector, Snapshot};
    use crate::span::Span;

    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    /// The process-wide collector (created on first use, starts disabled).
    pub fn global() -> &'static Collector {
        GLOBAL.get_or_init(Collector::new)
    }

    /// Turn global collection on.
    pub fn enable() {
        global().set_enabled(true);
        ACTIVE.store(true, Ordering::SeqCst);
    }

    /// Turn global collection off; instrumentation returns to ~1 atomic
    /// load per call site.
    pub fn disable() {
        ACTIVE.store(false, Ordering::SeqCst);
        if let Some(c) = GLOBAL.get() {
            c.set_enabled(false);
        }
    }

    /// Whether the global collector is currently recording.
    #[inline]
    pub fn is_enabled() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Open a span against the global collector (inert when disabled).
    #[inline]
    pub fn span(name: &'static str) -> Span<'static> {
        if is_enabled() {
            global().span(name)
        } else {
            Span::noop()
        }
    }

    /// Bump a global counter (no-op when disabled).
    #[inline]
    pub fn counter_add(name: &'static str, delta: u64) {
        if is_enabled() {
            global().counter(name).add(delta);
        }
    }

    /// Set a global gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(name: &'static str, value: f64) {
        if is_enabled() {
            global().gauge(name).set(value);
        }
    }

    /// Record a histogram sample globally (no-op when disabled).
    #[inline]
    pub fn observe(name: &'static str, value: f64) {
        if is_enabled() {
            global().histogram(name).record(value);
        }
    }

    /// Snapshot the global collector.
    pub fn snapshot() -> Snapshot {
        global().snapshot()
    }

    /// Clear every global metric and span event.
    pub fn reset() {
        global().reset();
    }
}

#[cfg(feature = "enabled")]
pub use global::{
    counter_add, disable, enable, gauge_set, global, is_enabled, observe, reset, snapshot, span,
};

// ---------------------------------------------------------------------------
// Compile-time no-op surface (feature `enabled` off). Mirrors the hot-path
// API exactly so instrumented crates build unchanged; everything inlines to
// nothing.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod noop {
    /// Inert span guard (compile-time disabled build).
    #[must_use]
    pub struct Span;

    impl Span {
        #[inline(always)]
        pub fn noop() -> Self {
            Span
        }

        #[inline(always)]
        pub fn is_recording(&self) -> bool {
            false
        }
    }

    #[inline(always)]
    pub fn enable() {}

    #[inline(always)]
    pub fn disable() {}

    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    #[inline(always)]
    pub fn gauge_set(_name: &'static str, _value: f64) {}

    #[inline(always)]
    pub fn observe(_name: &'static str, _value: f64) {}
}

#[cfg(not(feature = "enabled"))]
pub use noop::{counter_add, disable, enable, gauge_set, is_enabled, observe, span, Span};
