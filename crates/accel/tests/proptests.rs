//! Randomized property tests for the accelerator simulator.
//!
//! Originally `proptest`-based; now driven by seeded [`SplitMix64`]
//! streams so the workspace builds offline. Enable `slow-proptests` for
//! deeper sweeps.

use pdac_accel::config::{AccelConfig, DriverChoice};
use pdac_accel::functional::FunctionalGemm;
use pdac_accel::memory::{MemoryConfig, MemoryHierarchy};
use pdac_accel::scheduler::{GemmShape, TilingPlan};
use pdac_math::rng::SplitMix64;
use pdac_math::Mat;
use pdac_power::ArchConfig;

const CASES: usize = if cfg!(feature = "slow-proptests") {
    256
} else {
    48
};

fn random_arch(rng: &mut SplitMix64) -> ArchConfig {
    ArchConfig {
        cores: rng.gen_range_usize(1, 7),
        rows: rng.gen_range_usize(1, 7),
        cols: rng.gen_range_usize(1, 7),
        wavelengths: rng.gen_range_usize(1, 7),
        clock_hz: 5e9,
    }
}

#[test]
fn plan_covers_all_macs() {
    let mut rng = SplitMix64::seed_from_u64(0xB0);
    for _ in 0..CASES {
        let arch = random_arch(&mut rng);
        let m = rng.gen_range_usize(1, 63);
        let k = rng.gen_range_usize(1, 63);
        let n = rng.gen_range_usize(1, 63);
        let shape = GemmShape::new(m, k, n);
        let plan = TilingPlan::plan(shape, &arch);
        // Issued MAC capacity always covers the useful MACs.
        let issued = plan.core_cycles * (arch.rows * arch.cols * arch.wavelengths) as u64;
        assert!(issued >= shape.macs());
        // Utilization in (0, 1].
        let u = plan.utilization(&arch);
        assert!(u > 0.0 && u <= 1.0 + 1e-12);
    }
}

#[test]
fn wall_clock_cycles_bounded() {
    let mut rng = SplitMix64::seed_from_u64(0xB1);
    for _ in 0..CASES {
        let arch = random_arch(&mut rng);
        let m = rng.gen_range_usize(1, 63);
        let k = rng.gen_range_usize(1, 63);
        let n = rng.gen_range_usize(1, 63);
        let plan = TilingPlan::plan(GemmShape::new(m, k, n), &arch);
        assert!(plan.cycles <= plan.core_cycles);
        assert!(plan.cycles * arch.cores as u64 >= plan.core_cycles);
    }
}

#[test]
fn exact_fit_has_full_utilization() {
    let mut rng = SplitMix64::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let arch = random_arch(&mut rng);
        let mt = rng.gen_range_usize(1, 3);
        let kt = rng.gen_range_usize(1, 3);
        let nt = rng.gen_range_usize(1, 3);
        let shape = GemmShape::new(mt * arch.rows, kt * arch.wavelengths, nt * arch.cols);
        let plan = TilingPlan::plan(shape, &arch);
        assert!((plan.utilization(&arch) - 1.0).abs() < 1e-12);
    }
}

#[test]
fn functional_output_tracks_exact() {
    let mut rng = SplitMix64::seed_from_u64(0xB3);
    for _ in 0..CASES.min(24) {
        let vals: Vec<f64> = (0..24).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect();
        let a = Mat::from_rows(4, 6, vals.clone()).unwrap();
        let b = Mat::from_rows(6, 4, vals.iter().rev().cloned().collect()).unwrap();
        let arch = ArchConfig {
            cores: 2,
            rows: 2,
            cols: 2,
            wavelengths: 4,
            clock_hz: 5e9,
        };
        let engine =
            FunctionalGemm::new(AccelConfig::new(arch, 8, DriverChoice::ElectricalDac).unwrap())
                .unwrap();
        let run = engine.execute(&a, &b).unwrap();
        let exact = a.matmul(&b).unwrap();
        let scale = exact.distance(&Mat::zeros(4, 4)).max(0.25);
        assert!(run.output.distance(&exact) / scale < 0.2);
    }
}

#[test]
fn memory_counters_are_additive() {
    let mut rng = SplitMix64::seed_from_u64(0xB4);
    for _ in 0..CASES {
        let count = rng.gen_range_usize(1, 7);
        let bytes: Vec<u64> = (0..count)
            .map(|_| rng.gen_range_i64(1, 999_999) as u64)
            .collect();
        let mut one = MemoryHierarchy::new(MemoryConfig::lt_b());
        let mut total = 0u64;
        for &b in &bytes {
            one.load_activations(b);
            total += 3 * b; // m2 read + m1 write + m1 read
        }
        assert_eq!(one.counters().total(), total);
    }
}

#[test]
fn weight_routing_depends_only_on_size() {
    let mut rng = SplitMix64::seed_from_u64(0xB5);
    for _ in 0..CASES {
        let sz = rng.gen_range_i64(1, (32 << 20) - 1) as u64;
        let mut mem = MemoryHierarchy::new(MemoryConfig::lt_b());
        let on_chip = mem.load_weights(sz);
        assert_eq!(on_chip, sz <= MemoryConfig::lt_b().m2_bytes);
        assert_eq!(mem.counters().dram_read > 0, !on_chip);
    }
}
