//! Optical loss budgeting.
//!
//! The paper's Fig. 11 discussion ends on the laser: after the P-DAC's
//! savings, "the majority of the energy consumption remains constrained
//! by the laser". Laser power is set by a link budget: every device the
//! light traverses (modulator, couplers, waveguide, mux/demux rings)
//! subtracts insertion loss, and the photodetector needs enough power
//! for the target bit precision. This module composes per-stage losses
//! and computes the required source power, making the power model's
//! laser scaling law auditable from device parameters.

use std::fmt;

/// An itemized optical loss budget along one light path.
///
/// # Examples
///
/// ```
/// use pdac_photonics::loss::LossBudget;
///
/// let budget = LossBudget::new()
///     .with_stage("MZM insertion", 4.0)
///     .with_stage("waveguide", 1.5)
///     .with_stage("DDot coupler", 0.3);
/// assert!((budget.total_db() - 5.8).abs() < 1e-12);
/// // 5.8 dB ≈ 3.8× power factor.
/// assert!((budget.power_factor() - 0.263).abs() < 0.001);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LossBudget {
    stages: Vec<(String, f64)>,
}

impl LossBudget {
    /// An empty (lossless) budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical Lightening-Transformer operand path: laser → MZM →
    /// waveguide routing → WDM mux/demux rings → DDot coupler →
    /// photodetector.
    pub fn lt_operand_path() -> Self {
        Self::new()
            .with_stage("MZM insertion", 4.0)
            .with_stage("waveguide routing", 1.5)
            .with_stage("WDM mux ring", 0.5)
            .with_stage("WDM demux ring", 0.5)
            .with_stage("DDot phase shifter", 0.1)
            .with_stage("DDot 50:50 coupler", 0.3)
            .with_stage("PD coupling", 0.5)
    }

    /// Appends a stage with the given insertion loss in dB.
    ///
    /// # Panics
    ///
    /// Panics if `loss_db < 0`.
    pub fn with_stage(mut self, name: impl Into<String>, loss_db: f64) -> Self {
        assert!(loss_db >= 0.0, "insertion loss must be nonnegative");
        self.stages.push((name.into(), loss_db));
        self
    }

    /// The itemized stages.
    pub fn stages(&self) -> &[(String, f64)] {
        &self.stages
    }

    /// Total path loss in dB.
    pub fn total_db(&self) -> f64 {
        self.stages.iter().map(|(_, db)| db).sum()
    }

    /// Fraction of launched power that reaches the detector.
    pub fn power_factor(&self) -> f64 {
        10f64.powf(-self.total_db() / 10.0)
    }

    /// Laser power (W, per wavelength) needed so the detector receives
    /// `detector_floor_w`.
    ///
    /// # Panics
    ///
    /// Panics if `detector_floor_w <= 0`.
    pub fn required_source_power(&self, detector_floor_w: f64) -> f64 {
        assert!(detector_floor_w > 0.0, "detector floor must be positive");
        detector_floor_w / self.power_factor()
    }
}

impl fmt::Display for LossBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, db) in &self.stages {
            writeln!(f, "  {name:<22} {db:>5.2} dB")?;
        }
        write!(f, "  {:<22} {:>5.2} dB", "total", self.total_db())
    }
}

/// Detector power floor for `bits` of precision: shot-noise-limited
/// detection needs SNR ≈ `4^bits`, so the floor scales as
/// `base_floor · 4^(bits − 4)` from a 4-bit reference.
///
/// # Panics
///
/// Panics if `base_floor_w_at_4bit <= 0` or `bits` outside `2..=16`.
pub fn detector_floor_w(base_floor_w_at_4bit: f64, bits: u8) -> f64 {
    assert!(base_floor_w_at_4bit > 0.0, "floor must be positive");
    assert!((2..=16).contains(&bits), "bits outside 2..=16");
    base_floor_w_at_4bit * 4f64.powi(bits as i32 - 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_budget_is_lossless() {
        let b = LossBudget::new();
        assert_eq!(b.total_db(), 0.0);
        assert_eq!(b.power_factor(), 1.0);
        assert_eq!(b.required_source_power(1e-6), 1e-6);
    }

    #[test]
    fn stages_accumulate() {
        let b = LossBudget::new().with_stage("a", 3.0).with_stage("b", 7.0);
        assert_eq!(b.total_db(), 10.0);
        assert!((b.power_factor() - 0.1).abs() < 1e-12);
        assert_eq!(b.stages().len(), 2);
    }

    #[test]
    fn lt_path_magnitude() {
        let b = LossBudget::lt_operand_path();
        // ~7.4 dB end to end: a plausible silicon-photonic link.
        assert!((b.total_db() - 7.4).abs() < 1e-9);
        assert!(b.power_factor() > 0.15 && b.power_factor() < 0.25);
    }

    #[test]
    fn required_power_scales_inverse_with_loss() {
        let light = LossBudget::new().with_stage("x", 3.0);
        let heavy = LossBudget::new().with_stage("x", 13.0);
        let ratio = heavy.required_source_power(1e-6) / light.required_source_power(1e-6);
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn detector_floor_scaling() {
        let f4 = detector_floor_w(1e-6, 4);
        let f8 = detector_floor_w(1e-6, 8);
        assert_eq!(f4, 1e-6);
        assert!((f8 / f4 - 256.0).abs() < 1e-9);
    }

    #[test]
    fn display_itemizes() {
        let s = LossBudget::lt_operand_path().to_string();
        assert!(s.contains("MZM insertion"));
        assert!(s.contains("total"));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_loss_rejected() {
        LossBudget::new().with_stage("bad", -1.0);
    }
}
