//! Analytical execution of whole transformer workloads.
//!
//! Expands a [`TransformerConfig`] into the exact sequence of GEMMs one
//! inference issues, tiles each onto the architecture, and aggregates
//! cycles, utilization, conversions and energy — producing the
//! latency/throughput numbers that complement the paper's energy-only
//! evaluation (its Fig. 9/10 x-axis "operations" correspond to these
//! GEMM groups).

use crate::pipeline::{pipelined_latency_s, StageLatencies};
use crate::scheduler::{GemmShape, TilingPlan};
use pdac_nn::config::TransformerConfig;
use pdac_power::model::PowerModel;
use pdac_power::ArchConfig;
use std::fmt;

/// One GEMM group of a transformer layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmKind {
    /// Q, K, V input projections (three GEMMs of the same shape).
    QkvProjection,
    /// Attention scores `Q·Kᵀ` (one per head).
    Scores,
    /// Attention-weighted values `P·V` (one per head).
    AttentionValues,
    /// Attention output projection.
    OutputProjection,
    /// First FFN layer (`d → 4d`).
    FfnUp,
    /// Second FFN layer (`4d → d`).
    FfnDown,
}

impl GemmKind {
    /// Stable telemetry counter name for this kind's cycle total.
    pub fn telemetry_key(&self) -> &'static str {
        match self {
            GemmKind::QkvProjection => "accel.workload.cycles.qkv_projection",
            GemmKind::Scores => "accel.workload.cycles.scores",
            GemmKind::AttentionValues => "accel.workload.cycles.attention_values",
            GemmKind::OutputProjection => "accel.workload.cycles.output_projection",
            GemmKind::FfnUp => "accel.workload.cycles.ffn_up",
            GemmKind::FfnDown => "accel.workload.cycles.ffn_down",
        }
    }
}

impl fmt::Display for GemmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GemmKind::QkvProjection => "QKV projection",
            GemmKind::Scores => "QK^T scores",
            GemmKind::AttentionValues => "P·V values",
            GemmKind::OutputProjection => "output projection",
            GemmKind::FfnUp => "FFN up",
            GemmKind::FfnDown => "FFN down",
        };
        f.write_str(s)
    }
}

/// A GEMM group: its kind, shape, and how many instances a layer issues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmGroup {
    /// Operation kind.
    pub kind: GemmKind,
    /// Shape of one instance.
    pub shape: GemmShape,
    /// Instances per layer.
    pub count: usize,
}

/// Enumerates the GEMM groups of one encoder layer.
pub fn layer_gemms(config: &TransformerConfig) -> Vec<GemmGroup> {
    let s = config.seq_len;
    let d = config.hidden;
    let dh = config.head_dim();
    let ff = config.ff_dim();
    vec![
        GemmGroup {
            kind: GemmKind::QkvProjection,
            shape: GemmShape::new(s, d, d),
            count: 3,
        },
        GemmGroup {
            kind: GemmKind::Scores,
            shape: GemmShape::new(s, dh, s),
            count: config.heads,
        },
        GemmGroup {
            kind: GemmKind::AttentionValues,
            shape: GemmShape::new(s, s, dh),
            count: config.heads,
        },
        GemmGroup {
            kind: GemmKind::OutputProjection,
            shape: GemmShape::new(s, d, d),
            count: 1,
        },
        GemmGroup {
            kind: GemmKind::FfnUp,
            shape: GemmShape::new(s, d, ff),
            count: 1,
        },
        GemmGroup {
            kind: GemmKind::FfnDown,
            shape: GemmShape::new(s, ff, d),
            count: 1,
        },
    ]
}

/// Aggregate results of one inference on the architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRun {
    /// Workload name.
    pub workload: String,
    /// Total wall-clock cycles (GEMMs executed back-to-back).
    pub cycles: u64,
    /// Total useful MACs.
    pub macs: u64,
    /// Total converter activations.
    pub conversions: u64,
    /// End-to-end GEMM latency including pipeline fill, seconds.
    pub latency_s: f64,
    /// Achieved fraction of peak throughput.
    pub utilization: f64,
    /// Per-kind cycle totals (one entry per [`GemmKind`] in layer order).
    pub per_kind_cycles: Vec<(GemmKind, u64)>,
}

impl WorkloadRun {
    /// Inferences per second at this latency.
    pub fn throughput_per_s(&self) -> f64 {
        1.0 / self.latency_s
    }

    /// Compute energy of one inference under `power` at `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn compute_energy_j(&self, power: &PowerModel, bits: u8) -> f64 {
        power.breakdown(bits).total_watts() * self.latency_s
    }
}

/// Executes (analytically) one inference of `config` on `arch`.
///
/// # Panics
///
/// Panics if the model config fails validation.
pub fn run_workload(
    config: &TransformerConfig,
    arch: &ArchConfig,
    stages: &StageLatencies,
) -> WorkloadRun {
    let _span = pdac_telemetry::span("accel.workload.run");
    config.validate().expect("config must be valid");
    let mut cycles = 0u64;
    let mut macs = 0u64;
    let mut conversions = 0u64;
    let mut per_kind: Vec<(GemmKind, u64)> = Vec::new();
    for group in layer_gemms(config) {
        let plan = TilingPlan::plan(group.shape, arch);
        let group_cycles = plan.cycles * group.count as u64 * config.layers as u64;
        cycles += group_cycles;
        macs += group.shape.macs() * group.count as u64 * config.layers as u64;
        conversions += plan.conversions * group.count as u64 * config.layers as u64;
        per_kind.push((group.kind, group_cycles));
        pdac_telemetry::counter_add(group.kind.telemetry_key(), group_cycles);
    }
    let latency_s = pipelined_latency_s(stages, arch, cycles);
    pdac_telemetry::counter_add("accel.workload.cycles", cycles);
    pdac_telemetry::counter_add("accel.workload.macs", macs);
    pdac_telemetry::observe("accel.workload.latency_s", latency_s);
    let peak = cycles as f64 * arch.macs_per_cycle() as f64;
    WorkloadRun {
        workload: config.name.clone(),
        cycles,
        macs,
        conversions,
        latency_s,
        utilization: macs as f64 / peak,
        per_kind_cycles: per_kind,
    }
}

/// Serving-phase analysis: decode latency and energy per token under a
/// realistic memory system, combining the roofline regime with the
/// duty-cycle power model.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Context length analyzed.
    pub context: usize,
    /// Latency per decoded token, seconds.
    pub latency_per_token_s: f64,
    /// Decoded tokens per second.
    pub tokens_per_s: f64,
    /// Optics duty cycle during decode (compute utilization).
    pub utilization: f64,
    /// Energy per token at the realistic duty cycle, joules.
    pub energy_per_token_j: f64,
}

/// Analyzes one decode step of `config` at `context` length on `arch`
/// with `bandwidth`, under `power` at `bits` precision.
///
/// # Panics
///
/// Panics if the config fails validation or `bits` outside `2..=16`.
pub fn serving_analysis(
    config: &TransformerConfig,
    context: usize,
    arch: &ArchConfig,
    bandwidth: &crate::roofline::BandwidthModel,
    power: &PowerModel,
    bits: u8,
) -> ServingReport {
    serving_analysis_batched(config, context, arch, bandwidth, power, bits, 1)
}

/// Batched serving: `batch` sequences decode in lockstep, so the
/// streamed weights are read **once per step** while compute scales with
/// the batch — the standard amortization that moves decode back toward
/// the compute-bound regime (and restores the P-DAC's relevance there).
/// Per-sequence KV-cache traffic still scales with the batch.
///
/// Reported latency/energy are per token (i.e. per step divided by the
/// batch).
///
/// # Panics
///
/// Panics if the config fails validation, `bits` outside `2..=16`, or
/// `batch == 0`.
pub fn serving_analysis_batched(
    config: &TransformerConfig,
    context: usize,
    arch: &ArchConfig,
    bandwidth: &crate::roofline::BandwidthModel,
    power: &PowerModel,
    bits: u8,
    batch: usize,
) -> ServingReport {
    use pdac_nn::generative::{
        decode_attention_bytes, decode_attention_macs, decode_ffn_bytes, decode_ffn_macs,
    };
    assert!(batch > 0, "batch must be nonzero");
    config.validate().expect("config must be valid");
    let layers = config.layers as u64;
    let b = batch as u64;
    let weights_8 = config.params_per_layer() * layers;
    // Total per-step bytes at 8-bit: shared weights once + per-sequence
    // KV/activation traffic (attention bytes minus the weight share, ffn
    // activations likewise).
    let attn_bytes = decode_attention_bytes(config, context) * layers;
    let ffn_bytes = decode_ffn_bytes(config) * layers;
    let attn_weights = 4 * (config.hidden as u64).pow(2) * layers;
    let ffn_weights = 2 * config.hidden as u64 * config.ff_dim() as u64 * layers;
    let per_seq_bytes = (attn_bytes - attn_weights) + (ffn_bytes - ffn_weights);
    let step_bytes_8 = weights_8 + b * per_seq_bytes;
    let step_macs = b * layers * (decode_attention_macs(config, context) + decode_ffn_macs(config));
    let step_bytes = (step_bytes_8 as f64 * bits as f64 / 8.0) as u64;
    let point = crate::roofline::analyze(arch, bandwidth, step_macs, step_bytes, 0);
    let watts = power
        .breakdown_at_utilization(bits, point.compute_utilization)
        .total_watts();
    ServingReport {
        context,
        latency_per_token_s: point.latency_s / batch as f64,
        tokens_per_s: batch as f64 / point.latency_s,
        utilization: point.compute_utilization,
        energy_per_token_j: watts * point.latency_s / batch as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_run() -> WorkloadRun {
        run_workload(
            &TransformerConfig::bert_base(),
            &ArchConfig::lt_b(),
            &StageLatencies::silicon_photonic_5ghz(),
        )
    }

    #[test]
    fn gemm_macs_match_config_counts() {
        let config = TransformerConfig::bert_base();
        let total: u64 = layer_gemms(&config)
            .iter()
            .map(|g| g.shape.macs() * g.count as u64)
            .sum();
        assert_eq!(
            total,
            config.attention_macs_per_layer() + config.ffn_macs_per_layer()
        );
    }

    #[test]
    fn bert_total_macs() {
        let run = bert_run();
        assert_eq!(run.macs, TransformerConfig::bert_base().total_macs());
    }

    #[test]
    fn bert_latency_magnitude() {
        // 11.17 G MACs at 20.48 TMAC/s (full utilization) ≈ 0.55 ms.
        let run = bert_run();
        assert!(
            run.latency_s > 4e-4 && run.latency_s < 1e-3,
            "{}",
            run.latency_s
        );
        assert!(run.throughput_per_s() > 1000.0);
    }

    #[test]
    fn bert_utilization_high() {
        // BERT-base dims are multiples of the 8×8×8λ tiles except the
        // per-head score/value GEMMs (dh = 64 fits; s = 128 fits) —
        // everything tiles exactly.
        let run = bert_run();
        assert!(run.utilization > 0.99, "{}", run.utilization);
    }

    #[test]
    fn per_kind_cycles_sum_to_total() {
        let run = bert_run();
        let sum: u64 = run.per_kind_cycles.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, run.cycles);
    }

    #[test]
    fn ffn_dominates_cycles() {
        let run = bert_run();
        let ffn: u64 = run
            .per_kind_cycles
            .iter()
            .filter(|(k, _)| matches!(k, GemmKind::FfnUp | GemmKind::FfnDown))
            .map(|(_, c)| c)
            .sum();
        assert!(ffn * 2 > run.cycles, "FFN should be ≥ half the cycles");
    }

    #[test]
    fn compute_energy_consistent_with_energy_model() {
        use pdac_power::model::DriverKind;
        use pdac_power::TechParams;
        let run = bert_run();
        let pm = PowerModel::new(
            ArchConfig::lt_b(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let direct = run.compute_energy_j(&pm, 8);
        // e_mac × macs should be within a percent (pipeline fill noise).
        let via_rate = pm.energy_per_mac_j(8) * run.macs as f64 / run.utilization;
        assert!(
            (direct - via_rate).abs() / via_rate < 0.02,
            "direct {direct} vs rate {via_rate}"
        );
    }

    #[test]
    fn deit_takes_longer_than_bert() {
        let stages = StageLatencies::silicon_photonic_5ghz();
        let arch = ArchConfig::lt_b();
        let bert = run_workload(&TransformerConfig::bert_base(), &arch, &stages);
        let deit = run_workload(&TransformerConfig::deit_base(), &arch, &stages);
        assert!(deit.latency_s > bert.latency_s);
    }

    #[test]
    fn kind_display() {
        assert_eq!(GemmKind::FfnUp.to_string(), "FFN up");
    }

    #[test]
    fn serving_analysis_is_memory_bound_and_slow() {
        use crate::roofline::BandwidthModel;
        use pdac_power::model::DriverKind;
        use pdac_power::TechParams;
        let arch = ArchConfig::lt_b();
        let power = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let rep = serving_analysis(
            &TransformerConfig::bert_base(),
            1024,
            &arch,
            &BandwidthModel::hbm_class(),
            &power,
            8,
        );
        // Weights (~85 MB) over 400 GB/s ≈ 0.2 ms/token; optics nearly idle.
        assert!(rep.utilization < 0.05, "{rep:?}");
        assert!(
            rep.tokens_per_s > 1000.0 && rep.tokens_per_s < 20_000.0,
            "{rep:?}"
        );
        assert!(rep.energy_per_token_j > 0.0);
    }

    #[test]
    fn longer_context_decodes_slower() {
        use crate::roofline::BandwidthModel;
        use pdac_power::model::DriverKind;
        use pdac_power::TechParams;
        let arch = ArchConfig::lt_b();
        let power = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let short = serving_analysis(
            &TransformerConfig::bert_base(),
            128,
            &arch,
            &BandwidthModel::hbm_class(),
            &power,
            8,
        );
        let long = serving_analysis(
            &TransformerConfig::bert_base(),
            8192,
            &arch,
            &BandwidthModel::hbm_class(),
            &power,
            8,
        );
        assert!(long.latency_per_token_s > short.latency_per_token_s);
        assert!(long.energy_per_token_j > short.energy_per_token_j);
    }

    #[test]
    fn batching_amortizes_weight_streaming() {
        use crate::roofline::BandwidthModel;
        use pdac_power::model::DriverKind;
        use pdac_power::TechParams;
        let arch = ArchConfig::lt_b();
        let power = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let cfg = TransformerConfig::bert_base();
        let bw = BandwidthModel::hbm_class();
        let b1 = serving_analysis_batched(&cfg, 512, &arch, &bw, &power, 8, 1);
        let b32 = serving_analysis_batched(&cfg, 512, &arch, &bw, &power, 8, 32);
        let b256 = serving_analysis_batched(&cfg, 512, &arch, &bw, &power, 8, 256);
        // Throughput and utilization grow, energy/token falls.
        assert!(
            b32.tokens_per_s > 5.0 * b1.tokens_per_s,
            "{b32:?} vs {b1:?}"
        );
        assert!(b32.utilization > 5.0 * b1.utilization);
        assert!(b32.energy_per_token_j < b1.energy_per_token_j / 4.0);
        // At long context the per-sequence KV traffic takes over once the
        // weights are amortized: utilization *saturates* below the ridge
        // instead of reaching 1 — the classic KV-bound serving regime.
        assert!(b256.utilization < 0.2, "{b256:?}");
        assert!((b256.utilization - b32.utilization).abs() < 0.05);
        // At short context, the same batch does reach the compute-bound
        // region (per-sequence intensity clears the ridge).
        let short = serving_analysis_batched(&cfg, 16, &arch, &bw, &power, 8, 256);
        assert!(short.utilization > 0.5, "{short:?}");
    }

    #[test]
    fn batch_one_matches_unbatched() {
        use crate::roofline::BandwidthModel;
        use pdac_power::model::DriverKind;
        use pdac_power::TechParams;
        let arch = ArchConfig::lt_b();
        let power = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let cfg = TransformerConfig::bert_base();
        let bw = BandwidthModel::hbm_class();
        let a = serving_analysis(&cfg, 256, &arch, &bw, &power, 8);
        let b = serving_analysis_batched(&cfg, 256, &arch, &bw, &power, 8, 1);
        // Same accounting up to the small activation-byte bookkeeping.
        assert!((a.latency_per_token_s / b.latency_per_token_s - 1.0).abs() < 0.05);
    }

    #[test]
    fn lower_precision_decodes_faster() {
        use crate::roofline::BandwidthModel;
        use pdac_power::model::DriverKind;
        use pdac_power::TechParams;
        let arch = ArchConfig::lt_b();
        let power = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let cfg = TransformerConfig::bert_base();
        let bw = BandwidthModel::hbm_class();
        let b4 = serving_analysis(&cfg, 512, &arch, &bw, &power, 4);
        let b8 = serving_analysis(&cfg, 512, &arch, &bw, &power, 8);
        // Half the bytes per weight: ~2x faster decode.
        assert!((b8.latency_per_token_s / b4.latency_per_token_s - 2.0).abs() < 0.1);
    }
}
