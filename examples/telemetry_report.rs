//! Per-stage telemetry for one accelerator run: drive the functional
//! simulator and a workload analysis with the global collector enabled,
//! then print the latency/energy/conversion breakdown per pipeline stage
//! and the full snapshot as JSON.
//!
//! Run with: `cargo run --release --example telemetry_report`

use pdac::accel::config::{AccelConfig, DriverChoice};
use pdac::accel::functional::FunctionalGemm;
use pdac::accel::pipeline::StageLatencies;
use pdac::accel::workload_exec::run_workload;
use pdac::math::Mat;
use pdac::nn::TransformerConfig;
use pdac::power::model::{DriverKind, PowerModel};
use pdac::power::{ArchConfig, Component, TechParams};
use pdac::telemetry;
use pdac::telemetry::Snapshot;

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn hist_sum(snap: &Snapshot, name: &str) -> (u64, f64) {
    snap.histograms
        .iter()
        .find(|h| h.name == name)
        .map(|h| (h.count, h.sum))
        .unwrap_or((0, 0.0))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::enable();

    // 1. A functional GEMM on a small LT-style instance: every stage of
    //    the datapath (tiling, modulation, optics, ADC, memory) fires its
    //    instrumentation.
    let arch = ArchConfig {
        cores: 2,
        rows: 4,
        cols: 4,
        wavelengths: 8,
        clock_hz: 5e9,
    };
    let engine = FunctionalGemm::new(AccelConfig::new(
        arch.clone(),
        8,
        DriverChoice::PhotonicDac,
    )?)?;
    let a = Mat::from_fn(16, 24, |r, c| (((r * 13 + c * 7) % 29) as f64 / 29.0) - 0.5);
    let b = Mat::from_fn(24, 12, |r, c| (((r * 5 + c * 11) % 23) as f64 / 23.0) - 0.5);
    let run = engine.execute(&a, &b)?;

    // 2. An analytical workload pass for the per-kind cycle counters.
    let wl = run_workload(
        &TransformerConfig::tiny(),
        &arch,
        &StageLatencies::silicon_photonic_5ghz(),
    );

    let snap = telemetry::snapshot();

    // 3. Per-stage breakdown. Wall time comes from the span histograms;
    //    energy apportions the run's total by the power-model shares of
    //    the components each stage exercises.
    let pm = PowerModel::new(
        arch.clone(),
        TechParams::calibrated(),
        DriverKind::PhotonicDac,
    );
    let breakdown = pm.breakdown(8);
    let total_energy = run.stats.energy_j(&pm, 8);
    let stage_components: [(&str, &str, &[Component]); 5] = [
        ("accel.stage.tiling", "tiling", &[]),
        (
            "accel.stage.conversion",
            "conversion (P-DAC)",
            &[
                Component::Dac,
                Component::Controller,
                Component::MzmDriver,
                Component::PDac,
            ],
        ),
        (
            "accel.stage.optical",
            "optical dot-product",
            &[Component::Laser],
        ),
        ("accel.stage.adc", "ADC readout", &[Component::Adc]),
        ("accel.stage.memory", "memory", &[Component::SramDigital]),
    ];

    println!("per-stage breakdown (16x24x12 GEMM, 8-bit, P-DAC drive):");
    println!(
        "  {:<22} {:>8} {:>14} {:>12} {:>14}",
        "stage", "spans", "wall time", "energy", "share"
    );
    for (metric, label, components) in stage_components {
        let (count, wall_s) = hist_sum(&snap, metric);
        let share = components
            .iter()
            .map(|&c| breakdown.share(c))
            .sum::<f64>()
            .max(0.0);
        println!(
            "  {:<22} {:>8} {:>11.3} µs {:>9.3} µJ {:>13.1}%",
            label,
            count,
            wall_s * 1e6,
            total_energy * share * 1e6,
            100.0 * share
        );
    }

    println!("\nconversion accounting:");
    println!(
        "  {} operand modulations, {} ADC samples, {} bytes moved",
        counter(&snap, "accel.stats.conversions"),
        counter(&snap, "accel.stats.adc_samples"),
        counter(&snap, "accel.stats.bytes_total"),
    );
    println!(
        "  workload '{}': {} cycles, {} tiling plans recorded",
        wl.workload,
        counter(&snap, "accel.workload.cycles"),
        counter(&snap, "accel.scheduler.plans"),
    );

    println!("\nfull metric table:");
    print!("{}", snap.render_table());

    println!("\nJSON snapshot:");
    println!("{}", snap.to_json());
    Ok(())
}
