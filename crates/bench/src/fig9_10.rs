//! Figs. 9 and 10: per-class energy breakdowns for BERT and DeiT.
//!
//! Paper datapoints (energy reduction, DAC baseline → P-DAC):
//!
//! | workload | bits | total | attention | FFN |
//! |---|---|---|---|---|
//! | BERT | 4 | 11.2% | 18.3% | 11.0% |
//! | BERT | 8 | 32.3% | 42.1% | 32.1% |
//! | DeiT | 4 | 11.2% | 19.0% | 12.6% |
//! | DeiT | 8 | 32.3% | 42.3% | 35.1% |

use crate::{lt_b_models, pct_row};
use pdac_nn::config::TransformerConfig;
use pdac_nn::workload::op_trace;
use pdac_power::energy::{savings, SavingsReport};
use pdac_power::{EnergyModel, OpClass};

/// Paper-reported savings for one workload/precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperSavings {
    /// Bit precision.
    pub bits: u8,
    /// Total energy reduction.
    pub total: f64,
    /// Attention-class reduction.
    pub attention: f64,
    /// FFN-class reduction.
    pub ffn: f64,
}

/// Fig. 9 paper datapoints (BERT-base, seq 128).
pub const PAPER_BERT: [PaperSavings; 2] = [
    PaperSavings {
        bits: 4,
        total: 0.112,
        attention: 0.183,
        ffn: 0.110,
    },
    PaperSavings {
        bits: 8,
        total: 0.323,
        attention: 0.421,
        ffn: 0.321,
    },
];

/// Fig. 10 paper datapoints (DeiT, 197 tokens).
pub const PAPER_DEIT: [PaperSavings; 2] = [
    PaperSavings {
        bits: 4,
        total: 0.112,
        attention: 0.190,
        ffn: 0.126,
    },
    PaperSavings {
        bits: 8,
        total: 0.323,
        attention: 0.423,
        ffn: 0.351,
    },
];

/// Computes the savings report for a config at one precision.
pub fn measure(config: &TransformerConfig, bits: u8) -> SavingsReport {
    let (baseline, pdac) = lt_b_models();
    let trace = op_trace(config);
    let base = EnergyModel::new(baseline).energy(&trace, bits);
    let test = EnergyModel::new(pdac).energy(&trace, bits);
    savings(&base, &test)
}

/// Per-class saving from a report (0 when the class is absent).
pub fn class_saving(report: &SavingsReport, class: OpClass) -> f64 {
    report
        .per_class
        .iter()
        .find(|(c, _)| *c == class)
        .map_or(0.0, |(_, s)| *s)
}

fn report_for(config: &TransformerConfig, paper: &[PaperSavings; 2], figure: &str) -> String {
    let (baseline, pdac) = lt_b_models();
    let trace = op_trace(config);
    let mut out = format!(
        "{figure} — Energy breakdown: {} (DAC baseline vs P-DAC)\n\
         =============================================================\n",
        config.name
    );
    for p in paper {
        let base = EnergyModel::new(baseline.clone()).energy(&trace, p.bits);
        let test = EnergyModel::new(pdac.clone()).energy(&trace, p.bits);
        let rep = savings(&base, &test);
        out.push_str(&format!(
            "\n{}-bit: baseline {:.2} mJ -> P-DAC {:.2} mJ per inference\n",
            p.bits,
            base.total_j() * 1e3,
            test.total_j() * 1e3
        ));
        for class in [OpClass::Attention, OpClass::Ffn, OpClass::Other] {
            if let (Some(b), Some(t)) = (base.class(class), test.class(class)) {
                out.push_str(&format!(
                    "  {class:<10} base {:.3} mJ (comp {:.3} / move {:.3} / other {:.3}) -> pdac {:.3} mJ\n",
                    b.total_j() * 1e3,
                    b.compute_j * 1e3,
                    b.movement_j * 1e3,
                    b.elementwise_j * 1e3,
                    t.total_j() * 1e3
                ));
            }
        }
        out.push_str(&pct_row("total reduction", rep.total, p.total));
        out.push('\n');
        out.push_str(&pct_row(
            "attention reduction",
            class_saving(&rep, OpClass::Attention),
            p.attention,
        ));
        out.push('\n');
        out.push_str(&pct_row(
            "FFN reduction",
            class_saving(&rep, OpClass::Ffn),
            p.ffn,
        ));
        out.push('\n');
    }
    out
}

/// Regenerates Fig. 9 (BERT-base, sequence length 128).
pub fn report_bert() -> String {
    report_for(&TransformerConfig::bert_base(), &PAPER_BERT, "Fig. 9")
}

/// Regenerates Fig. 10 (DeiT, 197 tokens).
pub fn report_deit() -> String {
    report_for(&TransformerConfig::deit_base(), &PAPER_DEIT, "Fig. 10")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Documented reproduction tolerance for per-class savings (pp).
    const TOL: f64 = 0.03;

    #[test]
    fn bert_savings_match_paper_within_tolerance() {
        for p in PAPER_BERT {
            let rep = measure(&TransformerConfig::bert_base(), p.bits);
            assert!(
                (rep.total - p.total).abs() < TOL,
                "{}-bit total: measured {:.3}, paper {:.3}",
                p.bits,
                rep.total,
                p.total
            );
            assert!(
                (class_saving(&rep, OpClass::Attention) - p.attention).abs() < TOL,
                "{}-bit attention: measured {:.3}, paper {:.3}",
                p.bits,
                class_saving(&rep, OpClass::Attention),
                p.attention
            );
            assert!(
                (class_saving(&rep, OpClass::Ffn) - p.ffn).abs() < TOL,
                "{}-bit ffn: measured {:.3}, paper {:.3}",
                p.bits,
                class_saving(&rep, OpClass::Ffn),
                p.ffn
            );
        }
    }

    #[test]
    fn deit_savings_match_paper_within_tolerance() {
        for p in PAPER_DEIT {
            let rep = measure(&TransformerConfig::deit_base(), p.bits);
            assert!(
                (rep.total - p.total).abs() < TOL,
                "{}-bit total {}",
                p.bits,
                rep.total
            );
            assert!(
                (class_saving(&rep, OpClass::Attention) - p.attention).abs() < TOL,
                "{}-bit attention {}",
                p.bits,
                class_saving(&rep, OpClass::Attention)
            );
            assert!(
                (class_saving(&rep, OpClass::Ffn) - p.ffn).abs() < TOL,
                "{}-bit ffn {}",
                p.bits,
                class_saving(&rep, OpClass::Ffn)
            );
        }
    }

    #[test]
    fn qualitative_shape_holds() {
        // The paper's two headline orderings, asserted tightly: attention
        // saves more than FFN; 8-bit saves more than 4-bit.
        for config in [
            TransformerConfig::bert_base(),
            TransformerConfig::deit_base(),
        ] {
            let r4 = measure(&config, 4);
            let r8 = measure(&config, 8);
            assert!(r8.total > r4.total);
            for r in [&r4, &r8] {
                assert!(
                    class_saving(r, OpClass::Attention) > class_saving(r, OpClass::Ffn),
                    "{}",
                    config.name
                );
            }
        }
    }

    #[test]
    fn other_class_saves_nothing() {
        let rep = measure(&TransformerConfig::bert_base(), 8);
        assert!(class_saving(&rep, OpClass::Other).abs() < 1e-12);
    }

    #[test]
    fn reports_render() {
        let bert = report_bert();
        assert!(bert.contains("Fig. 9"));
        assert!(bert.contains("Attention"));
        let deit = report_deit();
        assert!(deit.contains("Fig. 10"));
        assert!(deit.contains("197"));
    }
}
