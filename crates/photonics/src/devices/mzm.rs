//! Mach-Zehnder Modulator.
//!
//! The MZM splits the input field into two arms, applies voltage-controlled
//! phase shifts, and recombines (paper Eq. 3):
//!
//! ```text
//! E_out = E_in/2 · ((1+k)·e^{jπV₁/2V_π} + (1−k)·e^{jπV₂/2V_π})
//! ```
//!
//! where `k` is the splitting imbalance. With balanced splitting (`k = 0`)
//! and push-pull drive (`V₂ = −V₁`) this reduces to the intensity-modulator
//! form `E_out = E_in·cos(V₁′)` of Eq. 2/9, which is what both the
//! traditional DAC path and the P-DAC exploit: driving with
//! `V₁′ = arccos(r)` yields `E_out = r·E_in`, a full-range (signed) analog
//! encoding.

use pdac_math::Complex64;
use std::f64::consts::PI;

/// A Mach-Zehnder modulator.
///
/// # Examples
///
/// Push-pull drive reproduces the cosine transfer of paper Eq. 9:
///
/// ```
/// use pdac_photonics::Mzm;
/// use pdac_math::Complex64;
///
/// let mzm = Mzm::ideal();
/// let r: f64 = 0.5;
/// let v1_norm = r.acos(); // V₁′ in normalized units
/// let out = mzm.modulate_push_pull(Complex64::ONE, v1_norm);
/// assert!((out.re - 0.5).abs() < 1e-12);
/// assert!(out.im.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mzm {
    v_pi: f64,
    imbalance: f64,
    insertion_loss_db: f64,
}

impl Mzm {
    /// An ideal MZM: `V_π = 1 V` (so normalized and physical voltages
    /// coincide up to the π/2 factor), perfectly balanced, lossless.
    pub fn ideal() -> Self {
        Self {
            v_pi: 1.0,
            imbalance: 0.0,
            insertion_loss_db: 0.0,
        }
    }

    /// Creates an MZM with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `v_pi <= 0`, `|imbalance| >= 1`, or
    /// `insertion_loss_db < 0`.
    pub fn new(v_pi: f64, imbalance: f64, insertion_loss_db: f64) -> Self {
        assert!(v_pi > 0.0, "V_pi must be positive");
        assert!(imbalance.abs() < 1.0, "splitting imbalance |k| must be < 1");
        assert!(
            insertion_loss_db >= 0.0,
            "insertion loss must be nonnegative"
        );
        Self {
            v_pi,
            imbalance,
            insertion_loss_db,
        }
    }

    /// Half-wave voltage `V_π`.
    pub fn v_pi(&self) -> f64 {
        self.v_pi
    }

    /// Splitting imbalance `k` of paper Eq. 3.
    pub fn imbalance(&self) -> f64 {
        self.imbalance
    }

    /// Insertion loss in dB.
    pub fn insertion_loss_db(&self) -> f64 {
        self.insertion_loss_db
    }

    /// Full two-electrode transfer (paper Eq. 3) with physical voltages.
    pub fn modulate(&self, e_in: Complex64, v1: f64, v2: f64) -> Complex64 {
        let phi1 = PI * v1 / (2.0 * self.v_pi);
        let phi2 = PI * v2 / (2.0 * self.v_pi);
        let arm1 = Complex64::cis(phi1).scale(1.0 + self.imbalance);
        let arm2 = Complex64::cis(phi2).scale(1.0 - self.imbalance);
        let loss = 10f64.powf(-self.insertion_loss_db / 20.0);
        (e_in * (arm1 + arm2)).scale(0.5 * loss)
    }

    /// Push-pull transfer with a *normalized* drive `V₁′ = πV₁/2V_π`
    /// (paper Eq. 7–9): the second electrode is driven at `−V₁`.
    ///
    /// For a balanced lossless MZM this is exactly
    /// `E_out = E_in·cos(V₁′)`.
    pub fn modulate_push_pull(&self, e_in: Complex64, v1_normalized: f64) -> Complex64 {
        let v1 = v1_normalized * 2.0 * self.v_pi / PI;
        self.modulate(e_in, v1, -v1)
    }

    /// Encodes a signed analog value `r ∈ [−1, 1]` exactly, via the ideal
    /// drive `V₁′ = arccos(r)` (paper Eq. 13). This is what a traditional
    /// DAC + controller computes.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside `[−1, 1]`.
    pub fn encode_exact(&self, e_in: Complex64, r: f64) -> Complex64 {
        assert!((-1.0..=1.0).contains(&r), "encodable values lie in [-1, 1]");
        self.modulate_push_pull(e_in, r.acos())
    }
}

impl Default for Mzm {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn zero_drive_passes_input() {
        let mzm = Mzm::ideal();
        let out = mzm.modulate(Complex64::ONE, 0.0, 0.0);
        assert!(out.approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn push_pull_is_cosine() {
        let mzm = Mzm::ideal();
        for &v in &[0.0, 0.3, 1.0, FRAC_PI_2, 2.0, 3.0] {
            let out = mzm.modulate_push_pull(Complex64::ONE, v);
            assert!((out.re - v.cos()).abs() < 1e-12, "v={v}");
            assert!(out.im.abs() < 1e-12);
        }
    }

    #[test]
    fn v_pi_drive_extinguishes() {
        // V1 = V_pi, V2 = -V_pi: phases ±π/2, arms cancel... actually
        // cos(π/2) = 0: full extinction in push-pull.
        let mzm = Mzm::new(2.5, 0.0, 0.0);
        let out = mzm.modulate(Complex64::ONE, 2.5, -2.5);
        assert!(out.norm() < 1e-12);
    }

    #[test]
    fn encode_exact_reproduces_value() {
        let mzm = Mzm::ideal();
        let mut r = -1.0;
        while r <= 1.0 {
            let out = mzm.encode_exact(Complex64::ONE, r);
            assert!((out.re - r).abs() < 1e-12, "r={r}");
            assert!(out.im.abs() < 1e-12);
            r += 0.125;
        }
    }

    #[test]
    fn encode_exact_scales_with_input_field() {
        let mzm = Mzm::ideal();
        let e_in = Complex64::from_re(2.0);
        let out = mzm.encode_exact(e_in, -0.75);
        assert!((out.re + 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "[-1, 1]")]
    fn encode_exact_rejects_out_of_range() {
        Mzm::ideal().encode_exact(Complex64::ONE, 1.5);
    }

    #[test]
    fn imbalance_leaks_at_extinction() {
        // With k != 0 the arms no longer cancel exactly.
        let mzm = Mzm::new(1.0, 0.1, 0.0);
        let out = mzm.modulate_push_pull(Complex64::ONE, FRAC_PI_2);
        assert!(out.norm() > 0.05);
    }

    #[test]
    fn imbalance_preserves_transmission_at_zero_drive() {
        let mzm = Mzm::new(1.0, 0.2, 0.0);
        let out = mzm.modulate(Complex64::ONE, 0.0, 0.0);
        // (1+k)/2 + (1-k)/2 = 1 regardless of k.
        assert!(out.approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn insertion_loss_attenuates() {
        let lossy = Mzm::new(1.0, 0.0, 3.0103);
        let out = lossy.modulate(Complex64::ONE, 0.0, 0.0);
        // 3 dB power loss = field factor 1/sqrt(2).
        assert!((out.norm() - 1.0 / 2f64.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn physical_v_pi_scaling() {
        // Same normalized drive with different V_pi must agree.
        let a = Mzm::new(1.0, 0.0, 0.0);
        let b = Mzm::new(3.3, 0.0, 0.0);
        let va = a.modulate_push_pull(Complex64::ONE, 0.8);
        let vb = b.modulate_push_pull(Complex64::ONE, 0.8);
        assert!(va.approx_eq(vb, 1e-12));
    }

    #[test]
    fn transfer_is_bounded_by_input() {
        let mzm = Mzm::ideal();
        let mut v = -4.0;
        while v <= 4.0 {
            let out = mzm.modulate_push_pull(Complex64::ONE, v);
            assert!(out.norm() <= 1.0 + 1e-12);
            v += 0.01;
        }
    }
}
