//! Randomized property tests for the power/energy models.
//!
//! Originally `proptest`-based; now driven by seeded [`SplitMix64`]
//! streams so the workspace builds offline. Enable `slow-proptests` for
//! deeper sweeps.

use pdac_math::rng::SplitMix64;
use pdac_power::energy::savings;
use pdac_power::model::{power_saving, DriverKind, PowerModel};
use pdac_power::{ArchConfig, EnergyModel, OpClass, OpTrace, TechParams, TraceEntry};

const CASES: usize = if cfg!(feature = "slow-proptests") {
    256
} else {
    32
};

fn random_arch(rng: &mut SplitMix64) -> ArchConfig {
    ArchConfig {
        cores: rng.gen_range_usize(1, 15),
        rows: rng.gen_range_usize(1, 15),
        cols: rng.gen_range_usize(1, 15),
        wavelengths: rng.gen_range_usize(1, 15),
        clock_hz: rng.gen_range_f64(1.0e9, 10.0e9),
    }
}

#[test]
fn breakdown_entries_are_positive() {
    let mut rng = SplitMix64::seed_from_u64(0xE0);
    for _ in 0..CASES {
        let arch = random_arch(&mut rng);
        let bits = rng.gen_range_i64(2, 16) as u8;
        for driver in [DriverKind::ElectricalDac, DriverKind::PhotonicDac] {
            let m = PowerModel::new(arch.clone(), TechParams::calibrated(), driver);
            let b = m.breakdown(bits);
            assert!(b.total_watts() > 0.0);
            for (_, w) in b.entries() {
                assert!(*w >= 0.0);
            }
        }
    }
}

#[test]
fn pdac_saves_power_at_calibrated_clock() {
    // The calibrated constants model the P-DAC unit as *static* power
    // and the DAC as per-conversion energy, so the comparison is only
    // meaningful near the 5 GHz operating point they were fitted at;
    // at much slower clocks the DAC's dynamic energy vanishes while
    // the P-DAC's bias power does not (a real limitation of the
    // design, not of the model).
    let mut rng = SplitMix64::seed_from_u64(0xE1);
    for _ in 0..CASES {
        let mut arch = random_arch(&mut rng);
        let bits = rng.gen_range_i64(3, 16) as u8;
        arch.clock_hz = 5e9;
        let base = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::ElectricalDac,
        );
        let pdac = PowerModel::new(arch, TechParams::calibrated(), DriverKind::PhotonicDac);
        assert!(power_saving(&base, &pdac, bits) > 0.0);
    }
}

#[test]
fn breakdown_monotone_in_bits() {
    let mut rng = SplitMix64::seed_from_u64(0xE2);
    for _ in 0..CASES {
        let arch = random_arch(&mut rng);
        let bits = rng.gen_range_i64(2, 15) as u8;
        for driver in [DriverKind::ElectricalDac, DriverKind::PhotonicDac] {
            let m = PowerModel::new(arch.clone(), TechParams::calibrated(), driver);
            assert!(m.breakdown(bits + 1).total_watts() > m.breakdown(bits).total_watts());
        }
    }
}

#[test]
fn energy_additive_over_classes() {
    let mut rng = SplitMix64::seed_from_u64(0xE3);
    for _ in 0..CASES {
        let macs_a = rng.gen_range_i64(1, 1_000_000_000) as u64;
        let macs_f = rng.gen_range_i64(1, 1_000_000_000) as u64;
        let bytes = rng.gen_range_i64(0, 100_000_000) as u64;
        let bits = rng.gen_range_i64(2, 16) as u8;
        let m = PowerModel::new(
            ArchConfig::lt_b(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let em = EnergyModel::new(m);
        let both = OpTrace {
            name: "t".into(),
            entries: vec![
                TraceEntry {
                    class: OpClass::Attention,
                    macs: macs_a,
                    bytes_at_8bit: bytes,
                    elementwise_ops: 0,
                },
                TraceEntry {
                    class: OpClass::Ffn,
                    macs: macs_f,
                    bytes_at_8bit: bytes,
                    elementwise_ops: 0,
                },
            ],
        };
        let only_a = OpTrace {
            name: "t".into(),
            entries: vec![both.entries[0]],
        };
        let only_f = OpTrace {
            name: "t".into(),
            entries: vec![both.entries[1]],
        };
        let total = em.energy(&both, bits).total_j();
        let split = em.energy(&only_a, bits).total_j() + em.energy(&only_f, bits).total_j();
        assert!((total - split).abs() <= 1e-12 * (1.0 + total));
    }
}

#[test]
fn savings_bounded_by_compute_saving() {
    let mut rng = SplitMix64::seed_from_u64(0xE4);
    for _ in 0..CASES {
        let macs = rng.gen_range_i64(1, 10_000_000_000) as u64;
        let bytes = rng.gen_range_i64(0, 1_000_000_000) as u64;
        let elems = rng.gen_range_i64(0, 1_000_000_000) as u64;
        let bits = rng.gen_range_i64(2, 16) as u8;
        let base = PowerModel::new(
            ArchConfig::lt_b(),
            TechParams::calibrated(),
            DriverKind::ElectricalDac,
        );
        let pdac = PowerModel::new(
            ArchConfig::lt_b(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let compute = power_saving(&base, &pdac, bits);
        let trace = OpTrace {
            name: "t".into(),
            entries: vec![TraceEntry {
                class: OpClass::Ffn,
                macs,
                bytes_at_8bit: bytes,
                elementwise_ops: elems,
            }],
        };
        let rep = savings(
            &EnergyModel::new(base).energy(&trace, bits),
            &EnergyModel::new(pdac).energy(&trace, bits),
        );
        assert!(rep.total >= -1e-12);
        assert!(rep.total <= compute + 1e-12);
    }
}

#[test]
fn energy_per_mac_decreases_with_parallelism() {
    // More cores, same support scaling: fixed laser/support amortize? No —
    // support scales linearly too, so energy/MAC is nearly constant.
    let mut rng = SplitMix64::seed_from_u64(0xE5);
    for _ in 0..CASES {
        let bits = rng.gen_range_i64(2, 16) as u8;
        let cores = rng.gen_range_usize(1, 63);
        let mut arch = ArchConfig::lt_b();
        arch.cores = cores;
        let m = PowerModel::new(arch, TechParams::calibrated(), DriverKind::PhotonicDac);
        let e = m.energy_per_mac_j(bits);
        let reference = PowerModel::new(
            ArchConfig::lt_b(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        )
        .energy_per_mac_j(bits);
        assert!((e - reference).abs() < 1e-12 + reference * 1e-9);
    }
}
