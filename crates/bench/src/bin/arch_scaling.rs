//! Extension: architecture-scaling study (LT-S / LT-B / LT-L).
fn main() {
    print!("{}", pdac_bench::scaling::report());
}
