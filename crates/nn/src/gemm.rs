//! Pluggable GEMM backends.
//!
//! The accelerator's matrix multiplies can run in three fidelity regimes:
//!
//! * [`ExactGemm`] — full-precision `f64` reference,
//! * [`AnalogGemm`] — operands quantized and pushed through an
//!   [`MzmDriver`] (P-DAC or electrical DAC) before the dot product.
//!   The photonic DDot itself computes the dot product exactly (see
//!   `pdac-photonics`), so the analog error is entirely in the operand
//!   modulation — exactly the paper's error model.
//!
//! The [`GemmBackend`] trait lets the same transformer forward pass run in
//! any regime; the fidelity study diffs their outputs.

use crate::quant::QuantizedMat;
use pdac_core::converter::MzmDriver;
use pdac_math::Mat;

/// A matrix-multiply backend.
pub trait GemmBackend {
    /// Computes `a · b`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat;

    /// Human-readable backend name for reports.
    fn name(&self) -> &str;
}

/// The exact `f64` reference backend.
///
/// # Examples
///
/// ```
/// use pdac_nn::gemm::{ExactGemm, GemmBackend};
/// use pdac_math::Mat;
///
/// let a = Mat::identity(2);
/// let b = Mat::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(ExactGemm.matmul(&a, &b), b);
/// # Ok::<(), pdac_math::matrix::MatError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactGemm;

impl GemmBackend for ExactGemm {
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat {
        a.matmul(b).expect("inner dimensions must agree")
    }

    fn name(&self) -> &str {
        "exact"
    }
}

/// Analog GEMM through a converter drive path: quantize both operands
/// per-tensor, dequantize through the driver (injecting its conversion
/// error), then multiply exactly (the DDot identity).
#[derive(Debug, Clone)]
pub struct AnalogGemm<D> {
    driver: D,
    name: String,
}

impl<D: MzmDriver> AnalogGemm<D> {
    /// Wraps a driver.
    pub fn new(driver: D, name: impl Into<String>) -> Self {
        Self {
            driver,
            name: name.into(),
        }
    }

    /// The wrapped driver.
    pub fn driver(&self) -> &D {
        &self.driver
    }
}

impl<D: MzmDriver> GemmBackend for AnalogGemm<D> {
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat {
        let _span = pdac_telemetry::span("nn.gemm.analog");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.driver.bits();
        let aq = QuantizedMat::quantize(a, bits).dequantize_with(&self.driver);
        let bq = QuantizedMat::quantize(b, bits).dequantize_with(&self.driver);
        aq.matmul(&bq).expect("inner dimensions must agree")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Asymmetric analog GEMM: different drive paths for the two operands —
/// the hybrid design where dynamic activations (`a`) ride the P-DAC and
/// weight-like operands (`b`) keep the exact electrical path.
#[derive(Debug, Clone)]
pub struct AsymmetricGemm<Da, Db> {
    driver_a: Da,
    driver_b: Db,
    name: String,
}

impl<Da: MzmDriver, Db: MzmDriver> AsymmetricGemm<Da, Db> {
    /// Wraps the two drivers.
    ///
    /// # Panics
    ///
    /// Panics if the drivers' bit widths differ.
    pub fn new(driver_a: Da, driver_b: Db, name: impl Into<String>) -> Self {
        assert_eq!(
            driver_a.bits(),
            driver_b.bits(),
            "both operand paths must share a bit width"
        );
        Self {
            driver_a,
            driver_b,
            name: name.into(),
        }
    }
}

impl<Da: MzmDriver, Db: MzmDriver> GemmBackend for AsymmetricGemm<Da, Db> {
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat {
        let bits = self.driver_a.bits();
        let aq = QuantizedMat::quantize(a, bits).dequantize_with(&self.driver_a);
        let bq = QuantizedMat::quantize(b, bits).dequantize_with(&self.driver_b);
        aq.matmul(&bq).expect("inner dimensions must agree")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdac_core::edac::ElectricalDac;
    use pdac_core::pdac::PDac;
    use pdac_math::rng::SplitMix64;
    use pdac_math::stats::cosine_similarity;

    fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = SplitMix64::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-1.0, 1.0))
    }

    #[test]
    fn exact_matches_reference() {
        let a = random_mat(5, 7, 1);
        let b = random_mat(7, 3, 2);
        assert_eq!(ExactGemm.matmul(&a, &b), a.matmul(&b).unwrap());
        assert_eq!(ExactGemm.name(), "exact");
    }

    #[test]
    fn analog_pdac_is_close_but_not_exact() {
        let a = random_mat(8, 16, 3);
        let b = random_mat(16, 8, 4);
        let exact = ExactGemm.matmul(&a, &b);
        let analog = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac8");
        let got = analog.matmul(&a, &b);
        assert_ne!(got, exact);
        let cs = cosine_similarity(got.as_slice(), exact.as_slice()).unwrap();
        assert!(cs > 0.99, "cosine similarity {cs}");
    }

    #[test]
    fn analog_edac_is_closer_than_pdac() {
        let a = random_mat(8, 16, 5);
        let b = random_mat(16, 8, 6);
        let exact = ExactGemm.matmul(&a, &b);
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac8");
        let edac = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "edac8");
        let dp = pdac.matmul(&a, &b).distance(&exact);
        let de = edac.matmul(&a, &b).distance(&exact);
        assert!(de < dp, "edac {de} vs pdac {dp}");
    }

    #[test]
    fn higher_precision_improves_analog_gemm() {
        let a = random_mat(8, 16, 7);
        let b = random_mat(16, 8, 8);
        let exact = ExactGemm.matmul(&a, &b);
        let d4 = AnalogGemm::new(PDac::with_optimal_approx(4).unwrap(), "p4")
            .matmul(&a, &b)
            .distance(&exact);
        let d8 = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8")
            .matmul(&a, &b)
            .distance(&exact);
        assert!(d8 < d4, "8-bit {d8} vs 4-bit {d4}");
    }

    #[test]
    fn asymmetric_accuracy_between_pure_paths() {
        let a = random_mat(8, 16, 21);
        let b = random_mat(16, 8, 22);
        let exact = ExactGemm.matmul(&a, &b);
        let full_pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pp");
        let full_edac = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "ee");
        let hybrid = AsymmetricGemm::new(
            PDac::with_optimal_approx(8).unwrap(),
            ElectricalDac::new(8).unwrap(),
            "hybrid",
        );
        let dp = full_pdac.matmul(&a, &b).distance(&exact);
        let de = full_edac.matmul(&a, &b).distance(&exact);
        let dh = hybrid.matmul(&a, &b).distance(&exact);
        assert!(de < dh && dh < dp, "{de} < {dh} < {dp} violated");
        assert_eq!(hybrid.name(), "hybrid");
    }

    #[test]
    #[should_panic(expected = "share a bit width")]
    fn asymmetric_rejects_mismatched_bits() {
        AsymmetricGemm::new(
            PDac::with_optimal_approx(8).unwrap(),
            ElectricalDac::new(4).unwrap(),
            "bad",
        );
    }

    #[test]
    fn analog_gemm_zero_operand() {
        let a = Mat::zeros(3, 3);
        let b = random_mat(3, 3, 9);
        let analog = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8");
        let got = analog.matmul(&a, &b);
        assert!(got.max_abs() < 1e-12);
    }
}
