//! Baseline electrical DAC drive path.
//!
//! In Lightening-Transformer, a digital controller computes the exact
//! drive voltage `V₁′ = arccos(r)` for each operand and an electrical DAC
//! synthesizes it (paper Fig. 4). The value is exact up to the DAC's own
//! output quantization — we model a `dac_bits`-level voltage grid over
//! `[0, π]` so the baseline has the realistic LSB-scale error rather than
//! being a disembodied ideal.

use crate::converter::MzmDriver;
use pdac_math::Complex64;
use pdac_photonics::Mzm;
use std::f64::consts::PI;

/// The controller + electrical-DAC + MZM baseline.
///
/// # Examples
///
/// ```
/// use pdac_core::edac::ElectricalDac;
/// use pdac_core::converter::MzmDriver;
///
/// let dac = ElectricalDac::new(8)?;
/// let out = dac.convert(64);
/// let ideal = 64.0 / 127.0;
/// // Error limited to DAC voltage quantization (≪ the P-DAC's 8.5%).
/// assert!((out - ideal).abs() < 0.02);
/// # Ok::<(), pdac_core::edac::EdacError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectricalDac {
    bits: u8,
    dac_bits: u8,
    mzm: Mzm,
}

/// Errors from [`ElectricalDac`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdacError {
    /// Data or DAC bit width outside `2..=16`.
    UnsupportedBits(u8),
}

impl std::fmt::Display for EdacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdacError::UnsupportedBits(b) => write!(f, "bit width {b} outside 2..=16"),
        }
    }
}

impl std::error::Error for EdacError {}

impl ElectricalDac {
    /// Creates a baseline path where the DAC resolution matches the data
    /// bit width (the configuration the paper profiles).
    ///
    /// # Errors
    ///
    /// Returns [`EdacError::UnsupportedBits`] outside `2..=16`.
    pub fn new(bits: u8) -> Result<Self, EdacError> {
        Self::with_dac_resolution(bits, bits)
    }

    /// Creates a baseline with independent data and DAC bit widths, for
    /// studying how much DAC resolution the exact-arccos path needs.
    ///
    /// # Errors
    ///
    /// Returns [`EdacError::UnsupportedBits`] for either width outside
    /// `2..=16`.
    pub fn with_dac_resolution(bits: u8, dac_bits: u8) -> Result<Self, EdacError> {
        for b in [bits, dac_bits] {
            if !(2..=16).contains(&b) {
                return Err(EdacError::UnsupportedBits(b));
            }
        }
        Ok(Self {
            bits,
            dac_bits,
            mzm: Mzm::ideal(),
        })
    }

    /// DAC output resolution in bits.
    pub fn dac_bits(&self) -> u8 {
        self.dac_bits
    }

    /// The quantized drive voltage: the controller's exact `arccos(r)`
    /// snapped to the DAC's `2^dac_bits`-level grid over `[0, π]`.
    pub fn drive_voltage(&self, code: i32) -> f64 {
        let r = self.ideal_value(code);
        let exact = r.acos();
        let levels = ((1u32 << self.dac_bits) - 1) as f64;
        (exact / PI * levels).round() / levels * PI
    }
}

impl MzmDriver for ElectricalDac {
    fn bits(&self) -> u8 {
        self.bits
    }

    fn convert(&self, code: i32) -> f64 {
        let v = self.drive_voltage(code);
        self.mzm.modulate_push_pull(Complex64::ONE, v).re
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_is_near_exact() {
        let dac = ElectricalDac::new(8).unwrap();
        for code in -127..=127i32 {
            let ideal = dac.ideal_value(code);
            let got = dac.convert(code);
            // LSB of the voltage grid is π/255 ≈ 0.0123 rad; the cosine
            // slope is ≤ 1, so output error ≤ ~0.0062.
            assert!((got - ideal).abs() < 0.0075, "code={code}");
        }
    }

    #[test]
    fn higher_dac_resolution_reduces_error() {
        let coarse = ElectricalDac::with_dac_resolution(8, 4).unwrap();
        let fine = ElectricalDac::with_dac_resolution(8, 12).unwrap();
        let worst = |d: &ElectricalDac| {
            (-127..=127i32)
                .map(|c| (d.convert(c) - d.ideal_value(c)).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(worst(&fine) < worst(&coarse) / 10.0);
    }

    #[test]
    fn odd_symmetry() {
        let dac = ElectricalDac::new(8).unwrap();
        for code in 1..=127 {
            assert!(
                (dac.convert(code) + dac.convert(-code)).abs() < 1e-9,
                "code={code}"
            );
        }
    }

    #[test]
    fn endpoints_exact() {
        let dac = ElectricalDac::new(8).unwrap();
        assert!((dac.convert(127) - 1.0).abs() < 1e-9);
        assert!((dac.convert(-127) + 1.0).abs() < 1e-9);
        assert!(dac.convert(0).abs() < 0.01);
    }

    #[test]
    fn validation() {
        assert_eq!(ElectricalDac::new(1), Err(EdacError::UnsupportedBits(1)));
        assert_eq!(
            ElectricalDac::with_dac_resolution(8, 20),
            Err(EdacError::UnsupportedBits(20))
        );
        assert!(EdacError::UnsupportedBits(1).to_string().contains("1"));
    }
}
