//! Batched auto-regressive decode engine.
//!
//! Continuous-batching serving (paper Sec. II-A1: decode is the
//! memory-bound phase that dominates LLM inference) wants the S "current"
//! tokens of S independent sequences pushed through the stack together:
//! every weight matrix is then streamed through the converters **once
//! per step** instead of once per sequence, which is exactly the
//! weight-traffic amortization a photonic GEMM engine needs to stay busy.
//!
//! The engine stacks the S token embeddings into one `S × hidden`
//! activation matrix per layer and runs the six stable weight matmuls
//! batched ([`crate::gemm::GemmBackend::matmul_batch_packed_into`]:
//! per-row activation quantization on analog backends, lazily
//! panel-packed weights on the exact backend). Attention runs
//! **slot-grouped**: sequences are grouped by KV-cache length once per
//! step, and for every (layer, head, group) the grouped queries
//! (`G × dh`), the stacked transposed key gathers (`G·dh × L`) and the
//! stacked value gathers (`G·L × dh`) feed two grouped kernel dispatches
//! ([`crate::gemm::GemmBackend::matmul_grouped_transient_into`]) instead
//! of `2·S` tiny per-sequence matmuls, with the scale + softmax pass
//! vectorized over the grouped `G × L` score matrix. Every per-step
//! buffer lives in a caller-owned [`DecodeScratch`], so the hot path
//! performs no per-token matrix allocations once the scratch is primed.
//! The `nn.decode.attention.group_size` histogram records one sample per
//! slot-group per step. See DESIGN.md §14.
//!
//! **Bit-identity contract:** row `s` of [`TransformerModel::decode_batch`]
//! is bit-identical to feeding that sequence's token through
//! [`TransformerModel::decode_step`] alone. This holds because the GEMM
//! kernels reduce each output cell in ascending-k order regardless of
//! batching or grouping (see `pdac_math::gemm`), activation quantization
//! is per-row ([`crate::quant::RowQuantizedMat`]) and stacked-operand
//! quantization per-block ([`crate::quant::GroupQuantizedMat`]), and
//! softmax/layer-norm/GELU are row-local. The `pdac-verify` conformance
//! matrix asserts this, including ragged multi-group batches.

use crate::gemm::GemmBackend;
use crate::inference::{KvCache, TransformerModel};
use crate::ops::{gelu_mat_inplace, layer_norm_rows_inplace, residual_into, softmax_rows_inplace};
use crate::paged::PagedKvCache;
use pdac_math::Mat;
use pdac_power::OpClass;

/// Reusable per-step buffers for the decode hot path.
///
/// Create once (per serving thread) and pass to
/// [`TransformerModel::decode_batch`] /
/// [`TransformerModel::decode_step_with`] on every step; all matrices
/// are resized in place, so after the first step at a given batch shape
/// the engine allocates nothing per token. The number of steps that
/// reused a warm scratch is available as [`DecodeScratch::reuses`] and
/// on the `nn.decode.scratch_reuse` telemetry counter.
#[derive(Debug)]
pub struct DecodeScratch {
    // Batched S × · activations (ping-ponged through the layer stack).
    x: Mat,
    q: Mat,
    k_new: Mat,
    v_new: Mat,
    context: Mat,
    attn_out: Mat,
    x1: Mat,
    h: Mat,
    ffn: Mat,
    // Slot-group bookkeeping: sequence indices ordered by (cache length,
    // index), and one (start, count, post-push length) triple per run of
    // equal-length sequences. Computed once per step.
    group_order: Vec<usize>,
    group_bounds: Vec<(usize, usize, usize)>,
    // Grouped per-head attention operands: G query rows (G × dh), the
    // stacked transposed key gathers (G·dh × L), the grouped score
    // matrix (G × L), the stacked value gathers (G·L × dh) and the
    // grouped context rows (G × dh).
    qg: Mat,
    kgt: Mat,
    scores: Mat,
    vg: Mat,
    ctx: Mat,
    primed: bool,
    reuses: u64,
}

impl Default for DecodeScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl DecodeScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        let mat = || Mat::zeros(1, 1);
        Self {
            x: mat(),
            q: mat(),
            k_new: mat(),
            v_new: mat(),
            context: mat(),
            attn_out: mat(),
            x1: mat(),
            h: mat(),
            ffn: mat(),
            group_order: Vec::new(),
            group_bounds: Vec::new(),
            qg: mat(),
            kgt: mat(),
            scores: mat(),
            vg: mat(),
            ctx: mat(),
            primed: false,
            reuses: 0,
        }
    }

    /// How many decode calls reused this scratch's warm buffers (i.e.
    /// ran without growing any batched activation allocation).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

/// The K/V rows a decode step reads and appends, behind one indirection:
/// either the flat per-sequence [`KvCache`] vectors or a
/// [`PagedKvCache`]'s page tables. The decode core is written against
/// this enum only, so both layouts run the *same* arithmetic in the same
/// order — the gathers below are pure data movement, which is what keeps
/// the paged path inside the bit-identity contract.
pub(crate) enum KvRows<'a, 'c> {
    /// Disjoint per-sequence caches (the original layout).
    Flat(&'a mut [&'c mut KvCache]),
    /// Page-table indirection: batch row `i` decodes slot `slots[i]` of
    /// the paged cache.
    Paged {
        cache: &'a mut PagedKvCache,
        slots: &'a [usize],
    },
}

impl KvRows<'_, '_> {
    /// Number of sequences in this batch.
    fn seqs(&self) -> usize {
        match self {
            KvRows::Flat(caches) => caches.len(),
            KvRows::Paged { slots, .. } => slots.len(),
        }
    }

    /// Validates every sequence against the model's layer count (and,
    /// in debug builds, flat caches against per-layer length skew —
    /// the guard behind the documented [`BatchedKvCache::seq_mut`]
    /// contract).
    fn assert_layers(&self, model_layers: usize) {
        match self {
            KvRows::Flat(caches) => {
                for cache in caches.iter() {
                    assert_eq!(cache.layers.len(), model_layers, "cache layer mismatch");
                    debug_assert!(
                        cache.layers.iter().all(|l| l.len() == cache.len()),
                        "ragged per-layer KV lengths: caches mutated via seq_mut \
                         must keep every layer at the same length"
                    );
                }
            }
            KvRows::Paged { cache, .. } => {
                assert_eq!(cache.layer_count(), model_layers, "cache layer mismatch");
            }
        }
    }

    /// Cached tokens for batch row `i`.
    fn len(&self, i: usize) -> usize {
        match self {
            KvRows::Flat(caches) => caches[i].len(),
            KvRows::Paged { cache, slots } => cache.seq_len(slots[i]),
        }
    }

    /// Sum of cached tokens across the batch (post-push, for the energy
    /// meter).
    fn total_len(&self) -> u64 {
        (0..self.seqs()).map(|i| self.len(i) as u64).sum()
    }

    /// Appends this step's K/V row for batch row `i` at layer `li`.
    fn push_row(&mut self, li: usize, i: usize, k: &[f64], v: &[f64]) {
        match self {
            KvRows::Flat(caches) => caches[i].layers[li].push_row(k, v),
            KvRows::Paged { cache, slots } => cache.push_row(slots[i], li, k, v),
        }
    }

    /// Transposed key gather for batch row `i`, head columns
    /// `c0..c0 + dh`: writes `out[r * l + t] = K[t][c0 + r]` — identical
    /// element order for both layouts.
    fn gather_kt(&self, li: usize, i: usize, c0: usize, dh: usize, l: usize, out: &mut [f64]) {
        match self {
            KvRows::Flat(caches) => {
                for (t, key) in caches[i].layers[li].k.iter().enumerate() {
                    for (r, &kv) in key[c0..c0 + dh].iter().enumerate() {
                        out[r * l + t] = kv;
                    }
                }
            }
            KvRows::Paged { cache, slots } => cache.gather_kt(slots[i], li, c0, dh, l, out),
        }
    }

    /// Value gather for batch row `i`: writes
    /// `out[t * dh..(t + 1) * dh] = V[t][c0..c0 + dh]`.
    fn gather_v(&self, li: usize, i: usize, c0: usize, dh: usize, out: &mut [f64]) {
        match self {
            KvRows::Flat(caches) => {
                for (t, val) in caches[i].layers[li].v.iter().enumerate() {
                    out[t * dh..(t + 1) * dh].copy_from_slice(&val[c0..c0 + dh]);
                }
            }
            KvRows::Paged { cache, slots } => cache.gather_v(slots[i], li, c0, dh, out),
        }
    }
}

/// The shared batched decode core: advances each sequence in `kv`
/// by its row of `tokens`, writing the `S × hidden` final hidden states
/// into `out`.
pub(crate) fn decode_rows(
    model: &TransformerModel,
    tokens: &Mat,
    kv: &mut KvRows<'_, '_>,
    backend: &dyn GemmBackend,
    scratch: &mut DecodeScratch,
    out: &mut Mat,
) {
    let config = model.config();
    let s = tokens.rows();
    let d = config.hidden;
    let ff = config.ff_dim();
    assert_eq!(tokens.cols(), d, "hidden dim mismatch");
    assert_eq!(kv.seqs(), s, "batch size mismatch");
    kv.assert_layers(model.layers.len());

    if scratch.primed && scratch.x.capacity() >= s * d && scratch.h.capacity() >= s * ff {
        scratch.reuses += 1;
        pdac_telemetry::counter_add("nn.decode.scratch_reuse", 1);
    }
    scratch.primed = true;

    // Borrow every buffer individually so the grouped loops below can
    // hold the bookkeeping vectors and the operand matrices at once.
    let DecodeScratch {
        x,
        q,
        k_new,
        v_new,
        context,
        attn_out,
        x1,
        h,
        ffn,
        group_order,
        group_bounds,
        qg,
        kgt,
        scores,
        vg,
        ctx,
        ..
    } = scratch;

    x.resize(s, d);
    x.as_mut_slice().copy_from_slice(tokens.as_slice());

    let dh = config.head_dim();
    let scale = 1.0 / (dh as f64).sqrt();

    // Slot-groups: runs of sequences whose caches hold the same number
    // of rows, ordered by (length, slot index). Every layer pushes one
    // K/V row per sequence before attending, so the grouping — computed
    // from pre-push lengths once per step — is identical in every layer.
    // Unstable sort is fine: the (length, index) keys are unique, so the
    // order is deterministic, and nothing allocates on the warm path.
    group_order.clear();
    group_order.extend(0..s);
    group_order.sort_unstable_by_key(|&sq| (kv.len(sq), sq));
    group_bounds.clear();
    let mut at = 0;
    while at < s {
        let len = kv.len(group_order[at]);
        let mut end = at + 1;
        while end < s && kv.len(group_order[end]) == len {
            end += 1;
        }
        // Post-push context length: this step's K/V row is appended
        // before scoring.
        group_bounds.push((at, end - at, len + 1));
        pdac_telemetry::observe("nn.decode.attention.group_size", (end - at) as f64);
        at = end;
    }

    for (li, layer) in model.layers.iter().enumerate() {
        // Q/K/V projections: one batched GEMM each — the weight operand
        // is prepared (quantized + converted + panel-packed once per
        // matrix by analog backends; panel-packed lazily by the exact
        // backend via `layer.packs()`) for all S sequences.
        let qkv_span = pdac_telemetry::span("nn.decode.qkv");
        backend.matmul_batch_packed_into(x, &layer.wq, &|| &layer.packs().wq, q);
        backend.matmul_batch_packed_into(x, &layer.wk, &|| &layer.packs().wk, k_new);
        backend.matmul_batch_packed_into(x, &layer.wv, &|| &layer.packs().wv, v_new);
        drop(qkv_span);

        let attn_span = pdac_telemetry::span("nn.decode.attention");
        context.resize(s, d);
        for sq in 0..s {
            kv.push_row(li, sq, k_new.row_slice(sq), v_new.row_slice(sq));
        }
        for &(start, g, l) in group_bounds.iter() {
            let seqs = &group_order[start..start + g];
            for head in 0..config.heads {
                let c0 = head * dh;
                qg.resize(g, dh);
                for (gi, &sq) in seqs.iter().enumerate() {
                    qg.row_slice_mut(gi)
                        .copy_from_slice(&q.row_slice(sq)[c0..c0 + dh]);
                }
                // Each sequence's Kᵀ gathered directly in transposed
                // layout — matching the historical `kh.transpose()`
                // element-for-element — and stacked into one G·dh × L
                // operand for the grouped kernel.
                kgt.resize(g * dh, l);
                let kdata = kgt.as_mut_slice();
                for (gi, &sq) in seqs.iter().enumerate() {
                    kv.gather_kt(
                        li,
                        sq,
                        c0,
                        dh,
                        l,
                        &mut kdata[gi * dh * l..(gi + 1) * dh * l],
                    );
                }
                // Grouped transient matmuls: per-step gathers can never
                // hit a weight cache (see `matmul_transient_into`), and
                // grouping runs all G products in one kernel dispatch /
                // conversion pass. Row g stays bit-identical to the solo
                // 1×dh · dh×L product.
                backend.matmul_grouped_transient_into(qg, kgt, scores);
                // Scale + softmax vectorized over the grouped G × L
                // score matrix — both are row-local, so each row matches
                // the solo path's 1 × L pass exactly.
                for v in scores.as_mut_slice() {
                    *v *= scale;
                }
                softmax_rows_inplace(scores);
                vg.resize(g * l, dh);
                let vdata = vg.as_mut_slice();
                for (gi, &sq) in seqs.iter().enumerate() {
                    kv.gather_v(li, sq, c0, dh, &mut vdata[gi * l * dh..(gi + 1) * l * dh]);
                }
                backend.matmul_grouped_transient_into(scores, vg, ctx);
                for (gi, &sq) in seqs.iter().enumerate() {
                    context.row_slice_mut(sq)[c0..c0 + dh].copy_from_slice(ctx.row_slice(gi));
                }
            }
        }

        // Output projection + residual/LN (still the attention stage),
        // then the FFN, batched.
        backend.matmul_batch_packed_into(context, &layer.wo, &|| &layer.packs().wo, attn_out);
        residual_into(x, attn_out, x1);
        layer_norm_rows_inplace(x1, &layer.ln1_gamma, &layer.ln1_beta, 1e-9);
        drop(attn_span);

        let _ffn_span = pdac_telemetry::span("nn.decode.ffn");
        backend.matmul_batch_packed_into(x1, &layer.w1, &|| &layer.packs().w1, h);
        gelu_mat_inplace(h);
        backend.matmul_batch_packed_into(h, &layer.w2, &|| &layer.packs().w2, ffn);
        residual_into(x1, ffn, x);
        layer_norm_rows_inplace(x, &layer.ln2_gamma, &layer.ln2_beta, 1e-9);
    }

    out.resize(s, d);
    out.as_mut_slice().copy_from_slice(x.as_slice());

    record_step_energy(model, kv, s, d, ff);
}

/// Reports the step's executed activity to the live energy meter
/// ([`pdac_power::meter`]), attributed to the decode phases: the
/// `nn.decode.qkv` + `nn.decode.attention` GEMMs land on
/// [`OpClass::Attention`], `nn.decode.ffn` on [`OpClass::Ffn`], and the
/// row-local element-wise work (softmax/LN/GELU/residual) on
/// [`OpClass::Other`] — the same convention as
/// [`crate::workload::op_trace`]. One call per decode step: three
/// atomic records, nothing on the per-head hot path.
///
/// Movement counts only per-step *streamed* bytes (activations in/out of
/// each GEMM, KV gathers, scores): weight operands are backend-resident
/// (converted once into the weight cache), so their one-time streaming
/// is model-load cost, not serving cost. KV paging changes where the
/// gathered rows *live* (and how many fit), not how many stream through
/// the converters per step — so both layouts record identical activity.
/// See DESIGN.md §13 and §15.
fn record_step_energy(
    model: &TransformerModel,
    kv: &KvRows<'_, '_>,
    s: usize,
    d: usize,
    ff: usize,
) {
    if !pdac_power::meter::is_active() || model.layers.is_empty() {
        return;
    }
    let config = model.config();
    let layers = model.layers.len() as u64;
    let (s, d, ff, h) = (s as u64, d as u64, ff as u64, config.heads as u64);
    // Per-sequence context length for this step (caches were pushed
    // above; identical across layers).
    let sum_l: u64 = kv.total_len();
    // QKV + output projections (4·s·d²) plus per-head score/context
    // matmuls (2·d·l per sequence).
    let attn_macs = layers * (4 * s * d * d + 2 * d * sum_l);
    // Streamed bytes at 8-bit: GEMM activations in/out for the four
    // projections (8·s·d), per-head q/context rows (2·d per seq), score
    // rows in+out (2·h·l), and the K/V cache gathers (2·d·l).
    let attn_bytes = layers * (8 * s * d + 2 * d * s + 2 * h * sum_l + 2 * d * sum_l);
    let ffn_macs = layers * 2 * s * d * ff;
    let ffn_bytes = layers * (2 * s * d + 2 * s * ff);
    // Softmax (h·l per seq), two layer-norms + two residuals (4·s·d),
    // GELU (s·ff).
    let elementwise = layers * (h * sum_l + 4 * s * d + s * ff);
    pdac_power::meter::record(OpClass::Attention, attn_macs, attn_bytes, 0);
    pdac_power::meter::record(OpClass::Ffn, ffn_macs, ffn_bytes, 0);
    pdac_power::meter::record(OpClass::Other, 0, 0, elementwise);
}

/// Per-sequence KV caches plus the shared scratch for a fixed-capacity
/// decode batch.
///
/// # Examples
///
/// ```
/// use pdac_math::Mat;
/// use pdac_nn::{BatchedKvCache, ExactGemm, TransformerConfig, TransformerModel};
///
/// let model = TransformerModel::random(TransformerConfig::tiny(), 4, 42);
/// let mut batch = BatchedKvCache::new(&model, 3);
/// let tokens = Mat::from_fn(3, model.config().hidden, |r, c| {
///     ((r * 31 + c) as f64).sin() * 0.1
/// });
/// let hidden = model.decode_batch(&tokens, &mut batch, &ExactGemm);
/// assert_eq!(hidden.shape(), (3, model.config().hidden));
/// assert_eq!(batch.seq(0).len(), 1);
/// ```
#[derive(Debug)]
pub struct BatchedKvCache {
    caches: Vec<KvCache>,
    scratch: DecodeScratch,
}

impl BatchedKvCache {
    /// `batch` empty per-sequence caches for `model`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(model: &TransformerModel, batch: usize) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        Self {
            caches: (0..batch).map(|_| model.new_cache()).collect(),
            scratch: DecodeScratch::new(),
        }
    }

    /// Number of sequence slots.
    pub fn batch(&self) -> usize {
        self.caches.len()
    }

    /// Sequence `i`'s cache.
    pub fn seq(&self, i: usize) -> &KvCache {
        &self.caches[i]
    }

    /// Sequence `i`'s cache, mutably (e.g. to reset a retired slot).
    ///
    /// Mutating a cache between steps is safe with respect to the
    /// shared [`DecodeScratch`]: the scratch holds no per-sequence
    /// state — slot grouping is recomputed from the cache lengths at
    /// the start of every step — so replacing the cache with a fresh
    /// one ([`Self::reset_seq`] does exactly this) or swapping two
    /// slots' caches decodes correctly on the next
    /// [`TransformerModel::decode_batch`]. Two misuses are checked
    /// there instead of silently corrupting attention: substituting a
    /// cache built for a different model panics ("cache layer
    /// mismatch"), and leaving the per-layer K/V vectors at *unequal*
    /// lengths (manual surgery on `KvCache` internals) trips a debug
    /// assertion.
    pub fn seq_mut(&mut self, i: usize) -> &mut KvCache {
        &mut self.caches[i]
    }

    /// Replaces sequence `i`'s cache with a fresh empty one.
    pub fn reset_seq(&mut self, i: usize, model: &TransformerModel) {
        self.caches[i] = model.new_cache();
    }

    /// The shared decode scratch (for reuse diagnostics).
    pub fn scratch(&self) -> &DecodeScratch {
        &self.scratch
    }
}

impl TransformerModel {
    /// Advances `cache.batch()` sequences by one token each: row `s` of
    /// `tokens` is the current token embedding of sequence `s`.
    ///
    /// Returns the `S × hidden` final hidden states; row `s` is
    /// **bit-identical** to calling [`Self::decode_step`] with that row
    /// against sequence `s`'s cache alone.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.cols() != hidden`, `tokens.rows()` differs
    /// from the batch size, or any cache has the wrong layer count.
    pub fn decode_batch(
        &self,
        tokens: &Mat,
        cache: &mut BatchedKvCache,
        backend: &dyn GemmBackend,
    ) -> Mat {
        let mut out = Mat::zeros(1, 1);
        let BatchedKvCache { caches, scratch } = cache;
        let mut refs: Vec<&mut KvCache> = caches.iter_mut().collect();
        let _span = pdac_telemetry::span("nn.inference.decode_batch");
        pdac_telemetry::counter_add("nn.inference.decoded_tokens", tokens.rows() as u64);
        decode_rows(
            self,
            tokens,
            &mut KvRows::Flat(&mut refs),
            backend,
            scratch,
            &mut out,
        );
        out
    }

    /// [`Self::decode_batch`] against a [`PagedKvCache`]: row `s` of
    /// `tokens` advances slot `s`. Row `s` of the result is
    /// **bit-identical** to decoding that slot's token history through
    /// [`Self::decode_step`] solo — page-table indirection (including
    /// prefix-shared and copy-on-write pages) is pure data movement.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.rows()` differs from the cache's slot count,
    /// `tokens.cols() != hidden`, or the cache's layer count differs
    /// from the model's.
    pub fn decode_batch_paged(
        &self,
        tokens: &Mat,
        cache: &mut PagedKvCache,
        backend: &dyn GemmBackend,
    ) -> Mat {
        assert_eq!(tokens.rows(), cache.slots(), "batch size mismatch");
        let slots: Vec<usize> = (0..cache.slots()).collect();
        let mut scratch = cache.take_scratch();
        let mut out = Mat::zeros(1, 1);
        self.decode_paged_with(tokens, cache, &slots, backend, &mut scratch, &mut out);
        cache.put_scratch(scratch);
        out
    }

    /// [`Self::decode_batch_paged`] over an arbitrary subset of slots
    /// (row `i` of `tokens` advances `slots[i]`), writing into a
    /// caller-owned output — the form the continuous-batching scheduler
    /// uses when some slots are empty or retired.
    pub fn decode_paged_with(
        &self,
        tokens: &Mat,
        cache: &mut PagedKvCache,
        slots: &[usize],
        backend: &dyn GemmBackend,
        scratch: &mut DecodeScratch,
        out: &mut Mat,
    ) {
        debug_assert!(
            slots
                .iter()
                .all(|&a| slots.iter().filter(|&&b| b == a).count() == 1),
            "duplicate slot in paged decode batch"
        );
        let _span = pdac_telemetry::span("nn.inference.decode_batch");
        pdac_telemetry::counter_add("nn.inference.decoded_tokens", tokens.rows() as u64);
        decode_rows(
            self,
            tokens,
            &mut KvRows::Paged { cache, slots },
            backend,
            scratch,
            out,
        );
    }

    /// [`Self::decode_batch`] over an arbitrary (possibly ragged)
    /// set of per-sequence caches, writing into a caller-owned output —
    /// the form the continuous-batching scheduler uses after retiring
    /// sequences mid-run.
    pub fn decode_batch_with(
        &self,
        tokens: &Mat,
        caches: &mut [&mut KvCache],
        backend: &dyn GemmBackend,
        scratch: &mut DecodeScratch,
        out: &mut Mat,
    ) {
        let _span = pdac_telemetry::span("nn.inference.decode_batch");
        pdac_telemetry::counter_add("nn.inference.decoded_tokens", tokens.rows() as u64);
        decode_rows(
            self,
            tokens,
            &mut KvRows::Flat(caches),
            backend,
            scratch,
            out,
        );
    }

    /// [`Self::decode_step`] with a caller-owned scratch, so repeated
    /// single-sequence decoding also runs allocation-lean.
    pub fn decode_step_with(
        &self,
        token: &[f64],
        cache: &mut KvCache,
        backend: &dyn GemmBackend,
        scratch: &mut DecodeScratch,
    ) -> Vec<f64> {
        let _span = pdac_telemetry::span("nn.inference.decode_step");
        pdac_telemetry::counter_add("nn.inference.decoded_tokens", 1);
        assert_eq!(token.len(), self.config().hidden, "hidden dim mismatch");
        let tokens = Mat::from_rows(1, token.len(), token.to_vec()).expect("row vector");
        let mut out = Mat::zeros(1, 1);
        decode_rows(
            self,
            &tokens,
            &mut KvRows::Flat(&mut [cache]),
            backend,
            scratch,
            &mut out,
        );
        out.row(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransformerConfig;
    use crate::gemm::{AnalogGemm, AsymmetricGemm, ExactGemm};
    use pdac_core::edac::ElectricalDac;
    use pdac_core::pdac::PDac;

    fn tiny_model() -> TransformerModel {
        TransformerModel::random(TransformerConfig::tiny(), 4, 7)
    }

    fn token_rows(model: &TransformerModel, s: usize, seed: u64) -> Mat {
        let input = model.random_input(seed);
        Mat::from_fn(s, model.config().hidden, |r, c| {
            input[(r % input.rows(), c)]
        })
    }

    fn assert_batch_matches_sequential(backend: &dyn GemmBackend, steps: usize, s: usize) {
        let m = tiny_model();
        let mut batch = BatchedKvCache::new(&m, s);
        let mut solo: Vec<KvCache> = (0..s).map(|_| m.new_cache()).collect();
        for t in 0..steps {
            let tokens = token_rows(&m, s, 40 + t as u64);
            let got = m.decode_batch(&tokens, &mut batch, backend);
            for (sq, cache) in solo.iter_mut().enumerate() {
                let want = m.decode_step(&tokens.row(sq), cache, backend);
                assert_eq!(
                    got.row(sq),
                    want,
                    "step {t} seq {sq} diverged from sequential decode"
                );
            }
        }
    }

    #[test]
    fn exact_batch_rows_bit_identical_to_decode_step() {
        assert_batch_matches_sequential(&ExactGemm, 3, 4);
    }

    #[test]
    fn analog_batch_rows_bit_identical_to_decode_step() {
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac");
        assert_batch_matches_sequential(&pdac, 3, 3);
    }

    #[test]
    fn asymmetric_batch_rows_bit_identical_to_decode_step() {
        let b = AsymmetricGemm::new(
            ElectricalDac::new(8).unwrap(),
            PDac::with_optimal_approx(8).unwrap(),
            "edac-act/pdac-wt",
        );
        assert_batch_matches_sequential(&b, 2, 3);
    }

    #[test]
    fn batch_of_one_matches_decode_step() {
        assert_batch_matches_sequential(&ExactGemm, 4, 1);
    }

    #[test]
    fn decode_step_with_reuses_scratch() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        let mut scratch = DecodeScratch::new();
        let input = m.random_input(6);
        for t in 0..4 {
            let _ = m.decode_step_with(&input.row(t), &mut cache, &ExactGemm, &mut scratch);
        }
        // First call primes the buffers; the other three reuse them.
        assert_eq!(scratch.reuses(), 3);
    }

    #[test]
    fn batched_cache_tracks_per_sequence_lengths() {
        let m = tiny_model();
        let mut batch = BatchedKvCache::new(&m, 2);
        let tokens = token_rows(&m, 2, 9);
        let _ = m.decode_batch(&tokens, &mut batch, &ExactGemm);
        let _ = m.decode_batch(&tokens, &mut batch, &ExactGemm);
        assert_eq!(batch.seq(0).len(), 2);
        assert_eq!(batch.seq(1).len(), 2);
        batch.reset_seq(1, &m);
        assert!(batch.seq(1).is_empty());
        assert_eq!(batch.seq(0).len(), 2);
        assert!(batch.scratch().reuses() >= 1);
    }

    #[test]
    fn ragged_caches_decode_via_decode_batch_with() {
        // Sequences at different positions (continuous batching after a
        // retirement) still match their sequential counterparts.
        let m = tiny_model();
        let backend = ExactGemm;
        let mut a = m.new_cache();
        let mut b = m.new_cache();
        let mut a_ref = m.new_cache();
        let mut b_ref = m.new_cache();
        let warm = token_rows(&m, 1, 3);
        // Advance `a` two tokens ahead before batching the pair.
        let _ = m.decode_step(&warm.row(0), &mut a, &backend);
        let _ = m.decode_step(&warm.row(0), &mut a, &backend);
        let _ = m.decode_step(&warm.row(0), &mut a_ref, &backend);
        let _ = m.decode_step(&warm.row(0), &mut a_ref, &backend);
        let tokens = token_rows(&m, 2, 5);
        let mut scratch = DecodeScratch::new();
        let mut out = Mat::zeros(1, 1);
        m.decode_batch_with(
            &tokens,
            &mut [&mut a, &mut b],
            &backend,
            &mut scratch,
            &mut out,
        );
        let wa = m.decode_step(&tokens.row(0), &mut a_ref, &backend);
        let wb = m.decode_step(&tokens.row(1), &mut b_ref, &backend);
        assert_eq!(out.row(0), wa);
        assert_eq!(out.row(1), wb);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn wrong_batch_size_rejected() {
        let m = tiny_model();
        let mut batch = BatchedKvCache::new(&m, 2);
        let tokens = token_rows(&m, 3, 1);
        m.decode_batch(&tokens, &mut batch, &ExactGemm);
    }

    #[test]
    #[should_panic(expected = "hidden dim mismatch")]
    fn wrong_hidden_dim_rejected() {
        let m = tiny_model();
        let mut batch = BatchedKvCache::new(&m, 2);
        let tokens = Mat::zeros(2, 7);
        m.decode_batch(&tokens, &mut batch, &ExactGemm);
    }
}
