//! Extension: Monte-Carlo device-variation robustness of the P-DAC.
use pdac_core::variation::{monte_carlo, VariationParams};

fn main() {
    println!("Monte-Carlo device variation — P-DAC worst-case error");
    println!("=====================================================\n");
    println!("(nominal worst case: 8.5%; 200 sampled device instances)\n");
    println!("  sigma scale   mean worst%   min%    max%");
    for scale in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let params = VariationParams::typical().scaled(scale);
        let rep = monte_carlo(8, &params, 200, 99);
        println!(
            "  {:>11.1}   {:>10.2}   {:>5.2}   {:>5.2}",
            scale,
            100.0 * rep.mean_worst,
            100.0 * rep.min_worst,
            100.0 * rep.max_worst
        );
    }
    println!(
        "\n(scale 1.0 = typical foundry corner: 1% MZM splitting imbalance,\n\
         0.5% TIA weight mismatch, 0.2% drive noise)"
    );

    // Post-fabrication trim: probe each bit, correct its TIA weight.
    use pdac_core::variation::VariedPDac;
    use pdac_math::rng::SplitMix64;
    println!("\npost-fab trim (40 instances at 4x the typical corner, no noise):");
    let params = VariationParams {
        mzm_imbalance_sigma: 0.0,
        tia_weight_sigma: 0.02,
        drive_noise_sigma: 0.0,
    };
    let mut rng = SplitMix64::seed_from_u64(7);
    let mut before = 0.0f64;
    let mut after = 0.0f64;
    let n = 40;
    for _ in 0..n {
        let mut device = VariedPDac::sample(8, &params, &mut rng);
        before += device.worst_relative_error(0.05);
        device.trim();
        after += device.worst_relative_error(0.05);
    }
    println!(
        "  mean worst error: {:.2}% before trim -> {:.2}% after (nominal 8.50%)",
        100.0 * before / n as f64,
        100.0 * after / n as f64
    );
}
