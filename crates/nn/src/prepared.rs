//! Prepared operands and the weight-conversion cache.
//!
//! Analog GEMM pays an operand-conversion tax on every call: quantize,
//! then push each code through the converter. For activations that work
//! is unavoidable (new values every call), but weight matrices are
//! identical across every token of generative decoding — re-converting
//! them per step is pure waste. [`PreparedOperand`] captures the result
//! of quantize+convert once; [`WeightCache`] memoizes prepared operands
//! behind the unchanged [`crate::gemm::GemmBackend`] call surface using
//! interior mutability.
//!
//! Cache keys combine the operand's data address, shape, driver bit
//! width, and a 64-bit FNV-1a fingerprint of the element bits. The
//! fingerprint makes the cache safe against both in-place mutation (same
//! address, new contents → miss) and address reuse after deallocation
//! (same address, different matrix → fingerprint mismatch → miss); a
//! false hit would need an address *and* fingerprint collision on an
//! equal-shaped matrix. Entries are evicted least-recently-used beyond
//! [`WeightCache::capacity`]. Hits and misses are counted locally and on
//! the `nn.gemm.weight_cache.{hit,miss}` telemetry counters.

use crate::quant::QuantizedMat;
use pdac_core::converter::MzmDriver;
use pdac_math::gemm::PackedB;
use pdac_math::gemm_i8::PackedBi8;
use pdac_math::Mat;
use std::cell::{Cell, OnceCell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Default maximum number of cached prepared operands.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// Identity of a prepared operand: where it lived, its shape, the drive
/// precision, and what its bits hashed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OperandKey {
    ptr: usize,
    rows: usize,
    cols: usize,
    bits: u8,
    fingerprint: u64,
}

impl OperandKey {
    fn of(mat: &Mat, bits: u8) -> Self {
        Self {
            ptr: mat.as_slice().as_ptr() as usize,
            rows: mat.rows(),
            cols: mat.cols(),
            bits,
            fingerprint: fingerprint(mat.as_slice()),
        }
    }
}

/// 64-bit content hash over the raw bit patterns of the elements:
/// word-wise FNV-1a run as four independent lanes (a single FNV chain is
/// one long serial multiply dependency; four lanes pipeline, keeping the
/// per-call hashing cost far below the conversion work the cache saves),
/// folded together with the length at the end.
fn fingerprint(data: &[f64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut lanes = [
        OFFSET,
        OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        OFFSET ^ 0xc2b2_ae3d_27d4_eb4f,
        OFFSET ^ 0x1656_67b1_9e37_79f9,
    ];
    for chunk in data.chunks(lanes.len()) {
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            *lane = (*lane ^ v.to_bits()).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET ^ data.len() as u64;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    h
}

/// A matrix already quantized and pushed through a converter drive path,
/// ready to enter a GEMM without further per-element physics.
///
/// # Examples
///
/// ```
/// use pdac_core::pdac::PDac;
/// use pdac_math::Mat;
/// use pdac_nn::prepared::PreparedOperand;
///
/// let w = Mat::from_rows(2, 2, vec![0.5, -0.25, 0.125, 1.0])?;
/// let pdac = PDac::with_optimal_approx(8).unwrap();
/// let prepared = PreparedOperand::prepare(&w, &pdac);
/// assert_eq!(prepared.converted().shape(), (2, 2));
/// # Ok::<(), pdac_math::matrix::MatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PreparedOperand {
    converted: Mat,
    bits: u8,
    /// Quantized codes (narrow storage; every `bits ≤ 16` code fits).
    codes: Vec<i16>,
    /// The per-tensor quantization scale behind `converted`.
    scale: f64,
    packed: OnceCell<PackedB>,
    packed_codes: OnceCell<PackedBi8>,
    biased_codes: OnceCell<Vec<u8>>,
}

impl PartialEq for PreparedOperand {
    /// Equality on the converted contents; the lazily-packed panels are
    /// derived data and excluded.
    fn eq(&self, other: &Self) -> bool {
        self.converted == other.converted && self.bits == other.bits
    }
}

impl PreparedOperand {
    /// Quantizes `mat` per-tensor at the driver's bit width and converts
    /// every code through `driver` — the same transform
    /// [`crate::gemm::AnalogGemm`] applies per call, done once.
    pub fn prepare(mat: &Mat, driver: &dyn MzmDriver) -> Self {
        let _span = pdac_telemetry::span("nn.gemm.prepare_operand");
        let bits = driver.bits();
        let quantized = QuantizedMat::quantize(mat, bits);
        let codes = quantized.codes().iter().map(|&c| c as i16).collect();
        let scale = quantized.scale();
        Self {
            converted: quantized.dequantize_with(driver),
            bits,
            codes,
            scale,
            packed: OnceCell::new(),
            packed_codes: OnceCell::new(),
            biased_codes: OnceCell::new(),
        }
    }

    /// The converted matrix (scale · driver(code) per element).
    pub fn converted(&self) -> &Mat {
        &self.converted
    }

    /// The raw quantized codes, row-major.
    pub fn codes(&self) -> &[i16] {
        &self.codes
    }

    /// The per-tensor quantization scale the codes were produced with.
    pub fn code_scale(&self) -> f64 {
        self.scale
    }

    /// The quantized codes packed into integer-GEMM panels, built on
    /// first use and cached for the operand's lifetime — the weight side
    /// of the byte-size integer fast path (`pdac_math::gemm_i8`).
    pub fn packed_codes(&self) -> &PackedBi8 {
        self.packed_codes.get_or_init(|| {
            pdac_telemetry::counter_add("nn.gemm.weight_cache.packed_i8", 1);
            PackedBi8::pack(&self.codes, self.converted.rows(), self.converted.cols())
        })
    }

    /// The quantized codes biased to `0..=2·max_code` (`code + max_code`
    /// per element, row-major), built on first use — the weight-side
    /// index stream of the product-LUT route
    /// (`pdac_math::gemm_i8::gemm_product_lut`).
    ///
    /// # Panics
    ///
    /// Panics if the operand was prepared at more than 8 bits (biased
    /// codes must fit a byte).
    pub fn biased_codes(&self) -> &[u8] {
        self.biased_codes.get_or_init(|| {
            assert!(self.bits <= 8, "biased codes require byte-size codes");
            let bias = (1i16 << (self.bits - 1)) - 1;
            self.codes.iter().map(|&c| (c + bias) as u8).collect()
        })
    }

    /// The converted matrix packed into GEMM column panels, built on
    /// first use and cached for the operand's lifetime — so the batched
    /// decode hot path skips the per-call packing pass on every weight
    /// multiply after the first. [`Mat::matmul_prepacked_into`] over
    /// these panels is bit-identical to a plain matmul against
    /// [`Self::converted`].
    pub fn packed(&self) -> &PackedB {
        self.packed.get_or_init(|| {
            pdac_telemetry::counter_add("nn.gemm.weight_cache.packed", 1);
            PackedB::pack(
                self.converted.as_slice(),
                self.converted.rows(),
                self.converted.cols(),
            )
        })
    }

    /// The drive bit width the operand was prepared for.
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

/// An LRU memo of [`PreparedOperand`]s keyed by operand identity, shared
/// behind `&self` (interior mutability) so [`crate::gemm::GemmBackend`]
/// implementations can consult it from their immutable `matmul`.
#[derive(Debug, Clone)]
pub struct WeightCache {
    entries: RefCell<HashMap<OperandKey, (Rc<PreparedOperand>, u64)>>,
    stamp: Cell<u64>,
    capacity: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl Default for WeightCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl WeightCache {
    /// Creates a cache holding at most `capacity` prepared operands.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        Self {
            entries: RefCell::new(HashMap::new()),
            stamp: Cell::new(0),
            capacity,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Returns the prepared form of `mat` under `driver`, converting on
    /// first sight and answering repeats from the memo.
    pub fn get_or_prepare(&self, mat: &Mat, driver: &dyn MzmDriver) -> Rc<PreparedOperand> {
        let key = OperandKey::of(mat, driver.bits());
        let stamp = self.stamp.get().wrapping_add(1);
        self.stamp.set(stamp);
        if let Some((prepared, last_used)) = self.entries.borrow_mut().get_mut(&key) {
            *last_used = stamp;
            self.hits.set(self.hits.get() + 1);
            pdac_telemetry::counter_add("nn.gemm.weight_cache.hit", 1);
            return Rc::clone(prepared);
        }
        self.misses.set(self.misses.get() + 1);
        pdac_telemetry::counter_add("nn.gemm.weight_cache.miss", 1);
        let prepared = Rc::new(PreparedOperand::prepare(mat, driver));
        let mut entries = self.entries.borrow_mut();
        if entries.len() >= self.capacity {
            // Evict the least-recently-used entry.
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
            {
                entries.remove(&oldest);
                pdac_telemetry::counter_add("nn.gemm.weight_cache.evictions", 1);
            }
        }
        entries.insert(key, (Rc::clone(&prepared), stamp));
        prepared
    }

    /// Maximum number of cached operands.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently cached operands.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Drops every cached operand (statistics are kept).
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdac_core::edac::ElectricalDac;
    use pdac_core::pdac::PDac;
    use pdac_math::rng::SplitMix64;

    fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = SplitMix64::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-1.0, 1.0))
    }

    #[test]
    fn prepare_matches_direct_quantize_convert() {
        let w = random_mat(6, 5, 1);
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let prepared = PreparedOperand::prepare(&w, &pdac);
        let direct = QuantizedMat::quantize(&w, 8).dequantize_with(&pdac);
        assert_eq!(prepared.converted(), &direct);
        assert_eq!(prepared.bits(), 8);
    }

    #[test]
    fn repeated_lookups_hit() {
        let cache = WeightCache::default();
        let w = random_mat(4, 4, 2);
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let first = cache.get_or_prepare(&w, &pdac);
        let second = cache.get_or_prepare(&w, &pdac);
        assert!(Rc::ptr_eq(&first, &second));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_bits_are_distinct_entries() {
        let cache = WeightCache::default();
        let w = random_mat(4, 4, 3);
        let p8 = PDac::with_optimal_approx(8).unwrap();
        let p4 = PDac::with_optimal_approx(4).unwrap();
        let _ = cache.get_or_prepare(&w, &p8);
        let _ = cache.get_or_prepare(&w, &p4);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn in_place_mutation_invalidates() {
        let cache = WeightCache::default();
        let mut w = random_mat(4, 4, 4);
        let edac = ElectricalDac::new(8).unwrap();
        let before = cache.get_or_prepare(&w, &edac);
        // Same allocation, new contents: the fingerprint must miss.
        w.as_mut_slice()[0] += 0.5;
        let after = cache.get_or_prepare(&w, &edac);
        assert_eq!(cache.misses(), 2);
        assert_ne!(before.converted(), after.converted());
    }

    #[test]
    fn eviction_respects_capacity_and_recency() {
        let cache = WeightCache::new(2);
        let edac = ElectricalDac::new(8).unwrap();
        let a = random_mat(3, 3, 10);
        let b = random_mat(3, 3, 11);
        let c = random_mat(3, 3, 12);
        let _ = cache.get_or_prepare(&a, &edac);
        let _ = cache.get_or_prepare(&b, &edac);
        let _ = cache.get_or_prepare(&a, &edac); // refresh a
        let _ = cache.get_or_prepare(&c, &edac); // evicts b (LRU)
        assert_eq!(cache.len(), 2);
        let _ = cache.get_or_prepare(&a, &edac);
        assert_eq!(cache.hits(), 2, "a must have survived eviction");
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let cache = WeightCache::default();
        let w = random_mat(2, 2, 20);
        let edac = ElectricalDac::new(8).unwrap();
        let _ = cache.get_or_prepare(&w, &edac);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
        let _ = cache.get_or_prepare(&w, &edac);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        WeightCache::new(0);
    }

    #[test]
    fn prepared_codes_match_quantized_mat() {
        let w = random_mat(7, 9, 57);
        let edac = ElectricalDac::new(8).unwrap();
        let prepared = PreparedOperand::prepare(&w, &edac);
        let q = crate::quant::QuantizedMat::quantize(&w, 8);
        assert_eq!(prepared.code_scale(), q.scale());
        let as32: Vec<i32> = prepared.codes().iter().map(|&c| c as i32).collect();
        assert_eq!(as32, q.codes());
        // Biased codes shift every code by max_code into 0..=254.
        let biased = prepared.biased_codes();
        for (&b, &c) in biased.iter().zip(prepared.codes()) {
            assert_eq!(b as i16, c + 127);
        }
        // Packed code panels are memoized like the f64 panels.
        let first = prepared.packed_codes() as *const _;
        assert!(std::ptr::eq(prepared.packed_codes(), first));
        assert_eq!(prepared.packed_codes().k(), 7);
        assert_eq!(prepared.packed_codes().n(), 9);
    }

    #[test]
    fn packed_panels_match_plain_matmul() {
        let w = random_mat(12, 9, 55);
        let x = random_mat(3, 12, 56);
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let prepared = PreparedOperand::prepare(&w, &pdac);
        let mut via_packed = Mat::zeros(1, 1);
        x.matmul_prepacked_into(prepared.packed(), &mut via_packed)
            .unwrap();
        assert_eq!(via_packed, x.matmul(prepared.converted()).unwrap());
        // Second call reuses the cached panels (same address).
        let again = prepared.packed() as *const _;
        assert!(std::ptr::eq(prepared.packed(), again));
    }
}
