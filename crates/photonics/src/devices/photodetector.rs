//! Photodetector.
//!
//! Converts incident optical intensity to photocurrent: "each receiver
//! includes a photodetector (PD) to convert incoming optical signals into
//! electrical signals by generating current when photons interact with its
//! sensitive material" (paper Sec. II-A2). A PD integrates intensity over
//! every wavelength present on its waveguide — the property the DDot unit
//! exploits to sum `(xᵢ±yᵢ)²` over `i` in a single detection.

use crate::field::OpticalField;
use crate::noise::NoiseModel;

/// A photodetector with responsivity `R` (A/W) and dark current (A).
///
/// # Examples
///
/// ```
/// use pdac_photonics::{Photodetector, OpticalField};
///
/// let pd = Photodetector::ideal();
/// let field = OpticalField::from_real(&[2.0]); // intensity ½·4 = 2
/// assert!((pd.detect(&field) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Photodetector {
    responsivity: f64,
    dark_current: f64,
}

impl Photodetector {
    /// An ideal detector: unit responsivity, no dark current.
    pub fn ideal() -> Self {
        Self {
            responsivity: 1.0,
            dark_current: 0.0,
        }
    }

    /// Creates a detector with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `responsivity <= 0` or `dark_current < 0`.
    pub fn new(responsivity: f64, dark_current: f64) -> Self {
        assert!(responsivity > 0.0, "responsivity must be positive");
        assert!(dark_current >= 0.0, "dark current must be nonnegative");
        Self {
            responsivity,
            dark_current,
        }
    }

    /// Responsivity in A/W.
    pub fn responsivity(&self) -> f64 {
        self.responsivity
    }

    /// Dark current in A.
    pub fn dark_current(&self) -> f64 {
        self.dark_current
    }

    /// Noiseless detection: `I = R · Σ_λ ½|E_λ|² + I_dark`.
    pub fn detect(&self, field: &OpticalField) -> f64 {
        self.responsivity * field.total_intensity() + self.dark_current
    }

    /// Detection with shot/thermal noise drawn from `noise`.
    pub fn detect_noisy(&self, field: &OpticalField, noise: &mut NoiseModel) -> f64 {
        let clean = self.detect(field);
        noise.perturb_current(clean)
    }
}

impl Default for Photodetector {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;

    #[test]
    fn detection_scales_with_responsivity() {
        let field = OpticalField::from_real(&[1.0, 1.0]);
        let pd1 = Photodetector::new(1.0, 0.0);
        let pd2 = Photodetector::new(0.8, 0.0);
        assert!((pd2.detect(&field) / pd1.detect(&field) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn detection_sums_channels() {
        let f1 = OpticalField::from_real(&[1.0, 0.0]);
        let f2 = OpticalField::from_real(&[0.0, 1.0]);
        let both = OpticalField::from_real(&[1.0, 1.0]);
        let pd = Photodetector::ideal();
        assert!((pd.detect(&both) - pd.detect(&f1) - pd.detect(&f2)).abs() < 1e-12);
    }

    #[test]
    fn dark_current_adds_offset() {
        let pd = Photodetector::new(1.0, 0.01);
        let dark = OpticalField::dark(1);
        assert!((pd.detect(&dark) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn noiseless_model_is_deterministic() {
        let pd = Photodetector::ideal();
        let mut noise = NoiseModel::disabled(7);
        let field = OpticalField::from_real(&[0.9]);
        let a = pd.detect_noisy(&field, &mut noise);
        assert!((a - pd.detect(&field)).abs() < 1e-15);
    }

    #[test]
    fn noisy_detection_varies() {
        let pd = Photodetector::ideal();
        let mut noise = NoiseModel::gaussian_current(1e-2, 42);
        let field = OpticalField::from_real(&[1.0]);
        let samples: Vec<f64> = (0..100)
            .map(|_| pd.detect_noisy(&field, &mut noise))
            .collect();
        let distinct = samples.windows(2).any(|w| w[0] != w[1]);
        assert!(distinct);
        // Mean should remain near the clean value.
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - pd.detect(&field)).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "responsivity")]
    fn rejects_nonpositive_responsivity() {
        Photodetector::new(0.0, 0.0);
    }
}
