//! Transformer model shape descriptions.
//!
//! Energy results depend only on layer shapes (MAC counts and traffic),
//! which these configs capture exactly for the paper's two workloads:
//! BERT-base with sequence length 128 (Fig. 9) and DeiT with 197 tokens
//! from ImageNet1K 224×224 (Fig. 10). DeiT-base shares BERT-base's
//! dimensions (12 layers, d = 768, 12 heads, 4× FFN) — which is why the
//! paper reports identical total savings for both.

/// The shape of a transformer encoder stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Workload name used in reports.
    pub name: String,
    /// Number of encoder layers.
    pub layers: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Attention heads (must divide `hidden`).
    pub heads: usize,
    /// FFN expansion factor (4 for BERT/DeiT).
    pub ff_mult: usize,
    /// Sequence length in tokens.
    pub seq_len: usize,
}

impl TransformerConfig {
    /// BERT-base, sequence length 128 (paper Fig. 9).
    pub fn bert_base() -> Self {
        Self {
            name: "BERT-base (seq 128)".into(),
            layers: 12,
            hidden: 768,
            heads: 12,
            ff_mult: 4,
            seq_len: 128,
        }
    }

    /// DeiT-base, ImageNet1K 224×224 → 196 patches + 1 class token
    /// (paper Fig. 10).
    pub fn deit_base() -> Self {
        Self {
            name: "DeiT (ImageNet1K-224, 197 tokens)".into(),
            layers: 12,
            hidden: 768,
            heads: 12,
            ff_mult: 4,
            seq_len: 197,
        }
    }

    /// A small configuration for fast functional tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            layers: 2,
            hidden: 32,
            heads: 4,
            ff_mult: 4,
            seq_len: 8,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers == 0 || self.hidden == 0 || self.heads == 0 || self.seq_len == 0 {
            return Err("all dimensions must be nonzero".into());
        }
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(format!(
                "hidden {} must be divisible by heads {}",
                self.hidden, self.heads
            ));
        }
        if self.ff_mult == 0 {
            return Err("ff_mult must be nonzero".into());
        }
        Ok(())
    }

    /// Head dimension `d / heads`.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// FFN intermediate dimension.
    pub fn ff_dim(&self) -> usize {
        self.hidden * self.ff_mult
    }

    /// MACs in one layer's attention block: four `d×d` projections plus
    /// the score and context matmuls.
    pub fn attention_macs_per_layer(&self) -> u64 {
        let s = self.seq_len as u64;
        let d = self.hidden as u64;
        4 * s * d * d + 2 * s * s * d
    }

    /// MACs in one layer's FFN block.
    pub fn ffn_macs_per_layer(&self) -> u64 {
        let s = self.seq_len as u64;
        let d = self.hidden as u64;
        2 * s * d * (self.ff_mult as u64 * d)
    }

    /// Total model MACs per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers as u64 * (self.attention_macs_per_layer() + self.ffn_macs_per_layer())
    }

    /// Weight parameters per layer (attention + FFN).
    pub fn params_per_layer(&self) -> u64 {
        let d = self.hidden as u64;
        4 * d * d + 2 * d * (self.ff_mult as u64 * d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_shape() {
        let c = TransformerConfig::bert_base();
        assert!(c.validate().is_ok());
        assert_eq!(c.head_dim(), 64);
        assert_eq!(c.ff_dim(), 3072);
        // 4·128·768² + 2·128²·768 = 327,155,712.
        assert_eq!(c.attention_macs_per_layer(), 327_155_712);
        // 8·128·768² = 603,979,776.
        assert_eq!(c.ffn_macs_per_layer(), 603_979_776);
        // ~11.17 G MACs for 12 layers.
        assert_eq!(c.total_macs(), 12 * (327_155_712 + 603_979_776));
    }

    #[test]
    fn deit_shape() {
        let c = TransformerConfig::deit_base();
        assert!(c.validate().is_ok());
        assert_eq!(c.seq_len, 197);
        assert_eq!(c.attention_macs_per_layer(), 524_391_936);
        assert_eq!(c.ffn_macs_per_layer(), 929_562_624);
    }

    #[test]
    fn params_per_layer_bert() {
        let c = TransformerConfig::bert_base();
        // 4·768² + 2·768·3072 = 7,077,888.
        assert_eq!(c.params_per_layer(), 7_077_888);
    }

    #[test]
    fn validation_catches_bad_heads() {
        let mut c = TransformerConfig::bert_base();
        c.heads = 7;
        assert!(c.validate().unwrap_err().contains("divisible"));
    }

    #[test]
    fn validation_catches_zero_dims() {
        let mut c = TransformerConfig::tiny();
        c.seq_len = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_is_valid() {
        assert!(TransformerConfig::tiny().validate().is_ok());
    }
}
