//! Microbenches of the conformance/fault-injection harness: the cost of
//! converting through the fault layer relative to the clean drive paths,
//! and the wall time of one full conformance matrix (what the CI step
//! pays).
//!
//! Emits `BENCH_verify.json` (override the path with `PDAC_BENCH_OUT`).

use pdac_bench::microbench::{bench, black_box, BenchResult};
use pdac_core::converter::MzmDriver;
use pdac_core::lut::ConverterLut;
use pdac_core::pdac::PDac;
use pdac_telemetry::Json;
use pdac_verify::conformance::{run_conformance, ConformanceConfig};
use pdac_verify::faults::{FaultSpec, FaultyPDac};

fn record(result: &BenchResult) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(result.name.clone())),
        ("iters".into(), Json::Int(result.iters)),
        ("mean_ns".into(), Json::Num(result.mean_ns)),
        ("min_ns".into(), Json::Num(result.min_ns)),
    ])
}

fn main() {
    let pdac = PDac::with_optimal_approx(8).unwrap();
    let lut = ConverterLut::new(&pdac);
    let clean = FaultyPDac::new(pdac.clone(), FaultSpec::none());
    let faulty = FaultyPDac::new(
        pdac.clone(),
        FaultSpec::none()
            .with_tia_gain_drift(0.05)
            .with_dark_current_ratio(0.02)
            .with_laser_droop(0.1),
    );
    let codes: Vec<i32> = (-127..=127).collect();

    let mut records = Vec::new();
    for (name, driver) in [
        ("verify/convert/pdac", &pdac as &dyn MzmDriver),
        ("verify/convert/lut", &lut),
        ("verify/convert/fault_clean", &clean),
        ("verify/convert/fault_full", &faulty),
    ] {
        let result = bench(name, || {
            codes
                .iter()
                .map(|&c| black_box(driver.convert(black_box(c))))
                .sum::<f64>()
        });
        records.push(record(&result));
    }

    // One full backend-pair matrix on trimmed shapes: the marginal cost
    // CI pays for differential conformance.
    let mut cfg = ConformanceConfig::default();
    cfg.gemm_shapes.truncate(2);
    let result = bench("verify/conformance_matrix", || {
        let report = run_conformance(black_box(&cfg));
        assert!(report.passed());
        report.checks.len()
    });
    records.push(record(&result));

    let out_path =
        std::env::var("PDAC_BENCH_OUT").unwrap_or_else(|_| "BENCH_verify.json".to_string());
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("verify".into())),
        ("records".into(), Json::Arr(records)),
    ]);
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create bench artifact dir");
        }
    }
    std::fs::write(&out_path, doc.render()).expect("write bench artifact");
    println!("verify: wrote {out_path}");
}
