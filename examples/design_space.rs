//! Walking the design space the library opens up: converter variant ×
//! bit precision × drive-path split, on both axes (power and fidelity),
//! plus the serving corner.
//!
//! Run with: `cargo run --release --example design_space`

use pdac::accel::roofline::BandwidthModel;
use pdac::accel::workload_exec::serving_analysis;
use pdac::core::edac::ElectricalDac;
use pdac::core::pdac::PDac;
use pdac::core::MzmDriver;
use pdac::nn::config::TransformerConfig;
use pdac::power::model::{power_saving, DriverKind, PowerModel};
use pdac::power::{ArchConfig, TechParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = ArchConfig::lt_b();
    let tech = TechParams::calibrated();
    let baseline = PowerModel::new(arch.clone(), tech.clone(), DriverKind::ElectricalDac);

    // 1. Converter accuracy landscape: worst-case conversion error.
    println!("converter worst-case |relative error| (codes >= 1/4 full scale):");
    println!("  bits   e-DAC    Eq.18    first-order  minimax");
    for bits in [4u8, 6, 8] {
        let worst = |d: &dyn MzmDriver| {
            let m = d.max_code();
            (m / 4..=m)
                .map(|c| {
                    let ideal = d.ideal_value(c);
                    ((d.convert(c) - ideal) / ideal).abs()
                })
                .fold(0.0f64, f64::max)
        };
        println!(
            "  {bits:>4}   {:>5.2}%   {:>5.2}%   {:>10.2}%   {:>6.2}%",
            100.0 * worst(&ElectricalDac::new(bits)?),
            100.0 * worst(&PDac::with_optimal_approx(bits)?),
            100.0 * worst(&PDac::with_first_order_approx(bits)?),
            100.0 * worst(&PDac::with_minimax_approx(bits)?),
        );
    }

    // 2. Power landscape: savings per drive path and precision.
    println!("\npower saving vs baseline (LT-B, compute-bound):");
    println!("  bits   hybrid   full P-DAC");
    for bits in [4u8, 8, 12] {
        let hybrid = PowerModel::new(arch.clone(), tech.clone(), DriverKind::Hybrid);
        let pdac = PowerModel::new(arch.clone(), tech.clone(), DriverKind::PhotonicDac);
        println!(
            "  {bits:>4}   {:>5.1}%   {:>9.1}%",
            100.0 * power_saving(&baseline, &hybrid, bits),
            100.0 * power_saving(&baseline, &pdac, bits),
        );
    }

    // 3. The serving corner: decode throughput/energy where the optics idle.
    println!("\nBERT-base decode on LT-B + HBM (P-DAC power model):");
    println!("  context   tokens/s   optics duty   mJ/token");
    let power = PowerModel::new(arch.clone(), tech, DriverKind::PhotonicDac);
    for context in [128usize, 1024, 8192] {
        let rep = serving_analysis(
            &TransformerConfig::bert_base(),
            context,
            &arch,
            &BandwidthModel::hbm_class(),
            &power,
            8,
        );
        println!(
            "  {context:>7}   {:>8.0}   {:>10.1}%   {:>8.3}",
            rep.tokens_per_s,
            100.0 * rep.utilization,
            rep.energy_per_token_j * 1e3
        );
    }
    Ok(())
}
