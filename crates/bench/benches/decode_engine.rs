//! Throughput of the batched decode engine: aggregate tokens/s at batch
//! sizes {1, 4, 8, 16} for the exact and the P-DAC analog backend,
//! against the sequential baseline (the same sequences decoded one at a
//! time through `decode_step`).
//!
//! Emits `BENCH_decode.json` (override with `PDAC_BENCH_OUT`). Knobs
//! for CI smoke runs: `PDAC_BENCH_DECODE_HIDDEN` / `_LAYERS` / `_HEADS`
//! (default 256/4/4), `_PROMPT` / `_TOKENS` (default 8/24), `_BATCHES`
//! (default `1,4,8,16`), `_BACKENDS` (default `exact,pdac`), `_REPS`
//! (default 1 — with N > 1 each batched/sequential time is the minimum
//! of N interleaved pairs, cancelling clock drift on busy machines),
//! and `_FLOOR` (assert every measured speedup ≥ this ratio — the CI
//! smoke uses it to fail any batch size slower than sequential). The
//! batch-8 speedup floors (P-DAC ≥3×, exact ≥2× over sequential) are
//! asserted only at the default configuration.

use std::time::Instant;

use pdac_core::pdac::PDac;
use pdac_math::Mat;
use pdac_nn::{
    AnalogGemm, BatchedKvCache, ExactGemm, GemmBackend, TransformerConfig, TransformerModel,
};
use pdac_serve::feedback_embedding;
use pdac_telemetry::Json;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn prompt_tokens(model: &TransformerModel, s: usize, len: usize, seed: u64) -> Vec<Mat> {
    let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            Mat::from_fn(s, model.config().hidden, |_, _| {
                rng.gen_range_f64(-1.0, 1.0)
            })
        })
        .collect()
}

/// Decodes `s` sequences for `prompt.len() + gen` steps through the
/// batched engine; returns elapsed seconds.
fn run_batched(
    model: &TransformerModel,
    backend: &dyn GemmBackend,
    prompt: &[Mat],
    gen: usize,
) -> f64 {
    let s = prompt[0].rows();
    let mut batch = BatchedKvCache::new(model, s);
    let start = Instant::now();
    let mut last = model.decode_batch(&prompt[0], &mut batch, backend);
    for tok in &prompt[1..] {
        last = model.decode_batch(tok, &mut batch, backend);
    }
    for _ in 0..gen {
        let hidden = model.config().hidden;
        let mut data = Vec::with_capacity(s * hidden);
        for r in 0..s {
            data.extend(feedback_embedding(last.row_slice(r)));
        }
        let next = Mat::from_rows(s, hidden, data).expect("feedback batch");
        last = model.decode_batch(&next, &mut batch, backend);
    }
    start.elapsed().as_secs_f64()
}

/// The same workload, one sequence at a time through `decode_step` (the
/// pre-batching serving strategy); returns elapsed seconds.
fn run_sequential(
    model: &TransformerModel,
    backend: &dyn GemmBackend,
    prompt: &[Mat],
    gen: usize,
) -> f64 {
    let s = prompt[0].rows();
    let start = Instant::now();
    for seq in 0..s {
        let mut cache = model.new_cache();
        let mut last = model.decode_step(&prompt[0].row(seq), &mut cache, backend);
        for tok in &prompt[1..] {
            last = model.decode_step(&tok.row(seq), &mut cache, backend);
        }
        for _ in 0..gen {
            let next = feedback_embedding(&last);
            last = model.decode_step(&next, &mut cache, backend);
        }
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let hidden = env_usize("PDAC_BENCH_DECODE_HIDDEN", 256);
    let layers = env_usize("PDAC_BENCH_DECODE_LAYERS", 4);
    let heads = env_usize("PDAC_BENCH_DECODE_HEADS", 4);
    let prompt_len = env_usize("PDAC_BENCH_DECODE_PROMPT", 8);
    let gen = env_usize("PDAC_BENCH_DECODE_TOKENS", 24);
    let batches: Vec<usize> = std::env::var("PDAC_BENCH_DECODE_BATCHES")
        .unwrap_or_else(|_| "1,4,8,16".to_string())
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .collect();
    let backend_names =
        std::env::var("PDAC_BENCH_DECODE_BACKENDS").unwrap_or_else(|_| "exact,pdac".to_string());
    let reps = env_usize("PDAC_BENCH_DECODE_REPS", 1).max(1);
    let floor = env_f64("PDAC_BENCH_DECODE_FLOOR");
    let default_run = hidden == 256 && layers == 4 && prompt_len == 8 && gen == 24;

    let config = TransformerConfig {
        name: "decode-bench".to_string(),
        layers,
        hidden,
        heads,
        ff_mult: 4,
        seq_len: prompt_len + gen,
    };
    config.validate().expect("valid bench config");
    let model = TransformerModel::random(config, 4, 42);

    let backends: Vec<(&str, Box<dyn GemmBackend>)> = vec![
        ("exact", Box::new(ExactGemm) as Box<dyn GemmBackend>),
        (
            "pdac",
            Box::new(AnalogGemm::new(
                PDac::with_optimal_approx(8).expect("8-bit pdac"),
                "pdac-8b",
            )),
        ),
    ]
    .into_iter()
    .filter(|(label, _)| backend_names.split(',').any(|b| b.trim() == *label))
    .collect();

    let mut records = Vec::new();
    let mut pdac_batch8_speedup = None;
    let mut exact_batch8_speedup = None;
    for (label, backend) in &backends {
        for &s in &batches {
            let prompt = prompt_tokens(&model, s, prompt_len, 7 * s as u64 + 1);
            let total_tokens = (s * (prompt_len + gen)) as f64;
            // One warm pass primes weight caches and packs out of the
            // timed region.
            let _ = run_batched(&model, backend.as_ref(), &prompt, 1.min(gen));
            // Interleaved pairs, minimum of `reps`: both sides see the
            // same thermal/clock conditions, and the min discards
            // scheduler hiccups that would otherwise swing the ratio.
            let mut batched_s = f64::INFINITY;
            let mut sequential_s = f64::INFINITY;
            for rep in 0..reps {
                // Alternate which side runs first: a one-directional
                // clock ramp inside each pair would otherwise bias the
                // ratio the same way every rep, and the min never
                // cancels it.
                if rep % 2 == 0 {
                    batched_s = batched_s.min(run_batched(&model, backend.as_ref(), &prompt, gen));
                    sequential_s =
                        sequential_s.min(run_sequential(&model, backend.as_ref(), &prompt, gen));
                } else {
                    sequential_s =
                        sequential_s.min(run_sequential(&model, backend.as_ref(), &prompt, gen));
                    batched_s = batched_s.min(run_batched(&model, backend.as_ref(), &prompt, gen));
                }
            }
            let batched_tps = total_tokens / batched_s.max(1e-12);
            let sequential_tps = total_tokens / sequential_s.max(1e-12);
            let speedup = batched_tps / sequential_tps.max(1e-12);
            println!(
                "decode_engine/{label}/batch{s}: batched {batched_tps:>9.1} tok/s, \
                 sequential {sequential_tps:>9.1} tok/s, speedup {speedup:.2}x"
            );
            if let Some(floor) = floor {
                assert!(
                    speedup >= floor,
                    "decode_engine/{label}/batch{s}: speedup {speedup:.3}x \
                     below the {floor}x floor"
                );
            }
            if s == 8 {
                match *label {
                    "pdac" => pdac_batch8_speedup = Some(speedup),
                    "exact" => exact_batch8_speedup = Some(speedup),
                    _ => {}
                }
            }
            records.push(Json::Obj(vec![
                ("backend".into(), Json::Str((*label).into())),
                ("batch".into(), Json::Int(s as u64)),
                ("tokens".into(), Json::Int(total_tokens as u64)),
                ("batched_s".into(), Json::Num(batched_s)),
                ("sequential_s".into(), Json::Num(sequential_s)),
                ("batched_tokens_per_s".into(), Json::Num(batched_tps)),
                ("sequential_tokens_per_s".into(), Json::Num(sequential_tps)),
                ("speedup".into(), Json::Num(speedup)),
            ]));
        }
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("decode_engine".into())),
        ("hidden".into(), Json::Int(hidden as u64)),
        ("layers".into(), Json::Int(layers as u64)),
        ("heads".into(), Json::Int(heads as u64)),
        ("prompt".into(), Json::Int(prompt_len as u64)),
        ("generated".into(), Json::Int(gen as u64)),
        ("reps".into(), Json::Int(reps as u64)),
        ("results".into(), Json::Arr(records)),
    ]);
    let out_path = std::env::var("PDAC_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode.json").into());
    std::fs::write(&out_path, doc.render() + "\n").expect("write bench json");
    println!("decode_engine: wrote {out_path}");

    if default_run {
        if let Some(speedup) = pdac_batch8_speedup {
            assert!(
                speedup >= 3.0,
                "P-DAC batch-8 speedup {speedup:.2}x below the 3x floor"
            );
            println!("decode_engine: P-DAC batch-8 speedup {speedup:.2}x (floor 3x) OK");
        }
        if let Some(speedup) = exact_batch8_speedup {
            assert!(
                speedup >= 2.0,
                "exact batch-8 speedup {speedup:.2}x below the 2x floor"
            );
            println!("decode_engine: exact batch-8 speedup {speedup:.2}x (floor 2x) OK");
        }
    }
}
