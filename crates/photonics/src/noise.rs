//! Analog noise injection.
//!
//! The paper's analysis is noiseless (its error budget is dominated by the
//! arccos approximation), but a credible photonic simulator must let users
//! ask how shot/thermal noise interacts with the P-DAC's 8.5% worst-case
//! approximation error. [`NoiseModel`] perturbs detector currents with a
//! seeded Gaussian model: a signal-proportional term standing in for shot
//! noise and relative intensity noise, plus a constant-σ thermal term.

use pdac_math::rng::SplitMix64;

/// A seeded Gaussian noise model for photocurrents.
///
/// # Examples
///
/// ```
/// use pdac_photonics::noise::NoiseModel;
///
/// let mut quiet = NoiseModel::disabled(1);
/// assert_eq!(quiet.perturb_current(0.5), 0.5);
///
/// let mut noisy = NoiseModel::gaussian_current(1e-3, 1);
/// let sample = noisy.perturb_current(0.5);
/// assert!((sample - 0.5).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct NoiseModel {
    thermal_sigma: f64,
    relative_sigma: f64,
    rng: SplitMix64,
}

impl NoiseModel {
    /// A model that adds no noise (deterministic pass-through).
    pub fn disabled(seed: u64) -> Self {
        Self {
            thermal_sigma: 0.0,
            relative_sigma: 0.0,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Constant-σ additive Gaussian noise on the current (thermal/TIA
    /// input-referred noise).
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn gaussian_current(sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be nonnegative");
        Self {
            thermal_sigma: sigma,
            relative_sigma: 0.0,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Full model: constant thermal σ plus a signal-proportional term
    /// (σ_total² = thermal² + (relative·I)²), approximating shot noise and
    /// laser RIN in the large-photon-number regime.
    ///
    /// # Panics
    ///
    /// Panics if either sigma is negative.
    pub fn new(thermal_sigma: f64, relative_sigma: f64, seed: u64) -> Self {
        assert!(thermal_sigma >= 0.0, "thermal sigma must be nonnegative");
        assert!(relative_sigma >= 0.0, "relative sigma must be nonnegative");
        Self {
            thermal_sigma,
            relative_sigma,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Whether the model actually perturbs values.
    pub fn is_enabled(&self) -> bool {
        self.thermal_sigma > 0.0 || self.relative_sigma > 0.0
    }

    /// Perturbs a detector current sample.
    pub fn perturb_current(&mut self, current: f64) -> f64 {
        if !self.is_enabled() {
            return current;
        }
        let sigma = (self.thermal_sigma * self.thermal_sigma
            + (self.relative_sigma * current).powi(2))
        .sqrt();
        current + sigma * self.standard_normal()
    }

    /// Box-Muller standard normal draw.
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.open01();
        let u2: f64 = self.rng.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_identity() {
        let mut m = NoiseModel::disabled(0);
        assert!(!m.is_enabled());
        for &x in &[0.0, 1.0, -3.5] {
            assert_eq!(m.perturb_current(x), x);
        }
    }

    #[test]
    fn seeded_model_is_reproducible() {
        let mut a = NoiseModel::gaussian_current(0.1, 99);
        let mut b = NoiseModel::gaussian_current(0.1, 99);
        for _ in 0..16 {
            assert_eq!(a.perturb_current(1.0), b.perturb_current(1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseModel::gaussian_current(0.1, 1);
        let mut b = NoiseModel::gaussian_current(0.1, 2);
        let sa: Vec<f64> = (0..8).map(|_| a.perturb_current(1.0)).collect();
        let sb: Vec<f64> = (0..8).map(|_| b.perturb_current(1.0)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let mut m = NoiseModel::gaussian_current(0.05, 1234);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.perturb_current(2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.002, "mean={mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.003, "sd={}", var.sqrt());
    }

    #[test]
    fn relative_noise_scales_with_signal() {
        let mut m = NoiseModel::new(0.0, 0.01, 5);
        let n = 20_000;
        let small: f64 = (0..n)
            .map(|_| (m.perturb_current(1.0) - 1.0).powi(2))
            .sum::<f64>()
            / n as f64;
        let large: f64 = (0..n)
            .map(|_| (m.perturb_current(10.0) - 10.0).powi(2))
            .sum::<f64>()
            / n as f64;
        // σ scales ~10x, variance ~100x.
        assert!(large / small > 50.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative_sigma() {
        NoiseModel::gaussian_current(-1.0, 0);
    }
}
