//! Aggregation properties of the offline energy model that the live
//! meter (and every report built on it) relies on: per-class additivity,
//! zero-activity neutrality, and the class ordering of P-DAC savings.

use pdac_math::rng::SplitMix64;
use pdac_power::model::{DriverKind, PowerModel};
use pdac_power::{ArchConfig, EnergyModel, OpClass, OpTrace, TechParams, TraceEntry};

fn model(driver: DriverKind) -> EnergyModel {
    EnergyModel::new(PowerModel::new(
        ArchConfig::lt_b(),
        TechParams::calibrated(),
        driver,
    ))
}

fn entry(class: OpClass, macs: u64, bytes: u64, ew: u64) -> TraceEntry {
    TraceEntry {
        class,
        macs,
        bytes_at_8bit: bytes,
        elementwise_ops: ew,
    }
}

fn trace(entries: Vec<TraceEntry>) -> OpTrace {
    OpTrace {
        name: "prop".into(),
        entries,
    }
}

const CLASSES: [OpClass; 3] = [OpClass::Attention, OpClass::Ffn, OpClass::Other];

/// Deterministic random sweep: the energy of a multi-class trace is the
/// sum of the energies of its single-entry traces, class by class and
/// in total — the property that lets the live meter bill increments
/// independently and still agree with an offline replay.
#[test]
fn class_energies_sum_to_workload_total() {
    let mut rng = SplitMix64::seed_from_u64(0x9E37);
    for driver in [
        DriverKind::ElectricalDac,
        DriverKind::PhotonicDac,
        DriverKind::Hybrid,
    ] {
        let m = model(driver);
        for bits in [4u8, 8, 12] {
            for _ in 0..25 {
                let entries: Vec<TraceEntry> = CLASSES
                    .iter()
                    .map(|&c| {
                        entry(
                            c,
                            rng.gen_range_f64(0.0, 1e9) as u64,
                            rng.gen_range_f64(0.0, 1e8) as u64,
                            rng.gen_range_f64(0.0, 1e7) as u64,
                        )
                    })
                    .collect();
                let whole = m.energy(&trace(entries.clone()), bits);
                let mut split_total = 0.0;
                for e in &entries {
                    let alone = m.energy(&trace(vec![*e]), bits);
                    let class_total = whole.class(e.class).unwrap().total_j();
                    let alone_total = alone.class(e.class).unwrap().total_j();
                    assert!(
                        (class_total - alone_total).abs() <= 1e-12 * alone_total.max(1.0),
                        "{driver:?}/{bits}b {:?}: {class_total} != {alone_total}",
                        e.class
                    );
                    split_total += alone.total_j();
                }
                assert!(
                    (whole.total_j() - split_total).abs() <= 1e-12 * split_total.max(1.0),
                    "{driver:?}/{bits}b: classes do not sum to the workload total"
                );
            }
        }
    }
}

/// Entries with no activity contribute exactly nothing: appending them
/// never changes any total, and their own energy is exactly zero (the
/// live meter's stable three-class trace shape depends on this).
#[test]
fn zero_activity_entries_are_no_ops() {
    let m = model(DriverKind::PhotonicDac);
    let busy = trace(vec![entry(OpClass::Ffn, 1_000_000, 50_000, 300)]);
    let base = m.energy(&busy, 8);
    let mut padded_entries = busy.entries.clone();
    for &c in &CLASSES {
        padded_entries.push(entry(c, 0, 0, 0));
    }
    let padded = m.energy(&trace(padded_entries), 8);
    assert_eq!(base.total_j(), padded.total_j());
    for &c in &CLASSES {
        assert_eq!(
            base.class(c).map(|e| e.total_j()).unwrap_or(0.0),
            padded.class(c).map(|e| e.total_j()).unwrap_or(0.0),
        );
        let alone = m.energy(&trace(vec![entry(c, 0, 0, 0)]), 8);
        assert_eq!(alone.total_j(), 0.0);
    }
}

/// The P-DAC only touches the compute term, and the architecture moves
/// FFN bytes at a higher per-byte cost than attention bytes — so on
/// identical per-class activity, attention keeps a larger relative
/// P-DAC saving than the FFN (its compute fraction is bigger).
#[test]
fn attention_savings_exceed_ffn_savings_on_equal_activity() {
    let edac = model(DriverKind::ElectricalDac);
    let pdac = model(DriverKind::PhotonicDac);
    let mut rng = SplitMix64::seed_from_u64(0x51D);
    for _ in 0..25 {
        let macs = rng.gen_range_f64(1e6, 1e10) as u64;
        let bytes = rng.gen_range_f64(1e5, 1e9) as u64;
        let t = trace(vec![
            entry(OpClass::Attention, macs, bytes, 0),
            entry(OpClass::Ffn, macs, bytes, 0),
        ]);
        let (b, p) = (edac.energy(&t, 8), pdac.energy(&t, 8));
        let saving = |class: OpClass| {
            let (b, p) = (b.class(class).unwrap(), p.class(class).unwrap());
            1.0 - p.total_j() / b.total_j()
        };
        let (attn, ffn) = (saving(OpClass::Attention), saving(OpClass::Ffn));
        assert!(attn > 0.0 && ffn > 0.0, "P-DAC must save on both classes");
        assert!(
            attn > ffn,
            "attention saving {attn:.4} must exceed FFN saving {ffn:.4} \
             (macs {macs}, bytes {bytes})"
        );
    }
}
