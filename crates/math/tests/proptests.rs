//! Randomized property tests for the numerics substrate.
//!
//! These were originally written against `proptest`; the workspace builds
//! fully offline now, so each property is exercised over a seeded
//! [`SplitMix64`] stream instead. Enable the `slow-proptests` feature for
//! deeper sweeps.

use pdac_math::complex::Complex64;
use pdac_math::integrate::{adaptive_simpson, simpson};
use pdac_math::optimize::golden_section;
use pdac_math::piecewise::{PiecewiseLinear, Segment};
use pdac_math::quant::Quantizer;
use pdac_math::rng::SplitMix64;
use pdac_math::series::arccos_series;
use pdac_math::stats::{cosine_similarity, rmse, sqnr_db};

const CASES: usize = if cfg!(feature = "slow-proptests") {
    512
} else {
    64
};

#[test]
fn complex_mul_is_commutative() {
    let mut rng = SplitMix64::seed_from_u64(0xC0);
    for _ in 0..CASES {
        let x = Complex64::new(rng.gen_range_f64(-1e3, 1e3), rng.gen_range_f64(-1e3, 1e3));
        let y = Complex64::new(rng.gen_range_f64(-1e3, 1e3), rng.gen_range_f64(-1e3, 1e3));
        assert!((x * y).approx_eq(y * x, 1e-6));
    }
}

#[test]
fn complex_norm_is_multiplicative() {
    let mut rng = SplitMix64::seed_from_u64(0xC1);
    for _ in 0..CASES {
        let x = Complex64::new(rng.gen_range_f64(-1e2, 1e2), rng.gen_range_f64(-1e2, 1e2));
        let y = Complex64::new(rng.gen_range_f64(-1e2, 1e2), rng.gen_range_f64(-1e2, 1e2));
        let lhs = (x * y).norm();
        let rhs = x.norm() * y.norm();
        assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs));
    }
}

#[test]
fn polar_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0xC2);
    for _ in 0..CASES {
        let r = rng.gen_range_f64(0.001, 100.0);
        let theta = rng.gen_range_f64(-3.1, 3.1);
        let z = Complex64::from_polar(r, theta);
        assert!((z.norm() - r).abs() < 1e-9 * (1.0 + r));
        assert!((z.arg() - theta).abs() < 1e-9);
    }
}

#[test]
fn simpson_linear_is_exact() {
    let mut rng = SplitMix64::seed_from_u64(0xC3);
    for _ in 0..CASES {
        let a = rng.gen_range_f64(-10.0, 10.0);
        let b = rng.gen_range_f64(-10.0, 10.0);
        let lo = rng.gen_range_f64(-5.0, 0.0);
        let hi = lo + rng.gen_range_f64(0.1, 5.0);
        let got = simpson(|x| a * x + b, lo, hi, 16);
        let exact = a * (hi * hi - lo * lo) / 2.0 + b * (hi - lo);
        assert!((got - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }
}

#[test]
fn adaptive_matches_fixed_on_smooth() {
    let mut rng = SplitMix64::seed_from_u64(0xC4);
    // The fixed reference uses 200k panels, so keep this one shallow.
    for _ in 0..CASES.min(16) {
        let freq = rng.gen_range_f64(0.5, 4.0);
        let f = move |x: f64| (freq * x).sin().exp();
        let a = adaptive_simpson(f, 0.0, 2.0, 1e-10);
        let b = simpson(f, 0.0, 2.0, 200_000);
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn golden_section_finds_shifted_parabola() {
    let mut rng = SplitMix64::seed_from_u64(0xC5);
    for _ in 0..CASES {
        let center = rng.gen_range_f64(-0.9, 0.9);
        let m = golden_section(move |x| (x - center).powi(2), -1.0, 1.0, 1e-12);
        assert!((m.x - center).abs() < 1e-6);
    }
}

#[test]
fn quantizer_round_trip_bounded() {
    let mut rng = SplitMix64::seed_from_u64(0xC6);
    for _ in 0..CASES {
        let bits = rng.gen_range_i64(2, 12) as u8;
        let x = rng.gen_range_f64(-1.0, 1.0);
        let q = Quantizer::new(bits, 1.0).unwrap();
        assert!((q.round_trip(x) - x).abs() <= q.step() / 2.0 + 1e-12);
    }
}

#[test]
fn quantizer_is_monotone() {
    let mut rng = SplitMix64::seed_from_u64(0xC7);
    for _ in 0..CASES {
        let bits = rng.gen_range_i64(2, 10) as u8;
        let x = rng.gen_range_f64(-1.0, 1.0);
        let dx = rng.gen_range_f64(0.0, 0.5);
        let q = Quantizer::new(bits, 1.0).unwrap();
        assert!(q.quantize(x + dx) >= q.quantize(x));
    }
}

#[test]
fn arccos_series_below_reference_error() {
    let mut rng = SplitMix64::seed_from_u64(0xC8);
    // The series converges slowly near |r| = 1 (radius of convergence),
    // so test the interior where 80 terms are ample.
    for _ in 0..CASES {
        let r = rng.gen_range_f64(-0.98, 0.98);
        assert!((arccos_series(r, 80) - r.acos()).abs() < 0.01);
    }
}

#[test]
fn piecewise_eval_matches_segment_lines() {
    let mut rng = SplitMix64::seed_from_u64(0xC9);
    for _ in 0..CASES {
        let bp = rng.gen_range_f64(0.1, 0.9);
        let f = PiecewiseLinear::new(vec![
            Segment::new(0.0, bp, 1.0, 0.0),
            Segment::through(bp, bp, 1.0, 0.0),
        ])
        .unwrap();
        // Left segment is identity.
        assert!((f.eval(bp / 2.0) - bp / 2.0).abs() < 1e-12);
        // Endpoint continuity.
        let left = f.segments()[0].eval(bp);
        let right = f.segments()[1].eval(bp);
        assert!((left - right).abs() < 1e-9);
    }
}

#[test]
fn rmse_zero_iff_equal() {
    let mut rng = SplitMix64::seed_from_u64(0xCA);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(1, 31);
        let v: Vec<f64> = (0..len).map(|_| rng.gen_range_f64(-10.0, 10.0)).collect();
        assert_eq!(rmse(&v, &v), 0.0);
    }
}

#[test]
fn sqnr_improves_with_smaller_noise() {
    let mut rng = SplitMix64::seed_from_u64(0xCB);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(4, 31);
        let v: Vec<f64> = (0..len).map(|_| rng.gen_range_f64(0.1, 10.0)).collect();
        let eps = rng.gen_range_f64(0.001, 0.1);
        let noisy_small: Vec<f64> = v.iter().map(|x| x + eps * 0.1).collect();
        let noisy_big: Vec<f64> = v.iter().map(|x| x + eps).collect();
        assert!(sqnr_db(&v, &noisy_small) > sqnr_db(&v, &noisy_big));
    }
}

#[test]
fn cosine_similarity_bounded() {
    let mut rng = SplitMix64::seed_from_u64(0xCC);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(3, 15);
        let a: Vec<f64> = (0..len).map(|_| rng.gen_range_f64(-10.0, 10.0)).collect();
        let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 0.1).collect();
        if let Some(c) = cosine_similarity(&a, &b) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
    }
}
