//! Generative-serving extension: P-DAC savings in the decode phase.
//!
//! The paper's Figs. 9/10 evaluate encoder-style (prefill) inference.
//! Its introduction, however, motivates photonic accelerators with LLM
//! *serving*, where auto-regressive decoding over a KV cache is
//! memory-bound. Because the P-DAC only reduces compute energy, the
//! decode-phase saving must shrink with context length — this study
//! quantifies by how much.

use crate::lt_b_models;
use pdac_nn::config::TransformerConfig;
use pdac_nn::generative::{arithmetic_intensity, decode_trace};
use pdac_nn::workload::op_trace;
use pdac_power::energy::savings;
use pdac_power::EnergyModel;

/// One row of the decode study.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeRow {
    /// Context (prompt) length.
    pub context: usize,
    /// Arithmetic intensity of the decode trace, MAC/byte.
    pub intensity: f64,
    /// Per-token baseline energy, joules.
    pub baseline_j_per_token: f64,
    /// Per-token P-DAC energy, joules.
    pub pdac_j_per_token: f64,
    /// Fractional saving.
    pub saving: f64,
}

/// Sweeps decode-phase savings over context lengths at `bits` precision.
pub fn decode_sweep(config: &TransformerConfig, contexts: &[usize], bits: u8) -> Vec<DecodeRow> {
    let (baseline, pdac) = lt_b_models();
    let be = EnergyModel::new(baseline);
    let pe = EnergyModel::new(pdac);
    let tokens = 32;
    contexts
        .iter()
        .map(|&context| {
            let trace = decode_trace(config, context, tokens);
            let b = be.energy(&trace, bits);
            let p = pe.energy(&trace, bits);
            let rep = savings(&b, &p);
            DecodeRow {
                context,
                intensity: arithmetic_intensity(&trace),
                baseline_j_per_token: b.total_j() / tokens as f64,
                pdac_j_per_token: p.total_j() / tokens as f64,
                saving: rep.total,
            }
        })
        .collect()
}

/// Renders the decode study, contrasting prefill and decode savings.
pub fn report() -> String {
    let config = TransformerConfig::bert_base();
    let (baseline, pdac) = lt_b_models();
    let be = EnergyModel::new(baseline);
    let pe = EnergyModel::new(pdac);

    let mut out = String::from(
        "Generative decode study — P-DAC savings in LLM serving (8-bit)\n\
         ===============================================================\n\n",
    );
    let prefill = op_trace(&config);
    let rep = savings(&be.energy(&prefill, 8), &pe.energy(&prefill, 8));
    out.push_str(&format!(
        "prefill ({} tokens): intensity {:.1} MAC/B, saving {:.1}%\n\n",
        config.seq_len,
        arithmetic_intensity(&prefill),
        100.0 * rep.total
    ));
    out.push_str("decode (per token, 32-token generation):\n");
    out.push_str("  context   MAC/B   base µJ/tok   pdac µJ/tok   saving%\n");
    for row in decode_sweep(&config, &[128, 512, 2048, 8192], 8) {
        out.push_str(&format!(
            "  {:>7}   {:>5.2}   {:>11.1}   {:>11.1}   {:>7.1}\n",
            row.context,
            row.intensity,
            row.baseline_j_per_token * 1e6,
            row.pdac_j_per_token * 1e6,
            100.0 * row.saving
        ));
    }
    out.push_str(
        "\nDecode is memory-bound (weights stream once per token), so the\n\
         P-DAC's compute-side saving is diluted — the quantitative cost of\n\
         the paper's \"P-DAC does not affect data movement\" caveat in the\n\
         serving regime its introduction targets.\n",
    );
    out.push_str(&batch_section());
    out
}

/// Batched-serving section: batching amortizes the streamed weights and
/// pulls decode back toward the compute-bound regime (until per-sequence
/// KV traffic takes over at long context).
fn batch_section() -> String {
    use pdac_accel::roofline::BandwidthModel;
    use pdac_accel::workload_exec::serving_analysis_batched;
    use pdac_power::model::{DriverKind, PowerModel};
    use pdac_power::{ArchConfig, TechParams};

    let arch = ArchConfig::lt_b();
    let power = PowerModel::new(
        arch.clone(),
        TechParams::calibrated(),
        DriverKind::PhotonicDac,
    );
    let bw = BandwidthModel::hbm_class();
    let config = TransformerConfig::bert_base();
    let mut out = String::from(
        "\nbatched decode on HBM (ctx 512, per token):\n\
           batch   tokens/s   optics duty%   mJ/token\n",
    );
    for batch in [1usize, 8, 32, 128] {
        let rep = serving_analysis_batched(&config, 512, &arch, &bw, &power, 8, batch);
        out.push_str(&format!(
            "  {batch:>6}   {:>8.0}   {:>11.1}   {:>8.3}\n",
            rep.tokens_per_s,
            100.0 * rep.utilization,
            rep.energy_per_token_j * 1e3
        ));
    }
    out.push_str(
        "(batching amortizes the weight stream; at long context the\n\
         per-sequence KV traffic caps the recovery below the ridge)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_saving_below_prefill_saving() {
        let config = TransformerConfig::bert_base();
        let (baseline, pdac) = lt_b_models();
        let be = EnergyModel::new(baseline);
        let pe = EnergyModel::new(pdac);
        let prefill = op_trace(&config);
        let prefill_saving = savings(&be.energy(&prefill, 8), &pe.energy(&prefill, 8)).total;
        let rows = decode_sweep(&config, &[128], 8);
        assert!(
            rows[0].saving < prefill_saving / 2.0,
            "decode {} vs prefill {prefill_saving}",
            rows[0].saving
        );
    }

    #[test]
    fn saving_positive_but_small_in_decode() {
        for row in decode_sweep(&TransformerConfig::bert_base(), &[128, 2048], 8) {
            assert!(row.saving > 0.0);
            assert!(row.saving < 0.25, "ctx {}: {}", row.context, row.saving);
        }
    }

    #[test]
    fn longer_context_costs_more_per_token() {
        let rows = decode_sweep(&TransformerConfig::bert_base(), &[128, 8192], 8);
        assert!(rows[1].baseline_j_per_token > rows[0].baseline_j_per_token);
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("prefill"));
        assert!(r.contains("decode"));
        assert!(r.contains("8192"));
    }
}
