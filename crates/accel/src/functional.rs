//! Functional GEMM execution through the photonic models.
//!
//! Every operand element travels the real signal path: per-tensor
//! quantization → converter drive ([`pdac_core::MzmDriver`]: P-DAC or
//! electrical DAC) → the optical field amplitudes consumed by a
//! [`DDotUnit`] → per-cycle balanced detection → ADC requantization of
//! each wavelength-chunk partial product → digital accumulation. The
//! output error therefore composes exactly the paper's error sources:
//! operand quantization, arccos-approximation error (P-DAC only), and
//! output ADC quantization.

use crate::config::AccelConfig;
use crate::memory::MemoryHierarchy;
use crate::scheduler::{GemmShape, TilingPlan};
use crate::stats::RunStats;
use pdac_core::{Adc, ConverterLut, MzmDriver};
use pdac_math::Mat;
use pdac_photonics::DDotUnit;
use std::fmt;

/// Errors from functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Operand inner dimensions disagree.
    DimMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DimMismatch { left, right } => write!(
                f,
                "operand dimensions {}x{} and {}x{} do not chain",
                left.0, left.1, right.0, right.1
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// The result of one functional GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmRun {
    /// The computed output matrix.
    pub output: Mat,
    /// Cycle/activity statistics.
    pub stats: RunStats,
}

/// A functional GEMM engine bound to one configuration.
pub struct FunctionalGemm {
    config: AccelConfig,
    driver: Box<dyn MzmDriver>,
    lut: ConverterLut,
    ddot: DDotUnit,
    noise: Option<(f64, u64)>,
}

impl fmt::Debug for FunctionalGemm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionalGemm")
            .field("config", &self.config)
            .field("driver_bits", &self.driver.bits())
            .finish()
    }
}

impl FunctionalGemm {
    /// Builds the engine (instantiates the configured converter and a
    /// DDot unit sized to the architecture's wavelength count).
    ///
    /// # Errors
    ///
    /// Currently infallible for validated configs; the `Result` reserves
    /// room for converter-construction failures.
    pub fn new(config: AccelConfig) -> Result<Self, crate::config::ConfigError> {
        let driver = config.build_driver();
        let lut = ConverterLut::new(driver.as_ref());
        let ddot = DDotUnit::ideal(config.arch().wavelengths);
        Ok(Self {
            config,
            driver,
            lut,
            ddot,
            noise: None,
        })
    }

    /// Enables Gaussian detector-current noise of the given σ on every
    /// DDot balanced detection (failure injection for robustness
    /// studies). Seeded: repeated executions are reproducible.
    pub fn with_detector_noise(mut self, sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be nonnegative");
        self.noise = Some((sigma, seed));
        self
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The converter drive path the engine modulates operands through
    /// (used by conformance tooling to derive per-element error budgets).
    pub fn driver(&self) -> &dyn MzmDriver {
        self.driver.as_ref()
    }

    /// Executes `a · b` through the full analog path.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DimMismatch`] when `a.cols() != b.rows()`.
    pub fn execute(&self, a: &Mat, b: &Mat) -> Result<GemmRun, ExecError> {
        if a.cols() != b.rows() {
            return Err(ExecError::DimMismatch {
                left: a.shape(),
                right: b.shape(),
            });
        }
        let _run_span = pdac_telemetry::span("accel.gemm.execute");
        let shape = GemmShape::new(a.rows(), a.cols(), b.cols());
        let arch = self.config.arch();
        let plan = {
            let _s = pdac_telemetry::span("accel.stage.tiling");
            TilingPlan::plan(shape, arch)
        };

        // Per-tensor scales (the modulator encodes values in [-1, 1]).
        let scale_a = nonzero(a.max_abs());
        let scale_b = nonzero(b.max_abs());

        // Modulated operand values: scale · driver(convert(quantize(x))).
        let (am, bm) = {
            let _s = pdac_telemetry::span("accel.stage.conversion");
            pdac_telemetry::counter_add(
                "accel.gemm.operand_elements",
                (a.rows() * a.cols() + b.rows() * b.cols()) as u64,
            );
            (self.modulate(a, scale_a), self.modulate(b, scale_b))
        };

        let lambda = arch.wavelengths;
        // Each chunk partial is ADC-sampled before digital accumulation.
        // Partial magnitude is bounded by λ·scale_a·scale_b.
        let adc = Adc::new(self.config.bits(), lambda as f64 * scale_a * scale_b)
            .expect("validated bits and positive scale");

        let mut out = Mat::zeros(shape.m, shape.n);
        let mut x = vec![0.0; lambda];
        let mut y = vec![0.0; lambda];
        let mut noise_model = self
            .noise
            .map(|(sigma, seed)| pdac_photonics::noise::NoiseModel::gaussian_current(sigma, seed));
        for i in 0..shape.m {
            for j in 0..shape.n {
                let mut acc = 0.0;
                let mut k0 = 0;
                while k0 < shape.k {
                    let chunk = (shape.k - k0).min(lambda);
                    for t in 0..lambda {
                        if t < chunk {
                            x[t] = am[(i, k0 + t)];
                            y[t] = bm[(k0 + t, j)];
                        } else {
                            // Dark wavelengths for the padded tail.
                            x[t] = 0.0;
                            y[t] = 0.0;
                        }
                    }
                    let partial = {
                        let _s = pdac_telemetry::span("accel.stage.optical");
                        match noise_model.as_mut() {
                            Some(n) => self
                                .ddot
                                .dot_noisy(&x, &y, n)
                                .expect("operand length matches unit channels"),
                            None => self
                                .ddot
                                .dot(&x, &y)
                                .expect("operand length matches unit channels"),
                        }
                    };
                    {
                        let _s = pdac_telemetry::span("accel.stage.adc");
                        acc += adc.requantize(partial);
                    }
                    k0 += chunk;
                }
                out[(i, j)] = acc;
            }
        }

        // Memory traffic for this GEMM: B is the stationary (weight-like)
        // operand, A the streaming activations.
        let mut mem = MemoryHierarchy::default();
        {
            let _s = pdac_telemetry::span("accel.stage.memory");
            let word = u64::from(self.config.bits()).div_ceil(8).max(1);
            mem.load_weights(shape.k as u64 * shape.n as u64 * word);
            mem.load_activations(shape.m as u64 * shape.k as u64 * word);
            mem.store_results(shape.m as u64 * shape.n as u64 * word);
        }

        let stats = RunStats::from_plan(&plan, mem.counters());
        stats.record_telemetry();
        // Feed the live energy ledger: a standalone functional GEMM has
        // no transformer phase, so it lands on the generic class. Both
        // operands stream through the converters here (no weight cache),
        // so all three operand surfaces count as movement.
        pdac_power::meter::record(
            pdac_power::OpClass::Other,
            stats.macs,
            (shape.k * shape.n + shape.m * shape.k + shape.m * shape.n) as u64,
            0,
        );
        Ok(GemmRun { output: out, stats })
    }

    /// Applies quantization + converter transfer to every element. The
    /// transfer is answered from the dense code table built at
    /// construction — bit-identical to `self.driver.convert_value` (the
    /// table stores the driver's exact per-code outputs) at a fraction
    /// of the cost for physics-heavy drivers like the P-DAC.
    fn modulate(&self, x: &Mat, scale: f64) -> Mat {
        x.map(|v| scale * self.lut.convert_value(v / scale))
    }
}

fn nonzero(x: f64) -> f64 {
    if x == 0.0 {
        1.0
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DriverChoice;
    use pdac_math::rng::SplitMix64;
    use pdac_power::ArchConfig;

    fn small_arch() -> ArchConfig {
        ArchConfig {
            cores: 2,
            rows: 4,
            cols: 4,
            wavelengths: 4,
            clock_hz: 1e9,
        }
    }

    fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = SplitMix64::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-1.0, 1.0))
    }

    fn engine(choice: DriverChoice, bits: u8) -> FunctionalGemm {
        let config = AccelConfig::new(small_arch(), bits, choice).unwrap();
        FunctionalGemm::new(config).unwrap()
    }

    #[test]
    fn baseline_output_close_to_exact() {
        let e = engine(DriverChoice::ElectricalDac, 8);
        let a = random_mat(6, 12, 1);
        let b = random_mat(12, 5, 2);
        let run = e.execute(&a, &b).unwrap();
        let exact = a.matmul(&b).unwrap();
        let rel = run.output.distance(&exact) / exact.distance(&Mat::zeros(6, 5)).max(1e-9);
        assert!(rel < 0.05, "relative distance {rel}");
    }

    #[test]
    fn pdac_output_close_but_with_more_error() {
        let a = random_mat(6, 12, 3);
        let b = random_mat(12, 5, 4);
        let exact = a.matmul(&b).unwrap();
        let base = engine(DriverChoice::ElectricalDac, 8)
            .execute(&a, &b)
            .unwrap();
        let pdac = engine(DriverChoice::PhotonicDac, 8)
            .execute(&a, &b)
            .unwrap();
        let db = base.output.distance(&exact);
        let dp = pdac.output.distance(&exact);
        assert!(dp > db, "P-DAC error {dp} should exceed baseline {db}");
        // But still strongly correlated.
        let cs =
            pdac_math::stats::cosine_similarity(pdac.output.as_slice(), exact.as_slice()).unwrap();
        assert!(cs > 0.99, "cosine {cs}");
    }

    #[test]
    fn first_order_worse_than_optimal() {
        let a = random_mat(8, 16, 5);
        let b = random_mat(16, 8, 6);
        let exact = a.matmul(&b).unwrap();
        let opt = engine(DriverChoice::PhotonicDac, 8)
            .execute(&a, &b)
            .unwrap();
        let first = engine(DriverChoice::PhotonicDacFirstOrder, 8)
            .execute(&a, &b)
            .unwrap();
        assert!(
            first.output.distance(&exact) > opt.output.distance(&exact),
            "first-order should be less accurate"
        );
    }

    #[test]
    fn stats_match_plan() {
        let e = engine(DriverChoice::PhotonicDac, 8);
        let a = random_mat(4, 4, 7);
        let b = random_mat(4, 4, 8);
        let run = e.execute(&a, &b).unwrap();
        // 4×4×4 on 4×4 arrays with 4 λ: one core-cycle.
        assert_eq!(run.stats.core_cycles, 1);
        assert_eq!(run.stats.conversions, 32); // (4+4)·4
        assert_eq!(run.stats.adc_samples, 16);
        assert_eq!(run.stats.macs, 64);
    }

    #[test]
    fn ragged_shapes_pad_with_dark_wavelengths() {
        let e = engine(DriverChoice::ElectricalDac, 8);
        let a = random_mat(3, 7, 9);
        let b = random_mat(7, 2, 10);
        let run = e.execute(&a, &b).unwrap();
        let exact = a.matmul(&b).unwrap();
        assert_eq!(run.output.shape(), (3, 2));
        let rel = run.output.distance(&exact) / exact.distance(&Mat::zeros(3, 2)).max(1e-9);
        assert!(rel < 0.05, "rel={rel}");
    }

    #[test]
    fn dim_mismatch_reported() {
        let e = engine(DriverChoice::PhotonicDac, 8);
        let a = random_mat(2, 3, 1);
        let b = random_mat(4, 2, 2);
        let err = e.execute(&a, &b).unwrap_err();
        assert!(matches!(err, ExecError::DimMismatch { .. }));
        assert!(err.to_string().contains("do not chain"));
    }

    #[test]
    fn zero_matrices_give_zero() {
        let e = engine(DriverChoice::PhotonicDac, 8);
        let a = Mat::zeros(3, 4);
        let b = Mat::zeros(4, 3);
        let run = e.execute(&a, &b).unwrap();
        assert!(run.output.max_abs() < 1e-12);
    }

    #[test]
    fn memory_traffic_counted() {
        let e = engine(DriverChoice::PhotonicDac, 8);
        let a = random_mat(4, 4, 11);
        let b = random_mat(4, 4, 12);
        let run = e.execute(&a, &b).unwrap();
        // 16 weight bytes + 16 activation bytes + 16 result bytes routed
        // through the hierarchy.
        assert!(run.stats.traffic.total() > 0);
        assert_eq!(run.stats.traffic.m2_write, 16);
    }

    #[test]
    fn detector_noise_degrades_but_is_reproducible() {
        let a = random_mat(6, 8, 15);
        let b = random_mat(8, 6, 16);
        let exact = a.matmul(&b).unwrap();
        let quiet = engine(DriverChoice::ElectricalDac, 8);
        let noisy = engine(DriverChoice::ElectricalDac, 8).with_detector_noise(5e-3, 9);
        let dq = quiet.execute(&a, &b).unwrap().output.distance(&exact);
        let r1 = noisy.execute(&a, &b).unwrap();
        let r2 = noisy.execute(&a, &b).unwrap();
        assert_eq!(r1.output, r2.output, "seeded noise must be reproducible");
        assert!(
            r1.output.distance(&exact) > dq,
            "noise must degrade accuracy"
        );
    }

    #[test]
    fn lut_modulation_is_bit_identical_to_driver() {
        for choice in [DriverChoice::PhotonicDac, DriverChoice::ElectricalDac] {
            let e = engine(choice, 8);
            let x = random_mat(7, 9, 17);
            let scale = x.max_abs();
            let via_lut = e.modulate(&x, scale);
            let via_driver = x.map(|v| scale * e.driver.convert_value(v / scale));
            assert_eq!(via_lut, via_driver, "{choice:?}");
        }
    }

    #[test]
    fn higher_precision_reduces_error() {
        let a = random_mat(6, 8, 13);
        let b = random_mat(8, 6, 14);
        let exact = a.matmul(&b).unwrap();
        let d4 = engine(DriverChoice::ElectricalDac, 4)
            .execute(&a, &b)
            .unwrap()
            .output
            .distance(&exact);
        let d8 = engine(DriverChoice::ElectricalDac, 8)
            .execute(&a, &b)
            .unwrap()
            .output
            .distance(&exact);
        assert!(d8 < d4, "8-bit {d8} vs 4-bit {d4}");
    }
}
