//! Quickstart: build a P-DAC, convert codes, and compare against the
//! electrical-DAC baseline and the ideal values.
//!
//! Run with: `cargo run --example quickstart`

use pdac::core::edac::ElectricalDac;
use pdac::core::pdac::PDac;
use pdac::core::MzmDriver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 8;
    let pdac = PDac::with_optimal_approx(bits)?;
    let edac = ElectricalDac::new(bits)?;

    println!("P-DAC vs electrical DAC, {bits}-bit codes");
    println!("(the P-DAC needs no controller and no electrical DAC;");
    println!(" its worst-case error is ~8.5% at r = ±0.7236)\n");
    println!("  code    ideal     P-DAC    err%     e-DAC    err%");
    for code in [-127, -92, -64, -32, -8, 8, 0x20, 0x40, 92, 127] {
        let ideal = pdac.ideal_value(code);
        let p = pdac.convert(code);
        let e = edac.convert(code);
        println!(
            "  {code:>5}  {ideal:+.4}   {p:+.4}  {:>5.2}   {e:+.4}  {:>5.2}",
            100.0 * ((p - ideal) / ideal).abs(),
            100.0 * ((e - ideal) / ideal).abs(),
        );
    }

    // The drive function behind the conversion: the paper's Eq. 18.
    println!("\narccos approximation (paper Eq. 18):");
    println!("  breakpoint k = {:.4}", pdac.approx().breakpoint());
    for seg in pdac.approx().function().segments() {
        println!(
            "  [{:+.4}, {:+.4}]  f(r) = {:+.4}·r {:+.4}",
            seg.lo, seg.hi, seg.slope, seg.intercept
        );
    }
    let (err, at) = pdac.approx().max_reconstruction_error(20_001);
    println!(
        "  max reconstruction error {:.2}% at r = {at:+.4}",
        100.0 * err
    );
    Ok(())
}
