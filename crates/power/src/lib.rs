#![warn(missing_docs)]

//! Power and energy models for photonic transformer accelerators.
//!
//! This crate regenerates the paper's entire evaluation (Figs. 5, 9, 10
//! and 11) from a bottom-up component model:
//!
//! * [`components`] — per-device unit power/energy models with
//!   bit-precision scaling laws (electrical DAC, ADC, laser, P-DAC unit,
//!   MZM driver, DAC controller, SRAM + digital logic);
//! * [`arch`] — accelerator configurations and derived device counts;
//!   [`arch::ArchConfig::lt_b`] is the LT-B configuration the paper
//!   profiles;
//! * [`model`] — aggregation of counts × unit powers into per-component
//!   breakdowns for either MZM drive path;
//! * [`energy`] — workload energy: compute (power × GEMM time), data
//!   movement (per-class pJ/byte), and non-GEMM element-wise operations;
//! * [`meter`] — a live [`EnergyMeter`]: the decode/serve path reports
//!   the activity it executes and the meter converts it to joules (and
//!   a power-budget signal) through the same [`energy`] machinery;
//! * [`presets`] — the calibrated technology parameters. The paper does
//!   not publish its raw component table, so the constants were solved
//!   from its reported percentages; DESIGN.md §5 documents the closure.
//!
//! # Examples
//!
//! ```
//! use pdac_power::arch::ArchConfig;
//! use pdac_power::model::{DriverKind, PowerModel};
//! use pdac_power::presets::TechParams;
//!
//! let arch = ArchConfig::lt_b();
//! let tech = TechParams::calibrated();
//! let baseline = PowerModel::new(arch.clone(), tech.clone(), DriverKind::ElectricalDac);
//! let pdac = PowerModel::new(arch, tech, DriverKind::PhotonicDac);
//! let saving = 1.0 - pdac.breakdown(8).total_watts() / baseline.breakdown(8).total_watts();
//! assert!((saving - 0.477).abs() < 0.01); // the paper's headline 47.7%
//! ```

pub mod arch;
pub mod components;
pub mod energy;
pub mod meter;
pub mod model;
pub mod presets;
pub mod report;

pub use arch::ArchConfig;
pub use components::Component;
pub use energy::{EnergyBreakdown, EnergyModel, OpClass, OpTrace, TraceEntry};
pub use meter::{EnergyMeter, EnergySnapshot};
pub use model::{DriverKind, PowerBreakdown, PowerModel};
pub use presets::TechParams;
