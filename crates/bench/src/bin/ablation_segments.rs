//! Extension: error vs segment count for the arccos approximation.
use pdac_core::multi_segment::segment_ladder;

fn main() {
    println!("Ablation — arccos approximation segments (positive domain)");
    println!("==========================================================\n");
    println!("  segs   comparators   uniform err%   sine-spaced err%");
    for row in segment_ladder(10) {
        println!(
            "  {:>4}   {:>11}   {:>11.2}   {:>15.2}",
            row.segments,
            row.comparators,
            100.0 * row.uniform_error,
            100.0 * row.sine_error
        );
    }
    println!(
        "\n(the paper's Eq. 18 uses 2 positive-domain segments + sign\n\
         mirroring and reaches 8.5%; each extra segment costs one\n\
         comparator and one TIA weight bank)"
    );
}
