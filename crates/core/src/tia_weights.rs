//! TIA weight synthesis for the P-DAC.
//!
//! Given a piecewise-linear drive function `f(r)` and a bit width `b`,
//! this module computes the per-bit TIA feedback weights and region-select
//! thresholds that make a TIA bank output exactly `f(r)` for every
//! representable code (paper Fig. 7 and the closing note of Sec. III-C:
//! "the function in the P-DAC hardware can be easily decomposed into three
//! parts by adding logic gates (e.g., leq)").
//!
//! For a region with line `f(r) = a·r + c` and a positive code of
//! magnitude `m` (so `r = m / M` with `M = 2^(b−1) − 1`), the drive is
//!
//! ```text
//! V = c + Σᵢ bitᵢ · (a · 2^(b−2−i) / M)
//! ```
//!
//! i.e. bit `i`'s TIA weight is the line's slope scaled by the bit's
//! binary significance. Negative codes use the odd symmetry
//! `f(−r) = π − f(|r|)`: the sign slot selects an inverting output stage
//! with a fixed π bias, so only the positive-domain regions need weight
//! tables.

use pdac_math::piecewise::PiecewiseLinear;
use std::f64::consts::PI;

/// Weights for one positive-domain region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionWeights {
    /// Largest magnitude code (inclusive) selecting this region.
    pub max_magnitude: i32,
    /// Constant bias voltage (the line's intercept).
    pub bias: f64,
    /// Per-magnitude-bit TIA weights, MSB first.
    pub bit_weights: Vec<f64>,
}

impl RegionWeights {
    /// Evaluates the region's superimposed voltage for a magnitude code.
    fn voltage(&self, magnitude: i32) -> f64 {
        let bits = self.bit_weights.len();
        let mut v = self.bias;
        for (i, w) in self.bit_weights.iter().enumerate() {
            let bit = (magnitude >> (bits - 1 - i)) & 1;
            if bit != 0 {
                v += w;
            }
        }
        v
    }
}

/// Errors from weight-plan synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightError {
    /// Bit width outside `2..=16`.
    UnsupportedBits(u8),
    /// The drive function's domain is not `[−1, 1]`.
    BadDomain,
}

impl std::fmt::Display for WeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightError::UnsupportedBits(b) => write!(f, "bit width {b} outside 2..=16"),
            WeightError::BadDomain => write!(f, "drive function must cover [-1, 1]"),
        }
    }
}

impl std::error::Error for WeightError {}

/// The synthesized hardware plan: region thresholds + per-region weights.
///
/// # Examples
///
/// ```
/// use pdac_core::approx::ArccosApprox;
/// use pdac_core::tia_weights::TiaWeightPlan;
///
/// let plan = TiaWeightPlan::synthesize(ArccosApprox::optimal().function(), 8)?;
/// // Drive for the paper's 0x40 example: ≈ arccos-approx of 64/127.
/// let v = plan.drive_voltage(0x40);
/// assert!((v.cos() - 64.0 / 127.0).abs() < 0.06);
/// # Ok::<(), pdac_core::tia_weights::WeightError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TiaWeightPlan {
    bits: u8,
    regions: Vec<RegionWeights>,
}

impl TiaWeightPlan {
    /// Synthesizes a plan from a drive function over `[−1, 1]`.
    ///
    /// Region boundaries are quantized to the code grid — exactly what
    /// digital `leq` comparators in the region-select logic do.
    ///
    /// # Errors
    ///
    /// Returns [`WeightError::UnsupportedBits`] outside `2..=16`, or
    /// [`WeightError::BadDomain`] when the function's domain is not
    /// `[−1, 1]`.
    pub fn synthesize(function: &PiecewiseLinear, bits: u8) -> Result<Self, WeightError> {
        if !(2..=16).contains(&bits) {
            return Err(WeightError::UnsupportedBits(bits));
        }
        let (lo, hi) = function.domain();
        if (lo + 1.0).abs() > 1e-9 || (hi - 1.0).abs() > 1e-9 {
            return Err(WeightError::BadDomain);
        }
        let max_code = (1i32 << (bits - 1)) - 1;
        let mag_bits = (bits - 1) as usize;
        // Positive-domain segments ordered by upper bound.
        let mut regions = Vec::new();
        for seg in function.segments().iter().filter(|s| s.hi > 1e-12) {
            let lo_clamped = seg.lo.max(0.0);
            let _ = lo_clamped; // regions are delimited by max_magnitude below
            let max_magnitude = if (seg.hi - 1.0).abs() < 1e-9 {
                max_code
            } else {
                (seg.hi * max_code as f64).floor() as i32
            };
            let bit_weights = (0..mag_bits)
                .map(|i| seg.slope * (1i64 << (mag_bits - 1 - i)) as f64 / max_code as f64)
                .collect();
            regions.push(RegionWeights {
                max_magnitude,
                bias: seg.intercept,
                bit_weights,
            });
        }
        Ok(Self { bits, regions })
    }

    /// Bit width the plan was synthesized for.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Largest magnitude code.
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// The positive-domain regions, ordered by magnitude threshold.
    pub fn regions(&self) -> &[RegionWeights] {
        &self.regions
    }

    /// Index of the region handling a magnitude code (`leq` comparators).
    pub fn region_index(&self, magnitude: i32) -> usize {
        for (i, region) in self.regions.iter().enumerate() {
            if magnitude <= region.max_magnitude {
                return i;
            }
        }
        self.regions.len() - 1
    }

    /// The MZM drive voltage for a signed code: positive codes evaluate
    /// their region's superimposed TIA voltages; negative codes apply the
    /// sign-slot path `V = π − V(|code|)`.
    ///
    /// Codes saturate at `±max_code`.
    pub fn drive_voltage(&self, code: i32) -> f64 {
        let m = self.max_code();
        let code = code.clamp(-m, m);
        let magnitude = code.abs();
        let region = &self.regions[self.region_index(magnitude)];
        let v = region.voltage(magnitude);
        if code < 0 {
            PI - v
        } else {
            v
        }
    }

    /// The analog value the MZM reconstructs for a code: `cos(V)`.
    pub fn reconstruct(&self, code: i32) -> f64 {
        self.drive_voltage(code).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::ArccosApprox;

    fn plan(bits: u8) -> TiaWeightPlan {
        TiaWeightPlan::synthesize(ArccosApprox::optimal().function(), bits).unwrap()
    }

    #[test]
    fn synthesis_validates_inputs() {
        let f = ArccosApprox::optimal();
        assert_eq!(
            TiaWeightPlan::synthesize(f.function(), 1),
            Err(WeightError::UnsupportedBits(1))
        );
        // A function over [0, 1] only is rejected.
        let half =
            pdac_math::piecewise::PiecewiseLinear::new(vec![pdac_math::piecewise::Segment::new(
                0.0, 1.0, -1.0, 1.0,
            )])
            .unwrap();
        assert_eq!(
            TiaWeightPlan::synthesize(&half, 8),
            Err(WeightError::BadDomain)
        );
    }

    #[test]
    fn two_positive_regions_for_three_segment_function() {
        let p = plan(8);
        assert_eq!(p.regions().len(), 2);
        // First region threshold ≈ 0.7236 · 127 = 91.9 → 91.
        assert_eq!(p.regions()[0].max_magnitude, 91);
        assert_eq!(p.regions()[1].max_magnitude, 127);
    }

    #[test]
    fn one_region_for_first_order() {
        let p = TiaWeightPlan::synthesize(ArccosApprox::first_order().function(), 8).unwrap();
        assert_eq!(p.regions().len(), 1);
    }

    #[test]
    fn voltage_matches_continuous_function_on_grid() {
        let approx = ArccosApprox::optimal();
        let p = TiaWeightPlan::synthesize(approx.function(), 8).unwrap();
        let m = p.max_code() as f64;
        for code in -p.max_code()..=p.max_code() {
            let r = code as f64 / m;
            let expected = approx.drive(r);
            let got = p.drive_voltage(code);
            // Region boundary quantization can differ by one code step's
            // worth of the two lines' gap; elsewhere exact.
            assert!(
                (got - expected).abs() < 0.06,
                "code={code}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn binary_weight_structure() {
        let p = plan(8);
        let w = &p.regions()[0].bit_weights;
        assert_eq!(w.len(), 7);
        // Each weight is exactly double the next (binary significance).
        for pair in w.windows(2) {
            assert!((pair[0] / pair[1] - 2.0).abs() < 1e-12);
        }
        // Middle-region slope is −1 → MSB weight = −64/127.
        assert!((w[0] + 64.0 / 127.0).abs() < 1e-12);
    }

    #[test]
    fn sign_path_is_pi_minus_positive() {
        let p = plan(8);
        for code in [1, 17, 64, 91, 92, 127] {
            let pos = p.drive_voltage(code);
            let neg = p.drive_voltage(-code);
            assert!((neg - (std::f64::consts::PI - pos)).abs() < 1e-12);
        }
    }

    #[test]
    fn reconstruction_error_bounded_by_paper_value() {
        // Worst-case over every representable 8-bit code: the hardware
        // plan inherits the 8.5% bound (plus a hair of quantization).
        let p = plan(8);
        let m = p.max_code();
        let mut worst: f64 = 0.0;
        for code in -m..=m {
            if code == 0 {
                continue;
            }
            let r = code as f64 / m as f64;
            let err = ((p.reconstruct(code) - r) / r).abs();
            worst = worst.max(err);
        }
        assert!(worst < 0.09, "worst={worst}");
        assert!(worst > 0.07, "worst={worst} suspiciously low");
    }

    #[test]
    fn zero_code_maps_near_zero() {
        let p = plan(8);
        assert!(p.reconstruct(0).abs() < 1e-12); // cos(π/2) = 0 exactly
    }

    #[test]
    fn full_scale_is_exact() {
        let p = plan(8);
        assert!((p.reconstruct(127) - 1.0).abs() < 1e-9);
        assert!((p.reconstruct(-127) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_beyond_range() {
        let p = plan(4);
        assert_eq!(p.drive_voltage(100), p.drive_voltage(7));
        assert_eq!(p.drive_voltage(-100), p.drive_voltage(-7));
    }

    #[test]
    fn region_index_comparators() {
        let p = plan(8);
        assert_eq!(p.region_index(0), 0);
        assert_eq!(p.region_index(91), 0);
        assert_eq!(p.region_index(92), 1);
        assert_eq!(p.region_index(127), 1);
    }

    #[test]
    fn works_across_bit_widths() {
        for bits in [2u8, 3, 4, 6, 8, 10, 12, 16] {
            let p = plan(bits);
            let m = p.max_code();
            for code in [-m, -1, 0, 1, m] {
                let v = p.drive_voltage(code);
                assert!(v.is_finite(), "bits={bits} code={code}");
            }
        }
    }
}
