//! The decode engine's live-energy instrumentation: metering must never
//! change decoded bits, and the counts it reports must match the closed
//! forms of the activity the engine executes.
//!
//! Lives in its own integration-test process because the meter is a
//! process-global ambient: parallel lib tests decoding concurrently
//! would pollute the exact count assertions.

use pdac_math::Mat;
use pdac_nn::{BatchedKvCache, ExactGemm, TransformerConfig, TransformerModel};
use pdac_power::meter::EnergyMeter;
use pdac_power::model::{DriverKind, PowerModel};
use pdac_power::{ArchConfig, EnergyModel, OpClass, TechParams};

fn token_rows(model: &TransformerModel, s: usize, seed: u64) -> Mat {
    let input = model.random_input(seed);
    Mat::from_fn(s, model.config().hidden, |r, c| {
        input[(r % input.rows(), c)]
    })
}

fn run(model: &TransformerModel, s: usize, steps: usize) -> Vec<Mat> {
    let mut batch = BatchedKvCache::new(model, s);
    (0..steps)
        .map(|t| {
            let tokens = token_rows(model, s, 70 + t as u64);
            model.decode_batch(&tokens, &mut batch, &ExactGemm)
        })
        .collect()
}

#[test]
fn metered_decode_is_bit_identical_and_counts_activity() {
    let model = TransformerModel::random(TransformerConfig::tiny(), 4, 7);
    let config = model.config().clone();
    let (s, steps) = (3usize, 2usize);

    let plain = run(&model, s, steps);

    let pm = PowerModel::new(
        ArchConfig::lt_b(),
        TechParams::calibrated(),
        DriverKind::PhotonicDac,
    );
    let meter = pdac_power::meter::install(EnergyMeter::new(EnergyModel::new(pm), 8));
    let metered = run(&model, s, steps);
    pdac_power::meter::uninstall();

    // Metering observes the step; it must never change the bits.
    assert_eq!(plain, metered);

    let trace = meter.counts();
    let (d, ff) = (config.hidden as u64, config.ff_dim() as u64);
    let (s64, steps64, layers) = (s as u64, steps as u64, config.layers as u64);
    let h = config.heads as u64;

    // FFN activity has no context-length term: exact closed form.
    let ffn = trace.entry(OpClass::Ffn).unwrap();
    assert_eq!(ffn.macs, steps64 * layers * 2 * s64 * d * ff);
    assert_eq!(ffn.bytes_at_8bit, steps64 * layers * 2 * s64 * (d + ff));
    assert_eq!(ffn.elementwise_ops, 0);

    // Attention and element-wise include the per-step context lengths
    // (each of the s sequences is l tokens deep on step l).
    let sum_l: u64 = (1..=steps64).map(|l| l * s64).sum();
    let attn = trace.entry(OpClass::Attention).unwrap();
    assert_eq!(
        attn.macs,
        layers * (steps64 * 4 * s64 * d * d + 2 * d * sum_l)
    );
    assert_eq!(
        attn.bytes_at_8bit,
        layers * (steps64 * 10 * s64 * d + 2 * h * sum_l + 2 * d * sum_l)
    );
    assert_eq!(attn.elementwise_ops, 0);

    let other = trace.entry(OpClass::Other).unwrap();
    assert_eq!(
        other.elementwise_ops,
        layers * (h * sum_l + steps64 * (4 * s64 * d + s64 * ff))
    );
    assert_eq!((other.macs, other.bytes_at_8bit), (0, 0));

    // The ledger prices that activity: P-DAC compute must undercut the
    // e-DAC baseline on the identical trace, movement must not move.
    let snap = meter.snapshot();
    let edac = EnergyModel::new(PowerModel::new(
        ArchConfig::lt_b(),
        TechParams::calibrated(),
        DriverKind::ElectricalDac,
    ))
    .energy(&trace, 8);
    assert!(snap.total_j() > 0.0);
    assert!(snap.total_j() < edac.total_j());
    for class in [OpClass::Attention, OpClass::Ffn] {
        assert_eq!(
            snap.breakdown.class(class).unwrap().movement_j,
            edac.class(class).unwrap().movement_j
        );
    }
}
