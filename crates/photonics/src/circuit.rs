//! Composition of 2×2 passive photonic elements.
//!
//! The DDot front-end — a phase shifter followed by a directional coupler —
//! is one instance of a general pattern: cascades of 2×2 passive stages
//! acting on a pair of waveguides. [`TwoPortChain`] multiplies stage
//! transfer matrices in propagation order and checks energy conservation,
//! giving a compact way to build and verify such cascades.

use pdac_math::{CMat, Complex64};

/// An ordered cascade of 2×2 transfer matrices applied left-to-right in
/// propagation order.
///
/// # Examples
///
/// ```
/// use pdac_photonics::circuit::TwoPortChain;
/// use pdac_photonics::{DirectionalCoupler, PhaseShifter};
///
/// // The DDot front-end: −90° on the bottom arm, then a 50:50 coupler.
/// let chain = TwoPortChain::new()
///     .then(PhaseShifter::minus_90().transfer_bottom())
///     .then(DirectionalCoupler::fifty_fifty().transfer());
/// assert!(chain.is_lossless(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPortChain {
    combined: CMat,
    stages: usize,
}

impl TwoPortChain {
    /// An empty chain (identity transfer).
    pub fn new() -> Self {
        Self {
            combined: CMat::identity(2),
            stages: 0,
        }
    }

    /// Appends a stage at the output end of the chain.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is not 2×2.
    pub fn then(self, stage: CMat) -> Self {
        assert_eq!(
            stage.shape(),
            (2, 2),
            "stages must be 2x2 transfer matrices"
        );
        Self {
            // Output = stage · (previous chain) · input.
            combined: stage.matmul(&self.combined).expect("2x2 shapes"),
            stages: self.stages + 1,
        }
    }

    /// Number of stages appended.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The combined 2×2 transfer matrix.
    pub fn transfer(&self) -> &CMat {
        &self.combined
    }

    /// Propagates a `(top, bottom)` amplitude pair.
    pub fn propagate(&self, top: Complex64, bottom: Complex64) -> (Complex64, Complex64) {
        let out = self
            .combined
            .matvec(&[top, bottom])
            .expect("2-vector matches 2x2");
        (out[0], out[1])
    }

    /// Whether the cascade conserves energy (unitary within `tol`).
    pub fn is_lossless(&self, tol: f64) -> bool {
        self.combined.is_unitary(tol)
    }
}

impl Default for TwoPortChain {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::coupler::DirectionalCoupler;
    use crate::devices::phase_shifter::PhaseShifter;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn empty_chain_is_identity() {
        let chain = TwoPortChain::new();
        let (a, b) = chain.propagate(Complex64::ONE, Complex64::I);
        assert!(a.approx_eq(Complex64::ONE, 1e-12));
        assert!(b.approx_eq(Complex64::I, 1e-12));
        assert_eq!(chain.stages(), 0);
    }

    #[test]
    fn ddot_front_end_produces_sum_and_difference() {
        let chain = TwoPortChain::new()
            .then(PhaseShifter::minus_90().transfer_bottom())
            .then(DirectionalCoupler::fifty_fifty().transfer());
        let x = Complex64::from_re(0.6);
        let y = Complex64::from_re(0.2);
        let (top, bottom) = chain.propagate(x, y);
        // top = (x + y)/√2; bottom = j(x − y)/√2.
        assert!(top.approx_eq(Complex64::from_re(FRAC_1_SQRT_2 * 0.8), 1e-12));
        assert!(bottom.approx_eq(Complex64::new(0.0, FRAC_1_SQRT_2 * 0.4), 1e-12));
    }

    #[test]
    fn cascade_of_unitaries_is_unitary() {
        let chain = TwoPortChain::new()
            .then(PhaseShifter::new(0.3).transfer_bottom())
            .then(DirectionalCoupler::new(0.8).transfer())
            .then(PhaseShifter::new(-1.1).transfer_bottom())
            .then(DirectionalCoupler::new(0.4).transfer());
        assert_eq!(chain.stages(), 4);
        assert!(chain.is_lossless(1e-12));
    }

    #[test]
    fn two_fifty_fifty_couplers_swap_with_phase() {
        // A balanced MZI with no phase difference: two 50:50 couplers in
        // series fully cross the light (up to a global phase of j).
        let dc = DirectionalCoupler::fifty_fifty().transfer();
        let chain = TwoPortChain::new().then(dc.clone()).then(dc);
        let (top, bottom) = chain.propagate(Complex64::ONE, Complex64::ZERO);
        assert!(top.norm() < 1e-12);
        assert!((bottom.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_matters() {
        let a = TwoPortChain::new()
            .then(PhaseShifter::new(0.5).transfer_bottom())
            .then(DirectionalCoupler::fifty_fifty().transfer());
        let b = TwoPortChain::new()
            .then(DirectionalCoupler::fifty_fifty().transfer())
            .then(PhaseShifter::new(0.5).transfer_bottom());
        let ia = a.propagate(Complex64::ONE, Complex64::ZERO);
        let ib = b.propagate(Complex64::ONE, Complex64::ZERO);
        assert!(!ia.0.approx_eq(ib.0, 1e-6) || !ia.1.approx_eq(ib.1, 1e-6));
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn rejects_wrong_shape() {
        TwoPortChain::new().then(CMat::identity(3));
    }
}
