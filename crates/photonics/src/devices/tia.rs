//! Transimpedance amplifier.
//!
//! "A transimpedance amplifier (TIA) then amplifies the weak current from
//! the PD into a usable voltage signal: `V_out = R_f · I_in`" (paper
//! Eq. 1). The P-DAC's central trick lives here: each bit line of the
//! optical digital word gets its own TIA whose feedback resistor `R_f`
//! encodes that bit's *weight*, and the output voltages superimpose into
//! the MZM drive voltage (paper Fig. 7).

/// A transimpedance amplifier with feedback resistance `R_f` (Ω) and an
/// optional output saturation voltage.
///
/// # Examples
///
/// ```
/// use pdac_photonics::Tia;
///
/// let tia = Tia::new(50.0);
/// assert_eq!(tia.amplify(0.02), 1.0); // V = R_f · I
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tia {
    feedback_ohms: f64,
    saturation_volts: Option<f64>,
}

impl Tia {
    /// Creates a linear (non-saturating) TIA.
    ///
    /// # Panics
    ///
    /// Panics if `feedback_ohms` is not finite. Negative feedback
    /// resistance is permitted: an inverting TIA stage realizes negative
    /// bit weights (needed for the P-DAC's negative-slope segments).
    pub fn new(feedback_ohms: f64) -> Self {
        assert!(
            feedback_ohms.is_finite(),
            "feedback resistance must be finite"
        );
        Self {
            feedback_ohms,
            saturation_volts: None,
        }
    }

    /// Creates a TIA whose output clips at `±saturation_volts`.
    ///
    /// # Panics
    ///
    /// Panics if `saturation_volts <= 0` or `feedback_ohms` is not finite.
    pub fn with_saturation(feedback_ohms: f64, saturation_volts: f64) -> Self {
        assert!(
            feedback_ohms.is_finite(),
            "feedback resistance must be finite"
        );
        assert!(
            saturation_volts > 0.0,
            "saturation voltage must be positive"
        );
        Self {
            feedback_ohms,
            saturation_volts: Some(saturation_volts),
        }
    }

    /// Feedback resistance `R_f` in ohms.
    pub fn feedback_ohms(&self) -> f64 {
        self.feedback_ohms
    }

    /// Saturation limit, if configured.
    pub fn saturation_volts(&self) -> Option<f64> {
        self.saturation_volts
    }

    /// Converts input current (A) to output voltage (V), applying
    /// saturation when configured (paper Eq. 1).
    pub fn amplify(&self, current: f64) -> f64 {
        let v = self.feedback_ohms * current;
        match self.saturation_volts {
            Some(sat) => v.clamp(-sat, sat),
            None => v,
        }
    }
}

/// A bank of TIAs whose outputs superimpose — the voltage-summing network
/// of the P-DAC (paper Fig. 7: "apply different weights to each bit through
/// a TIA and superimpose the voltages of each bit").
///
/// # Examples
///
/// ```
/// use pdac_photonics::devices::tia::TiaBank;
///
/// // Binary weights for a 3-bit word (MSB first), unit photocurrent per lit bit.
/// let bank = TiaBank::new(vec![4.0, 2.0, 1.0]);
/// assert_eq!(bank.len(), 3);
/// assert_eq!(bank.sum_voltage(&[1.0, 0.0, 1.0]), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TiaBank {
    stages: Vec<Tia>,
}

impl TiaBank {
    /// Creates a bank from per-bit feedback resistances (weights).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "TIA bank needs at least one stage");
        Self {
            stages: weights.into_iter().map(Tia::new).collect(),
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the bank has no stages (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Per-stage TIAs.
    pub fn stages(&self) -> &[Tia] {
        &self.stages
    }

    /// Superimposed output voltage for the given per-stage photocurrents.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len() != self.len()`.
    pub fn sum_voltage(&self, currents: &[f64]) -> f64 {
        assert_eq!(currents.len(), self.stages.len(), "current count mismatch");
        self.stages
            .iter()
            .zip(currents)
            .map(|(t, &i)| t.amplify(i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_gain() {
        let tia = Tia::new(1000.0);
        assert_eq!(tia.amplify(1e-3), 1.0);
        assert_eq!(tia.amplify(-2e-3), -2.0);
    }

    #[test]
    fn negative_feedback_inverts() {
        let tia = Tia::new(-500.0);
        assert_eq!(tia.amplify(1e-3), -0.5);
    }

    #[test]
    fn saturation_clips_both_rails() {
        let tia = Tia::with_saturation(1000.0, 1.5);
        assert_eq!(tia.amplify(1e-2), 1.5);
        assert_eq!(tia.amplify(-1e-2), -1.5);
        assert_eq!(tia.amplify(1e-3), 1.0);
    }

    #[test]
    fn bank_superimposes_binary_weights() {
        let bank = TiaBank::new(vec![8.0, 4.0, 2.0, 1.0]);
        // Word 1011 -> 8 + 2 + 1 = 11.
        assert_eq!(bank.sum_voltage(&[1.0, 0.0, 1.0, 1.0]), 11.0);
    }

    #[test]
    fn bank_scales_with_photocurrent() {
        let bank = TiaBank::new(vec![2.0, 1.0]);
        assert_eq!(bank.sum_voltage(&[0.5, 0.5]), 1.5);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn bank_rejects_wrong_arity() {
        TiaBank::new(vec![1.0]).sum_voltage(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_bank_rejected() {
        TiaBank::new(vec![]);
    }
}
