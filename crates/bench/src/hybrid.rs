//! Hybrid design-point extension: P-DAC activations, electrical weights.
//!
//! The P-DAC trades accuracy for power. A natural middle design keeps the
//! exact electrical path on one operand bank (the weight-like column
//! operands, whose values repeat across tiles) and converts only the
//! dynamic row operands photonically. This study places the hybrid on
//! both axes — power saving and output fidelity — between the two pure
//! designs, turning the paper's binary choice into a Pareto segment.

use crate::lt_b_models;
use pdac_core::edac::ElectricalDac;
use pdac_core::pdac::PDac;
use pdac_nn::config::TransformerConfig;
use pdac_nn::inference::{fidelity_study, TransformerModel};
use pdac_nn::{AnalogGemm, AsymmetricGemm, ExactGemm};
use pdac_power::model::{power_saving, DriverKind, PowerModel};
use pdac_power::{ArchConfig, TechParams};

/// One design point of the Pareto comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Design label.
    pub name: String,
    /// Fractional power saving over the baseline at 8-bit.
    pub power_saving: f64,
    /// Mean logits SQNR vs exact execution, dB.
    pub sqnr_db: f64,
}

/// Evaluates the three designs at 8-bit.
pub fn pareto(samples: usize) -> Vec<DesignPoint> {
    let (baseline, _) = lt_b_models();
    let tech = TechParams::calibrated();
    let arch = ArchConfig::lt_b();
    let model = TransformerModel::random(TransformerConfig::tiny(), 16, 99);

    let mut points = Vec::new();
    for (name, kind) in [
        ("e-DAC baseline", DriverKind::ElectricalDac),
        ("hybrid", DriverKind::Hybrid),
        ("full P-DAC", DriverKind::PhotonicDac),
    ] {
        let pm = PowerModel::new(arch.clone(), tech.clone(), kind);
        let saving = power_saving(&baseline, &pm, 8);
        let sqnr = match kind {
            DriverKind::ElectricalDac => {
                let backend = AnalogGemm::new(ElectricalDac::new(8).expect("valid"), name);
                fidelity_study(&model, &ExactGemm, &backend, samples).mean_sqnr_db
            }
            DriverKind::Hybrid => {
                let backend = AsymmetricGemm::new(
                    PDac::with_optimal_approx(8).expect("valid"),
                    ElectricalDac::new(8).expect("valid"),
                    name,
                );
                fidelity_study(&model, &ExactGemm, &backend, samples).mean_sqnr_db
            }
            DriverKind::PhotonicDac => {
                let backend = AnalogGemm::new(PDac::with_optimal_approx(8).expect("valid"), name);
                fidelity_study(&model, &ExactGemm, &backend, samples).mean_sqnr_db
            }
        };
        points.push(DesignPoint {
            name: name.to_string(),
            power_saving: saving,
            sqnr_db: sqnr,
        });
    }
    points
}

/// Renders the Pareto comparison.
pub fn report(samples: usize) -> String {
    let mut out = String::from(
        "Hybrid design point — power vs fidelity at 8-bit (LT-B)\n\
         ========================================================\n\n\
         design            saving%    logits SQNR dB\n",
    );
    for p in pareto(samples) {
        out.push_str(&format!(
            "  {:<16} {:>7.1}   {:>13.1}\n",
            p.name,
            100.0 * p.power_saving,
            p.sqnr_db
        ));
    }
    out.push_str(
        "\n(the hybrid keeps the exact electrical path on the weight bank:\n\
         roughly half the P-DAC's power saving at a large chunk of the\n\
         electrical design's fidelity — a Pareto point the paper's\n\
         all-or-nothing comparison skips)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_is_pareto_intermediate() {
        let points = pareto(5);
        let by_name = |n: &str| points.iter().find(|p| p.name.contains(n)).unwrap();
        let base = by_name("baseline");
        let hybrid = by_name("hybrid");
        let pdac = by_name("full");
        // Power: baseline < hybrid < pdac savings.
        assert!(base.power_saving < hybrid.power_saving);
        assert!(hybrid.power_saving < pdac.power_saving);
        // Fidelity: baseline > hybrid > pdac.
        assert!(base.sqnr_db > hybrid.sqnr_db, "{base:?} vs {hybrid:?}");
        assert!(hybrid.sqnr_db > pdac.sqnr_db, "{hybrid:?} vs {pdac:?}");
    }

    #[test]
    fn report_renders() {
        let r = report(2);
        assert!(r.contains("hybrid"));
        assert!(r.contains("SQNR"));
    }
}
