//! Randomized property tests for the NN workload substrate.
//!
//! Originally `proptest`-based; now driven by seeded [`SplitMix64`]
//! streams so the workspace builds offline. Enable `slow-proptests` for
//! deeper sweeps.

use pdac_core::pdac::PDac;
use pdac_math::rng::SplitMix64;
use pdac_math::Mat;
use pdac_nn::config::TransformerConfig;
use pdac_nn::gemm::{AnalogGemm, ExactGemm, GemmBackend};
use pdac_nn::generative::{arithmetic_intensity, decode_trace};
use pdac_nn::ops::{gelu, layer_norm_rows, mean_pool_rows, softmax_rows};
use pdac_nn::quant::QuantizedMat;
use pdac_nn::workload::op_trace;

const CASES: usize = if cfg!(feature = "slow-proptests") {
    512
} else {
    64
};

fn random_config(rng: &mut SplitMix64) -> TransformerConfig {
    let heads = rng.gen_range_usize(1, 5);
    let head_dim = rng.gen_range_usize(1, 4);
    TransformerConfig {
        name: "prop".into(),
        layers: rng.gen_range_usize(1, 3),
        hidden: heads * head_dim * 8,
        heads,
        ff_mult: rng.gen_range_usize(1, 2) * 2,
        seq_len: rng.gen_range_usize(1, 63),
    }
}

#[test]
fn softmax_rows_are_distributions() {
    let mut rng = SplitMix64::seed_from_u64(0xA0);
    for _ in 0..CASES {
        let cols = 3;
        let rows = rng.gen_range_usize(2, 7);
        let vals: Vec<f64> = (0..rows * cols)
            .map(|_| rng.gen_range_f64(-20.0, 20.0))
            .collect();
        let m = Mat::from_rows(rows, cols, vals).unwrap();
        let p = softmax_rows(&m);
        for r in 0..rows {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}

#[test]
fn layer_norm_output_standardized() {
    let mut rng = SplitMix64::seed_from_u64(0xA1);
    let mut tested = 0;
    while tested < CASES {
        let vals: Vec<f64> = (0..8).map(|_| rng.gen_range_f64(-100.0, 100.0)).collect();
        // Skip degenerate constant rows (variance 0 -> eps-dominated).
        let mean0: f64 = vals.iter().sum::<f64>() / 8.0;
        let var0: f64 = vals.iter().map(|v| (v - mean0).powi(2)).sum::<f64>() / 8.0;
        if var0 <= 1e-6 {
            continue;
        }
        tested += 1;
        let m = Mat::from_rows(1, 8, vals).unwrap();
        let out = layer_norm_rows(&m, &[1.0; 8], &[0.0; 8], 1e-9);
        let mean: f64 = out.row(0).iter().sum::<f64>() / 8.0;
        let var: f64 = out.row(0).iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 8.0;
        assert!(mean.abs() < 1e-8);
        assert!((var - 1.0).abs() < 1e-6);
    }
}

#[test]
fn gelu_monotone_on_positives_and_bounded_below() {
    let mut rng = SplitMix64::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let x = rng.gen_range_f64(-10.0, 10.0);
        let dx = rng.gen_f64();
        // GELU is non-monotone on the negative axis (minimum ≈ −0.17 near
        // x ≈ −0.75) but monotone for x >= 0 and bounded below overall.
        if x >= 0.0 {
            assert!(gelu(x + dx) >= gelu(x) - 1e-9);
        }
        assert!(gelu(x) >= -0.2);
    }
}

#[test]
fn quantized_round_trip_error_bounded() {
    let mut rng = SplitMix64::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(4, 15);
        let vals: Vec<f64> = (0..len).map(|_| rng.gen_range_f64(-3.0, 3.0)).collect();
        let bits = rng.gen_range_i64(3, 12) as u8;
        let m = Mat::from_rows(1, len, vals).unwrap();
        let q = QuantizedMat::quantize(&m, bits);
        let back = q.dequantize_ideal();
        let step = q.scale() / ((1i32 << (bits - 1)) - 1) as f64;
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-12);
        }
    }
}

#[test]
fn analog_gemm_stays_within_relative_band() {
    let mut rng = SplitMix64::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let seed_vals: Vec<f64> = (0..16).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect();
        let a = Mat::from_rows(4, 4, seed_vals.clone()).unwrap();
        let b = Mat::from_rows(4, 4, seed_vals.iter().map(|v| 0.9 - v).collect()).unwrap();
        let exact = ExactGemm.matmul(&a, &b);
        let analog = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p");
        let got = analog.matmul(&a, &b);
        // Perturbation bound: ||Δ(AB)|| <= ||ΔA||·||B|| + ||A||·||ΔB|| +
        // ||ΔA||·||ΔB|| with per-element operand error <= ~9%, so the
        // product error is bounded by ~0.2·||A||·||B|| — the exact
        // product itself can cancel to zero, so it is NOT the right
        // scale.
        let zero = Mat::zeros(4, 4);
        let na = a.distance(&zero);
        let nb = b.distance(&zero);
        assert!(got.distance(&exact) <= 0.25 * na * nb + 1e-9);
    }
}

#[test]
fn op_trace_macs_match_config() {
    let mut rng = SplitMix64::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let config = random_config(&mut rng);
        if config.validate().is_err() {
            continue;
        }
        let trace = op_trace(&config);
        assert_eq!(trace.total_macs(), config.total_macs());
    }
}

#[test]
fn decode_intensity_below_prefill() {
    let mut rng = SplitMix64::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let config = random_config(&mut rng);
        let ctx = rng.gen_range_usize(1, 511);
        if config.validate().is_err() || config.seq_len < 8 {
            continue;
        }
        let prefill = arithmetic_intensity(&op_trace(&config));
        let decode = arithmetic_intensity(&decode_trace(&config, ctx, 4));
        assert!(decode <= prefill + 1e-9);
    }
}

#[test]
fn mean_pool_is_row_average() {
    let mut rng = SplitMix64::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let vals: Vec<f64> = (0..12).map(|_| rng.gen_range_f64(-5.0, 5.0)).collect();
        let m = Mat::from_rows(3, 4, vals).unwrap();
        let pooled = mean_pool_rows(&m);
        for (c, p) in pooled.iter().enumerate() {
            let manual = (m[(0, c)] + m[(1, c)] + m[(2, c)]) / 3.0;
            assert!((p - manual).abs() < 1e-12);
        }
    }
}
