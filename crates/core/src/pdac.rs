//! The P-DAC conversion pipeline.
//!
//! End-to-end (paper Figs. 6–7): a signed digital code is encoded by the
//! multi-bit EO interface into an *optical digital word* (one bit per time
//! slot); at the modulator, each slot is photodetected and amplified by a
//! TIA whose feedback weight encodes that bit's contribution to the
//! piecewise-linear `arccos` approximation; the superimposed voltages
//! drive the MZM push-pull, and the MZM emits the analog optical value.
//!
//! No electrical controller computes `arccos`, and no electrical DAC
//! synthesizes the voltage — that is the entire power saving.

use crate::approx::ArccosApprox;
use crate::converter::MzmDriver;
use crate::tia_weights::{TiaWeightPlan, WeightError};
use pdac_math::Complex64;
use pdac_photonics::devices::tia::TiaBank;
use pdac_photonics::eo_interface::OpticalWord;
use pdac_photonics::Mzm;
use std::f64::consts::PI;

/// Photocurrent (A) produced by a lit optical slot at the P-DAC's
/// receive photodetectors. TIA feedback resistances are normalized
/// against this reference.
const SLOT_ON_CURRENT: f64 = 1e-3;

/// Errors from [`PDac`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PDacError {
    /// Weight synthesis failed (bit width / domain).
    Weights(WeightError),
}

impl std::fmt::Display for PDacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PDacError::Weights(e) => write!(f, "weight synthesis failed: {e}"),
        }
    }
}

impl std::error::Error for PDacError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PDacError::Weights(e) => Some(e),
        }
    }
}

impl From<WeightError> for PDacError {
    fn from(e: WeightError) -> Self {
        PDacError::Weights(e)
    }
}

/// The photonic digital-to-analog converter.
///
/// # Examples
///
/// ```
/// use pdac_core::pdac::PDac;
/// use pdac_core::converter::MzmDriver;
///
/// let pdac = PDac::with_optimal_approx(8)?;
/// // Every code converts within the paper's 8.5% relative-error bound.
/// for code in [-127, -92, -10, 10, 92, 127] {
///     let ideal = pdac.ideal_value(code);
///     let got = pdac.convert(code);
///     assert!(((got - ideal) / ideal).abs() < 0.086);
/// }
/// # Ok::<(), pdac_core::pdac::PDacError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PDac {
    approx: ArccosApprox,
    plan: TiaWeightPlan,
    banks: Vec<TiaBank>,
    mzm: Mzm,
}

impl PDac {
    /// Builds a P-DAC with the paper's optimal three-segment approximation.
    ///
    /// # Errors
    ///
    /// Returns [`PDacError`] for unsupported bit widths.
    pub fn with_optimal_approx(bits: u8) -> Result<Self, PDacError> {
        Self::new(ArccosApprox::optimal(), bits)
    }

    /// Builds a P-DAC with the first-order approximation (Eq. 15 only) —
    /// the ablation baseline with 15.9% worst-case error.
    ///
    /// # Errors
    ///
    /// Returns [`PDacError`] for unsupported bit widths.
    pub fn with_first_order_approx(bits: u8) -> Result<Self, PDacError> {
        Self::new(ArccosApprox::first_order(), bits)
    }

    /// Builds a P-DAC with the minimax-trimmed three-segment drive
    /// (see [`crate::minimax`]): identical hardware to the paper's
    /// design, ~4.1% worst-case error instead of 8.5%.
    ///
    /// # Errors
    ///
    /// Returns [`PDacError`] for unsupported bit widths.
    pub fn with_minimax_approx(bits: u8) -> Result<Self, PDacError> {
        Self::new(crate::minimax::minimax_three_segment(3).to_approx(), bits)
    }

    /// Builds a P-DAC from an explicit approximation and bit width,
    /// synthesizing TIA weights and wiring the physical TIA banks.
    ///
    /// # Errors
    ///
    /// Returns [`PDacError`] for unsupported bit widths or domains.
    pub fn new(approx: ArccosApprox, bits: u8) -> Result<Self, PDacError> {
        let plan = TiaWeightPlan::synthesize(approx.function(), bits)?;
        // One physical TIA bank per region: feedback resistance turns the
        // slot photocurrent into the synthesized per-bit voltage weight.
        let banks = plan
            .regions()
            .iter()
            .map(|region| {
                TiaBank::new(
                    region
                        .bit_weights
                        .iter()
                        .map(|w| w / SLOT_ON_CURRENT)
                        .collect(),
                )
            })
            .collect();
        Ok(Self {
            approx,
            plan,
            banks,
            mzm: Mzm::ideal(),
        })
    }

    /// The arccos approximation in use.
    pub fn approx(&self) -> &ArccosApprox {
        &self.approx
    }

    /// The synthesized weight plan.
    pub fn plan(&self) -> &TiaWeightPlan {
        &self.plan
    }

    /// The MZM drive voltage (normalized `V₁′`) the analog front end
    /// produces for a code — the output of the TIA summing network.
    pub fn drive_voltage(&self, code: i32) -> f64 {
        let m = self.plan.max_code();
        let code = code.clamp(-m, m);
        let word =
            OpticalWord::encode(code, self.plan.bits()).expect("clamped code is representable");
        let currents = word.slot_currents(SLOT_ON_CURRENT);
        let magnitude_currents = &currents[1..];
        let region = self.plan.region_index(code.abs());
        let v =
            self.plan.regions()[region].bias + self.banks[region].sum_voltage(magnitude_currents);
        // Sign slot selects the inverting stage with fixed π bias.
        if word.is_negative() {
            PI - v
        } else {
            v
        }
    }
}

impl MzmDriver for PDac {
    fn bits(&self) -> u8 {
        self.plan.bits()
    }

    /// Full photonic conversion: optical word → TIA bank → MZM push-pull.
    fn convert(&self, code: i32) -> f64 {
        let v = self.drive_voltage(code);
        self.mzm.modulate_push_pull(Complex64::ONE, v).re
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_matches_weight_plan_reconstruction() {
        // The physical pipeline (optical word, photocurrents, TIA bank,
        // MZM) must agree exactly with the mathematical plan.
        let pdac = PDac::with_optimal_approx(8).unwrap();
        for code in -127..=127 {
            let physical = pdac.convert(code);
            let mathematical = pdac.plan().reconstruct(code);
            assert!(
                (physical - mathematical).abs() < 1e-12,
                "code={code}: {physical} vs {mathematical}"
            );
        }
    }

    #[test]
    fn paper_0x40_example() {
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let out = pdac.convert(0x40);
        let ideal = 64.0 / 127.0;
        let rel = ((out - ideal) / ideal).abs();
        assert!(rel < 0.085 + 1e-6, "relative error {rel}");
    }

    #[test]
    fn error_bound_holds_for_all_codes_all_widths() {
        for bits in [4u8, 6, 8, 10] {
            let pdac = PDac::with_optimal_approx(bits).unwrap();
            let m = pdac.max_code();
            for code in -m..=m {
                if code == 0 {
                    continue;
                }
                let ideal = pdac.ideal_value(code);
                let rel = ((pdac.convert(code) - ideal) / ideal).abs();
                assert!(rel < 0.09, "bits={bits} code={code} rel={rel}");
            }
        }
    }

    #[test]
    fn first_order_variant_is_worse_at_full_scale() {
        let opt = PDac::with_optimal_approx(8).unwrap();
        let first = PDac::with_first_order_approx(8).unwrap();
        let ideal = 1.0;
        let e_opt = ((opt.convert(127) - ideal) / ideal).abs();
        let e_first = ((first.convert(127) - ideal) / ideal).abs();
        assert!(e_opt < 1e-6, "optimal is anchored at full scale: {e_opt}");
        assert!((e_first - 0.159).abs() < 2e-3, "first order: {e_first}");
    }

    #[test]
    fn conversion_is_odd() {
        let pdac = PDac::with_optimal_approx(8).unwrap();
        for code in 1..=127 {
            let pos = pdac.convert(code);
            let neg = pdac.convert(-code);
            assert!((pos + neg).abs() < 1e-12, "code={code}");
        }
    }

    #[test]
    fn conversion_is_monotone() {
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let mut prev = pdac.convert(-127);
        for code in -126..=127 {
            let cur = pdac.convert(code);
            assert!(cur >= prev - 1e-12, "non-monotone at code {code}");
            prev = cur;
        }
    }

    #[test]
    fn zero_maps_to_zero() {
        let pdac = PDac::with_optimal_approx(8).unwrap();
        assert!(pdac.convert(0).abs() < 1e-12);
    }

    #[test]
    fn codes_saturate() {
        let pdac = PDac::with_optimal_approx(4).unwrap();
        assert_eq!(pdac.convert(1000), pdac.convert(7));
        assert_eq!(pdac.convert(-1000), pdac.convert(-7));
    }

    #[test]
    fn convert_value_round_trips_within_bound() {
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let mut x = -1.0;
        while x <= 1.0 {
            let out = pdac.convert_value(x);
            if x.abs() > 0.05 {
                assert!(((out - x) / x).abs() < 0.1, "x={x} out={out}");
            }
            x += 0.013;
        }
    }

    #[test]
    fn drive_voltage_range_is_zero_to_pi() {
        // arccos maps [−1, 1] to [0, π]; the approximation should too
        // (small overshoot allowed at segment corners).
        let pdac = PDac::with_optimal_approx(8).unwrap();
        for code in -127..=127 {
            let v = pdac.drive_voltage(code);
            assert!((-0.01..=PI + 0.01).contains(&v), "code={code} voltage={v}");
        }
    }

    #[test]
    fn error_conversion_chain() {
        let err = PDac::with_optimal_approx(1).unwrap_err();
        assert!(err.to_string().contains("weight synthesis"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
