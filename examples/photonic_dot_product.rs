//! The photonic signal path, end to end: laser → MZM encoding (via the
//! P-DAC drive) → WDM → DDot unit → balanced detection.
//!
//! Demonstrates paper Eq. 6: the dot product of two signed vectors
//! computed entirely from two photodetector currents, with operands
//! encoded by either converter.
//!
//! Run with: `cargo run --example photonic_dot_product`

use pdac::core::edac::ElectricalDac;
use pdac::core::pdac::PDac;
use pdac::core::MzmDriver;
use pdac::photonics::noise::NoiseModel;
use pdac::photonics::DDotUnit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda = 8; // WDM channels = vector length per cycle
    let unit = DDotUnit::ideal(lambda);

    let x = [0.50, -0.25, 0.75, 0.10, -0.90, 0.33, -0.66, 0.05];
    let y = [0.20, 0.90, -0.40, -0.60, 0.15, -0.80, 0.44, 1.00];
    let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();

    // 1. Ideal encoding: the DDot identity is exact.
    let ideal = unit.dot(&x, &y)?;
    println!("exact dot product      {exact:+.6}");
    println!("ideal photonic DDot    {ideal:+.6}  (Eq. 6 identity)");

    // 2. Operands encoded through each converter's MZM drive.
    let pdac = PDac::with_optimal_approx(8)?;
    let edac = ElectricalDac::new(8)?;
    for (name, driver) in [("P-DAC", &pdac as &dyn MzmDriver), ("e-DAC", &edac)] {
        let xm: Vec<f64> = x.iter().map(|&v| driver.convert_value(v)).collect();
        let ym: Vec<f64> = y.iter().map(|&v| driver.convert_value(v)).collect();
        let got = unit.dot(&xm, &ym)?;
        println!(
            "{name} encoded DDot     {got:+.6}  (error {:+.4})",
            got - exact
        );
    }

    // 3. With detector noise: mean over repeated shots converges.
    let mut noise = NoiseModel::gaussian_current(1e-3, 7);
    let shots = 1000;
    let mean: f64 = (0..shots)
        .map(|_| unit.dot_noisy(&x, &y, &mut noise).unwrap())
        .sum::<f64>()
        / shots as f64;
    println!("noisy DDot mean ({shots} shots) {mean:+.6}");
    Ok(())
}
