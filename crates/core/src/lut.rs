//! Dense lookup tables over MZM drive paths.
//!
//! A `bits`-bit driver has only `2·max_code + 1` distinct codes, yet the
//! physical conversion pipeline (optical word encode → photodetection →
//! TIA bank → MZM push-pull) is re-run per operand element in the analog
//! GEMM hot path. [`ConverterLut`] evaluates any [`MzmDriver`] once per
//! code into a dense table and then *is* an [`MzmDriver`] itself, so
//! every downstream `convert`/`convert_all`/`convert_value` becomes an
//! O(1) array read — bit-identical to the wrapped driver, because the
//! table stores its exact outputs.

use crate::converter::MzmDriver;

/// A dense code → amplitude table wrapping (and standing in for) an
/// [`MzmDriver`].
///
/// # Examples
///
/// ```
/// use pdac_core::lut::ConverterLut;
/// use pdac_core::pdac::PDac;
/// use pdac_core::converter::MzmDriver;
///
/// let pdac = PDac::with_optimal_approx(8)?;
/// let lut = ConverterLut::new(&pdac);
/// for code in [-127, -64, 0, 64, 127] {
///     assert_eq!(lut.convert(code), pdac.convert(code));
/// }
/// # Ok::<(), pdac_core::pdac::PDacError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConverterLut {
    bits: u8,
    max_code: i32,
    /// `table[code + max_code]` for `code` in `-max_code..=max_code`.
    table: Vec<f64>,
}

impl ConverterLut {
    /// Tabulates `driver` by evaluating its full conversion pipeline once
    /// per representable code.
    pub fn new(driver: &(impl MzmDriver + ?Sized)) -> Self {
        let _span = pdac_telemetry::span("core.lut.build");
        let bits = driver.bits();
        let max_code = driver.max_code();
        let table = (-max_code..=max_code).map(|c| driver.convert(c)).collect();
        pdac_telemetry::counter_add("core.lut.builds", 1);
        Self {
            bits,
            max_code,
            table,
        }
    }

    /// Number of tabulated codes (`2·max_code + 1`).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never, for valid drivers; provided for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The raw table, indexed by `code + max_code()`.
    pub fn table(&self) -> &[f64] {
        &self.table
    }
}

impl MzmDriver for ConverterLut {
    fn bits(&self) -> u8 {
        self.bits
    }

    /// O(1) table read; out-of-range codes saturate like the wrapped
    /// driver's clamp.
    fn convert(&self, code: i32) -> f64 {
        let idx = (code.clamp(-self.max_code, self.max_code) + self.max_code) as usize;
        self.table[idx]
    }

    /// Straight per-element table reads (overrides the default so a LUT
    /// is never re-tabulated from itself).
    fn convert_all(&self, codes: &[i32]) -> Vec<f64> {
        codes.iter().map(|&c| self.convert(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edac::ElectricalDac;
    use crate::pdac::PDac;

    /// Exhaustive LUT-vs-scalar equivalence over every representable code
    /// (plus saturating out-of-range codes) for both drive paths at both
    /// evaluation precisions.
    #[test]
    fn lut_matches_scalar_for_every_code_pdac_and_edac() {
        for bits in [4u8, 8] {
            let drivers: Vec<(&str, Box<dyn MzmDriver>)> = vec![
                ("pdac", Box::new(PDac::with_optimal_approx(bits).unwrap())),
                ("edac", Box::new(ElectricalDac::new(bits).unwrap())),
            ];
            for (name, driver) in drivers {
                let lut = ConverterLut::new(driver.as_ref());
                assert_eq!(lut.bits(), bits);
                assert_eq!(lut.len(), (2 * driver.max_code() + 1) as usize);
                let m = driver.max_code();
                for code in (-m - 10)..=(m + 10) {
                    let want = driver.convert(code);
                    let got = lut.convert(code);
                    assert!(
                        want.to_bits() == got.to_bits(),
                        "{name} {bits}-bit code={code}: {want} vs {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn lut_convert_value_matches_scalar() {
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let lut = ConverterLut::new(&pdac);
        let mut x = -1.0;
        while x <= 1.0 {
            assert_eq!(
                lut.convert_value(x).to_bits(),
                pdac.convert_value(x).to_bits()
            );
            x += 0.0173;
        }
    }

    #[test]
    fn lut_convert_all_matches_scalar() {
        let edac = ElectricalDac::new(4).unwrap();
        let lut = ConverterLut::new(&edac);
        let codes: Vec<i32> = (-9..=9).cycle().take(100).collect();
        assert_eq!(lut.convert_all(&codes), edac.convert_all(&codes));
    }

    #[test]
    fn lut_of_lut_is_identity() {
        let pdac = PDac::with_optimal_approx(6).unwrap();
        let once = ConverterLut::new(&pdac);
        let twice = ConverterLut::new(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn works_through_dyn_driver() {
        let boxed: Box<dyn MzmDriver> = Box::new(ElectricalDac::new(8).unwrap());
        let lut = ConverterLut::new(boxed.as_ref());
        assert_eq!(lut.convert(64), boxed.convert(64));
        assert!(!lut.is_empty());
    }
}
