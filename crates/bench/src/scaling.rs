//! Architecture-scaling extension: does the P-DAC's advantage survive
//! scaling the accelerator up or down?
//!
//! The paper evaluates one design point (LT-B). Because both the savings
//! source (DAC count) and the overheads (laser, support logic) scale with
//! core count in this model, the *fractional* saving is scale-invariant —
//! a useful sanity property — while absolute watts, throughput and
//! energy-per-inference move as expected.

use pdac_nn::config::TransformerConfig;
use pdac_nn::workload::op_trace;
use pdac_power::energy::savings;
use pdac_power::model::{power_saving, DriverKind, PowerModel};
use pdac_power::{ArchConfig, EnergyModel, TechParams};

/// One architecture point of the scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Human-readable name.
    pub name: String,
    /// Core count.
    pub cores: usize,
    /// Peak throughput, TMAC/s.
    pub peak_tmacs: f64,
    /// Baseline power at 8-bit, watts.
    pub baseline_watts: f64,
    /// P-DAC power at 8-bit, watts.
    pub pdac_watts: f64,
    /// Fractional power saving at 8-bit.
    pub saving: f64,
    /// BERT-base inference energy with the P-DAC, millijoules.
    pub bert_mj: f64,
}

/// Evaluates the named architecture variants at 8-bit.
pub fn scale_points() -> Vec<ScalePoint> {
    let tech = TechParams::calibrated();
    let trace = op_trace(&TransformerConfig::bert_base());
    [
        ("LT-S", ArchConfig::lt_s()),
        ("LT-B", ArchConfig::lt_b()),
        ("LT-L", ArchConfig::lt_l()),
    ]
    .into_iter()
    .map(|(name, arch)| {
        let baseline = PowerModel::new(arch.clone(), tech.clone(), DriverKind::ElectricalDac);
        let pdac = PowerModel::new(arch.clone(), tech.clone(), DriverKind::PhotonicDac);
        let bert = EnergyModel::new(pdac.clone()).energy(&trace, 8);
        ScalePoint {
            name: name.to_string(),
            cores: arch.cores,
            peak_tmacs: arch.peak_macs_per_second() / 1e12,
            baseline_watts: baseline.breakdown(8).total_watts(),
            pdac_watts: pdac.breakdown(8).total_watts(),
            saving: power_saving(&baseline, &pdac, 8),
            bert_mj: bert.total_j() * 1e3,
        }
    })
    .collect()
}

/// Renders the scaling study.
pub fn report() -> String {
    let mut out = String::from(
        "Architecture scaling — LT-S / LT-B / LT-L at 8-bit\n\
         ===================================================\n\n\
         name   cores   TMAC/s   baseline W   P-DAC W   saving%   BERT mJ (P-DAC)\n",
    );
    for p in scale_points() {
        out.push_str(&format!(
            "  {:<5} {:>4}   {:>6.1}   {:>10.2}   {:>7.2}   {:>7.1}   {:>10.2}\n",
            p.name,
            p.cores,
            p.peak_tmacs,
            p.baseline_watts,
            p.pdac_watts,
            100.0 * p.saving,
            p.bert_mj
        ));
    }
    // BERT savings per scale (shape check: data movement is scale-free).
    let tech = TechParams::calibrated();
    let trace = op_trace(&TransformerConfig::bert_base());
    out.push_str("\nBERT total saving per scale:\n");
    for (name, arch) in [
        ("LT-S", ArchConfig::lt_s()),
        ("LT-B", ArchConfig::lt_b()),
        ("LT-L", ArchConfig::lt_l()),
    ] {
        let be = EnergyModel::new(PowerModel::new(
            arch.clone(),
            tech.clone(),
            DriverKind::ElectricalDac,
        ));
        let pe = EnergyModel::new(PowerModel::new(arch, tech.clone(), DriverKind::PhotonicDac));
        let rep = savings(&be.energy(&trace, 8), &pe.energy(&trace, 8));
        out.push_str(&format!("  {name}: {:.1}%\n", 100.0 * rep.total));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractional_saving_is_scale_invariant() {
        let points = scale_points();
        for pair in points.windows(2) {
            assert!((pair[0].saving - pair[1].saving).abs() < 1e-9);
        }
    }

    #[test]
    fn absolute_power_scales_with_cores() {
        let points = scale_points();
        let small = &points[0];
        let large = &points[2];
        assert!((large.pdac_watts / small.pdac_watts - 4.0).abs() < 0.01);
        assert!((large.peak_tmacs / small.peak_tmacs - 4.0).abs() < 0.01);
    }

    #[test]
    fn bert_compute_energy_is_scale_free() {
        // Power and throughput both scale linearly, so per-inference
        // energy stays constant.
        let points = scale_points();
        assert!((points[0].bert_mj - points[2].bert_mj).abs() < 0.01);
    }

    #[test]
    fn report_renders_all_variants() {
        let r = report();
        assert!(r.contains("LT-S"));
        assert!(r.contains("LT-B"));
        assert!(r.contains("LT-L"));
    }
}
