//! Pluggable GEMM backends.
//!
//! The accelerator's matrix multiplies can run in three fidelity regimes:
//!
//! * [`ExactGemm`] — full-precision `f64` reference,
//! * [`AnalogGemm`] — operands quantized and pushed through an
//!   [`MzmDriver`] (P-DAC or electrical DAC) before the dot product.
//!   The photonic DDot itself computes the dot product exactly (see
//!   `pdac-photonics`), so the analog error is entirely in the operand
//!   modulation — exactly the paper's error model.
//!
//! The [`GemmBackend`] trait lets the same transformer forward pass run in
//! any regime; the fidelity study diffs their outputs.

use crate::prepared::WeightCache;
use crate::quant::{GroupQuantizedMat, QuantizedMat, RowQuantizedMat};
use pdac_core::converter::MzmDriver;
use pdac_core::lut::ConverterLut;
use pdac_math::gemm::PackedB;
use pdac_math::Mat;

/// A matrix-multiply backend.
pub trait GemmBackend {
    /// Computes `a · b`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat;

    /// Computes `a · b` into a caller-owned output matrix (reshaped and
    /// fully overwritten), so hot loops can reuse one allocation across
    /// calls. Must produce exactly [`Self::matmul`]'s result; the
    /// default literally delegates.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn matmul_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        *out = self.matmul(a, b);
    }

    /// Batched decode matmul: the rows of `a` belong to **independent
    /// sequences**, and row `r` of the result must be bit-identical to
    /// `self.matmul(a_row_r, b)` of the 1×k matrix holding row `r`
    /// alone. The default guarantees that by construction (it performs
    /// the per-row products and stacks them); backends override it with
    /// faster paths that preserve the row identity — see
    /// [`AnalogGemm`]'s per-row quantization.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn matmul_batch_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        out.resize(a.rows(), b.cols());
        let mut row = Mat::zeros(1, a.cols());
        for r in 0..a.rows() {
            row.as_mut_slice().copy_from_slice(a.row_slice(r));
            let prod = self.matmul(&row, b);
            out.row_slice_mut(r).copy_from_slice(prod.row_slice(0));
        }
    }

    /// Allocating convenience form of [`Self::matmul_batch_into`].
    fn matmul_batch(&self, a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(1, 1);
        self.matmul_batch_into(a, b, &mut out);
        out
    }

    /// [`Self::matmul_batch_into`] with a caller-supplied prepacked form
    /// of `b` on offer. `packed` must pack exactly `b` (same values,
    /// `PackedB::pack(b)`); callers with long-lived weights memoize the
    /// pack (see `EncoderLayer::packs`) and hand it in as a lazy closure
    /// so backends that cannot use it never force the packing.
    ///
    /// The default ignores the offer and delegates (analog backends
    /// already keep packed *converted* weights in their [`WeightCache`];
    /// a pack of the unconverted values is useless to them).
    /// [`ExactGemm`] overrides it: the pack skips the per-call
    /// `B`-panel-packing pass that otherwise dominates small batched
    /// GEMMs. Same row-identity contract as [`Self::matmul_batch_into`].
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn matmul_batch_packed_into<'p>(
        &self,
        a: &Mat,
        b: &Mat,
        packed: &dyn Fn() -> &'p PackedB,
        out: &mut Mat,
    ) {
        let _ = packed;
        self.matmul_batch_into(a, b, out);
    }

    /// Grouped transient matmul for batched attention: `a` holds one
    /// query-like row per grouped sequence (`G × k`), `b` stacks each
    /// sequence's **own** ephemeral right operand (`G` contiguous
    /// `k × n` blocks, so `b` is `(G·k) × n`), and row `g` of `out`
    /// (`G × n`) must be bit-identical to
    /// [`Self::matmul_transient_into`] of `a`'s row `g` against block
    /// `g` alone. The default guarantees that by construction (per-row
    /// delegation); backends override it to run all `G` products in one
    /// kernel dispatch / conversion pass — see
    /// [`crate::quant::GroupQuantizedMat`] for how analog backends keep
    /// per-block quantization scales identical to the solo path.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != a.rows() · a.cols()`.
    fn matmul_grouped_transient_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        let (g, k) = a.shape();
        assert_eq!(b.rows(), g * k, "stacked operand row count");
        out.resize(g, b.cols());
        let mut row = Mat::zeros(1, k);
        let mut block = Mat::zeros(k, b.cols());
        let mut prod = Mat::zeros(1, b.cols());
        let block_len = k * b.cols();
        for r in 0..g {
            row.as_mut_slice().copy_from_slice(a.row_slice(r));
            block
                .as_mut_slice()
                .copy_from_slice(&b.as_slice()[r * block_len..(r + 1) * block_len]);
            self.matmul_transient_into(&row, &block, &mut prod);
            out.row_slice_mut(r).copy_from_slice(prod.row_slice(0));
        }
    }

    /// Computes `a · b` where `b` is **ephemeral** — a matrix built for
    /// this call (attention keys/values gathered from a KV cache) that
    /// will never be seen again. Must produce exactly
    /// [`Self::matmul_into`]'s result; the default literally delegates.
    /// Caching backends override it to skip their weight-conversion
    /// cache: memoizing a once-per-step operand cannot hit, and at
    /// decode batch sizes the flood of dead entries evicts the *actual*
    /// weights, forcing a full re-convert + re-pack of every layer each
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn matmul_transient_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        self.matmul_into(a, b, out);
    }

    /// Human-readable backend name for reports.
    fn name(&self) -> &str;
}

/// The exact `f64` reference backend.
///
/// # Examples
///
/// ```
/// use pdac_nn::gemm::{ExactGemm, GemmBackend};
/// use pdac_math::Mat;
///
/// let a = Mat::identity(2);
/// let b = Mat::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(ExactGemm.matmul(&a, &b), b);
/// # Ok::<(), pdac_math::matrix::MatError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactGemm;

impl GemmBackend for ExactGemm {
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat {
        a.matmul(b).expect("inner dimensions must agree")
    }

    fn matmul_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        a.matmul_into(b, out).expect("inner dimensions must agree");
    }

    /// Exact batched form: one GEMM over the whole stack. Row-identical
    /// to per-row products because every tuned kernel computes each
    /// output cell as the same ascending-`k` reduction regardless of the
    /// operand's row count (see `pdac_math::gemm`).
    fn matmul_batch_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        a.matmul_into(b, out).expect("inner dimensions must agree");
    }

    /// Exact packed batched form: with more than one row the prepacked
    /// kernel skips the per-call `B`-packing pass (bit-identical — the
    /// pack only changes memory layout). Single rows keep the plain
    /// vecmat path so solo-decode callers never pay for building packs
    /// whose memory roughly doubles the weights.
    fn matmul_batch_packed_into<'p>(
        &self,
        a: &Mat,
        b: &Mat,
        packed: &dyn Fn() -> &'p PackedB,
        out: &mut Mat,
    ) {
        if a.rows() > 1 {
            a.matmul_prepacked_into(packed(), out)
                .expect("inner dimensions must agree");
        } else {
            self.matmul_into(a, b, out);
        }
    }

    /// Exact grouped form: all `G` row products in one pooled kernel
    /// dispatch (`pdac_math::gemm::gemm_grouped`); per cell it is the
    /// same ascending-`k` reduction as `G` separate vecmats.
    fn matmul_grouped_transient_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        a.matmul_grouped_into(b, out)
            .expect("stacked operand rows must equal G·k");
    }

    fn name(&self) -> &str {
        "exact"
    }
}

/// Analog GEMM through a converter drive path: quantize both operands
/// per-tensor, dequantize through the driver (injecting its conversion
/// error), then multiply exactly (the DDot identity).
///
/// The driver is tabulated once into a [`ConverterLut`] at construction,
/// so per-call conversion is an array read rather than a full drive-path
/// evaluation, and the right-hand (weight-like) operand is memoized in a
/// [`WeightCache`] so repeated multiplies against the same weights —
/// every decode step of generative inference — skip quantize+convert
/// entirely. Both shortcuts are bit-identical to the direct path.
#[derive(Debug, Clone)]
pub struct AnalogGemm<D> {
    driver: D,
    lut: ConverterLut,
    cache: WeightCache,
    name: String,
}

impl<D: MzmDriver> AnalogGemm<D> {
    /// Wraps a driver.
    pub fn new(driver: D, name: impl Into<String>) -> Self {
        let lut = ConverterLut::new(&driver);
        Self {
            driver,
            lut,
            cache: WeightCache::default(),
            name: name.into(),
        }
    }

    /// The wrapped driver.
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// The driver's dense code → amplitude table.
    pub fn lut(&self) -> &ConverterLut {
        &self.lut
    }

    /// The weight-conversion cache (for hit/miss inspection).
    pub fn cache(&self) -> &WeightCache {
        &self.cache
    }
}

impl<D: MzmDriver> GemmBackend for AnalogGemm<D> {
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat {
        let _span = pdac_telemetry::span("nn.gemm.analog");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut.bits();
        let aq = QuantizedMat::quantize(a, bits).dequantize_with(&self.lut);
        let bq = self.cache.get_or_prepare(b, &self.lut);
        aq.matmul(bq.converted())
            .expect("inner dimensions must agree")
    }

    fn matmul_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        let _span = pdac_telemetry::span("nn.gemm.analog");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut.bits();
        let aq = QuantizedMat::quantize(a, bits).dequantize_with(&self.lut);
        let bq = self.cache.get_or_prepare(b, &self.lut);
        aq.matmul_into(bq.converted(), out)
            .expect("inner dimensions must agree");
    }

    /// Transient analog form: both operands quantize and convert fresh,
    /// bypassing the weight cache entirely. `WeightCache::get_or_prepare`
    /// applies exactly this quantize→LUT-dequantize transform before
    /// memoizing, so skipping the cache cannot change a single bit — it
    /// only avoids fingerprinting + inserting an operand that is dead
    /// after this call.
    fn matmul_transient_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        let _span = pdac_telemetry::span("nn.gemm.analog");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut.bits();
        let aq = QuantizedMat::quantize(a, bits).dequantize_with(&self.lut);
        let bq = QuantizedMat::quantize(b, bits).dequantize_with(&self.lut);
        aq.matmul_into(&bq, out)
            .expect("inner dimensions must agree");
    }

    /// Batched analog form: each sequence row gets its own quantization
    /// scale ([`RowQuantizedMat`]) — exactly the per-tensor rule the
    /// single-sequence path applies to its 1×k activation — and the
    /// whole converted stack multiplies the cached weight conversion in
    /// one prepacked GEMM. Row-identical to per-row [`Self::matmul`]
    /// calls; the weight converts (and packs) once per distinct matrix
    /// instead of once per sequence.
    fn matmul_batch_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        let _span = pdac_telemetry::span("nn.gemm.analog_batch");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut.bits();
        let aq = RowQuantizedMat::quantize(a, bits).dequantize_with(&self.lut);
        let bq = self.cache.get_or_prepare(b, &self.lut);
        aq.matmul_prepacked_into(bq.packed(), out)
            .expect("inner dimensions must agree");
    }

    /// Grouped analog form: per-row activation scales
    /// ([`RowQuantizedMat`]) and per-block operand scales
    /// ([`GroupQuantizedMat`], one block per sequence) reproduce exactly
    /// the per-tensor quantization the solo transient path applies to
    /// each 1×k query and k×n gathered operand — then all `G` products
    /// run in one exact grouped kernel. Cache-free like
    /// [`Self::matmul_transient_into`].
    fn matmul_grouped_transient_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        let _span = pdac_telemetry::span("nn.gemm.analog_grouped");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut.bits();
        let aq = RowQuantizedMat::quantize(a, bits).dequantize_with(&self.lut);
        let bq = GroupQuantizedMat::quantize(b, a.cols(), bits).dequantize_with(&self.lut);
        aq.matmul_grouped_into(&bq, out)
            .expect("stacked operand rows must equal G·k");
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Asymmetric analog GEMM: different drive paths for the two operands —
/// the hybrid design where dynamic activations (`a`) ride the P-DAC and
/// weight-like operands (`b`) keep the exact electrical path.
#[derive(Debug, Clone)]
pub struct AsymmetricGemm<Da, Db> {
    driver_a: Da,
    driver_b: Db,
    lut_a: ConverterLut,
    lut_b: ConverterLut,
    cache: WeightCache,
    name: String,
}

impl<Da: MzmDriver, Db: MzmDriver> AsymmetricGemm<Da, Db> {
    /// Wraps the two drivers.
    ///
    /// # Panics
    ///
    /// Panics if the drivers' bit widths differ.
    pub fn new(driver_a: Da, driver_b: Db, name: impl Into<String>) -> Self {
        assert_eq!(
            driver_a.bits(),
            driver_b.bits(),
            "both operand paths must share a bit width"
        );
        let lut_a = ConverterLut::new(&driver_a);
        let lut_b = ConverterLut::new(&driver_b);
        Self {
            driver_a,
            driver_b,
            lut_a,
            lut_b,
            cache: WeightCache::default(),
            name: name.into(),
        }
    }

    /// The activation-path driver.
    pub fn driver_a(&self) -> &Da {
        &self.driver_a
    }

    /// The weight-path driver.
    pub fn driver_b(&self) -> &Db {
        &self.driver_b
    }

    /// The weight-conversion cache (for hit/miss inspection).
    pub fn cache(&self) -> &WeightCache {
        &self.cache
    }
}

impl<Da: MzmDriver, Db: MzmDriver> GemmBackend for AsymmetricGemm<Da, Db> {
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat {
        let _span = pdac_telemetry::span("nn.gemm.asymmetric");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut_a.bits();
        let aq = QuantizedMat::quantize(a, bits).dequantize_with(&self.lut_a);
        let bq = self.cache.get_or_prepare(b, &self.lut_b);
        aq.matmul(bq.converted())
            .expect("inner dimensions must agree")
    }

    /// Transient hybrid form: cache-free twin of the cached path —
    /// activations through the `a` drive path, the ephemeral right-hand
    /// operand through the `b` (weight) drive path, exactly as
    /// `get_or_prepare` would have converted it.
    fn matmul_transient_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        let _span = pdac_telemetry::span("nn.gemm.asymmetric");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut_a.bits();
        let aq = QuantizedMat::quantize(a, bits).dequantize_with(&self.lut_a);
        let bq = QuantizedMat::quantize(b, bits).dequantize_with(&self.lut_b);
        aq.matmul_into(&bq, out)
            .expect("inner dimensions must agree");
    }

    /// Batched hybrid form: per-row activation quantization on the
    /// P-DAC path, cached+prepacked weight conversion on the electrical
    /// path — same row identity as [`AnalogGemm::matmul_batch_into`].
    fn matmul_batch_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        let _span = pdac_telemetry::span("nn.gemm.asymmetric_batch");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut_a.bits();
        let aq = RowQuantizedMat::quantize(a, bits).dequantize_with(&self.lut_a);
        let bq = self.cache.get_or_prepare(b, &self.lut_b);
        aq.matmul_prepacked_into(bq.packed(), out)
            .expect("inner dimensions must agree");
    }

    /// Grouped hybrid form: per-row activations through the `a` drive
    /// path, per-block stacked operands through the `b` (weight) drive
    /// path — block scales match the solo transient path exactly (see
    /// [`AnalogGemm::matmul_grouped_transient_into`]).
    fn matmul_grouped_transient_into(&self, a: &Mat, b: &Mat, out: &mut Mat) {
        let _span = pdac_telemetry::span("nn.gemm.asymmetric_grouped");
        pdac_telemetry::counter_add("nn.gemm.macs", (a.rows() * a.cols() * b.cols()) as u64);
        let bits = self.lut_a.bits();
        let aq = RowQuantizedMat::quantize(a, bits).dequantize_with(&self.lut_a);
        let bq = GroupQuantizedMat::quantize(b, a.cols(), bits).dequantize_with(&self.lut_b);
        aq.matmul_grouped_into(&bq, out)
            .expect("stacked operand rows must equal G·k");
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdac_core::edac::ElectricalDac;
    use pdac_core::pdac::PDac;
    use pdac_math::rng::SplitMix64;
    use pdac_math::stats::cosine_similarity;

    fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = SplitMix64::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-1.0, 1.0))
    }

    #[test]
    fn exact_matches_reference() {
        let a = random_mat(5, 7, 1);
        let b = random_mat(7, 3, 2);
        assert_eq!(ExactGemm.matmul(&a, &b), a.matmul(&b).unwrap());
        assert_eq!(ExactGemm.name(), "exact");
    }

    #[test]
    fn analog_pdac_is_close_but_not_exact() {
        let a = random_mat(8, 16, 3);
        let b = random_mat(16, 8, 4);
        let exact = ExactGemm.matmul(&a, &b);
        let analog = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac8");
        let got = analog.matmul(&a, &b);
        assert_ne!(got, exact);
        let cs = cosine_similarity(got.as_slice(), exact.as_slice()).unwrap();
        assert!(cs > 0.99, "cosine similarity {cs}");
    }

    #[test]
    fn analog_edac_is_closer_than_pdac() {
        let a = random_mat(8, 16, 5);
        let b = random_mat(16, 8, 6);
        let exact = ExactGemm.matmul(&a, &b);
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac8");
        let edac = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "edac8");
        let dp = pdac.matmul(&a, &b).distance(&exact);
        let de = edac.matmul(&a, &b).distance(&exact);
        assert!(de < dp, "edac {de} vs pdac {dp}");
    }

    #[test]
    fn higher_precision_improves_analog_gemm() {
        let a = random_mat(8, 16, 7);
        let b = random_mat(16, 8, 8);
        let exact = ExactGemm.matmul(&a, &b);
        let d4 = AnalogGemm::new(PDac::with_optimal_approx(4).unwrap(), "p4")
            .matmul(&a, &b)
            .distance(&exact);
        let d8 = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8")
            .matmul(&a, &b)
            .distance(&exact);
        assert!(d8 < d4, "8-bit {d8} vs 4-bit {d4}");
    }

    #[test]
    fn asymmetric_accuracy_between_pure_paths() {
        let a = random_mat(8, 16, 21);
        let b = random_mat(16, 8, 22);
        let exact = ExactGemm.matmul(&a, &b);
        let full_pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pp");
        let full_edac = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "ee");
        let hybrid = AsymmetricGemm::new(
            PDac::with_optimal_approx(8).unwrap(),
            ElectricalDac::new(8).unwrap(),
            "hybrid",
        );
        let dp = full_pdac.matmul(&a, &b).distance(&exact);
        let de = full_edac.matmul(&a, &b).distance(&exact);
        let dh = hybrid.matmul(&a, &b).distance(&exact);
        assert!(de < dh && dh < dp, "{de} < {dh} < {dp} violated");
        assert_eq!(hybrid.name(), "hybrid");
    }

    #[test]
    #[should_panic(expected = "share a bit width")]
    fn asymmetric_rejects_mismatched_bits() {
        AsymmetricGemm::new(
            PDac::with_optimal_approx(8).unwrap(),
            ElectricalDac::new(4).unwrap(),
            "bad",
        );
    }

    #[test]
    fn analog_lut_cache_path_is_bit_identical_to_direct() {
        // The LUT + weight-cache fast path must reproduce the naive
        // quantize→scalar-convert→reference-matmul pipeline exactly.
        let a = random_mat(9, 13, 31);
        let b = random_mat(13, 6, 32);
        let driver = PDac::with_optimal_approx(8).unwrap();
        let analog = AnalogGemm::new(driver.clone(), "p8");
        let direct_a = QuantizedMat::quantize(&a, 8).dequantize_with(&driver);
        let direct_b = QuantizedMat::quantize(&b, 8).dequantize_with(&driver);
        let direct = direct_a.matmul_reference(&direct_b).unwrap();
        assert_eq!(analog.matmul(&a, &b), direct);
        assert_eq!(analog.matmul(&a, &b), direct);
    }

    #[test]
    fn analog_weight_cache_hits_across_calls() {
        let w = random_mat(12, 4, 33);
        let analog = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "e8");
        for step in 0..5 {
            let x = random_mat(1, 12, 40 + step);
            let _ = analog.matmul(&x, &w);
        }
        assert_eq!(analog.cache().misses(), 1);
        assert_eq!(analog.cache().hits(), 4);
    }

    #[test]
    fn asymmetric_cache_path_is_bit_identical_to_direct() {
        let a = random_mat(5, 11, 34);
        let b = random_mat(11, 7, 35);
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let edac = ElectricalDac::new(8).unwrap();
        let hybrid = AsymmetricGemm::new(pdac.clone(), edac, "hy");
        let direct_a = QuantizedMat::quantize(&a, 8).dequantize_with(&pdac);
        let direct_b = QuantizedMat::quantize(&b, 8).dequantize_with(&edac);
        let direct = direct_a.matmul_reference(&direct_b).unwrap();
        assert_eq!(hybrid.matmul(&a, &b), direct);
        assert_eq!(hybrid.cache().misses(), 1);
        let _ = hybrid.matmul(&a, &b);
        assert_eq!(hybrid.cache().hits(), 1);
    }

    #[test]
    fn analog_gemm_zero_operand() {
        let a = Mat::zeros(3, 3);
        let b = random_mat(3, 3, 9);
        let analog = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8");
        let got = analog.matmul(&a, &b);
        assert!(got.max_abs() < 1e-12);
    }

    /// Every output row of the batched form must match the 1×k matmul of
    /// that row alone — the invariant `decode_batch` is built on.
    fn assert_batch_rows_match(backend: &dyn GemmBackend, a: &Mat, b: &Mat) {
        let batched = backend.matmul_batch(a, b);
        assert_eq!(batched.shape(), (a.rows(), b.cols()));
        for r in 0..a.rows() {
            let row = Mat::from_rows(1, a.cols(), a.row_slice(r).to_vec()).unwrap();
            let single = backend.matmul(&row, b);
            assert_eq!(
                batched.row_slice(r),
                single.row_slice(0),
                "{} row {r}",
                backend.name()
            );
        }
    }

    #[test]
    fn exact_batch_rows_match_single_rows() {
        let a = random_mat(6, 16, 61);
        let b = random_mat(16, 8, 62);
        assert_batch_rows_match(&ExactGemm, &a, &b);
    }

    #[test]
    fn analog_batch_rows_match_single_rows() {
        // Rows with very different magnitudes: per-tensor batching would
        // change every row's quantization scale and fail this test.
        let mut a = random_mat(5, 16, 63);
        for (r, f) in [(0usize, 10.0), (1, 0.01)] {
            for v in a.row_slice_mut(r) {
                *v *= f;
            }
        }
        let b = random_mat(16, 8, 64);
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8");
        assert_batch_rows_match(&pdac, &a, &b);
        let hybrid = AsymmetricGemm::new(
            PDac::with_optimal_approx(8).unwrap(),
            ElectricalDac::new(8).unwrap(),
            "hy",
        );
        assert_batch_rows_match(&hybrid, &a, &b);
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = random_mat(4, 12, 65);
        let b = random_mat(12, 6, 66);
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8");
        let mut out = Mat::zeros(1, 1);
        for backend in [&ExactGemm as &dyn GemmBackend, &pdac] {
            backend.matmul_into(&a, &b, &mut out);
            assert_eq!(out, backend.matmul(&a, &b), "{}", backend.name());
        }
    }

    #[test]
    fn matmul_transient_matches_cached_and_skips_cache() {
        let a = random_mat(3, 14, 81);
        let b = random_mat(14, 9, 82);
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8");
        let hybrid = AsymmetricGemm::new(
            PDac::with_optimal_approx(8).unwrap(),
            ElectricalDac::new(8).unwrap(),
            "hy",
        );
        let mut out = Mat::zeros(1, 1);
        for backend in [&ExactGemm as &dyn GemmBackend, &pdac, &hybrid] {
            backend.matmul_transient_into(&a, &b, &mut out);
            assert_eq!(out, backend.matmul(&a, &b), "{}", backend.name());
        }
        // The transient call itself must leave the weight cache alone:
        // the only traffic above came from the `matmul` comparisons.
        assert_eq!(pdac.cache().misses() + pdac.cache().hits(), 1);
        assert_eq!(hybrid.cache().misses() + hybrid.cache().hits(), 1);
    }

    /// Every output row of the grouped transient form must match the
    /// solo transient matmul of that row against its own stacked block —
    /// the invariant the grouped attention path is built on.
    fn assert_grouped_rows_match(backend: &dyn GemmBackend, a: &Mat, b: &Mat) {
        let (g, k) = a.shape();
        let n = b.cols();
        let mut grouped = Mat::zeros(1, 1);
        backend.matmul_grouped_transient_into(a, b, &mut grouped);
        assert_eq!(grouped.shape(), (g, n));
        let mut solo = Mat::zeros(1, 1);
        for r in 0..g {
            let row = Mat::from_rows(1, k, a.row_slice(r).to_vec()).unwrap();
            let block =
                Mat::from_rows(k, n, b.as_slice()[r * k * n..(r + 1) * k * n].to_vec()).unwrap();
            backend.matmul_transient_into(&row, &block, &mut solo);
            assert_eq!(
                grouped.row_slice(r),
                solo.row_slice(0),
                "{} group {r}",
                backend.name()
            );
        }
    }

    #[test]
    fn grouped_transient_rows_match_solo_transient() {
        // Per-group operands with wildly different magnitudes so any
        // shared quantization scale across blocks would fail.
        let (g, k, n) = (5, 8, 6);
        let a = random_mat(g, k, 101);
        let mut b = random_mat(g * k, n, 102);
        for (blk, f) in [(0usize, 12.0), (3, 0.02)] {
            for r in 0..k {
                for v in b.row_slice_mut(blk * k + r) {
                    *v *= f;
                }
            }
        }
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8");
        let hybrid = AsymmetricGemm::new(
            PDac::with_optimal_approx(8).unwrap(),
            ElectricalDac::new(8).unwrap(),
            "hy",
        );
        for backend in [&ExactGemm as &dyn GemmBackend, &pdac, &hybrid] {
            assert_grouped_rows_match(backend, &a, &b);
        }
        // Grouped transients must leave the weight cache untouched.
        assert_eq!(pdac.cache().misses() + pdac.cache().hits(), 0);
        assert_eq!(hybrid.cache().misses() + hybrid.cache().hits(), 0);
    }

    #[test]
    fn grouped_transient_single_group_matches_transient() {
        let a = random_mat(1, 10, 103);
        let b = random_mat(10, 7, 104);
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8");
        let mut grouped = Mat::zeros(1, 1);
        let mut solo = Mat::zeros(1, 1);
        for backend in [&ExactGemm as &dyn GemmBackend, &pdac] {
            backend.matmul_grouped_transient_into(&a, &b, &mut grouped);
            backend.matmul_transient_into(&a, &b, &mut solo);
            assert_eq!(grouped, solo, "{}", backend.name());
        }
    }

    #[test]
    fn batch_packed_matches_batch_for_exact() {
        let b = random_mat(16, 8, 105);
        let packed = pdac_math::gemm::PackedB::pack(b.as_slice(), 16, 8);
        let mut plain = Mat::zeros(1, 1);
        let mut via_pack = Mat::zeros(1, 1);
        for rows in [1, 2, 6] {
            let a = random_mat(rows, 16, 106 + rows as u64);
            ExactGemm.matmul_batch_into(&a, &b, &mut plain);
            ExactGemm.matmul_batch_packed_into(&a, &b, &|| &packed, &mut via_pack);
            assert_eq!(via_pack, plain, "rows={rows}");
        }
    }

    #[test]
    fn batch_packed_single_row_never_forces_the_pack() {
        let a = random_mat(1, 12, 107);
        let b = random_mat(12, 5, 108);
        let mut out = Mat::zeros(1, 1);
        ExactGemm.matmul_batch_packed_into(
            &a,
            &b,
            &|| -> &'static pdac_math::gemm::PackedB { unreachable!("m == 1 must not pack") },
            &mut out,
        );
        assert_eq!(out, ExactGemm.matmul(&a, &b));
    }

    #[test]
    fn batch_packed_default_ignores_the_pack() {
        // Analog backends keep packed *converted* weights in their own
        // cache; the raw-value pack must be ignored, not misused.
        let a = random_mat(4, 12, 109);
        let b = random_mat(12, 5, 110);
        let packed = pdac_math::gemm::PackedB::pack(b.as_slice(), 12, 5);
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8");
        let mut plain = Mat::zeros(1, 1);
        let mut via_pack = Mat::zeros(1, 1);
        pdac.matmul_batch_into(&a, &b, &mut plain);
        pdac.matmul_batch_packed_into(&a, &b, &|| &packed, &mut via_pack);
        assert_eq!(via_pack, plain);
    }

    #[test]
    fn analog_batch_hits_weight_cache_once_per_call() {
        let w = random_mat(12, 4, 67);
        let analog = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "e8");
        let mut out = Mat::zeros(1, 1);
        for step in 0..5 {
            let x = random_mat(8, 12, 70 + step);
            analog.matmul_batch_into(&x, &w, &mut out);
        }
        assert_eq!(analog.cache().misses(), 1);
        assert_eq!(analog.cache().hits(), 4);
    }
}
