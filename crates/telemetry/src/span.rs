//! RAII span timers with ids, causal parents and thread-local nesting.
//!
//! Three kinds of span cover the stack's needs:
//!
//! * [`Span`] — scoped RAII guard. Its parent is whatever span is
//!   current on the thread when it opens (spans form a tree for free
//!   across synchronous call chains), and it becomes the thread's
//!   current span until it drops. Must drop in LIFO order per thread —
//!   the natural shape of `let _span = span(..)` guards.
//! * [`OwnedSpan`] — a span that outlives any single scope (a serving
//!   request that spans many scheduler steps). It never touches the
//!   thread-local stack; children attach to it explicitly via its
//!   [`TraceCtx`].
//! * retroactive events — [`crate::registry::Collector::record_span`]
//!   writes a span with explicit timestamps after the fact (e.g. queue
//!   wait, known only once the request leaves the queue).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::registry::{Collector, SpanEvent};

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Span id of the innermost open scoped span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide dense thread-id allocator (std's `ThreadId::as_u64` is
/// unstable; trace viewers want small stable integers anyway).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense id of the calling thread (assigned on first use, ≥ 1).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// A handle to a recorded span's identity, used to attach children to it
/// from outside its lexical scope (other scheduler steps, retroactive
/// events). Copyable and inert: holding one keeps nothing alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx(pub(crate) u64);

impl TraceCtx {
    /// The empty context: spans opened under it are roots.
    pub const NONE: TraceCtx = TraceCtx(0);

    /// The span id this context points at (0 for [`TraceCtx::NONE`]).
    pub fn id(&self) -> u64 {
        self.0
    }

    /// True for [`TraceCtx::NONE`].
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

/// The span id + parent the current thread would assign to a new scoped
/// span — i.e. the innermost open [`Span`], as a context.
pub fn current_ctx() -> TraceCtx {
    CURRENT.with(|c| TraceCtx(c.get()))
}

/// An open scoped span. Dropping it records the elapsed wall time
/// (seconds) into the histogram named after the span and appends a
/// [`SpanEvent`] to the collector's [`crate::trace::TraceBuffer`]. Spans
/// nest: a span opened while another is open on the same thread records
/// that span as its parent and `depth + 1`.
///
/// A span taken from a disabled collector is inert and costs nothing on
/// drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records ~0"]
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

struct SpanInner<'a> {
    collector: &'a Collector,
    name: &'static str,
    id: u64,
    parent: u64,
    /// Thread-current span id to restore on drop (≠ `parent` when the
    /// span was opened under an explicit context).
    prev_current: u64,
    start_ns: u64,
    depth: u32,
}

impl<'a> Span<'a> {
    pub(crate) fn enter(collector: &'a Collector, name: &'static str) -> Self {
        let parent = CURRENT.with(Cell::get);
        Self::enter_impl(collector, name, parent, parent)
    }

    /// A scoped span whose parent is `ctx` rather than the thread's
    /// current span (it still becomes the current span until dropped).
    pub(crate) fn enter_under(collector: &'a Collector, name: &'static str, ctx: TraceCtx) -> Self {
        let prev = CURRENT.with(Cell::get);
        Self::enter_impl(collector, name, ctx.0, prev)
    }

    fn enter_impl(
        collector: &'a Collector,
        name: &'static str,
        parent: u64,
        prev_current: u64,
    ) -> Self {
        if !collector.is_enabled() {
            return Self { inner: None };
        }
        let id = collector.alloc_span_id();
        CURRENT.with(|c| c.set(id));
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Self {
            inner: Some(SpanInner {
                collector,
                name,
                id,
                parent,
                prev_current,
                start_ns: collector.clock().now_ns(),
                depth,
            }),
        }
    }

    /// An inert span (used by the global entry points when disabled).
    pub fn noop() -> Self {
        Self { inner: None }
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's identity, for attaching children from other scopes.
    /// [`TraceCtx::NONE`] when the span is inert.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx(self.inner.as_ref().map_or(0, |i| i.id))
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        CURRENT.with(|c| c.set(inner.prev_current));
        let end_ns = inner.collector.clock().now_ns();
        let event = SpanEvent {
            name: inner.name,
            id: inner.id,
            parent: inner.parent,
            thread: thread_id(),
            start_ns: inner.start_ns,
            end_ns,
            depth: inner.depth,
            arg: None,
        };
        inner
            .collector
            .histogram(inner.name)
            .record(event.elapsed_ns() as f64 * 1e-9);
        inner.collector.push_event(event);
    }
}

/// A long-lived span detached from the thread-local nesting stack: it
/// may be stored, moved across scopes and dropped in any order relative
/// to other spans. Children attach to it explicitly through
/// [`OwnedSpan::ctx`]; an optional `arg` (e.g. a request id) rides along
/// into the trace export.
///
/// Dropping records the event exactly like [`Span`].
#[must_use = "an owned span measures until it is dropped; dropping it immediately records ~0"]
pub struct OwnedSpan<'a> {
    inner: Option<OwnedInner<'a>>,
}

struct OwnedInner<'a> {
    collector: &'a Collector,
    name: &'static str,
    id: u64,
    parent: u64,
    thread: u64,
    start_ns: u64,
    arg: Option<u64>,
}

impl<'a> OwnedSpan<'a> {
    pub(crate) fn open(
        collector: &'a Collector,
        name: &'static str,
        parent: TraceCtx,
        arg: Option<u64>,
    ) -> Self {
        if !collector.is_enabled() {
            return Self { inner: None };
        }
        Self {
            inner: Some(OwnedInner {
                collector,
                name,
                id: collector.alloc_span_id(),
                parent: parent.0,
                thread: thread_id(),
                start_ns: collector.clock().now_ns(),
                arg,
            }),
        }
    }

    /// An inert owned span (used by the global entry points when disabled).
    pub fn noop() -> Self {
        Self { inner: None }
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's identity, for attaching children to it.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx(self.inner.as_ref().map_or(0, |i| i.id))
    }

    /// Closes the span now (sugar for dropping it).
    pub fn end(self) {}
}

impl Drop for OwnedSpan<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end_ns = inner.collector.clock().now_ns();
        let event = SpanEvent {
            name: inner.name,
            id: inner.id,
            parent: inner.parent,
            thread: inner.thread,
            start_ns: inner.start_ns,
            end_ns,
            depth: u32::from(inner.parent != 0),
            arg: inner.arg,
        };
        inner
            .collector
            .histogram(inner.name)
            .record(event.elapsed_ns() as f64 * 1e-9);
        inner.collector.push_event(event);
    }
}
