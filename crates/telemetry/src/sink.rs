//! Snapshot sinks: JSONL writer, stderr table and in-memory capture.
//!
//! (The span-event ring buffer lives inside the [`Collector`] itself; these
//! sinks consume point-in-time [`Snapshot`]s.)

use std::io::{self, Write};

use crate::registry::Snapshot;

/// Anything that can consume a metrics snapshot.
pub trait Sink {
    fn emit(&mut self, snapshot: &Snapshot) -> io::Result<()>;
}

/// Writes one JSON document per snapshot, newline-delimited.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        Self { out }
    }

    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        self.out.write_all(snapshot.to_json().as_bytes())?;
        self.out.write_all(b"\n")
    }
}

/// Pretty-prints a fixed-width table to stderr.
#[derive(Debug, Default)]
pub struct StderrTableSink;

impl Sink for StderrTableSink {
    fn emit(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        let mut err = io::stderr().lock();
        err.write_all(snapshot.render_table().as_bytes())
    }
}

/// Keeps the last `capacity` snapshots in memory (useful in tests and for
/// periodic flushing without I/O).
#[derive(Debug)]
pub struct MemorySink {
    capacity: usize,
    snapshots: Vec<Snapshot>,
}

impl MemorySink {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            snapshots: Vec::new(),
        }
    }

    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        if self.snapshots.len() == self.capacity {
            self.snapshots.remove(0);
        }
        self.snapshots.push(snapshot.clone());
        Ok(())
    }
}
