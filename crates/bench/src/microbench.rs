//! Std-only microbenchmark harness.
//!
//! The workspace builds offline, so Criterion is out; this is the small
//! fraction of it we actually use: warm up, run for a fixed wall-clock
//! budget, report mean/min per-iteration time. Bench binaries stay
//! `harness = false` and are gated behind the off-by-default `microbench`
//! feature so `cargo test -q` never pays for them.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Total measured iterations.
    pub iters: u64,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed batch, per iteration, in nanoseconds.
    pub min_ns: f64,
}

impl BenchResult {
    /// Print a one-line summary to stdout.
    pub fn report(&self) {
        println!(
            "{:<44} {:>12.1} ns/iter (min {:>12.1} ns, {} iters)",
            self.name, self.mean_ns, self.min_ns, self.iters
        );
    }
}

/// Wall-clock budget per benchmark. Override with `PDAC_BENCH_MS`.
fn budget() -> Duration {
    let ms = std::env::var("PDAC_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// Time `f` in batches until the budget is spent; prints and returns the
/// per-iteration statistics.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    // Warm-up and batch-size calibration: grow the batch until one batch
    // takes ≳1% of the budget, so timer overhead stays negligible.
    let budget = budget();
    let mut batch: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt >= budget / 100 || batch >= 1 << 20 {
            break;
        }
        batch *= 2;
    }

    let mut iters: u64 = 0;
    let mut min_ns = f64::INFINITY;
    let start = Instant::now();
    let mut spent = Duration::ZERO;
    while spent < budget {
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let dt = t0.elapsed();
        min_ns = min_ns.min(dt.as_nanos() as f64 / batch as f64);
        iters += batch;
        spent = start.elapsed();
    }
    let result = BenchResult {
        name: name.to_string(),
        iters,
        mean_ns: spent.as_nanos() as f64 / iters as f64,
        min_ns,
    };
    result.report();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        std::env::set_var("PDAC_BENCH_MS", "5");
        let r = bench("selftest/sum", || (0..100u64).sum::<u64>());
        assert!(r.iters > 0);
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns * 1.5);
    }
}
