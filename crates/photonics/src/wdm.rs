//! Wavelength-division multiplexing links.
//!
//! A [`WdmLink`] carries independent per-channel signals over one shared
//! waveguide (paper Fig. 1): transmit-side MRRs program each wavelength,
//! receive-side MRRs drop their tuned wavelength to a local detector. The
//! model includes optional inter-channel crosstalk from finite MRR
//! selectivity — the demultiplexer's Lorentzian skirt leaks neighbouring
//! channels into each drop port.

use crate::devices::mrr::MicroRing;
use crate::field::OpticalField;
use crate::wavelength::WavelengthGrid;
use pdac_math::Complex64;

/// A point-to-point WDM link with MRR mux/demux banks.
///
/// # Examples
///
/// ```
/// use pdac_photonics::wdm::WdmLink;
/// use pdac_photonics::wavelength::WavelengthGrid;
///
/// let link = WdmLink::new(WavelengthGrid::dense_cband(4), 0.02);
/// let sent = [0.5, -0.25, 1.0, -0.75];
/// let received = link.transfer(&sent);
/// for (s, r) in sent.iter().zip(&received) {
///     assert!((s - r).abs() < 0.02);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WdmLink {
    grid: WavelengthGrid,
    demux: Vec<MicroRing>,
}

impl WdmLink {
    /// Creates a link over `grid` whose demux rings have the given FWHM
    /// linewidth (nm). Narrower linewidth → better channel isolation.
    ///
    /// # Panics
    ///
    /// Panics if `linewidth_nm <= 0`.
    pub fn new(grid: WavelengthGrid, linewidth_nm: f64) -> Self {
        let demux = grid
            .channels()
            .map(|ch| MicroRing::new(grid.wavelength_nm(ch), linewidth_nm))
            .collect();
        Self { grid, demux }
    }

    /// The wavelength grid.
    pub fn grid(&self) -> &WavelengthGrid {
        &self.grid
    }

    /// Multiplexes per-channel real amplitudes onto the shared waveguide.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != grid.len()`.
    pub fn mux(&self, amplitudes: &[f64]) -> OpticalField {
        assert_eq!(amplitudes.len(), self.grid.len(), "channel count mismatch");
        OpticalField::from_real(amplitudes)
    }

    /// Demultiplexes the shared field: each receiver ring drops its tuned
    /// wavelength; finite selectivity leaks a fraction of neighbouring
    /// channels' *power* into the drop port. Returns the signed amplitude
    /// recovered per channel (crosstalk enters through added power on top
    /// of the wanted coherent amplitude).
    pub fn demux(&self, field: &OpticalField) -> Vec<f64> {
        assert_eq!(field.channels(), self.grid.len(), "channel count mismatch");
        self.grid
            .channels()
            .map(|rx| {
                let ring = &self.demux[rx.0];
                let wanted = field.amplitude(rx);
                let (dropped, _) = ring.split(wanted, self.grid.wavelength_nm(rx));
                // Incoherent crosstalk power from other channels.
                let xtalk_power: f64 = self
                    .grid
                    .channels()
                    .filter(|&tx| tx != rx)
                    .map(|tx| {
                        let frac = ring.drop_power_fraction(self.grid.wavelength_nm(tx));
                        frac * field.intensity(tx)
                    })
                    .sum();
                let wanted_power = 0.5 * dropped.norm_sqr();
                let total = wanted_power + xtalk_power;
                // Reconstruct signed amplitude from power, keeping the
                // wanted channel's sign (phase 0 or π in this real model).
                let sign = if dropped.re < 0.0 { -1.0 } else { 1.0 };
                sign * (2.0 * total).sqrt()
            })
            .collect()
    }

    /// End-to-end mux → demux transfer of per-channel values.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != grid.len()`.
    pub fn transfer(&self, amplitudes: &[f64]) -> Vec<f64> {
        self.demux(&self.mux(amplitudes))
    }

    /// Worst-case crosstalk power fraction any channel contributes to any
    /// other drop port.
    pub fn worst_crosstalk_fraction(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for rx in self.grid.channels() {
            for tx in self.grid.channels() {
                if tx != rx {
                    worst = worst
                        .max(self.demux[rx.0].drop_power_fraction(self.grid.wavelength_nm(tx)));
                }
            }
        }
        worst
    }
}

/// Splits one broadcast field into `n` equal-power copies — the
/// SPRINT/SPACX-style waveguide broadcast used to share operands across
/// DPTC cores.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn broadcast(field: &OpticalField, n: usize) -> Vec<OpticalField> {
    assert!(n > 0, "broadcast needs at least one destination");
    let factor = Complex64::from_re(1.0 / (n as f64).sqrt());
    (0..n).map(|_| field.apply_uniform(factor)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_rings_recover_signals() {
        let link = WdmLink::new(WavelengthGrid::dense_cband(8), 0.02);
        // Nonzero magnitudes: near-zero channels are dominated by
        // crosstalk power, covered by the dedicated crosstalk test.
        let sent: Vec<f64> = (0..8)
            .map(|i| (i as f64 + 1.0) / 9.0 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let recv = link.transfer(&sent);
        for (s, r) in sent.iter().zip(&recv) {
            assert!((s - r).abs() < 0.01, "sent={s} recv={r}");
        }
    }

    #[test]
    fn sign_preserved_through_link() {
        let link = WdmLink::new(WavelengthGrid::dense_cband(2), 0.05);
        let recv = link.transfer(&[-0.8, 0.8]);
        assert!(recv[0] < 0.0);
        assert!(recv[1] > 0.0);
    }

    #[test]
    fn wide_rings_cause_crosstalk() {
        let tight = WdmLink::new(WavelengthGrid::dense_cband(4), 0.05);
        let sloppy = WdmLink::new(WavelengthGrid::dense_cband(4), 0.5);
        assert!(sloppy.worst_crosstalk_fraction() > 10.0 * tight.worst_crosstalk_fraction());
        // A dark channel next to a bright one picks up energy.
        let recv = sloppy.transfer(&[1.0, 0.0, 0.0, 0.0]);
        assert!(recv[1] > 0.05);
    }

    #[test]
    fn broadcast_conserves_power() {
        let f = OpticalField::from_real(&[1.0, -0.5]);
        let copies = broadcast(&f, 4);
        assert_eq!(copies.len(), 4);
        let total: f64 = copies.iter().map(OpticalField::total_intensity).sum();
        assert!((total - f.total_intensity()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn broadcast_rejects_zero() {
        broadcast(&OpticalField::dark(1), 0);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn mux_rejects_wrong_arity() {
        WdmLink::new(WavelengthGrid::dense_cband(2), 0.1).mux(&[1.0]);
    }
}
