//! Generalizing Eq. 18: arccos approximations with N linear segments.
//!
//! The paper stops at three segments ("the function in the P-DAC hardware
//! can be easily decomposed into three parts by adding logic gates").
//! Each extra segment costs one more magnitude comparator and TIA weight
//! set, so the natural follow-up question is the error-vs-hardware curve:
//! how fast does the worst-case reconstruction error fall as segments are
//! added, and how should breakpoints be placed? This module synthesizes
//! chord interpolants of `arccos` with arbitrary positive-domain nodes
//! (mirrored by the same `π − f(−r)` sign path the 3-segment design
//! uses) and provides uniform and slope-adapted node placements.

use crate::approx::ArccosApprox;
use pdac_math::piecewise::{PiecewiseLinear, Segment};
use std::f64::consts::FRAC_PI_2;

/// Builds the full-range chord interpolant of `arccos` through the given
/// positive-domain nodes.
///
/// `positive_nodes` must be strictly increasing, start at `0.0` and end
/// at `1.0`; each consecutive pair contributes one chord segment, and the
/// negative domain mirrors via `f(−r) = π − f(r)`.
///
/// Chords are *interpolants*: they are exact at every node (in
/// particular at `r = ±1`, like Eq. 18) and over-estimate `arccos`
/// in between.
///
/// # Panics
///
/// Panics if fewer than two nodes are given or the node list is not an
/// increasing `0.0 ..= 1.0` chain.
pub fn chord_interpolant(positive_nodes: &[f64]) -> ArccosApprox {
    assert!(positive_nodes.len() >= 2, "need at least two nodes");
    assert!(
        positive_nodes.first() == Some(&0.0) && positive_nodes.last() == Some(&1.0),
        "nodes must span [0, 1]"
    );
    assert!(
        positive_nodes.windows(2).all(|w| w[0] < w[1]),
        "nodes must be strictly increasing"
    );
    let mut positive = Vec::new();
    for pair in positive_nodes.windows(2) {
        let (x0, x1) = (pair[0], pair[1]);
        positive.push(Segment::through(x0, x0.acos(), x1, x1.acos()));
    }
    // Mirror: on [−x1, −x0], f(r) = π − f(−r) = a·r + (π − b).
    let mut segments: Vec<Segment> = positive
        .iter()
        .rev()
        .map(|s| Segment::new(-s.hi, -s.lo, s.slope, std::f64::consts::PI - s.intercept))
        .collect();
    segments.extend(positive.iter().copied());
    let function = PiecewiseLinear::new(segments).expect("mirrored chain is contiguous");
    let breakpoint = positive_nodes[positive_nodes.len() - 2].max(f64::MIN_POSITIVE);
    ArccosApprox::from_parts(function, breakpoint)
}

/// Uniformly spaced nodes: `segments` chords of equal width.
///
/// # Panics
///
/// Panics if `segments == 0`.
pub fn uniform_chords(segments: usize) -> ArccosApprox {
    assert!(segments > 0, "need at least one segment");
    let nodes: Vec<f64> = (0..=segments).map(|i| i as f64 / segments as f64).collect();
    chord_interpolant(&nodes)
}

/// Slope-adapted nodes `r_i = sin(i·π/2/segments)`: uniform in the
/// *drive angle*, so segments shrink toward `r = 1` where the arccos
/// slope diverges. This is the natural placement for an MZM whose
/// transfer is the cosine of the drive.
///
/// # Panics
///
/// Panics if `segments == 0`.
pub fn sine_spaced_chords(segments: usize) -> ArccosApprox {
    assert!(segments > 0, "need at least one segment");
    let nodes: Vec<f64> = (0..=segments)
        .map(|i| (i as f64 * FRAC_PI_2 / segments as f64).sin())
        .collect();
    chord_interpolant(&nodes)
}

/// One row of the error-vs-hardware ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentLadderRow {
    /// Positive-domain segment count.
    pub segments: usize,
    /// Worst-case relative reconstruction error, uniform nodes.
    pub uniform_error: f64,
    /// Worst-case relative reconstruction error, sine-spaced nodes.
    pub sine_error: f64,
    /// Region comparators needed (positive-domain regions − 1).
    pub comparators: usize,
}

/// Sweeps segment counts `1..=max_segments`.
///
/// # Panics
///
/// Panics if `max_segments == 0`.
pub fn segment_ladder(max_segments: usize) -> Vec<SegmentLadderRow> {
    assert!(max_segments > 0, "need at least one segment");
    (1..=max_segments)
        .map(|s| SegmentLadderRow {
            segments: s,
            uniform_error: uniform_chords(s).max_reconstruction_error(20_001).0,
            sine_error: sine_spaced_chords(s).max_reconstruction_error(20_001).0,
            comparators: s.saturating_sub(1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chord_is_the_full_secant() {
        let f = uniform_chords(1);
        // Chord of arccos from (0, π/2) to (1, 0): f(r) = π/2·(1−r).
        assert!((f.drive(0.0) - FRAC_PI_2).abs() < 1e-12);
        assert!(f.drive(1.0).abs() < 1e-12);
        assert!((f.drive(0.5) - FRAC_PI_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn interpolant_exact_at_nodes() {
        let nodes = [0.0, 0.3, 0.7236, 0.9, 1.0];
        let f = chord_interpolant(&nodes);
        for &r in &nodes {
            assert!((f.drive(r) - r.acos()).abs() < 1e-9, "node {r}");
            assert!((f.drive(-r) - (-r).acos()).abs() < 1e-9, "node {}", -r);
        }
    }

    #[test]
    fn interpolant_is_continuous_and_odd() {
        let f = sine_spaced_chords(5);
        for bp in f.function().breakpoints() {
            let gap = (f.drive(bp - 1e-9) - f.drive(bp + 1e-9)).abs();
            assert!(gap < 1e-6, "gap {gap} at {bp}");
        }
        for &r in &[0.1, 0.45, 0.8, 0.99] {
            assert!((f.reconstruct(r) + f.reconstruct(-r)).abs() < 1e-9);
        }
    }

    #[test]
    fn error_decreases_with_segments() {
        let ladder = segment_ladder(8);
        for pair in ladder.windows(2) {
            assert!(pair[1].sine_error <= pair[0].sine_error + 1e-9);
        }
        // Eight sine-spaced segments get under 1%.
        assert!(ladder[7].sine_error < 0.01, "{}", ladder[7].sine_error);
    }

    #[test]
    fn sine_spacing_beats_uniform_for_few_segments() {
        // The arccos slope diverges at r = 1; uniform chords waste their
        // budget on the flat interior.
        for row in segment_ladder(6).iter().skip(1) {
            assert!(
                row.sine_error < row.uniform_error,
                "segments {}: sine {} vs uniform {}",
                row.segments,
                row.sine_error,
                row.uniform_error
            );
        }
    }

    #[test]
    fn three_sine_segments_comparable_to_paper_design() {
        // The paper's 3-piece design (2 positive segments) hits 8.5%;
        // a 2-segment sine-spaced chord interpolant is in the same band.
        let two = sine_spaced_chords(2).max_reconstruction_error(20_001).0;
        assert!(two < 0.16, "two-segment error {two}");
        let three = sine_spaced_chords(3).max_reconstruction_error(20_001).0;
        assert!(three < 0.085, "three-segment error {three}");
    }

    #[test]
    fn comparator_count_tracks_segments() {
        let ladder = segment_ladder(4);
        assert_eq!(ladder[0].comparators, 0);
        assert_eq!(ladder[3].comparators, 3);
    }

    #[test]
    #[should_panic(expected = "span [0, 1]")]
    fn bad_node_range_rejected() {
        chord_interpolant(&[0.1, 1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_nodes_rejected() {
        chord_interpolant(&[0.0, 0.8, 0.5, 1.0]);
    }
}
