//! Microbenches of the arccos approximation pipeline.

use pdac_bench::microbench::{bench, black_box};
use pdac_core::approx::{integrated_error_objective, solve_optimal_breakpoint, ArccosApprox};

fn main() {
    let optimal = ArccosApprox::optimal();
    bench("approx/drive_eval", || {
        let mut acc = 0.0;
        let mut r = -1.0;
        while r <= 1.0 {
            acc += optimal.drive(black_box(r));
            r += 1.0 / 512.0;
        }
        acc
    });
    bench("approx/objective_eval", || {
        integrated_error_objective(black_box(0.7236))
    });
    bench("approx/solve_optimal_k", || {
        solve_optimal_breakpoint(black_box(1e-5))
    });
    bench("approx/max_error_scan", || {
        optimal.max_reconstruction_error(black_box(4001))
    });
}
