//! Property-based tests for the NN workload substrate.

use pdac_core::pdac::PDac;
use pdac_math::Mat;
use pdac_nn::config::TransformerConfig;
use pdac_nn::gemm::{AnalogGemm, ExactGemm, GemmBackend};
use pdac_nn::generative::{arithmetic_intensity, decode_trace};
use pdac_nn::ops::{gelu, layer_norm_rows, mean_pool_rows, softmax_rows};
use pdac_nn::quant::QuantizedMat;
use pdac_nn::workload::op_trace;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = TransformerConfig> {
    (1usize..4, 1usize..6, 1usize..5, 1usize..3, 1usize..64).prop_map(
        |(layers, heads, head_dim, ff_mult, seq_len)| TransformerConfig {
            name: "prop".into(),
            layers,
            hidden: heads * head_dim * 8,
            heads,
            ff_mult: ff_mult * 2,
            seq_len,
        },
    )
}

proptest! {
    #[test]
    fn softmax_rows_are_distributions(
        vals in prop::collection::vec(-20.0f64..20.0, 6..24),
    ) {
        let cols = 3;
        let rows = vals.len() / cols;
        let m = Mat::from_rows(rows, cols, vals[..rows * cols].to_vec()).unwrap();
        let p = softmax_rows(&m);
        for r in 0..rows {
            let sum: f64 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn layer_norm_output_standardized(
        vals in prop::collection::vec(-100.0f64..100.0, 8),
    ) {
        let m = Mat::from_rows(1, 8, vals.clone()).unwrap();
        // Skip degenerate constant rows (variance 0 -> eps-dominated).
        let mean0: f64 = vals.iter().sum::<f64>() / 8.0;
        let var0: f64 = vals.iter().map(|v| (v - mean0).powi(2)).sum::<f64>() / 8.0;
        prop_assume!(var0 > 1e-6);
        let out = layer_norm_rows(&m, &[1.0; 8], &[0.0; 8], 1e-9);
        let mean: f64 = out.row(0).iter().sum::<f64>() / 8.0;
        let var: f64 = out.row(0).iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 8.0;
        prop_assert!(mean.abs() < 1e-8);
        prop_assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_monotone_on_positives_and_bounded_below(x in -10.0f64..10.0, dx in 0.0f64..1.0) {
        // GELU is non-monotone on the negative axis (minimum ≈ −0.17 near
        // x ≈ −0.75) but monotone for x >= 0 and bounded below overall.
        if x >= 0.0 {
            prop_assert!(gelu(x + dx) >= gelu(x) - 1e-9);
        }
        prop_assert!(gelu(x) >= -0.2);
    }

    #[test]
    fn quantized_round_trip_error_bounded(
        vals in prop::collection::vec(-3.0f64..3.0, 4..16),
        bits in 3u8..=12,
    ) {
        let m = Mat::from_rows(1, vals.len(), vals).unwrap();
        let q = QuantizedMat::quantize(&m, bits);
        let back = q.dequantize_ideal();
        let step = q.scale() / ((1i32 << (bits - 1)) - 1) as f64;
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-12);
        }
    }

    #[test]
    fn analog_gemm_stays_within_relative_band(
        seed_vals in prop::collection::vec(-1.0f64..1.0, 16),
    ) {
        let a = Mat::from_rows(4, 4, seed_vals.clone()).unwrap();
        let b = Mat::from_rows(4, 4, seed_vals.iter().map(|v| 0.9 - v).collect()).unwrap();
        let exact = ExactGemm.matmul(&a, &b);
        let analog = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p");
        let got = analog.matmul(&a, &b);
        // Perturbation bound: ||Δ(AB)|| <= ||ΔA||·||B|| + ||A||·||ΔB|| +
        // ||ΔA||·||ΔB|| with per-element operand error <= ~9%, so the
        // product error is bounded by ~0.2·||A||·||B|| — the exact
        // product itself can cancel to zero, so it is NOT the right
        // scale.
        let zero = Mat::zeros(4, 4);
        let na = a.distance(&zero);
        let nb = b.distance(&zero);
        prop_assert!(got.distance(&exact) <= 0.25 * na * nb + 1e-9);
    }

    #[test]
    fn op_trace_macs_match_config(config in config_strategy()) {
        prop_assume!(config.validate().is_ok());
        let trace = op_trace(&config);
        prop_assert_eq!(trace.total_macs(), config.total_macs());
    }

    #[test]
    fn decode_intensity_below_prefill(config in config_strategy(), ctx in 1usize..512) {
        prop_assume!(config.validate().is_ok());
        prop_assume!(config.seq_len >= 8);
        let prefill = arithmetic_intensity(&op_trace(&config));
        let decode = arithmetic_intensity(&decode_trace(&config, ctx, 4));
        prop_assert!(decode <= prefill + 1e-9);
    }

    #[test]
    fn mean_pool_is_row_average(
        vals in prop::collection::vec(-5.0f64..5.0, 12),
    ) {
        let m = Mat::from_rows(3, 4, vals).unwrap();
        let pooled = mean_pool_rows(&m);
        for (c, p) in pooled.iter().enumerate() {
            let manual = (m[(0, c)] + m[(1, c)] + m[(2, c)]) / 3.0;
            prop_assert!((p - manual).abs() < 1e-12);
        }
    }
}
