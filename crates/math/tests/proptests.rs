//! Property-based tests for the numerics substrate.

use pdac_math::complex::Complex64;
use pdac_math::integrate::{adaptive_simpson, simpson};
use pdac_math::optimize::golden_section;
use pdac_math::piecewise::{PiecewiseLinear, Segment};
use pdac_math::quant::Quantizer;
use pdac_math::series::arccos_series;
use pdac_math::stats::{cosine_similarity, rmse, sqnr_db};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |x| {
        let span = range.end - range.start;
        range.start + (x.abs() % 1.0) * span
    })
}

proptest! {
    #[test]
    fn complex_mul_is_commutative(
        a in -1e3f64..1e3, b in -1e3f64..1e3,
        c in -1e3f64..1e3, d in -1e3f64..1e3,
    ) {
        let x = Complex64::new(a, b);
        let y = Complex64::new(c, d);
        prop_assert!((x * y).approx_eq(y * x, 1e-6));
    }

    #[test]
    fn complex_norm_is_multiplicative(
        a in -1e2f64..1e2, b in -1e2f64..1e2,
        c in -1e2f64..1e2, d in -1e2f64..1e2,
    ) {
        let x = Complex64::new(a, b);
        let y = Complex64::new(c, d);
        let lhs = (x * y).norm();
        let rhs = x.norm() * y.norm();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs));
    }

    #[test]
    fn polar_round_trip(r in 0.001f64..100.0, theta in -3.1f64..3.1) {
        let z = Complex64::from_polar(r, theta);
        prop_assert!((z.norm() - r).abs() < 1e-9 * (1.0 + r));
        prop_assert!((z.arg() - theta).abs() < 1e-9);
    }

    #[test]
    fn simpson_linear_is_exact(a in -10.0f64..10.0, b in -10.0f64..10.0, lo in -5.0f64..0.0, width in 0.1f64..5.0) {
        let hi = lo + width;
        let got = simpson(|x| a * x + b, lo, hi, 16);
        let exact = a * (hi * hi - lo * lo) / 2.0 + b * (hi - lo);
        prop_assert!((got - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    #[test]
    fn adaptive_matches_fixed_on_smooth(freq in 0.5f64..4.0) {
        let f = move |x: f64| (freq * x).sin().exp();
        let a = adaptive_simpson(f, 0.0, 2.0, 1e-10);
        let b = simpson(f, 0.0, 2.0, 200_000);
        prop_assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn golden_section_finds_shifted_parabola(center in finite_f64(-0.9..0.9)) {
        let m = golden_section(move |x| (x - center).powi(2), -1.0, 1.0, 1e-12);
        prop_assert!((m.x - center).abs() < 1e-6);
    }

    #[test]
    fn quantizer_round_trip_bounded(bits in 2u8..=12, x in -1.0f64..1.0) {
        let q = Quantizer::new(bits, 1.0).unwrap();
        let err = (q.round_trip(x) - x).abs();
        prop_assert!(err <= q.step() / 2.0 + 1e-12);
    }

    #[test]
    fn quantizer_is_monotone(bits in 2u8..=10, x in -1.0f64..1.0, dx in 0.0f64..0.5) {
        let q = Quantizer::new(bits, 1.0).unwrap();
        prop_assert!(q.quantize(x + dx) >= q.quantize(x));
    }

    #[test]
    fn arccos_series_below_reference_error(r in -0.98f64..0.98) {
        // The series converges slowly near |r| = 1 (radius of convergence),
        // so test the interior where 80 terms are ample.
        let exact = r.acos();
        let approx = arccos_series(r, 80);
        prop_assert!((approx - exact).abs() < 0.01);
    }

    #[test]
    fn piecewise_eval_matches_segment_lines(bp in 0.1f64..0.9) {
        let f = PiecewiseLinear::new(vec![
            Segment::new(0.0, bp, 1.0, 0.0),
            Segment::through(bp, bp, 1.0, 0.0),
        ]).unwrap();
        // Left segment is identity.
        prop_assert!((f.eval(bp / 2.0) - bp / 2.0).abs() < 1e-12);
        // Endpoint continuity.
        let left = f.segments()[0].eval(bp);
        let right = f.segments()[1].eval(bp);
        prop_assert!((left - right).abs() < 1e-9);
    }

    #[test]
    fn rmse_zero_iff_equal(v in prop::collection::vec(-10.0f64..10.0, 1..32)) {
        prop_assert_eq!(rmse(&v, &v), 0.0);
    }

    #[test]
    fn sqnr_improves_with_smaller_noise(
        v in prop::collection::vec(0.1f64..10.0, 4..32),
        eps in 0.001f64..0.1,
    ) {
        let noisy_small: Vec<f64> = v.iter().map(|x| x + eps * 0.1).collect();
        let noisy_big: Vec<f64> = v.iter().map(|x| x + eps).collect();
        prop_assert!(sqnr_db(&v, &noisy_small) > sqnr_db(&v, &noisy_big));
    }

    #[test]
    fn cosine_similarity_bounded(
        a in prop::collection::vec(-10.0f64..10.0, 3..16),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 0.1).collect();
        if let Some(c) = cosine_similarity(&a, &b) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
    }
}
