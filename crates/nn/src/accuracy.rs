//! Task-level accuracy under analog execution.
//!
//! The paper argues LLMs tolerate the P-DAC's bounded error because
//! "exact numerical precision is not as critical, as long as the output
//! falls within an acceptable range". Without GLUE/ImageNet offline, we
//! build the equivalent controlled experiment: the *exact* model defines
//! the ground-truth label of every input (a teacher task), and accuracy
//! of an analog backend is its agreement with that teacher. Sweeping bit
//! width traces the accuracy-vs-precision curve that motivates the
//! paper's 4-bit/8-bit design points.

use crate::config::TransformerConfig;
use crate::gemm::{AnalogGemm, ExactGemm};
use crate::inference::TransformerModel;
use pdac_core::converter::MzmDriver;
use pdac_core::edac::ElectricalDac;
use pdac_core::pdac::PDac;

/// One point of the accuracy curve.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// Converter label.
    pub converter: String,
    /// Bit precision.
    pub bits: u8,
    /// Agreement with the exact model's labels, in `[0, 1]`.
    pub accuracy: f64,
}

/// Which converter drives the analog GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConverterKind {
    /// Electrical DAC baseline.
    ElectricalDac,
    /// P-DAC with the paper's Eq. 18 approximation.
    PDacOptimal,
    /// P-DAC with the first-order Eq. 15 approximation.
    PDacFirstOrder,
    /// P-DAC with the minimax-trimmed segments.
    PDacMinimax,
}

impl ConverterKind {
    /// All kinds, in report order.
    pub const ALL: [ConverterKind; 4] = [
        ConverterKind::ElectricalDac,
        ConverterKind::PDacOptimal,
        ConverterKind::PDacFirstOrder,
        ConverterKind::PDacMinimax,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ConverterKind::ElectricalDac => "e-DAC",
            ConverterKind::PDacOptimal => "P-DAC (Eq.18)",
            ConverterKind::PDacFirstOrder => "P-DAC (1st-order)",
            ConverterKind::PDacMinimax => "P-DAC (minimax)",
        }
    }

    fn build(self, bits: u8) -> Box<dyn MzmDriver> {
        match self {
            ConverterKind::ElectricalDac => {
                Box::new(ElectricalDac::new(bits).expect("validated bits"))
            }
            ConverterKind::PDacOptimal => {
                Box::new(PDac::with_optimal_approx(bits).expect("validated bits"))
            }
            ConverterKind::PDacFirstOrder => {
                Box::new(PDac::with_first_order_approx(bits).expect("validated bits"))
            }
            ConverterKind::PDacMinimax => {
                Box::new(PDac::with_minimax_approx(bits).expect("validated bits"))
            }
        }
    }
}

/// Boxed-driver adapter so heterogeneous converters share one GEMM type.
struct BoxedDriver(Box<dyn MzmDriver>);

impl MzmDriver for BoxedDriver {
    fn bits(&self) -> u8 {
        self.0.bits()
    }
    fn convert(&self, code: i32) -> f64 {
        self.0.convert(code)
    }
}

/// Teacher-task accuracy of one converter at one precision: fraction of
/// `samples` seeded inputs whose argmax class matches the exact model.
///
/// # Panics
///
/// Panics if `samples == 0` or `bits` outside `2..=16`.
pub fn teacher_accuracy(
    model: &TransformerModel,
    kind: ConverterKind,
    bits: u8,
    samples: usize,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let backend = AnalogGemm::new(BoxedDriver(kind.build(bits)), kind.label());
    let mut agree = 0usize;
    for i in 0..samples {
        let input = model.random_input(5000 + i as u64);
        if model.predict(&input, &ExactGemm) == model.predict(&input, &backend) {
            agree += 1;
        }
    }
    agree as f64 / samples as f64
}

/// Sweeps the accuracy curve over converters × bit widths.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn accuracy_curve(
    config: TransformerConfig,
    bits: &[u8],
    samples: usize,
    seed: u64,
) -> Vec<AccuracyPoint> {
    let model = TransformerModel::random(config, 16, seed);
    let mut points = Vec::new();
    for &b in bits {
        for kind in ConverterKind::ALL {
            points.push(AccuracyPoint {
                converter: kind.label().to_string(),
                bits: b,
                accuracy: teacher_accuracy(&model, kind, b, samples),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransformerModel {
        TransformerModel::random(TransformerConfig::tiny(), 16, 31)
    }

    #[test]
    fn eight_bit_pdac_accuracy_is_high() {
        let acc = teacher_accuracy(&model(), ConverterKind::PDacOptimal, 8, 10);
        assert!(acc >= 0.7, "accuracy {acc}");
    }

    #[test]
    fn edac_at_least_as_accurate_as_first_order_pdac() {
        let m = model();
        let edac = teacher_accuracy(&m, ConverterKind::ElectricalDac, 6, 10);
        let first = teacher_accuracy(&m, ConverterKind::PDacFirstOrder, 6, 10);
        assert!(edac >= first, "edac {edac} vs first-order {first}");
    }

    #[test]
    fn accuracy_curve_covers_grid() {
        let pts = accuracy_curve(TransformerConfig::tiny(), &[4, 8], 3, 7);
        assert_eq!(pts.len(), 8); // 2 bits × 4 converters
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.accuracy)));
    }

    #[test]
    fn more_bits_never_hurt_much() {
        // Not strictly monotone with tiny samples, but 8-bit should not
        // be far below 4-bit for the optimal P-DAC.
        let m = model();
        let a4 = teacher_accuracy(&m, ConverterKind::PDacOptimal, 4, 12);
        let a8 = teacher_accuracy(&m, ConverterKind::PDacOptimal, 8, 12);
        assert!(a8 + 0.25 >= a4, "a4={a4} a8={a8}");
    }
}
