//! The common interface of MZM drive paths.
//!
//! Both the baseline electrical-DAC path and the P-DAC ultimately do the
//! same job: turn a signed digital code into the analog optical amplitude
//! emitted by an MZM. [`MzmDriver`] abstracts over the two so the
//! accelerator simulator and the NN fidelity studies can swap them freely.

/// A driver that converts signed digital codes into MZM output amplitudes
/// (normalized to a unit input field).
///
/// Implementors: [`crate::PDac`] (photonic, approximate) and
/// [`crate::ElectricalDac`] (electrical, exact to LSB precision).
pub trait MzmDriver {
    /// Bit width of accepted codes.
    fn bits(&self) -> u8;

    /// Largest magnitude code, `2^(bits−1) − 1`.
    fn max_code(&self) -> i32 {
        (1i32 << (self.bits() - 1)) - 1
    }

    /// Converts a code to the emitted analog amplitude in `[−1, 1]`.
    /// Codes outside the representable range saturate.
    fn convert(&self, code: i32) -> f64;

    /// The ideal (error-free) value of a code: `code / max_code`.
    fn ideal_value(&self, code: i32) -> f64 {
        let m = self.max_code();
        code.clamp(-m, m) as f64 / m as f64
    }

    /// Quantizes a real value in `[−1, 1]` to a code and converts it.
    fn convert_value(&self, x: f64) -> f64 {
        let m = self.max_code() as f64;
        let code = (x * m).round().clamp(-m, m) as i32;
        self.convert(code)
    }

    /// Converts a whole slice of codes.
    ///
    /// For slices larger than the code space, the default tabulates the
    /// driver once (see [`crate::lut::ConverterLut`]) and answers from
    /// the table, so the full conversion pipeline runs at most once per
    /// distinct code. Output is bit-identical to per-element `convert`.
    fn convert_all(&self, codes: &[i32]) -> Vec<f64> {
        let m = self.max_code();
        let table_len = (2 * m + 1) as usize;
        if codes.len() > table_len {
            let lut = crate::lut::ConverterLut::new(self);
            return lut.convert_all(codes);
        }
        codes.iter().map(|&c| self.convert(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial driver used to exercise the trait's default methods.
    struct Passthrough;

    impl MzmDriver for Passthrough {
        fn bits(&self) -> u8 {
            4
        }
        fn convert(&self, code: i32) -> f64 {
            self.ideal_value(code)
        }
    }

    #[test]
    fn default_max_code() {
        assert_eq!(Passthrough.max_code(), 7);
    }

    #[test]
    fn ideal_value_saturates() {
        let d = Passthrough;
        assert_eq!(d.ideal_value(7), 1.0);
        assert_eq!(d.ideal_value(100), 1.0);
        assert_eq!(d.ideal_value(-100), -1.0);
    }

    #[test]
    fn convert_value_quantizes() {
        let d = Passthrough;
        let got = d.convert_value(0.5);
        // round(0.5·7) = 4 -> 4/7.
        assert!((got - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn convert_all_maps_each() {
        let d = Passthrough;
        let out = d.convert_all(&[-7, 0, 7]);
        assert_eq!(out, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn convert_all_table_path_matches_direct() {
        // More codes than the 4-bit code space: the default goes through
        // the dense table; output must be bit-identical to per-element
        // conversion.
        let d = Passthrough;
        let codes: Vec<i32> = (-8..=8).cycle().take(200).collect();
        let got = d.convert_all(&codes);
        let want: Vec<f64> = codes.iter().map(|&c| d.convert(c)).collect();
        assert_eq!(got, want);
    }
}
