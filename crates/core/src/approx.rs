//! Approximating `arccos` with piecewise-linear functions.
//!
//! The MZM's cosine transfer forces the drive voltage to be
//! `V₁′ = arccos(r)` for a target analog value `r` (paper Eq. 13). A TIA
//! bank can only realize *linear* maps of the bits, so the P-DAC
//! approximates `arccos` piecewise-linearly:
//!
//! 1. **First order** (Eq. 15): `f(r) = π/2 − r`. Worst reconstruction
//!    error ≈ 15.9% at `r = ±1`.
//! 2. **Two-expression positive form** (Eq. 16): keep `π/2 − r` on
//!    `[0, k]`, switch to the chord through `(1, 0)` on `[k, 1]`.
//! 3. **Optimal breakpoint** (Eq. 17): choose `k` minimizing the
//!    integrated relative reconstruction error; the paper (and this
//!    solver) find `k ≈ 0.7236`.
//! 4. **Full-range three-segment form** (Eq. 18) by odd symmetry
//!    `arccos(−r) = π − arccos(r)`; worst error ≈ 8.5% at `r = ±k`.
//!
//! The *reconstruction* error metric is what matters physically: the
//! error of `cos(f(r))` (what the MZM emits) against `r`, not the error
//! of `f(r)` against `arccos(r)`.

use pdac_math::integrate::adaptive_simpson;
use pdac_math::optimize::golden_section;
use pdac_math::piecewise::{PiecewiseLinear, Segment};
use std::f64::consts::FRAC_PI_2;

/// The paper's optimal breakpoint (Sec. III-C): `k ≈ 0.7236`.
pub const PAPER_OPTIMAL_K: f64 = 0.7236;

/// The paper's reported worst-case reconstruction error of Eq. 18: 8.5%.
pub const PAPER_MAX_ERROR: f64 = 0.085;

/// The paper's reported worst-case error of the first-order cut: 15.9%.
pub const PAPER_FIRST_ORDER_ERROR: f64 = 0.159;

/// A piecewise-linear approximation of `arccos` over `[−1, 1]`.
///
/// # Examples
///
/// ```
/// use pdac_core::ArccosApprox;
///
/// let approx = ArccosApprox::optimal();
/// assert!((approx.breakpoint() - 0.7236).abs() < 1e-3);
/// assert!((approx.max_reconstruction_error(20_001).0 - 0.085).abs() < 2e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArccosApprox {
    function: PiecewiseLinear,
    breakpoint: f64,
}

impl ArccosApprox {
    /// The first-order Taylor approximation `f(r) = π/2 − r` on `[−1, 1]`
    /// (paper Eq. 15). Single segment — no region-select logic needed.
    pub fn first_order() -> Self {
        let f = PiecewiseLinear::new(vec![Segment::new(-1.0, 1.0, -1.0, FRAC_PI_2)])
            .expect("single valid segment");
        Self {
            function: f,
            breakpoint: 1.0,
        }
    }

    /// The three-segment approximation of paper Eq. 18 with an explicit
    /// breakpoint `k ∈ (0, 1)`:
    ///
    /// * `[−1, −k]`: odd-symmetric image of the end chord,
    /// * `[−k, k]`: `π/2 − r`,
    /// * `[k, 1]`: the chord through `(k, π/2−k)` and `(1, 0)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `(0, 1)`.
    pub fn three_segment(k: f64) -> Self {
        assert!(k > 0.0 && k < 1.0, "breakpoint must lie in (0, 1)");
        // End chord on [k, 1]: passes (k, π/2 − k) and (1, 0).
        let slope_end = (0.0 - (FRAC_PI_2 - k)) / (1.0 - k); // = (k − π/2)/(1 − k)
        let pos_end = Segment::new(k, 1.0, slope_end, -slope_end); // a(r−1)
                                                                   // Negative side by arccos(−r) = π − arccos(r):
                                                                   // f(r) = π − (slope_end·(−r − 1)·…) = slope_end·r + (π + slope_end).
        let neg_end = Segment::new(-1.0, -k, slope_end, std::f64::consts::PI + slope_end);
        let middle = Segment::new(-k, k, -1.0, FRAC_PI_2);
        let f = PiecewiseLinear::new(vec![neg_end, middle, pos_end])
            .expect("segments are contiguous by construction");
        Self {
            function: f,
            breakpoint: k,
        }
    }

    /// The paper's final approximation: three segments with the optimal
    /// breakpoint found by minimizing [`integrated_error_objective`]
    /// (Eq. 17/18).
    pub fn optimal() -> Self {
        let k = solve_optimal_breakpoint(1e-6);
        Self::three_segment(k)
    }

    /// Builds an approximation from an explicit drive function over
    /// `[−1, 1]` and a nominal positive-domain breakpoint. Used by the
    /// multi-segment generalizations in [`crate::multi_segment`].
    ///
    /// # Panics
    ///
    /// Panics if the function's domain is not `[−1, 1]` or the breakpoint
    /// is outside `(0, 1]`.
    pub fn from_parts(function: PiecewiseLinear, breakpoint: f64) -> Self {
        let (lo, hi) = function.domain();
        assert!(
            (lo + 1.0).abs() < 1e-9 && (hi - 1.0).abs() < 1e-9,
            "drive function must cover [-1, 1]"
        );
        assert!(
            breakpoint > 0.0 && breakpoint <= 1.0,
            "breakpoint must lie in (0, 1]"
        );
        Self {
            function,
            breakpoint,
        }
    }

    /// The positive-domain breakpoint `k` (1.0 for the first-order form).
    pub fn breakpoint(&self) -> f64 {
        self.breakpoint
    }

    /// The underlying piecewise-linear function.
    pub fn function(&self) -> &PiecewiseLinear {
        &self.function
    }

    /// Evaluates the drive function `f(r)` for `r ∈ [−1, 1]`.
    pub fn drive(&self, r: f64) -> f64 {
        self.function.eval(r)
    }

    /// The value the MZM reconstructs: `cos(f(r))`.
    pub fn reconstruct(&self, r: f64) -> f64 {
        self.drive(r).cos()
    }

    /// Relative reconstruction error `|cos(f(r)) − r| / |r|` at one point
    /// (0 at `r = 0` where the error is removable).
    pub fn reconstruction_error(&self, r: f64) -> f64 {
        if r == 0.0 {
            (self.reconstruct(0.0)).abs()
        } else {
            ((self.reconstruct(r) - r) / r).abs()
        }
    }

    /// Worst relative reconstruction error over `[−1, 1]`, sampled at `n`
    /// uniform points; returns `(error, location)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn max_reconstruction_error(&self, n: usize) -> (f64, f64) {
        assert!(n >= 2, "need at least two sample points");
        let mut worst = 0.0;
        let mut at = 0.0;
        for i in 0..n {
            let r = -1.0 + 2.0 * i as f64 / (n - 1) as f64;
            let e = self.reconstruction_error(r);
            if e > worst {
                worst = e;
                at = r;
            }
        }
        (worst, at)
    }
}

/// The integrated relative-error objective of paper Eq. 17 for a candidate
/// breakpoint `k`:
///
/// ```text
/// ∫₀ᵏ |cos(π/2 − r) − r| / r dr + ∫ₖ¹ |cos(a(k)·(1−r)) − r| / r dr
/// ```
///
/// with `a(k) = (π/2 − k)/(1 − k)` the end-chord slope magnitude.
///
/// # Panics
///
/// Panics if `k` is outside `(0, 1)`.
pub fn integrated_error_objective(k: f64) -> f64 {
    assert!(k > 0.0 && k < 1.0, "breakpoint must lie in (0, 1)");
    let first = adaptive_simpson(
        |r| {
            if r == 0.0 {
                0.0
            } else {
                ((FRAC_PI_2 - r).cos() - r).abs() / r
            }
        },
        0.0,
        k,
        1e-10,
    );
    let a = (FRAC_PI_2 - k) / (1.0 - k);
    let second = adaptive_simpson(|r| ((a * (1.0 - r)).cos() - r).abs() / r, k, 1.0, 1e-10);
    first + second
}

/// Finds the breakpoint minimizing [`integrated_error_objective`] — the
/// paper's "running the program to find the optimal k value".
///
/// # Panics
///
/// Panics if `tol <= 0`.
pub fn solve_optimal_breakpoint(tol: f64) -> f64 {
    assert!(tol > 0.0, "tolerance must be positive");
    golden_section(integrated_error_objective, 0.05, 0.95, tol).x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_matches_eq15() {
        let f = ArccosApprox::first_order();
        assert_eq!(f.drive(0.0), FRAC_PI_2);
        assert!((f.drive(1.0) - (FRAC_PI_2 - 1.0)).abs() < 1e-12);
        assert!((f.drive(-0.5) - (FRAC_PI_2 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn first_order_worst_error_is_15_9_percent_at_ends() {
        let f = ArccosApprox::first_order();
        let (err, at) = f.max_reconstruction_error(40_001);
        assert!((err - PAPER_FIRST_ORDER_ERROR).abs() < 2e-3, "err={err}");
        assert!((at.abs() - 1.0).abs() < 1e-6, "at={at}");
    }

    #[test]
    fn three_segment_is_continuous() {
        let f = ArccosApprox::three_segment(0.7236);
        for &bp in &[-0.7236, 0.7236] {
            let left = f.drive(bp - 1e-9);
            let right = f.drive(bp + 1e-9);
            assert!((left - right).abs() < 1e-6, "discontinuity at {bp}");
        }
    }

    #[test]
    fn three_segment_matches_paper_eq18_coefficients() {
        let f = ArccosApprox::three_segment(0.7236);
        let segs = f.function().segments();
        // Middle segment: π/2 − r.
        assert!((segs[1].slope + 1.0).abs() < 1e-12);
        assert!((segs[1].intercept - FRAC_PI_2).abs() < 1e-12);
        // End segments: slope ≈ −3.0651 (paper's printed coefficient).
        assert!(
            (segs[2].slope + 3.0651).abs() < 2e-3,
            "slope={}",
            segs[2].slope
        );
        assert!((segs[0].slope + 3.0651).abs() < 2e-3);
        // Positive end segment passes through (1, 0).
        assert!(segs[2].eval(1.0).abs() < 1e-12);
        // Negative end segment intercept ≈ 0.0765 (paper prints 0.07648).
        assert!(
            (segs[0].intercept - 0.0765).abs() < 2e-3,
            "b={}",
            segs[0].intercept
        );
    }

    #[test]
    fn three_segment_exact_at_plus_minus_one() {
        // The chord is anchored at (1, 0): cos(0) = 1 exactly.
        let f = ArccosApprox::three_segment(0.7236);
        assert!((f.reconstruct(1.0) - 1.0).abs() < 1e-12);
        assert!((f.reconstruct(-1.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn odd_symmetry_of_reconstruction() {
        let f = ArccosApprox::three_segment(0.6);
        for &r in &[0.1, 0.3, 0.59, 0.7, 0.95] {
            let pos = f.reconstruct(r);
            let neg = f.reconstruct(-r);
            assert!((pos + neg).abs() < 1e-9, "r={r}: {pos} vs {neg}");
        }
    }

    #[test]
    fn optimal_breakpoint_is_paper_value() {
        let k = solve_optimal_breakpoint(1e-7);
        assert!(
            (k - PAPER_OPTIMAL_K).abs() < 5e-3,
            "solver found k={k}, paper reports 0.7236"
        );
    }

    #[test]
    fn optimal_max_error_is_8_5_percent_at_breakpoint() {
        let f = ArccosApprox::optimal();
        let (err, at) = f.max_reconstruction_error(40_001);
        assert!((err - PAPER_MAX_ERROR).abs() < 2e-3, "err={err}");
        assert!(
            (at.abs() - f.breakpoint()).abs() < 5e-3,
            "worst at {at}, breakpoint {}",
            f.breakpoint()
        );
    }

    #[test]
    fn optimal_beats_first_order_everywhere_that_matters() {
        let opt = ArccosApprox::optimal();
        let first = ArccosApprox::first_order();
        assert!(opt.max_reconstruction_error(10_001).0 < first.max_reconstruction_error(10_001).0);
        // And the integrated objective is smaller than at k→1 (first-order-ish).
        assert!(integrated_error_objective(opt.breakpoint()) < integrated_error_objective(0.99));
    }

    #[test]
    fn objective_is_smooth_around_minimum() {
        let k = solve_optimal_breakpoint(1e-7);
        let at = integrated_error_objective(k);
        assert!(integrated_error_objective(k - 0.05) > at);
        assert!(integrated_error_objective(k + 0.05) > at);
    }

    #[test]
    fn paper_error_quotes_at_exact_points() {
        // |(-0.7236 − cos(f(−0.7236))) / −0.7236| ≈ 8.5% (paper Sec. III-C).
        let f = ArccosApprox::three_segment(PAPER_OPTIMAL_K);
        let e = f.reconstruction_error(PAPER_OPTIMAL_K);
        assert!((e - 0.085).abs() < 1e-3, "e={e}");
        let e_neg = f.reconstruction_error(-PAPER_OPTIMAL_K);
        assert!((e_neg - 0.085).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn rejects_bad_breakpoint() {
        ArccosApprox::three_segment(1.0);
    }
}
