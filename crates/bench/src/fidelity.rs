//! End-to-end numerical fidelity study.
//!
//! Validates the paper's Sec. III-B claim — LLMs tolerate the P-DAC's
//! bounded analog error — by running a seeded transformer encoder under
//! exact, electrical-DAC and P-DAC GEMM backends and reporting logits
//! fidelity (cosine similarity, SQNR, top-1 agreement).

use pdac_core::edac::ElectricalDac;
use pdac_core::pdac::PDac;
use pdac_nn::config::TransformerConfig;
use pdac_nn::inference::{fidelity_study, FidelityReport, TransformerModel};
use pdac_nn::{AnalogGemm, ExactGemm};

/// Runs the study on a model shape at the given bit widths.
///
/// # Panics
///
/// Panics if `samples == 0` or any width is outside `2..=16`.
pub fn run(config: TransformerConfig, bits: &[u8], samples: usize) -> Vec<FidelityReport> {
    let classes = 16;
    let model = TransformerModel::random(config, classes, 2024);
    let mut reports = Vec::new();
    for &b in bits {
        let pdac = AnalogGemm::new(
            PDac::with_optimal_approx(b).expect("validated bits"),
            format!("P-DAC {b}-bit"),
        );
        let edac = AnalogGemm::new(
            ElectricalDac::new(b).expect("validated bits"),
            format!("e-DAC {b}-bit"),
        );
        reports.push(fidelity_study(&model, &ExactGemm, &edac, samples));
        reports.push(fidelity_study(&model, &ExactGemm, &pdac, samples));
    }
    reports
}

/// Renders the study as a text report.
pub fn report(bits: &[u8], samples: usize) -> String {
    let mut out = String::from(
        "Fidelity study — transformer logits under analog GEMM\n\
         ======================================================\n\
         (randomly-initialized encoder standing in for pretrained\n\
         checkpoints; see DESIGN.md §3)\n\n\
         backend          cosine     SQNR dB   top-1 agree\n",
    );
    for r in run(TransformerConfig::tiny(), bits, samples) {
        out.push_str(&format!(
            "  {:<14} {:>7.4}   {:>7.1}   {:>9.0}%\n",
            r.backend,
            r.mean_cosine,
            r.mean_sqnr_db,
            100.0 * r.top1_agreement
        ));
    }
    out
}

/// Extended study: accuracy across bit widths and approximation
/// variants (first-order Eq. 15, the paper's Eq. 18, and the
/// minimax-trimmed design) — the "LLM tolerance" claim quantified.
pub fn variants_report(samples: usize) -> String {
    use pdac_core::approx::ArccosApprox;
    use pdac_core::minimax::minimax_three_segment;

    let model = TransformerModel::random(TransformerConfig::tiny(), 16, 2024);
    let mut out = String::from(
        "Accuracy vs bits and approximation variant (logits vs exact)\n\
         =============================================================\n\n\
         variant            bits   cosine    SQNR dB   top-1%\n",
    );
    let trimmed = minimax_three_segment(2);
    for bits in [4u8, 6, 8] {
        let variants: Vec<(&str, PDac)> = vec![
            (
                "first-order",
                PDac::with_first_order_approx(bits).expect("valid bits"),
            ),
            (
                "paper Eq.18",
                PDac::with_optimal_approx(bits).expect("valid bits"),
            ),
            (
                "minimax-trim",
                PDac::new(trimmed.to_approx(), bits).expect("valid bits"),
            ),
            (
                "exact-arccos",
                PDac::new(ArccosApprox::optimal(), bits).expect("valid bits"),
            ),
        ];
        for (name, driver) in variants {
            let backend = AnalogGemm::new(driver, name);
            let r = fidelity_study(&model, &ExactGemm, &backend, samples);
            out.push_str(&format!(
                "  {name:<16} {bits:>4}   {:.4}   {:>7.1}   {:>6.0}\n",
                r.mean_cosine,
                r.mean_sqnr_db,
                100.0 * r.top1_agreement
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimax_variant_beats_paper_variant_in_sqnr() {
        use pdac_core::minimax::minimax_three_segment;
        let model = TransformerModel::random(TransformerConfig::tiny(), 8, 77);
        let paper = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "paper");
        let trimmed = AnalogGemm::new(
            PDac::new(minimax_three_segment(2).to_approx(), 8).unwrap(),
            "trimmed",
        );
        let rp = fidelity_study(&model, &ExactGemm, &paper, 5);
        let rt = fidelity_study(&model, &ExactGemm, &trimmed, 5);
        assert!(
            rt.mean_sqnr_db > rp.mean_sqnr_db,
            "trimmed {rt:?} vs paper {rp:?}"
        );
    }

    #[test]
    fn variants_report_renders() {
        let r = variants_report(2);
        assert!(r.contains("minimax-trim"));
        assert!(r.contains("first-order"));
    }

    #[test]
    fn pdac_fidelity_is_high_at_8_bits() {
        let reports = run(TransformerConfig::tiny(), &[8], 6);
        let pdac = reports
            .iter()
            .find(|r| r.backend.contains("P-DAC"))
            .unwrap();
        assert!(pdac.mean_cosine > 0.95, "{pdac:?}");
        assert!(pdac.top1_agreement >= 0.5, "{pdac:?}");
    }

    #[test]
    fn edac_fidelity_exceeds_pdac() {
        let reports = run(TransformerConfig::tiny(), &[8], 6);
        let pdac = reports
            .iter()
            .find(|r| r.backend.contains("P-DAC"))
            .unwrap();
        let edac = reports
            .iter()
            .find(|r| r.backend.contains("e-DAC"))
            .unwrap();
        assert!(edac.mean_sqnr_db > pdac.mean_sqnr_db);
    }

    #[test]
    fn report_renders() {
        let r = report(&[8], 2);
        assert!(r.contains("P-DAC 8-bit"));
        assert!(r.contains("cosine"));
    }
}
