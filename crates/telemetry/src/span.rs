//! RAII span timers with thread-local nesting.

use std::cell::Cell;

use crate::registry::{Collector, SpanEvent};

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// An open span. Dropping it records the elapsed wall time (seconds) into
/// the histogram named after the span and appends a [`SpanEvent`] to the
/// collector's ring buffer. Spans nest: a span opened while another is
/// open on the same thread records `depth + 1`.
///
/// A span taken from a disabled collector is inert and costs nothing on
/// drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records ~0"]
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

struct SpanInner<'a> {
    collector: &'a Collector,
    name: &'static str,
    start_ns: u64,
    depth: u32,
}

impl<'a> Span<'a> {
    pub(crate) fn enter(collector: &'a Collector, name: &'static str) -> Self {
        if !collector.is_enabled() {
            return Self { inner: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Self {
            inner: Some(SpanInner {
                collector,
                name,
                start_ns: collector.clock().now_ns(),
                depth,
            }),
        }
    }

    /// An inert span (used by the global entry points when disabled).
    pub fn noop() -> Self {
        Self { inner: None }
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end_ns = inner.collector.clock().now_ns();
        let event = SpanEvent {
            name: inner.name,
            start_ns: inner.start_ns,
            end_ns,
            depth: inner.depth,
        };
        inner
            .collector
            .histogram(inner.name)
            .record(event.elapsed_ns() as f64 * 1e-9);
        inner.collector.push_event(event);
    }
}
