//! DeiT (vision transformer) inference energy: DAC baseline vs P-DAC
//! (paper Fig. 10), plus a sweep over image-token counts showing how the
//! saving varies with sequence length.
//!
//! Run with: `cargo run --example deit_energy`

use pdac::nn::config::TransformerConfig;
use pdac::nn::workload::op_trace;
use pdac::power::energy::savings;
use pdac::power::model::{DriverKind, PowerModel};
use pdac::power::{ArchConfig, EnergyModel, TechParams};

fn models() -> (EnergyModel, EnergyModel) {
    let arch = ArchConfig::lt_b();
    let tech = TechParams::calibrated();
    (
        EnergyModel::new(PowerModel::new(
            arch.clone(),
            tech.clone(),
            DriverKind::ElectricalDac,
        )),
        EnergyModel::new(PowerModel::new(arch, tech, DriverKind::PhotonicDac)),
    )
}

fn main() {
    let (baseline, pdac) = models();

    // The paper's configuration: 224×224 image → 196 patches + CLS.
    let deit = TransformerConfig::deit_base();
    let trace = op_trace(&deit);
    println!(
        "{} — {:.2} G MACs",
        deit.name,
        trace.total_macs() as f64 / 1e9
    );
    for bits in [4u8, 8] {
        let rep = savings(&baseline.energy(&trace, bits), &pdac.energy(&trace, bits));
        println!("  {bits}-bit total saving {:.1}%", 100.0 * rep.total);
    }

    // Extension: the saving as image resolution (token count) grows.
    println!("\ntoken-count sweep @ 8-bit (patches + CLS):");
    println!("  tokens   baseline mJ   P-DAC mJ   saving%");
    for patches in [49usize, 196, 576, 1024] {
        let mut config = TransformerConfig::deit_base();
        config.seq_len = patches + 1;
        config.name = format!("DeiT {}tok", config.seq_len);
        let trace = op_trace(&config);
        let base = baseline.energy(&trace, 8);
        let test = pdac.energy(&trace, 8);
        let rep = savings(&base, &test);
        println!(
            "  {:>6}   {:>11.2}   {:>8.2}   {:>7.1}",
            config.seq_len,
            base.total_j() * 1e3,
            test.total_j() * 1e3,
            100.0 * rep.total
        );
    }
}
