//! Joules per generated token under the three drive paths, measured by
//! the live energy meter on the batched decode engine.
//!
//! One metered decode per batch size accumulates the executed activity
//! (MACs, streamed bytes, element-wise ops) in a
//! [`pdac_power::meter::EnergyMeter`]; the snapshot's trace is then
//! priced under the e-DAC, P-DAC and hybrid [`EnergyModel`]s — three
//! driver views of the *same* executed activity, so the ratios are
//! deterministic (modeled from exact integer counts, no timing noise).
//!
//! Emits `BENCH_energy.json` (override with `PDAC_BENCH_OUT`) with one
//! record per batch carrying `{pdac,edac,hybrid}_j_per_tok`, the gated
//! `edac_over_pdac_j_per_tok` / `edac_over_hybrid_j_per_tok` ratios and
//! `tokens_per_s`; the batch-8 record adds `meter_overhead`, the
//! tokens/s cost of metering measured from interleaved meter-off /
//! meter-on trials (min-of-N over at least 4 pairs, so a transient
//! stall on either side does not read as metering cost). Knobs:
//! `PDAC_BENCH_ENERGY_HIDDEN` / `_LAYERS` /
//! `_HEADS` (default 3072/1/16), `_PROMPT` / `_TOKENS` (default 2/4),
//! `_TRIALS` (default 2), `_MAX_RATIO` (default 0.55), `_MAX_OVERHEAD`
//! (default 0.02).
//!
//! At the default scale the bench asserts the paper-level claim at
//! batch 8: P-DAC joules/token ≤ 0.55× e-DAC on the serving ledger
//! (weight-resident accounting — see DESIGN.md §13), and metering costs
//! < 2% tokens/s. Small `_HIDDEN` overrides skip the ratio assert:
//! below ~2K hidden the driver-independent element-wise/movement terms
//! dominate and the ratio is no longer probing the drive path.

use std::time::Instant;

use pdac_math::Mat;
use pdac_nn::{BatchedKvCache, ExactGemm, TransformerConfig, TransformerModel};
use pdac_power::meter::EnergyMeter;
use pdac_power::model::{DriverKind, PowerModel};
use pdac_power::{ArchConfig, EnergyModel, TechParams};
use pdac_serve::feedback_embedding;
use pdac_telemetry::Json;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn energy_model(driver: DriverKind) -> EnergyModel {
    EnergyModel::new(PowerModel::new(
        ArchConfig::lt_b(),
        TechParams::calibrated(),
        driver,
    ))
}

/// Decodes `prompt` + `gen` feedback tokens at the prompt's batch size;
/// returns elapsed seconds.
fn run(model: &TransformerModel, prompt: &[Mat], gen: usize) -> f64 {
    let s = prompt[0].rows();
    let hidden = model.config().hidden;
    let mut batch = BatchedKvCache::new(model, s);
    let start = Instant::now();
    let mut last = model.decode_batch(&prompt[0], &mut batch, &ExactGemm);
    for tok in &prompt[1..] {
        last = model.decode_batch(tok, &mut batch, &ExactGemm);
    }
    for _ in 0..gen {
        let mut data = Vec::with_capacity(s * hidden);
        for r in 0..s {
            data.extend(feedback_embedding(last.row_slice(r)));
        }
        let next = Mat::from_rows(s, hidden, data).expect("feedback batch");
        last = model.decode_batch(&next, &mut batch, &ExactGemm);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let hidden = env_usize("PDAC_BENCH_ENERGY_HIDDEN", 3072);
    let layers = env_usize("PDAC_BENCH_ENERGY_LAYERS", 1);
    let heads = env_usize("PDAC_BENCH_ENERGY_HEADS", 16);
    let prompt_len = env_usize("PDAC_BENCH_ENERGY_PROMPT", 2);
    let gen = env_usize("PDAC_BENCH_ENERGY_TOKENS", 4);
    let trials = env_usize("PDAC_BENCH_ENERGY_TRIALS", 2).max(1);
    let max_ratio = env_f64("PDAC_BENCH_ENERGY_MAX_RATIO", 0.55);
    let max_overhead = env_f64("PDAC_BENCH_ENERGY_MAX_OVERHEAD", 0.02);

    let config = TransformerConfig {
        name: "energy-bench".to_string(),
        layers,
        hidden,
        heads,
        ff_mult: 4,
        seq_len: prompt_len + gen,
    };
    config.validate().expect("valid bench config");
    let model = TransformerModel::random(config, 4, 42);

    let pdac = energy_model(DriverKind::PhotonicDac);
    let edac = energy_model(DriverKind::ElectricalDac);
    let hybrid = energy_model(DriverKind::Hybrid);

    let mut records = Vec::new();
    let mut gate_ratio = f64::INFINITY;
    let mut meter_overhead = 0.0;
    for &s in &[1usize, 4, 8] {
        let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(11 + s as u64);
        let prompt: Vec<Mat> = (0..prompt_len.max(1))
            .map(|_| Mat::from_fn(s, hidden, |_, _| rng.gen_range_f64(-1.0, 1.0)))
            .collect();
        let tokens = (s * (prompt.len() + gen)) as f64;

        // Warm pass (scratch + allocator) outside the timed trials.
        let _ = run(&model, &prompt, 1.min(gen));

        let meter = pdac_power::meter::install(EnergyMeter::new(pdac.clone(), 8));
        let (mut best_on, mut best_off) = (f64::INFINITY, f64::INFINITY);
        // The overhead comparison needs more min-of-N samples than the
        // throughput numbers: a single transient stall on either side
        // would otherwise read as metering cost (or mask it).
        let reps = if s == 8 { trials.max(4) } else { trials };
        for _ in 0..reps {
            // Interleave off→on at batch 8 so ambient noise hits both
            // sides of the overhead measurement equally.
            if s == 8 {
                pdac_power::meter::uninstall();
                best_off = best_off.min(run(&model, &prompt, gen));
                pdac_power::meter::install_shared(meter.clone());
            }
            meter.reset();
            best_on = best_on.min(run(&model, &prompt, gen));
        }
        let trace = meter.counts();
        pdac_power::meter::uninstall();

        let j_per_tok = |m: &EnergyModel| -> f64 { m.energy(&trace, 8).total_j() / tokens };
        let (pdac_jpt, edac_jpt, hybrid_jpt) =
            (j_per_tok(&pdac), j_per_tok(&edac), j_per_tok(&hybrid));
        let tps = tokens / best_on.max(1e-12);
        let mut fields = vec![
            ("batch".into(), Json::Int(s as u64)),
            ("elapsed_s".into(), Json::Num(best_on)),
            ("tokens_per_s".into(), Json::Num(tps)),
            ("pdac_j_per_tok".into(), Json::Num(pdac_jpt)),
            ("edac_j_per_tok".into(), Json::Num(edac_jpt)),
            ("hybrid_j_per_tok".into(), Json::Num(hybrid_jpt)),
            (
                "edac_over_pdac_j_per_tok".into(),
                Json::Num(edac_jpt / pdac_jpt),
            ),
            (
                "edac_over_hybrid_j_per_tok".into(),
                Json::Num(edac_jpt / hybrid_jpt),
            ),
        ];
        let mut line = format!(
            "energy_ledger/batch{s}: {:>9.1} tok/s  pdac {:.3e} J/tok  edac {:.3e} J/tok \
             (pdac/edac {:.4})",
            tps,
            pdac_jpt,
            edac_jpt,
            pdac_jpt / edac_jpt
        );
        if s == 8 {
            gate_ratio = pdac_jpt / edac_jpt;
            meter_overhead = (1.0 - best_off / best_on.max(1e-12)).max(0.0);
            fields.push(("meter_overhead".into(), Json::Num(meter_overhead)));
            line.push_str(&format!("  meter_overhead {:.2}%", meter_overhead * 100.0));
        }
        println!("{line}");
        records.push(Json::Obj(fields));
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("energy_ledger".into())),
        ("hidden".into(), Json::Int(hidden as u64)),
        ("layers".into(), Json::Int(layers as u64)),
        ("heads".into(), Json::Int(heads as u64)),
        ("prompt".into(), Json::Int(prompt_len.max(1) as u64)),
        ("generated".into(), Json::Int(gen as u64)),
        ("results".into(), Json::Arr(records)),
    ]);
    let out_path = std::env::var("PDAC_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_energy.json").into());
    std::fs::write(&out_path, doc.render() + "\n").expect("write bench json");
    println!("energy_ledger: wrote {out_path}");

    // The drive-path claim only shows at scale: below ~2K hidden the
    // driver-independent terms dominate and the ratio stops being a
    // statement about the converters.
    if hidden >= 2048 {
        assert!(
            gate_ratio <= max_ratio,
            "P-DAC joules/token is {gate_ratio:.4}x e-DAC at batch 8 (budget {max_ratio})"
        );
        assert!(
            meter_overhead < max_overhead,
            "metering costs {:.2}% tokens/s at batch 8 (budget {:.2}%)",
            meter_overhead * 100.0,
            max_overhead * 100.0
        );
        println!(
            "energy_ledger: pdac/edac {gate_ratio:.4} <= {max_ratio} and metering \
             {:.2}% < {:.2}% OK",
            meter_overhead * 100.0,
            max_overhead * 100.0
        );
    }
}
