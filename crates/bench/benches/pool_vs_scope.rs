//! Persistent worker pool vs per-call scoped spawning: the dispatch
//! microbench behind the decode hot path.
//!
//! `gemm` routes threaded panels through the parked [`WorkerPool`];
//! `gemm_scoped` preserves the previous `std::thread::scope` dispatch
//! (bit-identical results, different thread lifecycle). In the 64³
//! regime a GEMM call is short enough that per-call thread spawning is
//! a measurable fraction of the work — exactly the regime one decode
//! step of a small serving model lives in.
//!
//! Emits `BENCH_pool.json` (override with `PDAC_BENCH_OUT`).
//!
//! [`WorkerPool`]: pdac_math::pool::WorkerPool

use pdac_bench::microbench::{bench, black_box, BenchResult};
use pdac_math::gemm::{gemm, gemm_scoped};
use pdac_math::pool::WorkerPool;
use pdac_math::rng::SplitMix64;
use pdac_telemetry::Json;

fn random_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect()
}

fn record(result: &BenchResult, macs: usize) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(result.name.clone())),
        ("iters".into(), Json::Int(result.iters)),
        ("mean_ns".into(), Json::Num(result.mean_ns)),
        ("min_ns".into(), Json::Num(result.min_ns)),
        (
            "gmacs_per_s".into(),
            Json::Num(macs as f64 / result.mean_ns.max(1.0)),
        ),
    ])
}

fn main() {
    let mut records = Vec::new();
    let mut comparisons = Vec::new();

    // GEMM dispatch: pooled vs scoped at the decode-step scale.
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (96, 80, 72)] {
        let a = random_vec(m * k, 1);
        let b = random_vec(k * n, 2);
        let mut out = vec![0.0; m * n];
        for threads in [2usize, 4] {
            let pooled = bench(&format!("pool/gemm/{m}x{k}x{n}/t{threads}"), || {
                gemm(
                    black_box(&a),
                    black_box(&b),
                    m,
                    k,
                    n,
                    black_box(&mut out),
                    threads,
                );
            });
            let scoped = bench(&format!("scope/gemm/{m}x{k}x{n}/t{threads}"), || {
                gemm_scoped(
                    black_box(&a),
                    black_box(&b),
                    m,
                    k,
                    n,
                    black_box(&mut out),
                    threads,
                );
            });
            let ratio = scoped.mean_ns / pooled.mean_ns.max(1.0);
            println!(
                "pool_vs_scope/{m}x{k}x{n}/t{threads}: pooled {:.1} ns, scoped {:.1} ns, \
                 scoped/pooled {ratio:.2}x",
                pooled.mean_ns, scoped.mean_ns
            );
            let comparison = Json::Obj(vec![
                ("shape".into(), Json::Str(format!("{m}x{k}x{n}"))),
                ("threads".into(), Json::Int(threads as u64)),
                ("pooled_ns".into(), Json::Num(pooled.mean_ns)),
                ("scoped_ns".into(), Json::Num(scoped.mean_ns)),
                ("scoped_over_pooled".into(), Json::Num(ratio)),
            ]);
            // Also into `results` for the bench-gate step: the raw
            // timing records carry run-varying identity fields (iters),
            // so only these per-shape ratio records gate cross-run.
            records.push(comparison.clone());
            comparisons.push(comparison);
            records.push(record(&pooled, m * k * n));
            records.push(record(&scoped, m * k * n));
        }
    }

    // Raw dispatch overhead: an (almost) empty task set through the
    // global pool vs a fresh thread::scope, isolating the fixed cost a
    // threaded GEMM call pays before any arithmetic happens.
    let sink = std::sync::atomic::AtomicUsize::new(0);
    let pool_dispatch = bench("pool/dispatch/4tasks", || {
        WorkerPool::global().run(4, &|i| {
            sink.fetch_add(i + 1, std::sync::atomic::Ordering::Relaxed);
        });
    });
    let scope_dispatch = bench("scope/dispatch/4tasks", || {
        std::thread::scope(|s| {
            for i in 0..4usize {
                let sink = &sink;
                s.spawn(move || {
                    sink.fetch_add(i + 1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
    });
    let dispatch_ratio = scope_dispatch.mean_ns / pool_dispatch.mean_ns.max(1.0);
    println!(
        "pool_vs_scope/dispatch: pooled {:.1} ns, scoped spawn {:.1} ns, \
         scoped/pooled {dispatch_ratio:.2}x",
        pool_dispatch.mean_ns, scope_dispatch.mean_ns
    );
    records.push(record(&pool_dispatch, 0));
    records.push(record(&scope_dispatch, 0));
    comparisons.push(Json::Obj(vec![
        ("shape".into(), Json::Str("dispatch-only".into())),
        ("threads".into(), Json::Int(4)),
        ("pooled_ns".into(), Json::Num(pool_dispatch.mean_ns)),
        ("scoped_ns".into(), Json::Num(scope_dispatch.mean_ns)),
        ("scoped_over_pooled".into(), Json::Num(dispatch_ratio)),
    ]));

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("pool_vs_scope".into())),
        (
            "pool_workers".into(),
            Json::Int(WorkerPool::global().workers() as u64),
        ),
        ("results".into(), Json::Arr(records)),
        ("comparisons".into(), Json::Arr(comparisons)),
    ]);
    let out_path = std::env::var("PDAC_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json").into());
    std::fs::write(&out_path, doc.render() + "\n").expect("write bench json");
    println!("pool_vs_scope: wrote {out_path}");
}
