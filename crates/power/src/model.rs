//! Architecture-level power aggregation.
//!
//! Combines an [`ArchConfig`]'s device counts with [`TechParams`] unit
//! models into the per-component power breakdowns of paper Figs. 5
//! and 11. The two drive paths differ exactly as the paper describes:
//! the baseline spends power on DACs, their controller and MZM drivers;
//! the P-DAC design replaces all three with the P-DAC units.

use crate::arch::ArchConfig;
use crate::components::Component;
use crate::presets::TechParams;
use std::fmt;

/// Which MZM drive path the accelerator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriverKind {
    /// Controller + electrical DAC + MZM driver (Lightening-Transformer
    /// baseline).
    ElectricalDac,
    /// P-DAC units with integrated MZMs (this paper).
    PhotonicDac,
    /// Hybrid (extension): the *row* operand bank (dynamic activations)
    /// uses P-DACs, the *column* bank (weight-like operands whose exact
    /// values matter more) keeps the electrical path. Half the DACs, a
    /// down-scaled controller, half the P-DAC units.
    Hybrid,
}

impl fmt::Display for DriverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverKind::ElectricalDac => f.write_str("DAC baseline"),
            DriverKind::PhotonicDac => f.write_str("P-DAC"),
            DriverKind::Hybrid => f.write_str("hybrid (P-DAC rows / e-DAC cols)"),
        }
    }
}

/// A per-component power breakdown at one precision point.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    /// Bit precision of the operating point.
    pub bits: u8,
    /// Drive path.
    pub driver: DriverKind,
    entries: Vec<(Component, f64)>,
}

impl PowerBreakdown {
    /// Components with nonzero power, in canonical order.
    pub fn entries(&self) -> &[(Component, f64)] {
        &self.entries
    }

    /// Total power in watts.
    pub fn total_watts(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w).sum()
    }

    /// Power of one component (0 if absent).
    pub fn watts(&self, c: Component) -> f64 {
        self.entries
            .iter()
            .find(|(k, _)| *k == c)
            .map_or(0.0, |(_, w)| *w)
    }

    /// Fractional share of one component (0 if absent).
    pub fn share(&self, c: Component) -> f64 {
        self.watts(c) / self.total_watts()
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} @ {}-bit: {:.2} W",
            self.driver,
            self.bits,
            self.total_watts()
        )?;
        for (c, w) in &self.entries {
            writeln!(
                f,
                "  {c:<12} {w:>8.3} W  ({:>5.1}%)",
                100.0 * w / self.total_watts()
            )?;
        }
        Ok(())
    }
}

/// The power model: architecture + technology + drive path.
///
/// # Examples
///
/// ```
/// use pdac_power::{ArchConfig, TechParams};
/// use pdac_power::model::{DriverKind, PowerModel};
/// use pdac_power::Component;
///
/// let m = PowerModel::new(ArchConfig::lt_b(), TechParams::calibrated(), DriverKind::ElectricalDac);
/// let b8 = m.breakdown(8);
/// // Fig. 5(b): 8-bit DACs are ~50.5% of LT-B power.
/// assert!((b8.share(Component::Dac) - 0.505).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    arch: ArchConfig,
    tech: TechParams,
    driver: DriverKind,
}

impl PowerModel {
    /// Creates a power model.
    ///
    /// # Panics
    ///
    /// Panics if the architecture fails validation.
    pub fn new(arch: ArchConfig, tech: TechParams, driver: DriverKind) -> Self {
        arch.validate().expect("architecture must be valid");
        Self { arch, tech, driver }
    }

    /// The architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The technology parameters.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// The drive path.
    pub fn driver(&self) -> DriverKind {
        self.driver
    }

    /// Computes the per-component breakdown at `bits` precision under a
    /// fully compute-bound workload (every converter active every cycle) —
    /// the paper's Fig. 5/11 operating point.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn breakdown(&self, bits: u8) -> PowerBreakdown {
        assert!((2..=16).contains(&bits), "bits outside 2..=16");
        let b = bits as f64;
        let f = self.arch.clock_hz;
        let scale = self.arch.support_scale();
        let mut entries = Vec::new();
        entries.push((Component::Laser, self.tech.laser.watts(bits) * scale));
        match self.driver {
            DriverKind::ElectricalDac => {
                let dac_w =
                    self.arch.dac_count() as f64 * self.tech.dac.energy_pj(bits) * 1e-12 * f;
                entries.push((Component::Dac, dac_w));
                entries.push((Component::Controller, self.tech.controller_watts * scale));
                entries.push((
                    Component::MzmDriver,
                    self.arch.mzm_count() as f64 * self.tech.mzm_driver_watts_per_bit * b,
                ));
            }
            DriverKind::PhotonicDac => {
                entries.push((
                    Component::PDac,
                    self.arch.pdac_count() as f64 * self.tech.pdac_unit_watts_per_bit * b,
                ));
            }
            DriverKind::Hybrid => {
                // Electrical path on half the modulators (column banks),
                // P-DAC units on the other half.
                let dac_w =
                    self.arch.dac_count() as f64 / 2.0 * self.tech.dac.energy_pj(bits) * 1e-12 * f;
                entries.push((Component::Dac, dac_w));
                entries.push((
                    Component::Controller,
                    self.tech.controller_watts * scale / 2.0,
                ));
                entries.push((
                    Component::MzmDriver,
                    self.arch.mzm_count() as f64 / 2.0 * self.tech.mzm_driver_watts_per_bit * b,
                ));
                entries.push((
                    Component::PDac,
                    self.arch.pdac_count() as f64 / 2.0 * self.tech.pdac_unit_watts_per_bit * b,
                ));
            }
        }
        entries.push((
            Component::Adc,
            self.arch.adc_count() as f64 * self.tech.adc_pj_per_bit * b * 1e-12 * f,
        ));
        entries.push((
            Component::SramDigital,
            self.tech.sram_digital_watts_per_bit * b * scale,
        ));
        PowerBreakdown {
            bits,
            driver: self.driver,
            entries,
        }
    }

    /// Energy per MAC at `bits` precision, in joules — total power over
    /// peak throughput. This is the compute-energy coefficient of the
    /// workload model.
    pub fn energy_per_mac_j(&self, bits: u8) -> f64 {
        self.breakdown(bits).total_watts() / self.arch.peak_macs_per_second()
    }

    /// Breakdown at a partial duty cycle `utilization ∈ [0, 1]`: the
    /// per-sample converters (DAC/ADC/P-DAC/MZM drivers) scale with
    /// activity, while the laser, controller and SRAM/digital clocking
    /// stay on — the regime of memory-bound phases such as KV-cache
    /// decoding, where idle optics erode the P-DAC's relative advantage.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16` or `utilization` outside
    /// `[0, 1]`.
    pub fn breakdown_at_utilization(&self, bits: u8, utilization: f64) -> PowerBreakdown {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must lie in [0, 1]"
        );
        let full = self.breakdown(bits);
        let entries = full
            .entries()
            .iter()
            .map(|&(c, w)| {
                let scaled = match c {
                    Component::Dac | Component::Adc | Component::PDac | Component::MzmDriver => {
                        w * utilization
                    }
                    Component::Laser | Component::Controller | Component::SramDigital => w,
                };
                (c, scaled)
            })
            .collect();
        PowerBreakdown {
            bits,
            driver: self.driver,
            entries,
        }
    }
}

/// Fractional power saving of `pdac` relative to `baseline` at `bits`.
pub fn power_saving(baseline: &PowerModel, pdac: &PowerModel, bits: u8) -> f64 {
    1.0 - pdac.breakdown(bits).total_watts() / baseline.breakdown(bits).total_watts()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (PowerModel, PowerModel) {
        let arch = ArchConfig::lt_b();
        let tech = TechParams::calibrated();
        (
            PowerModel::new(arch.clone(), tech.clone(), DriverKind::ElectricalDac),
            PowerModel::new(arch, tech, DriverKind::PhotonicDac),
        )
    }

    #[test]
    fn fig5_dac_shares() {
        let (base, _) = models();
        let b4 = base.breakdown(4);
        let b8 = base.breakdown(8);
        assert!(
            (b4.share(Component::Dac) - 0.218).abs() < 0.005,
            "4-bit {}",
            b4.share(Component::Dac)
        );
        assert!(
            (b8.share(Component::Dac) - 0.505).abs() < 0.005,
            "8-bit {}",
            b8.share(Component::Dac)
        );
    }

    #[test]
    fn fig11_totals_and_savings() {
        let (base, pdac) = models();
        let p4 = pdac.breakdown(4).total_watts();
        let p8 = pdac.breakdown(8).total_watts();
        assert!((p4 - 11.81).abs() < 0.05, "4-bit P-DAC total {p4}");
        assert!((p8 - 26.64).abs() < 0.15, "8-bit P-DAC total {p8}");
        assert!((power_saving(&base, &pdac, 4) - 0.199).abs() < 0.005);
        assert!((power_saving(&base, &pdac, 8) - 0.477).abs() < 0.005);
    }

    #[test]
    fn fig11_component_shares() {
        let (_, pdac) = models();
        let p4 = pdac.breakdown(4);
        let p8 = pdac.breakdown(8);
        // 4-bit P-DAC: laser ≈ 46.5%, ADC ≈ 18%.
        assert!(
            (p4.share(Component::Laser) - 0.465).abs() < 0.01,
            "{}",
            p4.share(Component::Laser)
        );
        assert!((p4.share(Component::Adc) - 0.18).abs() < 0.01);
        // 8-bit P-DAC: ADC 16.0%, P-DAC 20.1%, laser majority share.
        assert!((p8.share(Component::Adc) - 0.16).abs() < 0.01);
        assert!((p8.share(Component::PDac) - 0.201).abs() < 0.01);
        assert!(p8.share(Component::Laser) > 0.5);
    }

    #[test]
    fn pdac_breakdown_has_no_dac_components() {
        let (_, pdac) = models();
        let b = pdac.breakdown(8);
        assert_eq!(b.watts(Component::Dac), 0.0);
        assert_eq!(b.watts(Component::Controller), 0.0);
        assert_eq!(b.watts(Component::MzmDriver), 0.0);
        assert!(b.watts(Component::PDac) > 0.0);
    }

    #[test]
    fn baseline_has_no_pdac_component() {
        let (base, _) = models();
        assert_eq!(base.breakdown(8).watts(Component::PDac), 0.0);
        assert!(base.breakdown(8).watts(Component::Dac) > 0.0);
    }

    #[test]
    fn savings_grow_with_precision() {
        let (base, pdac) = models();
        let mut prev = 0.0;
        for bits in [4u8, 6, 8, 10, 12] {
            let s = power_saving(&base, &pdac, bits);
            assert!(s > prev, "saving at {bits} bits = {s} not > {prev}");
            prev = s;
        }
    }

    #[test]
    fn energy_per_mac_magnitude() {
        let (base, _) = models();
        let e8 = base.energy_per_mac_j(8);
        // 50.98 W / 20.48 TMAC/s ≈ 2.49 pJ/MAC.
        assert!((e8 - 2.49e-12).abs() < 0.05e-12, "e8={e8}");
    }

    #[test]
    fn breakdown_totals_are_component_sums() {
        let (base, pdac) = models();
        for m in [&base, &pdac] {
            let b = m.breakdown(6);
            let sum: f64 = b.entries().iter().map(|(_, w)| w).sum();
            assert!((sum - b.total_watts()).abs() < 1e-12);
        }
    }

    #[test]
    fn display_formats_table() {
        let (base, _) = models();
        let s = base.breakdown(8).to_string();
        assert!(s.contains("DAC baseline"));
        assert!(s.contains("Laser"));
        assert!(s.contains('%'));
    }

    #[test]
    fn hybrid_sits_between_baseline_and_pdac() {
        let arch = ArchConfig::lt_b();
        let tech = TechParams::calibrated();
        let base = PowerModel::new(arch.clone(), tech.clone(), DriverKind::ElectricalDac);
        let hybrid = PowerModel::new(arch.clone(), tech.clone(), DriverKind::Hybrid);
        let pdac = PowerModel::new(arch, tech, DriverKind::PhotonicDac);
        for bits in [4u8, 8] {
            let b = base.breakdown(bits).total_watts();
            let h = hybrid.breakdown(bits).total_watts();
            let p = pdac.breakdown(bits).total_watts();
            assert!(p < h && h < b, "bits {bits}: {p} < {h} < {b} violated");
        }
        // The hybrid saving is near the midpoint of the full saving.
        let s_h = power_saving(&base, &hybrid, 8);
        let s_p = power_saving(&base, &pdac, 8);
        assert!((s_h - s_p / 2.0).abs() < 0.03, "hybrid {s_h}, full {s_p}");
    }

    #[test]
    fn hybrid_breakdown_has_both_paths() {
        let m = PowerModel::new(
            ArchConfig::lt_b(),
            TechParams::calibrated(),
            DriverKind::Hybrid,
        );
        let b = m.breakdown(8);
        assert!(b.watts(Component::Dac) > 0.0);
        assert!(b.watts(Component::PDac) > 0.0);
        assert!(b.watts(Component::Controller) > 0.0);
        assert!(b.to_string().contains("hybrid"));
    }

    #[test]
    fn utilization_scales_only_converters() {
        let (base, pdac) = models();
        for m in [&base, &pdac] {
            let full = m.breakdown(8);
            let half = m.breakdown_at_utilization(8, 0.5);
            let idle = m.breakdown_at_utilization(8, 0.0);
            assert_eq!(half.watts(Component::Laser), full.watts(Component::Laser));
            assert!(half.total_watts() < full.total_watts());
            assert!(idle.total_watts() < half.total_watts());
            // Idle still burns the laser + support.
            assert!(idle.total_watts() > full.watts(Component::Laser));
        }
        let full = base.breakdown(8);
        let half = base.breakdown_at_utilization(8, 0.5);
        assert!((half.watts(Component::Dac) - full.watts(Component::Dac) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_utilization_matches_breakdown() {
        let (base, _) = models();
        assert_eq!(
            base.breakdown_at_utilization(8, 1.0).total_watts(),
            base.breakdown(8).total_watts()
        );
    }

    #[test]
    fn pdac_advantage_shrinks_when_idle() {
        // At low duty the laser dominates both designs, so the relative
        // saving collapses — the quantitative face of the paper's closing
        // remark about laser-constrained energy.
        let (base, pdac) = models();
        let saving_at = |u: f64| {
            1.0 - pdac.breakdown_at_utilization(8, u).total_watts()
                / base.breakdown_at_utilization(8, u).total_watts()
        };
        assert!(saving_at(1.0) > saving_at(0.25));
        assert!(saving_at(0.25) > saving_at(0.0));
    }

    #[test]
    fn scaling_with_cores_is_linear() {
        let tech = TechParams::calibrated();
        let mut big = ArchConfig::lt_b();
        big.cores = 16;
        let small = PowerModel::new(ArchConfig::lt_b(), tech.clone(), DriverKind::PhotonicDac);
        let large = PowerModel::new(big, tech, DriverKind::PhotonicDac);
        let ratio = large.breakdown(8).total_watts() / small.breakdown(8).total_watts();
        assert!((ratio - 2.0).abs() < 0.01);
    }
}
