#![warn(missing_docs)]

//! `pdac-serve`: a continuous-batching token server over the batched
//! decode engine.
//!
//! The paper motivates the P-DAC with LLM *serving*: auto-regressive
//! decode where weight traffic dominates. A serving scheduler keeps the
//! photonic GEMM engine fed by batching the current tokens of many
//! in-flight requests into one `S × hidden` activation matrix per step
//! (continuous batching: sequences join and leave the batch at token
//! granularity, never blocking on each other).
//!
//! [`TokenServer`] implements the scheduler: requests wait in an
//! admission queue, free slots are filled at the start of every step,
//! each step advances all active sequences by one token through
//! [`TransformerModel::decode_batch_with`], and sequences retire as soon
//! as they reach their token budget. Because the batched engine is
//! row-for-row **bit-identical** to sequential
//! [`TransformerModel::decode_step`] calls, a served request produces
//! exactly the hidden states it would have produced alone — scheduling
//! changes throughput, never results.
//!
//! # Telemetry
//!
//! Counters `serve.admitted` / `serve.retired`; the last step's
//! active-batch size on the `serve.batch_occupancy` gauge **and** the
//! `serve.occupancy` histogram (so mean/percentile occupancy survives a
//! run); per-request SLO histograms `serve.queue_wait`, `serve.ttft`
//! (time to first token), `serve.itl` (inter-token latency) and
//! `serve.e2e`, all in seconds.
//!
//! With tracing enabled, every admitted request also produces one span
//! tree rooted at `serve.request` (its `arg` is the request id):
//! `serve.queue_wait` and `serve.request.generate` are recorded under it,
//! while each scheduler step contributes an independent `serve.step` →
//! `nn.inference.decode_batch` → `nn.decode.{qkv,attention,ffn}` →
//! `nn.gemm.*` tree shared by the whole batch. Export either view with
//! [`pdac_telemetry::export`].
//!
//! # Energy ledger
//!
//! With a live energy meter installed ([`pdac_power::meter`]), every
//! step's metered energy delta is split across the active batch in
//! proportion to per-sequence modeled MACs and accumulated per request:
//! histograms `serve.request.energy_j` and `serve.energy_per_token_j`
//! at retirement, plus a `serve.request.energy` child span on the
//! request's tree whose `arg` is the attributed nanojoules. The meter is
//! flushed once per step, keeping the `power.*` gauges live; when its
//! power budget latches over budget, the scheduler defers new
//! admissions until the in-flight batch drains (counter
//! `serve.load_shed`). Server-wide totals are available as
//! [`TokenServer::total_energy_j`] and [`TokenServer::joules_per_token`].
//!
//! # Drift sentinel
//!
//! With the `sentinel` feature the [`sentinel`] module re-exports
//! `pdac-verify`'s online drift monitor: live analog GEMMs are
//! shadow-sampled off the hot path, replayed through the exact
//! reference and scored against the paper's error budgets, raising
//! `health.alert.*` records into the global health ledger (surfaced by
//! the `/health` endpoint). Independently of that feature, every
//! server honours `PDAC_SENTINEL_FAILOVER=1`: once the health ledger
//! latches critical, subsequent decode steps reroute to [`ExactGemm`]
//! (counter `serve.sentinel_failover`,
//! [`TokenServer::failover_steps`]) so served results stay trustworthy
//! while the analog path is quarantined. See DESIGN.md §17.
//!
//! # KV paging
//!
//! [`TokenServer::new_paged`] serves through a [`PagedKvCache`] instead
//! of per-request flat caches: sequences share physical K/V pages for
//! equal prompt prefixes (each request's prompt is hashed at block
//! boundaries on admission; a retiring-past-its-prompt request
//! *publishes* its full-block prefix pages, and later admissions with a
//! matching prefix map them instead of recomputing), and total KV memory
//! respects `PDAC_KV_BUDGET_BYTES`: admission defers a queued request —
//! counter `serve.kv.defer` — while its worst-case page demand can't be
//! met from free pages, budget headroom and evictable prefix entries.
//! Decode results stay bit-identical to the flat server and to solo
//! `decode_step` (the page table is pure indirection). Gauges
//! `serve.kv.{pages,bytes}` and counters
//! `serve.kv.{shared,evicted,cow,over_budget}` track the cache;
//! `serve.kv.request_pages` records each retiring request's mapped page
//! count (also on [`Completion::kv_pages`]). See DESIGN.md §15.
//!
//! # Examples
//!
//! ```
//! use pdac_nn::{ExactGemm, TransformerConfig, TransformerModel};
//! use pdac_serve::{Request, TokenServer};
//!
//! let model = TransformerModel::random(TransformerConfig::tiny(), 4, 42);
//! let mut server = TokenServer::new(&model, 2);
//! let prompt = model.random_input(1);
//! for id in 0..3 {
//!     server.admit(Request {
//!         id,
//!         prompt: vec![prompt.row(0), prompt.row(1)],
//!         max_new_tokens: 3,
//!     });
//! }
//! server.run(&ExactGemm);
//! let done = server.take_completions();
//! assert_eq!(done.len(), 3);
//! assert!(done.iter().all(|c| c.hidden.len() == 3));
//! ```

use std::collections::VecDeque;

#[cfg(feature = "sentinel")]
pub mod sentinel;

use pdac_math::Mat;
use pdac_nn::{
    prefix_block_hashes, DecodeScratch, ExactGemm, GemmBackend, KvCache, KvStats, PagedConfig,
    PagedKvCache, TransformerModel,
};

/// The embedding fed back as the next input token once a sequence runs
/// past its prompt: a bounded (`tanh`) squash of the last hidden state.
///
/// With random weights there is no vocabulary to sample from; this keeps
/// the auto-regressive loop closed and the activations in the range the
/// quantizers expect. Reference implementations must use the same rule
/// to reproduce served sequences bit-for-bit.
pub fn feedback_embedding(hidden: &[f64]) -> Vec<f64> {
    hidden.iter().map(|v| v.tanh()).collect()
}

/// One inference request: a prompt of token embeddings plus a budget of
/// tokens to generate.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen identifier, echoed on the [`Completion`].
    pub id: u64,
    /// Prompt token embeddings (each of length `hidden`). May be empty:
    /// the sequence then starts from a zero embedding.
    pub prompt: Vec<Vec<f64>>,
    /// Number of tokens to generate. `0` completes immediately.
    pub max_new_tokens: usize,
}

/// A finished request: the generated hidden states in order.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's identifier.
    pub id: u64,
    /// Prompt length that was consumed.
    pub prompt_tokens: usize,
    /// Generated final hidden states, one per new token (the first is
    /// the output of the last prompt token).
    pub hidden: Vec<Vec<f64>>,
    /// Server step index (0-based) at which the request retired, or the
    /// admission step for zero-budget requests.
    pub finished_step: u64,
    /// Modeled joules attributed to this request by the live energy
    /// meter ([`pdac_power::meter`]): each step's metered energy delta is
    /// split across the active batch in proportion to per-sequence
    /// modeled MACs. `0.0` when no meter is installed.
    pub energy_j: f64,
    /// KV pages the request's slot mapped at retirement (paged servers
    /// only; `0` on flat servers and zero-budget requests). Shared
    /// prefix pages count once per mapping, so two requests sharing a
    /// prefix each report the full page count while the cache holds one
    /// physical copy.
    pub kv_pages: usize,
}

/// A request waiting for a batch slot, carrying its open trace root.
struct Queued {
    request: Request,
    /// Global-clock time at admission (0 with telemetry disabled).
    admitted_ns: u64,
    /// The request's root span (`serve.request`), open from admission to
    /// retirement; children attach through its context.
    span: pdac_telemetry::OwnedSpan<'static>,
    /// Block-boundary prompt hashes (paged servers only), capped so the
    /// last prompt token is always computed — its hidden output is the
    /// request's first generated entry.
    hashes: Vec<u64>,
}

/// Where an active sequence's K/V rows live: its own flat cache, or a
/// slot of the server's shared [`PagedKvCache`].
enum SeqKv {
    Flat(KvCache),
    Paged(usize),
}

struct Active {
    id: u64,
    kv: SeqKv,
    prompt: Vec<Vec<f64>>,
    pos: usize,
    generated: Vec<Vec<f64>>,
    max_new_tokens: usize,
    admitted_ns: u64,
    /// Time the last generated token was emitted (drives `serve.itl`).
    last_token_ns: Option<u64>,
    span: pdac_telemetry::OwnedSpan<'static>,
    /// Time this request left the queue (starts `serve.request.generate`).
    entered_ns: u64,
    /// Modeled joules attributed so far (see [`Completion::energy_j`]).
    energy_j: f64,
    /// Prompt hashes carried from admission (paged servers only).
    hashes: Vec<u64>,
    /// Whether this sequence's prompt prefix has been published to the
    /// paged cache's prefix index (once, when `pos` passes the prompt).
    published: bool,
}

impl Active {
    fn next_token(&self, hidden: usize) -> Vec<f64> {
        if self.pos < self.prompt.len() {
            self.prompt[self.pos].clone()
        } else if let Some(last) = self.generated.last() {
            feedback_embedding(last)
        } else {
            vec![0.0; hidden]
        }
    }
}

/// Continuous-batching scheduler over a model and a fixed batch
/// capacity.
pub struct TokenServer<'m> {
    model: &'m TransformerModel,
    max_batch: usize,
    queue: VecDeque<Queued>,
    active: Vec<Active>,
    scratch: DecodeScratch,
    out: Mat,
    completions: Vec<Completion>,
    steps: u64,
    fed_tokens: u64,
    generated_tokens: u64,
    occupancy_sum: u64,
    energy_j: f64,
    shed_steps: u64,
    /// The shared paged KV cache (`None` on flat servers).
    paged: Option<PagedKvCache>,
    /// Idle slot indices of the paged cache.
    free_slots: Vec<usize>,
    /// Admissions deferred for KV budget headroom (`serve.kv.defer`).
    kv_deferred: u64,
    /// `PDAC_SENTINEL_FAILOVER=1` at construction: reroute decode steps
    /// to the exact backend once the health ledger latches critical.
    failover_armed: bool,
    /// Decode steps rerouted by the failover hook
    /// (`serve.sentinel_failover`).
    failover_steps: u64,
}

impl<'m> TokenServer<'m> {
    /// A server decoding at most `max_batch` sequences per step.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn new(model: &'m TransformerModel, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be nonzero");
        Self {
            model,
            max_batch,
            queue: VecDeque::new(),
            active: Vec::new(),
            scratch: DecodeScratch::new(),
            out: Mat::zeros(1, 1),
            completions: Vec::new(),
            steps: 0,
            fed_tokens: 0,
            generated_tokens: 0,
            occupancy_sum: 0,
            energy_j: 0.0,
            shed_steps: 0,
            paged: None,
            free_slots: Vec::new(),
            kv_deferred: 0,
            failover_armed: std::env::var("PDAC_SENTINEL_FAILOVER").is_ok_and(|v| v == "1"),
            failover_steps: 0,
        }
    }

    /// A server decoding through a shared [`PagedKvCache`] (prefix
    /// sharing + byte budget) instead of per-request flat caches.
    /// Results are bit-identical to [`Self::new`]; only memory behavior
    /// and the `serve.kv.*` telemetry differ.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` or `config.block_tokens == 0`.
    pub fn new_paged(model: &'m TransformerModel, max_batch: usize, config: PagedConfig) -> Self {
        let mut server = Self::new(model, max_batch);
        server.paged = Some(PagedKvCache::new(model, max_batch, config));
        // Pop order is cosmetic; reversed so slot 0 is used first.
        server.free_slots = (0..max_batch).rev().collect();
        server
    }

    /// Enqueues a request. Zero-budget requests complete immediately.
    ///
    /// # Panics
    ///
    /// Panics if any prompt embedding's length differs from `hidden`.
    pub fn admit(&mut self, request: Request) {
        let hidden = self.model.config().hidden;
        for (i, tok) in request.prompt.iter().enumerate() {
            assert_eq!(tok.len(), hidden, "prompt token {i} hidden dim mismatch");
        }
        pdac_telemetry::counter_add("serve.admitted", 1);
        // Root first, then the queue-wait start stamp: children recorded
        // against `admitted_ns` must not start before their parent.
        let span = pdac_telemetry::open_span(
            "serve.request",
            pdac_telemetry::TraceCtx::NONE,
            Some(request.id),
        );
        let admitted_ns = pdac_telemetry::now_ns();
        if request.max_new_tokens == 0 {
            pdac_telemetry::counter_add("serve.retired", 1);
            pdac_telemetry::observe("serve.e2e", 0.0);
            span.end();
            self.completions.push(Completion {
                id: request.id,
                prompt_tokens: request.prompt.len(),
                hidden: Vec::new(),
                finished_step: self.steps,
                energy_j: 0.0,
                kv_pages: 0,
            });
            return;
        }
        // Paged servers hash the prompt at block boundaries once, at
        // admission. Capped at `prompt_len - 1`: the last prompt token's
        // hidden state is the request's first output, so it must be
        // computed even when the whole prompt's pages are shareable.
        let hashes = match &self.paged {
            Some(paged) if !request.prompt.is_empty() => {
                let block = paged.block_tokens();
                let mut hashes =
                    prefix_block_hashes(request.prompt.iter().map(Vec::as_slice), block);
                hashes.truncate((request.prompt.len() - 1) / block);
                hashes
            }
            _ => Vec::new(),
        };
        self.queue.push_back(Queued {
            request,
            admitted_ns,
            span,
            hashes,
        });
    }

    /// Requests waiting for a slot.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently being decoded.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Tokens fed through the model (prompt + generated).
    pub fn fed_tokens(&self) -> u64 {
        self.fed_tokens
    }

    /// Tokens generated (post-prompt outputs) so far.
    pub fn generated_tokens(&self) -> u64 {
        self.generated_tokens
    }

    /// Modeled joules attributed across all served steps by the live
    /// energy meter (`0.0` when none is installed).
    pub fn total_energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Modeled joules per generated token so far (`0.0` before the first
    /// token or without a meter).
    pub fn joules_per_token(&self) -> f64 {
        if self.generated_tokens == 0 {
            0.0
        } else {
            self.energy_j / self.generated_tokens as f64
        }
    }

    /// Steps that deferred admissions because the power budget was
    /// latched over budget (the `serve.load_shed` counter).
    pub fn shed_steps(&self) -> u64 {
        self.shed_steps
    }

    /// Decode steps rerouted to the exact backend by the sentinel
    /// failover hook (the `serve.sentinel_failover` counter; always `0`
    /// unless `PDAC_SENTINEL_FAILOVER=1` was set at construction).
    pub fn failover_steps(&self) -> u64 {
        self.failover_steps
    }

    /// Paging statistics of the shared KV cache (`None` on flat
    /// servers).
    pub fn kv_stats(&self) -> Option<KvStats> {
        self.paged.as_ref().map(PagedKvCache::stats)
    }

    /// Admissions deferred for KV budget headroom so far (the
    /// `serve.kv.defer` counter; always `0` on flat servers).
    pub fn kv_deferred(&self) -> u64 {
        self.kv_deferred
    }

    /// Mean active-batch size over all executed steps.
    pub fn mean_occupancy(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.steps as f64
        }
    }

    /// Drains the accumulated completions (in retirement order).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Admits as many queued requests as fit, advances every active
    /// sequence by one token, and retires finished ones, returning the
    /// requests that finished on this step.
    ///
    /// A no-op (returns empty) when the server is idle.
    pub fn step(&mut self, backend: &dyn GemmBackend) -> Vec<Completion> {
        // Sentinel failover hook (opt-in via `PDAC_SENTINEL_FAILOVER=1`):
        // once the drift sentinel has latched the health ledger critical,
        // reroute every subsequent decode step to the exact backend —
        // served results stay trustworthy while the analog path is
        // quarantined. The latch only releases via an operator
        // `health::reset`, so rerouting never flaps mid-request.
        let failover = self.failover_armed && pdac_telemetry::health_critical();
        let backend: &dyn GemmBackend = if failover { &ExactGemm } else { backend };
        // Load-shed hook: while the energy meter's power budget is
        // latched over budget, defer new admissions and let the
        // in-flight batch drain. Only sheds with work in flight — an
        // idle server must keep admitting, or no step would ever run to
        // re-evaluate the budget and clear the latch.
        let shed = !self.active.is_empty() && pdac_power::meter::over_budget();
        if shed && !self.queue.is_empty() {
            self.shed_steps += 1;
            pdac_telemetry::counter_add("serve.load_shed", 1);
        }
        while !shed && self.active.len() < self.max_batch {
            let Some(front) = self.queue.front() else {
                break;
            };
            // Budget-aware admission (paged servers): defer the request
            // while its worst-case page demand — prompt + generation,
            // minus what the prefix cache already holds — cannot be met
            // from free pages, budget headroom and evictable prefixes.
            // With nothing in flight it admits anyway (over-budget
            // growth is counted, never fatal): deferring would deadlock.
            if let Some(paged) = &self.paged {
                let shared = paged.probe_prefix(&front.hashes);
                let worst = (front.request.prompt.len().max(1) + front.request.max_new_tokens - 1)
                    .saturating_sub(shared);
                if !self.active.is_empty() && !paged.can_fit(worst) {
                    self.kv_deferred += 1;
                    pdac_telemetry::counter_add("serve.kv.defer", 1);
                    break;
                }
            }
            let q = self.queue.pop_front().expect("front exists");
            let entered_ns = pdac_telemetry::now_ns();
            // The queue wait becomes a retroactive child span of
            // the request (and the `serve.queue_wait` histogram).
            pdac_telemetry::record_span(
                "serve.queue_wait",
                q.admitted_ns,
                entered_ns,
                q.span.ctx(),
                None,
            );
            // Paged: claim a slot and map any published prefix; the
            // sequence then resumes at the first unshared prompt token.
            let (kv, pos) = match &mut self.paged {
                Some(paged) => {
                    let slot = self.free_slots.pop().expect("active < max_batch");
                    let shared = paged.lookup_prefix(slot, &q.hashes);
                    (SeqKv::Paged(slot), shared)
                }
                None => (SeqKv::Flat(self.model.new_cache()), 0),
            };
            self.active.push(Active {
                id: q.request.id,
                kv,
                prompt: q.request.prompt,
                pos,
                generated: Vec::new(),
                max_new_tokens: q.request.max_new_tokens,
                admitted_ns: q.admitted_ns,
                last_token_ns: None,
                span: q.span,
                entered_ns,
                energy_j: 0.0,
                hashes: q.hashes,
                published: false,
            });
        }
        if self.active.is_empty() {
            return Vec::new();
        }
        if failover {
            self.failover_steps += 1;
            pdac_telemetry::counter_add("serve.sentinel_failover", 1);
        }
        let _span = pdac_telemetry::span("serve.step");
        let s = self.active.len();
        let hidden = self.model.config().hidden;
        pdac_telemetry::gauge_set("serve.batch_occupancy", s as f64);
        pdac_telemetry::observe("serve.occupancy", s as f64);
        self.occupancy_sum += s as u64;

        let mut data = Vec::with_capacity(s * hidden);
        for a in &self.active {
            data.extend_from_slice(&a.next_token(hidden));
        }
        let tokens = Mat::from_rows(s, hidden, data).expect("batch assembly");
        let energy_before = pdac_power::meter::snapshot().map(|snap| snap.total_j());
        match &mut self.paged {
            Some(paged) => {
                let slots: Vec<usize> = self
                    .active
                    .iter()
                    .map(|a| match &a.kv {
                        SeqKv::Paged(slot) => *slot,
                        SeqKv::Flat(_) => unreachable!("flat sequence on a paged server"),
                    })
                    .collect();
                self.model.decode_paged_with(
                    &tokens,
                    paged,
                    &slots,
                    backend,
                    &mut self.scratch,
                    &mut self.out,
                );
            }
            None => {
                let mut caches: Vec<&mut KvCache> = self
                    .active
                    .iter_mut()
                    .map(|a| match &mut a.kv {
                        SeqKv::Flat(cache) => cache,
                        SeqKv::Paged(_) => unreachable!("paged sequence on a flat server"),
                    })
                    .collect();
                self.model.decode_batch_with(
                    &tokens,
                    &mut caches,
                    backend,
                    &mut self.scratch,
                    &mut self.out,
                );
            }
        }
        // Split the step's metered energy delta across the batch in
        // proportion to per-sequence modeled MACs (projections + FFN are
        // shape-uniform; the KV terms scale with each context length),
        // then flush so the `power.*` gauges and budget track live.
        if let Some(before) = energy_before {
            if let Some(snap) = pdac_power::meter::flush() {
                let delta = (snap.total_j() - before).max(0.0);
                if delta > 0.0 {
                    let d = hidden as f64;
                    let ff = self.model.config().ff_dim() as f64;
                    let paged = self.paged.as_ref();
                    let weights: Vec<f64> = self
                        .active
                        .iter()
                        .map(|a| {
                            let len = match &a.kv {
                                SeqKv::Flat(cache) => cache.len(),
                                SeqKv::Paged(slot) => paged.expect("paged mode").seq_len(*slot),
                            };
                            4.0 * d * d + 2.0 * d * ff + 2.0 * d * len as f64
                        })
                        .collect();
                    let total_w: f64 = weights.iter().sum();
                    for (a, w) in self.active.iter_mut().zip(&weights) {
                        a.energy_j += delta * w / total_w;
                    }
                    self.energy_j += delta;
                }
            }
        }
        self.fed_tokens += s as u64;
        let token_ns = pdac_telemetry::now_ns();
        for (i, a) in self.active.iter_mut().enumerate() {
            if a.pos < a.prompt.len() {
                a.pos += 1;
            }
            if a.pos >= a.prompt.len() {
                // The whole prompt is now cached: publish its full-block
                // prefix pages so later requests with an equal prefix
                // share them (paged servers, once per request).
                if !a.published {
                    if let (SeqKv::Paged(slot), Some(paged)) = (&a.kv, self.paged.as_mut()) {
                        paged.publish_prefix(*slot, &a.hashes);
                    }
                    a.published = true;
                }
                a.generated.push(self.out.row(i));
                self.generated_tokens += 1;
                match a.last_token_ns {
                    None => pdac_telemetry::observe(
                        "serve.ttft",
                        token_ns.saturating_sub(a.admitted_ns) as f64 * 1e-9,
                    ),
                    Some(prev) => pdac_telemetry::observe(
                        "serve.itl",
                        token_ns.saturating_sub(prev) as f64 * 1e-9,
                    ),
                }
                a.last_token_ns = Some(token_ns);
            }
        }

        let step = self.steps;
        let mut retired = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].generated.len() >= self.active[i].max_new_tokens {
                let a = self.active.remove(i);
                pdac_telemetry::counter_add("serve.retired", 1);
                // Paged retirement: record the slot's page footprint,
                // then return its pages (shared prefixes survive via
                // their prefix-index refcounts) and recycle the slot.
                let kv_pages = match &a.kv {
                    SeqKv::Paged(slot) => {
                        let paged = self.paged.as_mut().expect("paged mode");
                        let pages = paged.slot_page_ids(*slot).len();
                        pdac_telemetry::observe("serve.kv.request_pages", pages as f64);
                        paged.reset_slot(*slot);
                        self.free_slots.push(*slot);
                        pages
                    }
                    SeqKv::Flat(_) => 0,
                };
                let end_ns = pdac_telemetry::now_ns();
                pdac_telemetry::record_span(
                    "serve.request.generate",
                    a.entered_ns,
                    end_ns,
                    a.span.ctx(),
                    None,
                );
                pdac_telemetry::observe(
                    "serve.e2e",
                    end_ns.saturating_sub(a.admitted_ns) as f64 * 1e-9,
                );
                if a.energy_j > 0.0 {
                    pdac_telemetry::observe("serve.request.energy_j", a.energy_j);
                    if !a.generated.is_empty() {
                        pdac_telemetry::observe(
                            "serve.energy_per_token_j",
                            a.energy_j / a.generated.len() as f64,
                        );
                    }
                    // The request's energy ledger rides its span tree:
                    // arg carries the attributed nanojoules.
                    pdac_telemetry::record_span(
                        "serve.request.energy",
                        a.entered_ns,
                        end_ns,
                        a.span.ctx(),
                        Some((a.energy_j * 1e9) as u64),
                    );
                }
                a.span.end();
                retired.push(Completion {
                    id: a.id,
                    prompt_tokens: a.prompt.len(),
                    hidden: a.generated,
                    finished_step: step,
                    energy_j: a.energy_j,
                    kv_pages,
                });
            } else {
                i += 1;
            }
        }
        self.steps += 1;
        self.completions.extend(retired.iter().cloned());
        retired
    }

    /// Steps until idle; returns the number of steps executed.
    pub fn run(&mut self, backend: &dyn GemmBackend) -> u64 {
        let start = self.steps;
        while !self.is_idle() {
            let _ = self.step(backend);
        }
        self.steps - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdac_core::edac::ElectricalDac;
    use pdac_core::pdac::PDac;
    use pdac_nn::{AnalogGemm, ExactGemm, TransformerConfig};

    fn tiny_model() -> TransformerModel {
        TransformerModel::random(TransformerConfig::tiny(), 4, 7)
    }

    fn prompt_rows(model: &TransformerModel, len: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                (0..model.config().hidden)
                    .map(|_| rng.gen_range_f64(-1.0, 1.0))
                    .collect()
            })
            .collect()
    }

    /// The sequential ground truth: one request decoded alone through
    /// `decode_step`, using the same feedback rule as the server.
    fn reference_generate(
        model: &TransformerModel,
        backend: &dyn GemmBackend,
        prompt: &[Vec<f64>],
        max_new: usize,
    ) -> Vec<Vec<f64>> {
        let hidden = model.config().hidden;
        let mut cache = model.new_cache();
        let mut generated: Vec<Vec<f64>> = Vec::new();
        if prompt.is_empty() {
            let h = model.decode_step(&vec![0.0; hidden], &mut cache, backend);
            generated.push(h);
        } else {
            for (i, tok) in prompt.iter().enumerate() {
                let h = model.decode_step(tok, &mut cache, backend);
                if i == prompt.len() - 1 {
                    generated.push(h);
                }
            }
        }
        while generated.len() < max_new {
            let tok = feedback_embedding(generated.last().expect("nonempty"));
            generated.push(model.decode_step(&tok, &mut cache, backend));
        }
        generated
    }

    fn assert_server_matches_reference(backend: &dyn GemmBackend, max_batch: usize) {
        let model = tiny_model();
        let specs = [(0usize, 3usize), (2, 4), (5, 1), (1, 2)];
        let mut server = TokenServer::new(&model, max_batch);
        for (id, &(p, n)) in specs.iter().enumerate() {
            server.admit(Request {
                id: id as u64,
                prompt: prompt_rows(&model, p, 100 + id as u64),
                max_new_tokens: n,
            });
        }
        server.run(backend);
        let mut done = server.take_completions();
        assert_eq!(done.len(), specs.len());
        done.sort_by_key(|c| c.id);
        for (id, &(p, n)) in specs.iter().enumerate() {
            let want =
                reference_generate(&model, backend, &prompt_rows(&model, p, 100 + id as u64), n);
            let got = &done[id];
            assert_eq!(got.prompt_tokens, p, "request {id}");
            assert_eq!(got.hidden.len(), n, "request {id}");
            assert_eq!(got.hidden, want, "request {id} diverged from solo decode");
        }
    }

    #[test]
    fn served_results_bit_identical_to_solo_decode_exact() {
        assert_server_matches_reference(&ExactGemm, 2);
        assert_server_matches_reference(&ExactGemm, 4);
    }

    #[test]
    fn served_results_bit_identical_to_solo_decode_analog() {
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac");
        assert_server_matches_reference(&pdac, 3);
        let edac = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "edac");
        assert_server_matches_reference(&edac, 2);
    }

    #[test]
    fn mid_run_admission_matches_solo_decode() {
        let model = tiny_model();
        let backend = ExactGemm;
        let mut server = TokenServer::new(&model, 4);
        server.admit(Request {
            id: 0,
            prompt: prompt_rows(&model, 3, 1),
            max_new_tokens: 6,
        });
        let _ = server.step(&backend);
        let _ = server.step(&backend);
        // A late arrival joins the running batch at token granularity.
        server.admit(Request {
            id: 1,
            prompt: prompt_rows(&model, 1, 2),
            max_new_tokens: 2,
        });
        server.run(&backend);
        let mut done = server.take_completions();
        done.sort_by_key(|c| c.id);
        for (id, (p, n)) in [(3usize, 6usize), (1, 2)].into_iter().enumerate() {
            let want =
                reference_generate(&model, &backend, &prompt_rows(&model, p, 1 + id as u64), n);
            assert_eq!(done[id].hidden, want, "request {id}");
        }
        // Request 1 (2 tokens incl. prompt output) retires before 0.
        assert!(done[1].finished_step < done[0].finished_step);
    }

    #[test]
    fn oversubscribed_queue_drains_in_fifo_order() {
        let model = tiny_model();
        let mut server = TokenServer::new(&model, 2);
        for id in 0..5 {
            server.admit(Request {
                id,
                prompt: prompt_rows(&model, 1, id),
                max_new_tokens: 2,
            });
        }
        assert_eq!(server.pending(), 5);
        let retired_now = server.step(&ExactGemm);
        assert!(retired_now.is_empty());
        assert_eq!(server.active(), 2);
        assert_eq!(server.pending(), 3);
        server.run(&ExactGemm);
        assert!(server.is_idle());
        let done = server.take_completions();
        assert_eq!(done.len(), 5);
        // FIFO admission + uniform budgets → FIFO retirement.
        let ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(server.mean_occupancy() > 1.0);
        assert_eq!(server.generated_tokens(), 10);
        assert_eq!(server.fed_tokens(), 10); // 1-token prompts: all outputs count
    }

    #[test]
    fn zero_budget_request_completes_without_decoding() {
        let model = tiny_model();
        let mut server = TokenServer::new(&model, 2);
        server.admit(Request {
            id: 9,
            prompt: prompt_rows(&model, 2, 3),
            max_new_tokens: 0,
        });
        assert!(server.is_idle());
        let done = server.take_completions();
        assert_eq!(done.len(), 1);
        assert!(done[0].hidden.is_empty());
        assert_eq!(server.fed_tokens(), 0);
    }

    #[test]
    #[should_panic(expected = "hidden dim mismatch")]
    fn bad_prompt_width_rejected_at_admission() {
        let model = tiny_model();
        let mut server = TokenServer::new(&model, 1);
        server.admit(Request {
            id: 0,
            prompt: vec![vec![0.0; 3]],
            max_new_tokens: 1,
        });
    }

    #[test]
    #[should_panic(expected = "max_batch must be nonzero")]
    fn zero_batch_capacity_rejected() {
        let model = tiny_model();
        let _ = TokenServer::new(&model, 0);
    }

    // ---- paged serving ---------------------------------------------------

    #[test]
    fn paged_server_bit_identical_to_flat_and_reference() {
        // The full flat-server battery, served through a PagedKvCache
        // (block 2, unbounded): every completion must still match the
        // solo-decode reference bit for bit.
        let model = tiny_model();
        let specs = [(0usize, 3usize), (2, 4), (5, 1), (1, 2)];
        for max_batch in [2usize, 4] {
            let mut server = TokenServer::new_paged(&model, max_batch, PagedConfig::new(2));
            for (id, &(p, n)) in specs.iter().enumerate() {
                server.admit(Request {
                    id: id as u64,
                    prompt: prompt_rows(&model, p, 100 + id as u64),
                    max_new_tokens: n,
                });
            }
            server.run(&ExactGemm);
            let mut done = server.take_completions();
            done.sort_by_key(|c| c.id);
            for (id, &(p, n)) in specs.iter().enumerate() {
                let want = reference_generate(
                    &model,
                    &ExactGemm,
                    &prompt_rows(&model, p, 100 + id as u64),
                    n,
                );
                assert_eq!(done[id].hidden, want, "request {id} (batch {max_batch})");
            }
            // Every slot was recycled; no pages leak past retirement
            // except published prefixes.
            let stats = server.kv_stats().expect("paged server");
            assert_eq!(
                stats.live_pages,
                server
                    .paged
                    .as_ref()
                    .unwrap()
                    .mapped_page_ids()
                    .len()
                    .min(stats.live_pages)
            );
            assert_eq!(server.active(), 0);
        }
    }

    #[test]
    fn shared_system_prompt_shares_pages_and_matches_unshared_run() {
        // Satellite: two requests with an identical system prompt must
        // report `serve.kv.shared > 0` and produce byte-identical
        // completions to the unshared (flat-server) run.
        let model = tiny_model();
        let system_prompt = prompt_rows(&model, 5, 500); // block 2 → shares 4
        let run = |paged: bool| -> (Vec<Completion>, Option<KvStats>) {
            let mut server = if paged {
                TokenServer::new_paged(&model, 2, PagedConfig::new(2))
            } else {
                TokenServer::new(&model, 2)
            };
            // First request runs alone past its prompt (publishing it on
            // paged servers), then the second arrives and can share.
            server.admit(Request {
                id: 0,
                prompt: system_prompt.clone(),
                max_new_tokens: 4,
            });
            for _ in 0..system_prompt.len() {
                let _ = server.step(&ExactGemm);
            }
            server.admit(Request {
                id: 1,
                prompt: system_prompt.clone(),
                max_new_tokens: 4,
            });
            server.run(&ExactGemm);
            let mut done = server.take_completions();
            done.sort_by_key(|c| c.id);
            let stats = server.kv_stats();
            (done, stats)
        };
        let (flat, none) = run(false);
        assert!(none.is_none());
        let (paged, stats) = run(true);
        let stats = stats.expect("paged server");
        assert!(stats.shared_tokens > 0, "identical prompts never shared");
        assert_eq!(stats.shared_tokens, 4, "block-aligned share depth");
        assert_eq!(flat.len(), 2);
        for (f, p) in flat.iter().zip(&paged) {
            assert_eq!(f.id, p.id);
            // Byte-identical: compare the f64 bit patterns.
            let fb: Vec<Vec<u64>> = f
                .hidden
                .iter()
                .map(|row| row.iter().map(|v| v.to_bits()).collect())
                .collect();
            let pb: Vec<Vec<u64>> = p
                .hidden
                .iter()
                .map(|row| row.iter().map(|v| v.to_bits()).collect())
                .collect();
            assert_eq!(fb, pb, "request {} diverged from unshared run", f.id);
        }
        // The sharer reports its mapped footprint.
        assert!(paged[1].kv_pages > 0);
    }

    #[test]
    fn kv_budget_defers_admission_until_pages_free() {
        // Budget sized for roughly one request: the second must wait in
        // the queue (serve.kv.defer) instead of blowing the budget, then
        // complete correctly once the first retires.
        let model = tiny_model();
        let layers = model.config().layers;
        let page_bytes = 2 * 2 * model.config().hidden * 8; // block 2
                                                            // Each request caches 6 tokens → 3 pages per layer; the budget
                                                            // holds 4 per layer, so two in flight cannot both fit.
        let budget = layers * 4 * page_bytes;
        let mut server =
            TokenServer::new_paged(&model, 2, PagedConfig::new(2).with_budget_bytes(budget));
        server.admit(Request {
            id: 0,
            prompt: prompt_rows(&model, 4, 600),
            max_new_tokens: 3,
        });
        // Let request 0 build up its KV footprint, then enqueue the
        // second: its worst-case demand no longer fits the headroom.
        for _ in 0..3 {
            let _ = server.step(&ExactGemm);
        }
        server.admit(Request {
            id: 1,
            prompt: prompt_rows(&model, 4, 601),
            max_new_tokens: 3,
        });
        server.run(&ExactGemm);
        assert!(server.kv_deferred() > 0, "budget never deferred admission");
        let stats = server.kv_stats().expect("paged server");
        assert_eq!(stats.over_budget_pages, 0, "defer should prevent overflow");
        let mut done = server.take_completions();
        done.sort_by_key(|c| c.id);
        assert_eq!(done.len(), 2);
        for (id, c) in done.iter().enumerate() {
            let want = reference_generate(
                &model,
                &ExactGemm,
                &prompt_rows(&model, 4, 600 + id as u64),
                3,
            );
            assert_eq!(
                c.hidden, want,
                "request {id} diverged under budget pressure"
            );
        }
    }
}
