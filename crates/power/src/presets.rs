//! Calibrated technology parameters.
//!
//! The paper reports percentages and totals but not its raw component
//! table, so [`TechParams::calibrated`] pins constants solved from the
//! paper's own numbers (the closure is documented in DESIGN.md §5):
//!
//! * Fig. 5: DAC share of LT-B power = 21.8% (4-bit) / 50.5% (8-bit),
//! * Fig. 11: P-DAC totals 11.81 W (4-bit) / 26.64 W (8-bit) with savings
//!   19.9% / 47.7%, ADC share 16.0% and P-DAC share 20.1% at 8-bit,
//!   laser ≈ 46.5% of the 4-bit P-DAC design,
//! * Figs. 9/10: per-class energy savings for BERT and DeiT.
//!
//! The struct is plain data: swap any constant to explore a different
//! technology point.

use crate::components::{DacEnergyLaw, LaserPowerLaw};

/// All unit-level technology constants of the power/energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Electrical DAC per-conversion energy law.
    pub dac: DacEnergyLaw,
    /// ADC per-conversion energy: `adc_pj_per_bit · b` picojoules.
    pub adc_pj_per_bit: f64,
    /// Laser wall-plug power law.
    pub laser: LaserPowerLaw,
    /// P-DAC unit power: `pdac_unit_watts_per_bit · b` watts per modulator
    /// (covers the per-bit PD + TIA branches, summing network and MZM bias).
    pub pdac_unit_watts_per_bit: f64,
    /// Baseline MZM driver power per modulator per bit, watts.
    pub mzm_driver_watts_per_bit: f64,
    /// Baseline DAC controller power at LT-B scale, watts (constant in `b`).
    pub controller_watts: f64,
    /// SRAM + digital support power per bit at LT-B scale, watts.
    pub sram_digital_watts_per_bit: f64,
    /// Effective attention-class data movement energy, pJ per byte
    /// (operands mostly SRAM-resident).
    pub attention_movement_pj_per_byte: f64,
    /// Effective FFN-class data movement energy, pJ per byte (weight
    /// streaming from DRAM dominates).
    pub ffn_movement_pj_per_byte: f64,
    /// Non-GEMM element-wise operation energy (softmax, layernorm, GELU,
    /// residual, control): `elementwise_pj_per_op_per_bit · b` pJ per
    /// element operation.
    pub elementwise_pj_per_op_per_bit: f64,
}

impl TechParams {
    /// The calibrated LT-B technology point (see module docs).
    pub fn calibrated() -> Self {
        Self {
            dac: DacEnergyLaw {
                linear_pj_per_bit: 0.044_919,
                exp_pj: 0.008_411_5,
            },
            adc_pj_per_bit: 0.208_01,
            laser: LaserPowerLaw {
                base_watts_at_4bit: 5.51,
                growth_per_bit: 1.262,
            },
            pdac_unit_watts_per_bit: 6.52e-4,
            mzm_driver_watts_per_bit: 3.906_25e-4,
            controller_watts: 0.79,
            sram_digital_watts_per_bit: 0.375,
            attention_movement_pj_per_byte: 32.8,
            ffn_movement_pj_per_byte: 140.0,
            elementwise_pj_per_op_per_bit: 33.8,
        }
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_dac_energy_growth_is_8x_from_4_to_8_bits() {
        // Fig. 5 + Fig. 11 imply an 8× DAC power ratio between 8-bit and
        // 4-bit LT-B; the fitted law reproduces it.
        let t = TechParams::calibrated();
        let ratio = t.dac.energy_pj(8) / t.dac.energy_pj(4);
        assert!((ratio - 8.0).abs() < 0.05, "ratio={ratio}");
    }

    #[test]
    fn calibrated_laser_watts() {
        let t = TechParams::calibrated();
        assert!((t.laser.watts(4) - 5.51).abs() < 1e-9);
        assert!((t.laser.watts(8) - 13.98).abs() < 0.05);
    }

    #[test]
    fn dac_energy_magnitudes_are_physical() {
        // Switched-capacitor DACs at multi-GS/s run at O(0.1..10) pJ/conv.
        let t = TechParams::calibrated();
        let e8 = t.dac.energy_pj(8);
        assert!((0.1..10.0).contains(&e8), "e8={e8}");
    }

    #[test]
    fn movement_rates_ordered() {
        // DRAM-streaming FFN traffic must cost more per byte than the
        // SRAM-resident attention traffic.
        let t = TechParams::calibrated();
        assert!(t.ffn_movement_pj_per_byte > 2.0 * t.attention_movement_pj_per_byte);
    }

    #[test]
    fn default_is_calibrated() {
        assert_eq!(TechParams::default(), TechParams::calibrated());
    }
}
