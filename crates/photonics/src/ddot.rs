//! The Dynamically-operated Dot-product unit (DDot).
//!
//! DDot computes `x·y` entirely in the analog optical domain (paper Eq. 6):
//!
//! ```text
//! x·y ∝ Σᵢ(xᵢ+yᵢ)² − Σᵢ(xᵢ−yᵢ)²
//! ```
//!
//! Each vector element pair `(xᵢ, yᵢ)` rides its own WDM wavelength. A
//! fixed −90° phase shifter on the `y` arm followed by a 50:50 directional
//! coupler produces `(xᵢ+yᵢ)/√2` on one output waveguide and
//! `j(xᵢ−yᵢ)/√2` on the other. Two broadband photodetectors sum intensity
//! across wavelengths, and the balanced current difference is exactly the
//! dot product: with `I = ½|E|²`, the detector currents are
//! `Σ(xᵢ+yᵢ)²/4` and `Σ(xᵢ−yᵢ)²/4`, whose difference is `Σxᵢyᵢ`.
//!
//! The PS and DC are fully passive ("no extra energy consumption"), which
//! is why DDot scales so well with WDM channel count.

use crate::devices::coupler::DirectionalCoupler;
use crate::devices::phase_shifter::PhaseShifter;
use crate::devices::photodetector::Photodetector;
use crate::field::OpticalField;
use crate::noise::NoiseModel;
use std::fmt;

/// Errors from DDot evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DDotError {
    /// Operand length differs from the unit's WDM channel count.
    LengthMismatch {
        /// Channels provisioned in the unit.
        channels: usize,
        /// Elements supplied.
        supplied: usize,
    },
}

impl fmt::Display for DDotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DDotError::LengthMismatch { channels, supplied } => write!(
                f,
                "operand length {supplied} does not match the unit's {channels} WDM channels"
            ),
        }
    }
}

impl std::error::Error for DDotError {}

/// A DDot unit provisioned for a fixed number of WDM channels.
///
/// # Examples
///
/// ```
/// use pdac_photonics::DDotUnit;
///
/// let unit = DDotUnit::ideal(3);
/// let got = unit.dot(&[1.0, 2.0, 3.0], &[4.0, -5.0, 6.0])?;
/// assert!((got - 12.0).abs() < 1e-12);
/// # Ok::<(), pdac_photonics::ddot::DDotError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DDotUnit {
    channels: usize,
    shifter: PhaseShifter,
    coupler: DirectionalCoupler,
    pd_sum: Photodetector,
    pd_diff: Photodetector,
}

impl DDotUnit {
    /// An ideal unit: exact −90° shifter, perfect 50:50 coupler, unit
    /// responsivity detectors.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn ideal(channels: usize) -> Self {
        assert!(channels > 0, "DDot needs at least one channel");
        Self {
            channels,
            shifter: PhaseShifter::minus_90(),
            coupler: DirectionalCoupler::fifty_fifty(),
            pd_sum: Photodetector::ideal(),
            pd_diff: Photodetector::ideal(),
        }
    }

    /// Builds a unit with explicit (possibly imperfect) components, for
    /// studying fabrication-variation sensitivity.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn with_components(
        channels: usize,
        shifter: PhaseShifter,
        coupler: DirectionalCoupler,
        pd_sum: Photodetector,
        pd_diff: Photodetector,
    ) -> Self {
        assert!(channels > 0, "DDot needs at least one channel");
        Self {
            channels,
            shifter,
            coupler,
            pd_sum,
            pd_diff,
        }
    }

    /// Number of WDM channels (vector length handled per cycle).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Propagates the two operand fields through the unit, returning the
    /// two output-waveguide fields `(sum_arm, diff_arm)`.
    ///
    /// # Errors
    ///
    /// Returns [`DDotError::LengthMismatch`] when the fields do not match
    /// the provisioned channel count.
    pub fn propagate(
        &self,
        x: &OpticalField,
        y: &OpticalField,
    ) -> Result<(OpticalField, OpticalField), DDotError> {
        if x.channels() != self.channels || y.channels() != self.channels {
            return Err(DDotError::LengthMismatch {
                channels: self.channels,
                supplied: x.channels().max(y.channels()),
            });
        }
        let mut sum_arm = OpticalField::dark(self.channels);
        let mut diff_arm = OpticalField::dark(self.channels);
        for i in 0..self.channels {
            let ch = crate::wavelength::ChannelId(i);
            let xe = x.amplitude(ch);
            let ye = self.shifter.shift(y.amplitude(ch));
            let (top, bottom) = self.coupler.couple(xe, ye);
            sum_arm.set(ch, top);
            diff_arm.set(ch, bottom);
        }
        Ok((sum_arm, diff_arm))
    }

    /// Computes the balanced-detection dot product of two field-encoded
    /// operand vectors (noiseless).
    ///
    /// The inputs are the per-wavelength field amplitudes — i.e. the
    /// values already encoded by the MZM banks.
    ///
    /// # Errors
    ///
    /// Returns [`DDotError::LengthMismatch`] for wrong operand lengths.
    pub fn dot(&self, x: &[f64], y: &[f64]) -> Result<f64, DDotError> {
        self.dot_with(x, y, None)
    }

    /// Computes the dot product with optional detector noise.
    ///
    /// # Errors
    ///
    /// Returns [`DDotError::LengthMismatch`] for wrong operand lengths.
    pub fn dot_noisy(
        &self,
        x: &[f64],
        y: &[f64],
        noise: &mut NoiseModel,
    ) -> Result<f64, DDotError> {
        self.dot_with(x, y, Some(noise))
    }

    fn dot_with(
        &self,
        x: &[f64],
        y: &[f64],
        noise: Option<&mut NoiseModel>,
    ) -> Result<f64, DDotError> {
        if x.len() != self.channels || y.len() != self.channels {
            return Err(DDotError::LengthMismatch {
                channels: self.channels,
                supplied: x.len().max(y.len()),
            });
        }
        // Counter only — this is the innermost hot path; a span here
        // would dominate the cost of the dot product itself.
        pdac_telemetry::counter_add("photonics.ddot.ops", 1);
        let xf = OpticalField::from_real(x);
        let yf = OpticalField::from_real(y);
        let (sum_arm, diff_arm) = self.propagate(&xf, &yf)?;
        let (i_sum, i_diff) = match noise {
            Some(n) => (
                self.pd_sum.detect_noisy(&sum_arm, n),
                self.pd_diff.detect_noisy(&diff_arm, n),
            ),
            None => (self.pd_sum.detect(&sum_arm), self.pd_diff.detect(&diff_arm)),
        };
        // Balanced detection: with the coupler's 1/√2 and the intensity
        // convention I = ½|E|², the currents are Σ(x+y)²/4 and Σ(x−y)²/4,
        // so their difference is exactly Σ 4xy/4 = x·y.
        Ok(i_sum - i_diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_dot(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn single_channel_products() {
        let unit = DDotUnit::ideal(1);
        for &(x, y) in &[(0.5, 0.5), (1.0, -1.0), (0.0, 0.7), (-0.3, -0.9)] {
            let got = unit.dot(&[x], &[y]).unwrap();
            assert!((got - x * y).abs() < 1e-12, "x={x} y={y} got={got}");
        }
    }

    #[test]
    fn multi_channel_dot_product() {
        let unit = DDotUnit::ideal(4);
        let x = [0.25, -0.5, 0.75, 1.0];
        let y = [1.0, 0.5, -0.25, -0.125];
        let got = unit.dot(&x, &y).unwrap();
        assert!((got - exact_dot(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_give_zero() {
        let unit = DDotUnit::ideal(2);
        let got = unit.dot(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!(got.abs() < 1e-12);
    }

    #[test]
    fn full_range_sign_support() {
        // The whole point of the Lightening-Transformer design: negative
        // operands are encoded in optical phase and survive the dot product.
        let unit = DDotUnit::ideal(3);
        let x = [-1.0, -0.5, -0.25];
        let y = [-1.0, 0.5, -0.25];
        let got = unit.dot(&x, &y).unwrap();
        assert!((got - exact_dot(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_reported() {
        let unit = DDotUnit::ideal(3);
        let err = unit.dot(&[1.0, 2.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            DDotError::LengthMismatch {
                channels: 3,
                supplied: 2
            }
        );
        assert!(err.to_string().contains("WDM channels"));
    }

    #[test]
    fn propagate_conserves_energy() {
        let unit = DDotUnit::ideal(2);
        let x = OpticalField::from_real(&[0.8, -0.6]);
        let y = OpticalField::from_real(&[0.1, 0.9]);
        let (s, d) = unit.propagate(&x, &y).unwrap();
        let pin = x.total_intensity() + y.total_intensity();
        let pout = s.total_intensity() + d.total_intensity();
        assert!((pin - pout).abs() < 1e-12);
    }

    #[test]
    fn imperfect_coupler_biases_result() {
        // A 60:40 coupler breaks the exact identity — the unit still runs
        // but returns a biased value; the test documents the failure mode.
        let unit = DDotUnit::with_components(
            1,
            PhaseShifter::minus_90(),
            DirectionalCoupler::new(0.6),
            Photodetector::ideal(),
            Photodetector::ideal(),
        );
        let got = unit.dot(&[1.0], &[1.0]).unwrap();
        assert!((got - 1.0).abs() > 0.01);
    }

    #[test]
    fn phase_error_biases_result() {
        let unit = DDotUnit::with_components(
            1,
            PhaseShifter::new(-std::f64::consts::FRAC_PI_2 + 0.2),
            DirectionalCoupler::fifty_fifty(),
            Photodetector::ideal(),
            Photodetector::ideal(),
        );
        let got = unit.dot(&[1.0], &[1.0]).unwrap();
        assert!((got - 1.0).abs() > 0.005);
    }

    #[test]
    fn noisy_dot_tracks_clean_mean() {
        let unit = DDotUnit::ideal(8);
        let x: Vec<f64> = (0..8).map(|i| (i as f64 / 8.0) - 0.4).collect();
        let y: Vec<f64> = (0..8).map(|i| 0.9 - i as f64 / 7.0).collect();
        let clean = unit.dot(&x, &y).unwrap();
        let mut noise = NoiseModel::gaussian_current(1e-3, 11);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| unit.dot_noisy(&x, &y, &mut noise).unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((mean - clean).abs() < 5e-4, "mean={mean} clean={clean}");
    }

    #[test]
    fn large_vector_accuracy() {
        let unit = DDotUnit::ideal(64);
        let x: Vec<f64> = (0..64)
            .map(|i| ((i * 7 % 13) as f64 / 13.0) - 0.5)
            .collect();
        let y: Vec<f64> = (0..64)
            .map(|i| ((i * 5 % 11) as f64 / 11.0) - 0.5)
            .collect();
        let got = unit.dot(&x, &y).unwrap();
        assert!((got - exact_dot(&x, &y)).abs() < 1e-10);
    }
}
