//! Piecewise-linear functions over a real interval.
//!
//! The P-DAC realizes `arccos(r)` as a small number of linear segments whose
//! slopes/intercepts are implemented by per-bit TIA weights with region
//! select logic (paper Eq. 16/18: "the function in the P-DAC hardware can be
//! easily decomposed into three parts by adding logic gates"). This module
//! is the exact mathematical object that hardware implements: an ordered
//! list of `[lo, hi] → a·r + b` segments with validation, evaluation,
//! composition helpers and error measurement against a reference function.

use std::fmt;

/// One linear segment `r ↦ slope·r + intercept` valid on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Inclusive lower bound of the segment's domain.
    pub lo: f64,
    /// Inclusive upper bound of the segment's domain.
    pub hi: f64,
    /// Slope `a` in `a·r + b`.
    pub slope: f64,
    /// Intercept `b` in `a·r + b`.
    pub intercept: f64,
}

impl Segment {
    /// Creates a segment from bounds and coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or any parameter is non-finite.
    pub fn new(lo: f64, hi: f64, slope: f64, intercept: f64) -> Self {
        assert!(lo < hi, "segment bounds must satisfy lo < hi");
        assert!(
            lo.is_finite() && hi.is_finite() && slope.is_finite() && intercept.is_finite(),
            "segment parameters must be finite"
        );
        Self {
            lo,
            hi,
            slope,
            intercept,
        }
    }

    /// Creates the segment through two points `(x0, y0)` and `(x1, y1)`.
    ///
    /// # Panics
    ///
    /// Panics if `x0 >= x1`.
    pub fn through(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x0 < x1, "points must be ordered by x");
        let slope = (y1 - y0) / (x1 - x0);
        Self::new(x0, x1, slope, y0 - slope * x0)
    }

    /// Evaluates the segment's line at `r` (even outside `[lo, hi]`).
    #[inline]
    pub fn eval(&self, r: f64) -> f64 {
        self.slope * r + self.intercept
    }

    /// Whether `r` falls within this segment's domain.
    #[inline]
    pub fn contains(&self, r: f64) -> bool {
        r >= self.lo && r <= self.hi
    }
}

/// Errors from [`PiecewiseLinear`] construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PiecewiseError {
    /// No segments were supplied.
    Empty,
    /// Segments do not tile the domain contiguously (gap or overlap between
    /// the listed adjacent segment boundaries).
    Discontiguous {
        /// Index of the first segment of the offending pair.
        index: usize,
        /// `hi` of the left segment.
        left_hi: f64,
        /// `lo` of the right segment.
        right_lo: f64,
    },
}

impl fmt::Display for PiecewiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiecewiseError::Empty => write!(f, "piecewise function needs at least one segment"),
            PiecewiseError::Discontiguous {
                index,
                left_hi,
                right_lo,
            } => write!(
                f,
                "segments {index} and {} are discontiguous: {left_hi} vs {right_lo}",
                index + 1
            ),
        }
    }
}

impl std::error::Error for PiecewiseError {}

/// A contiguous piecewise-linear function.
///
/// # Examples
///
/// ```
/// use pdac_math::{PiecewiseLinear, Segment};
///
/// let f = PiecewiseLinear::new(vec![
///     Segment::new(0.0, 0.5, 1.0, 0.0),
///     Segment::new(0.5, 1.0, -1.0, 1.0),
/// ])?;
/// assert_eq!(f.eval(0.25), 0.25);
/// assert_eq!(f.eval(0.75), 0.25);
/// # Ok::<(), pdac_math::piecewise::PiecewiseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    segments: Vec<Segment>,
}

impl PiecewiseLinear {
    /// Builds a piecewise-linear function from ordered, contiguous segments.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError::Empty`] for no segments, or
    /// [`PiecewiseError::Discontiguous`] when adjacent segment boundaries do
    /// not coincide within `1e-9`.
    pub fn new(segments: Vec<Segment>) -> Result<Self, PiecewiseError> {
        if segments.is_empty() {
            return Err(PiecewiseError::Empty);
        }
        for (i, pair) in segments.windows(2).enumerate() {
            if (pair[0].hi - pair[1].lo).abs() > 1e-9 {
                return Err(PiecewiseError::Discontiguous {
                    index: i,
                    left_hi: pair[0].hi,
                    right_lo: pair[1].lo,
                });
            }
        }
        Ok(Self { segments })
    }

    /// The segments, ordered by domain.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Domain `[lo, hi]` covered by the function.
    pub fn domain(&self) -> (f64, f64) {
        (
            self.segments.first().expect("nonempty by construction").lo,
            self.segments.last().expect("nonempty by construction").hi,
        )
    }

    /// Index of the segment whose domain contains `r`.
    ///
    /// Inputs outside the domain clamp to the first/last segment — this
    /// mirrors hardware behaviour where the region-select comparators
    /// saturate.
    pub fn segment_index(&self, r: f64) -> usize {
        if r <= self.segments[0].hi {
            return 0;
        }
        for (i, s) in self.segments.iter().enumerate() {
            if r <= s.hi {
                return i;
            }
        }
        self.segments.len() - 1
    }

    /// Evaluates the function at `r` (clamping to the domain edges).
    pub fn eval(&self, r: f64) -> f64 {
        self.segments[self.segment_index(r)].eval(r)
    }

    /// Maximum of `|metric(self.eval(r), reference(r))|` over a uniform
    /// sample of `n` points, returned with its location.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn max_deviation(
        &self,
        reference: impl Fn(f64) -> f64,
        metric: impl Fn(f64, f64) -> f64,
        n: usize,
    ) -> (f64, f64) {
        assert!(n >= 2, "need at least two sample points");
        let (lo, hi) = self.domain();
        let mut worst = 0.0;
        let mut at = lo;
        for i in 0..n {
            let r = lo + (hi - lo) * i as f64 / (n - 1) as f64;
            let d = metric(self.eval(r), reference(r)).abs();
            if d > worst {
                worst = d;
                at = r;
            }
        }
        (worst, at)
    }

    /// Breakpoints interior to the domain (segment boundaries).
    pub fn breakpoints(&self) -> Vec<f64> {
        self.segments.iter().skip(1).map(|s| s.lo).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tent() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![
            Segment::new(-1.0, 0.0, 1.0, 1.0),
            Segment::new(0.0, 1.0, -1.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn segment_eval_and_contains() {
        let s = Segment::new(0.0, 1.0, 2.0, -1.0);
        assert_eq!(s.eval(0.5), 0.0);
        assert!(s.contains(0.0) && s.contains(1.0) && !s.contains(1.1));
    }

    #[test]
    fn segment_through_two_points() {
        let s = Segment::through(1.0, 2.0, 3.0, 6.0);
        assert_eq!(s.slope, 2.0);
        assert_eq!(s.eval(1.0), 2.0);
        assert_eq!(s.eval(3.0), 6.0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn segment_rejects_reversed_bounds() {
        Segment::new(1.0, 0.0, 1.0, 0.0);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(PiecewiseLinear::new(vec![]), Err(PiecewiseError::Empty));
    }

    #[test]
    fn gap_rejected() {
        let err = PiecewiseLinear::new(vec![
            Segment::new(0.0, 0.4, 1.0, 0.0),
            Segment::new(0.5, 1.0, 1.0, 0.0),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            PiecewiseError::Discontiguous { index: 0, .. }
        ));
        assert!(err.to_string().contains("discontiguous"));
    }

    #[test]
    fn eval_selects_correct_segment() {
        let f = tent();
        assert_eq!(f.eval(-0.5), 0.5);
        assert_eq!(f.eval(0.5), 0.5);
        assert_eq!(f.eval(0.0), 1.0);
    }

    #[test]
    fn eval_clamps_outside_domain() {
        let f = tent();
        // Left segment line extended: 1 + r.
        assert_eq!(f.eval(-2.0), -1.0);
        // Right segment line extended: 1 - r.
        assert_eq!(f.eval(2.0), -1.0);
    }

    #[test]
    fn domain_and_breakpoints() {
        let f = tent();
        assert_eq!(f.domain(), (-1.0, 1.0));
        assert_eq!(f.breakpoints(), vec![0.0]);
    }

    #[test]
    fn segment_index_boundaries() {
        let f = tent();
        assert_eq!(f.segment_index(-1.0), 0);
        assert_eq!(f.segment_index(0.0), 0); // boundary belongs to left segment
        assert_eq!(f.segment_index(0.25), 1);
        assert_eq!(f.segment_index(1.0), 1);
    }

    #[test]
    fn max_deviation_against_self_is_zero() {
        let f = tent();
        let g = tent();
        let (worst, _) = f.max_deviation(|r| g.eval(r), |a, b| a - b, 1001);
        assert_eq!(worst, 0.0);
    }

    #[test]
    fn max_deviation_finds_peak() {
        let f = tent();
        // Compare against constant 0: worst |f| is at r = 0 where f = 1.
        let (worst, at) = f.max_deviation(|_| 0.0, |a, b| a - b, 2001);
        assert_eq!(worst, 1.0);
        assert!(at.abs() < 1e-9);
    }
}
