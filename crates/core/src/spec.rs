//! Hardware specification ("datasheet") generation for a P-DAC design.
//!
//! Turns a synthesized design into the concrete implementation numbers a
//! circuit team would need (paper Fig. 7's block diagram made
//! quantitative): per-region TIA feedback resistances at a reference
//! photocurrent, region-select comparator thresholds, component
//! inventory, and the drive-voltage range handed to the MZM.

use crate::pdac::PDac;
use std::fmt;

/// One region's electrical implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Region index (0 = around zero).
    pub index: usize,
    /// Inclusive magnitude-code range `[lo, hi]` selecting this region.
    pub code_range: (i32, i32),
    /// Bias voltage contribution, volts (normalized drive units).
    pub bias_volts: f64,
    /// Per-bit TIA feedback resistances (Ω) at the reference
    /// photocurrent, MSB first. Negative = inverting stage.
    pub tia_feedback_ohms: Vec<f64>,
}

/// The full datasheet of one P-DAC instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PDacSpec {
    /// Bit width.
    pub bits: u8,
    /// Reference photocurrent of a lit slot, amperes.
    pub slot_current_a: f64,
    /// Magnitude-comparator thresholds (`leq` logic), one per region
    /// boundary.
    pub comparator_thresholds: Vec<i32>,
    /// Per-region implementations.
    pub regions: Vec<RegionSpec>,
    /// Total drive range `[min, max]` produced across all codes, in
    /// normalized volts (`V₁′`).
    pub drive_range: (f64, f64),
    /// Component inventory: (photodetectors, TIA stages, comparators,
    /// analog summing nodes).
    pub component_counts: (usize, usize, usize, usize),
}

impl PDacSpec {
    /// Extracts the datasheet from a built converter at the given
    /// reference slot photocurrent.
    ///
    /// # Panics
    ///
    /// Panics if `slot_current_a <= 0`.
    pub fn from_pdac(pdac: &PDac, slot_current_a: f64) -> Self {
        assert!(slot_current_a > 0.0, "slot current must be positive");
        let plan = pdac.plan();
        let bits = plan.bits();
        let mag_bits = bits as usize - 1;
        let mut regions = Vec::new();
        let mut lo = 0;
        for (index, region) in plan.regions().iter().enumerate() {
            regions.push(RegionSpec {
                index,
                code_range: (lo, region.max_magnitude),
                bias_volts: region.bias,
                tia_feedback_ohms: region
                    .bit_weights
                    .iter()
                    .map(|w| w / slot_current_a)
                    .collect(),
            });
            lo = region.max_magnitude + 1;
        }
        let comparator_thresholds = plan
            .regions()
            .iter()
            .take(plan.regions().len().saturating_sub(1))
            .map(|r| r.max_magnitude)
            .collect();
        let m = plan.max_code();
        let mut vmin = f64::INFINITY;
        let mut vmax = f64::NEG_INFINITY;
        for code in -m..=m {
            let v = pdac.drive_voltage(code);
            vmin = vmin.min(v);
            vmax = vmax.max(v);
        }
        // One PD + TIA per slot (sign + magnitudes), per region bank for
        // the magnitude bits; one comparator per region boundary; one
        // summing node per region plus the sign-mirror stage.
        let region_count = plan.regions().len();
        let pds = bits as usize;
        let tias = mag_bits * region_count + 1; // +1 sign stage
        let comparators = region_count - 1;
        let summing = region_count + 1;
        Self {
            bits,
            slot_current_a,
            comparator_thresholds,
            regions,
            drive_range: (vmin, vmax),
            component_counts: (pds, tias, comparators, summing),
        }
    }
}

impl fmt::Display for PDacSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "P-DAC datasheet — {}-bit, slot current {:.2e} A",
            self.bits, self.slot_current_a
        )?;
        writeln!(
            f,
            "  drive range: {:.4} .. {:.4} rad (MZM V1', push-pull)",
            self.drive_range.0, self.drive_range.1
        )?;
        writeln!(
            f,
            "  comparator thresholds (leq): {:?}",
            self.comparator_thresholds
        )?;
        let (pds, tias, cmps, sums) = self.component_counts;
        writeln!(
            f,
            "  components: {pds} photodetectors, {tias} TIA stages, {cmps} comparators, {sums} summing nodes"
        )?;
        for r in &self.regions {
            writeln!(
                f,
                "  region {} (codes {}..={}): bias {:+.4} V",
                r.index, r.code_range.0, r.code_range.1, r.bias_volts
            )?;
            for (i, ohms) in r.tia_feedback_ohms.iter().enumerate() {
                writeln!(f, "    bit {i} (MSB-{i}): R_f = {ohms:+.2} Ω")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdac_photonics::devices::tia::TiaBank;

    fn spec() -> PDacSpec {
        PDacSpec::from_pdac(&PDac::with_optimal_approx(8).unwrap(), 1e-3)
    }

    #[test]
    fn eight_bit_structure() {
        let s = spec();
        assert_eq!(s.bits, 8);
        assert_eq!(s.regions.len(), 2);
        assert_eq!(s.comparator_thresholds, vec![91]);
        assert_eq!(s.regions[0].code_range, (0, 91));
        assert_eq!(s.regions[1].code_range, (92, 127));
        // 8 PDs (sign + 7 magnitude), 7 TIAs × 2 regions + sign stage.
        assert_eq!(s.component_counts, (8, 15, 1, 3));
    }

    #[test]
    fn drive_range_spans_zero_to_pi() {
        let s = spec();
        assert!(s.drive_range.0 >= -0.01);
        assert!(s.drive_range.1 <= std::f64::consts::PI + 0.01);
        assert!(s.drive_range.1 - s.drive_range.0 > 3.0);
    }

    #[test]
    fn feedback_resistances_rebuild_the_weights() {
        // Round trip: a TiaBank built from the datasheet resistances must
        // reproduce the plan's voltages at the reference current.
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let s = PDacSpec::from_pdac(&pdac, 1e-3);
        let region = &s.regions[0];
        let bank = TiaBank::new(region.tia_feedback_ohms.clone());
        // Code 0b101 = 5: bits 4 and 0 of 7 lit.
        let currents: Vec<f64> = (0..7)
            .map(|i| if (5 >> (6 - i)) & 1 != 0 { 1e-3 } else { 0.0 })
            .collect();
        let v = region.bias_volts + bank.sum_voltage(&currents);
        assert!((v - pdac.drive_voltage(5)).abs() < 1e-12);
    }

    #[test]
    fn resistances_scale_inverse_with_current() {
        let pdac = PDac::with_optimal_approx(8).unwrap();
        let a = PDacSpec::from_pdac(&pdac, 1e-3);
        let b = PDacSpec::from_pdac(&pdac, 2e-3);
        let ra = a.regions[0].tia_feedback_ohms[0];
        let rb = b.regions[0].tia_feedback_ohms[0];
        assert!((ra / rb - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_a_readable_datasheet() {
        let text = spec().to_string();
        assert!(text.contains("datasheet"));
        assert!(text.contains("comparator"));
        assert!(text.contains("R_f"));
        assert!(text.contains("region 1"));
    }

    #[test]
    fn first_order_variant_has_no_comparators() {
        let s = PDacSpec::from_pdac(&PDac::with_first_order_approx(8).unwrap(), 1e-3);
        assert!(s.comparator_thresholds.is_empty());
        assert_eq!(s.regions.len(), 1);
    }
}
