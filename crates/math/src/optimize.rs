//! One-dimensional minimization.
//!
//! Used to solve the paper's Eq. 17: find the breakpoint `k ∈ [0, 1]` that
//! minimizes the integrated relative error of the piecewise-linear arccos
//! approximation. The objective is unimodal but expensive (each evaluation
//! runs two adaptive quadratures), so we provide golden-section search for
//! unimodal objectives and a coarse-grid + refine strategy for objectives
//! that are not guaranteed unimodal.

/// Result of a 1-D minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Argument of the minimum.
    pub x: f64,
    /// Objective value at [`Minimum::x`].
    pub value: f64,
}

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
///
/// Runs until the bracketing interval is narrower than `tol`.
///
/// # Panics
///
/// Panics if `a >= b` or `tol <= 0`.
///
/// # Examples
///
/// ```
/// use pdac_math::optimize::golden_section;
/// let m = golden_section(|x| (x - 2.0).powi(2), 0.0, 5.0, 1e-10);
/// assert!((m.x - 2.0).abs() < 1e-8);
/// ```
pub fn golden_section(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Minimum {
    assert!(a < b, "bracket must satisfy a < b");
    assert!(tol > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (a, b);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    Minimum { x, value: f(x) }
}

/// Coarse grid scan over `[a, b]` with `n` points followed by
/// golden-section refinement around the best grid cell.
///
/// Robust to objectives that are only locally unimodal; this mirrors the
/// paper's "running the program to find the optimal k value".
///
/// # Panics
///
/// Panics if `n < 3`, `a >= b`, or `tol <= 0`.
///
/// # Examples
///
/// ```
/// use pdac_math::optimize::grid_then_golden;
/// // W-shaped objective: grid scan escapes the wrong basin.
/// let f = |x: f64| (x * x - 1.0).powi(2) + 0.1 * x;
/// let m = grid_then_golden(f, -2.0, 2.0, 101, 1e-10);
/// assert!((m.x + 1.0).abs() < 0.1);
/// ```
pub fn grid_then_golden(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize, tol: f64) -> Minimum {
    assert!(n >= 3, "grid scan needs at least 3 points");
    assert!(a < b, "bracket must satisfy a < b");
    assert!(tol > 0.0, "tolerance must be positive");
    let h = (b - a) / (n - 1) as f64;
    let mut best_i = 0;
    let mut best_v = f64::INFINITY;
    for i in 0..n {
        let x = a + i as f64 * h;
        let v = f(x);
        if v < best_v {
            best_v = v;
            best_i = i;
        }
    }
    let lo = a + h * best_i.saturating_sub(1) as f64;
    let hi = (a + h * (best_i + 1) as f64).min(b);
    if lo >= hi {
        return Minimum {
            x: lo,
            value: f(lo),
        };
    }
    golden_section(f, lo, hi, tol)
}

/// Derivative-free Nelder–Mead simplex minimization in `n` dimensions.
///
/// Suited to the non-smooth minimax objectives of the P-DAC trimming
/// study, where coordinate methods stall on the error surface's ridges.
/// Runs `iterations` reflect/expand/contract/shrink steps from a simplex
/// built around `start` with per-coordinate `step` offsets.
///
/// # Panics
///
/// Panics if `start` is empty, `step <= 0`, or `iterations == 0`.
///
/// # Examples
///
/// ```
/// use pdac_math::optimize::nelder_mead;
/// // Rosenbrock-ish bowl.
/// let m = nelder_mead(
///     |x| (x[0] - 1.0).powi(2) + 4.0 * (x[1] + 2.0).powi(2),
///     &[0.0, 0.0],
///     0.5,
///     400,
/// );
/// assert!((m.x[0] - 1.0).abs() < 1e-4);
/// assert!((m.x[1] + 2.0).abs() < 1e-4);
/// ```
pub fn nelder_mead(
    f: impl Fn(&[f64]) -> f64,
    start: &[f64],
    step: f64,
    iterations: usize,
) -> MultiMinimum {
    assert!(!start.is_empty(), "need at least one dimension");
    assert!(step > 0.0, "initial step must be positive");
    assert!(iterations > 0, "need at least one iteration");
    let n = start.len();
    // Initial simplex: start plus one vertex per coordinate offset.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((start.to_vec(), f(start)));
    for i in 0..n {
        let mut v = start.to_vec();
        v[i] += step;
        let fv = f(&v);
        simplex.push((v, fv));
    }
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    for _ in 0..iterations {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (v, _) in &simplex[..n] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = f(&reflect);
        if fr < simplex[0].1 {
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let fe = f(&expand);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = f(&contract);
            if fc < worst.1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = best
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, v)| b + sigma * (v - b))
                        .collect();
                    let fs = f(&shrunk);
                    *entry = (shrunk, fs);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
    MultiMinimum {
        x: simplex[0].0.clone(),
        value: simplex[0].1,
    }
}

/// Result of a multi-dimensional minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiMinimum {
    /// Argument of the minimum.
    pub x: Vec<f64>,
    /// Objective value at [`MultiMinimum::x`].
    pub value: f64,
}

/// Bisection root finding for a continuous `f` with `f(a)` and `f(b)` of
/// opposite sign.
///
/// Used to locate segment intersections (e.g. where the Taylor segment
/// `π/2 − r` meets the end-anchored segment of Eq. 16).
///
/// # Errors
///
/// Returns `Err` with a message when the bracket does not straddle a sign
/// change.
///
/// # Examples
///
/// ```
/// use pdac_math::optimize::bisect;
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), pdac_math::optimize::BracketError>(())
/// ```
pub fn bisect(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64, BracketError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(BracketError);
    }
    while (b - a).abs() > tol {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Ok(0.5 * (a + b))
}

/// Error returned by [`bisect`] when the initial bracket does not contain a
/// sign change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BracketError;

impl std::fmt::Display for BracketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bracket endpoints do not straddle a sign change")
    }
}

impl std::error::Error for BracketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_vertex() {
        let m = golden_section(|x| 2.0 * (x - 0.3).powi(2) + 1.0, -1.0, 1.0, 1e-12);
        // Near the vertex the objective is flat below f64 resolution, so the
        // argument is only locatable to ~sqrt(eps).
        assert!((m.x - 0.3).abs() < 1e-7);
        assert!((m.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn golden_finds_boundary_minimum() {
        let m = golden_section(|x| x, 0.0, 1.0, 1e-10);
        assert!(m.x < 1e-8);
    }

    #[test]
    fn golden_on_nonsmooth_objective() {
        let m = golden_section(|x| (x - 0.7236).abs(), 0.0, 1.0, 1e-12);
        assert!((m.x - 0.7236).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "a < b")]
    fn golden_rejects_bad_bracket() {
        golden_section(|x| x, 1.0, 0.0, 1e-9);
    }

    #[test]
    fn grid_escapes_local_minimum() {
        // Global minimum near x = -1 is slightly deeper than near x = +1.
        let f = |x: f64| (x * x - 1.0).powi(2) + 0.05 * x;
        let m = grid_then_golden(f, -2.0, 2.0, 201, 1e-10);
        assert!(m.x < 0.0);
    }

    #[test]
    fn grid_handles_minimum_at_edge() {
        let m = grid_then_golden(|x| -x, 0.0, 1.0, 11, 1e-10);
        assert!((m.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nelder_mead_quadratic_bowl() {
        let m = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] - 0.5).powi(2) + 2.0,
            &[0.0, 0.0],
            1.0,
            500,
        );
        assert!((m.x[0] - 3.0).abs() < 1e-4);
        assert!((m.x[1] - 0.5).abs() < 1e-4);
        assert!((m.value - 2.0).abs() < 1e-7);
    }

    #[test]
    fn nelder_mead_handles_nonsmooth_max() {
        // Minimax-style objective: max of two absolute values.
        let m = nelder_mead(
            |x| (x[0] - 1.0).abs().max((x[1] + 1.0).abs()),
            &[5.0, 5.0],
            1.0,
            800,
        );
        assert!(m.value < 1e-3, "value {}", m.value);
    }

    #[test]
    fn nelder_mead_one_dimension() {
        let m = nelder_mead(|x| (x[0] + 2.0).powi(2), &[10.0], 0.5, 300);
        assert!((m.x[0] + 2.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn nelder_mead_rejects_empty_start() {
        nelder_mead(|_| 0.0, &[], 1.0, 10);
    }

    #[test]
    fn bisect_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 1.0, 2.0, 1e-13).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn bisect_exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
    }

    #[test]
    fn bisect_rejects_no_sign_change() {
        assert_eq!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9), Err(BracketError));
        assert!(BracketError.to_string().contains("sign change"));
    }
}
