//! End-to-end drift-sentinel proof over a live token server.
//!
//! Each fault class from the verify crate's fault injector is driven
//! through a real serve run with the sentinel armed at full rate; the
//! matching `health.alert.*` counter and ledger record must appear at
//! critical severity, while the identical clean run stays green. Lives
//! in its own integration-test process because the tap and the health
//! ledger are process-global ambients.

#![cfg(feature = "sentinel")]

use pdac_nn::{AnalogGemm, ExactGemm, TransformerConfig, TransformerModel};
use pdac_serve::sentinel::{
    FaultSpec, FaultyPDac, Sentinel, SentinelConfig, SentinelStats, Severity, SlotFault,
};
use pdac_serve::{Request, TokenServer};
use pdac_telemetry::health;
use pdac_verify::sentinel::test_guard;

fn model() -> TransformerModel {
    TransformerModel::random(TransformerConfig::tiny(), 4, 7)
}

fn prompt_rows(m: &TransformerModel, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            (0..m.config().hidden)
                .map(|_| rng.gen_range_f64(-1.0, 1.0))
                .collect()
        })
        .collect()
}

fn pdac8() -> pdac_core::pdac::PDac {
    pdac_core::pdac::PDac::with_optimal_approx(8).unwrap()
}

/// Serves a fixed request mix through `backend` with the sentinel armed
/// at full rate, returning the run's completions and sentinel counters.
fn serve_sampled(
    m: &TransformerModel,
    backend: &dyn pdac_nn::GemmBackend,
) -> (Vec<pdac_serve::Completion>, SentinelStats) {
    let handle = Sentinel::install(SentinelConfig {
        rate: 1.0,
        ..SentinelConfig::default()
    });
    let mut server = TokenServer::new(m, 2);
    for (id, (p, n)) in [(3usize, 4usize), (1, 3), (5, 4)].into_iter().enumerate() {
        server.admit(Request {
            id: id as u64,
            prompt: prompt_rows(m, p, 20 + id as u64),
            max_new_tokens: n,
        });
    }
    server.run(backend);
    let stats = handle.finish();
    let mut done = server.take_completions();
    done.sort_by_key(|c| c.id);
    (done, stats)
}

#[test]
fn clean_run_stays_green_and_serves_identical_bits() {
    let _guard = test_guard();
    health::reset();
    pdac_telemetry::enable();
    let m = model();
    let backend = AnalogGemm::new(pdac8(), "pdac8");

    // Reference run without any sentinel installed.
    let mut server = TokenServer::new(&m, 2);
    for (id, (p, n)) in [(3usize, 4usize), (1, 3), (5, 4)].into_iter().enumerate() {
        server.admit(Request {
            id: id as u64,
            prompt: prompt_rows(&m, p, 20 + id as u64),
            max_new_tokens: n,
        });
    }
    server.run(&backend);
    let mut plain = server.take_completions();
    plain.sort_by_key(|c| c.id);

    let (sampled, stats) = serve_sampled(&m, &backend);
    assert!(stats.sampled > 0, "full-rate sentinel sampled nothing");
    assert_eq!(stats.scored + stats.dropped, stats.sampled);
    assert_eq!(
        stats.alerts, 0,
        "clean pdac8 serve must stay green: {stats:?}"
    );
    assert!(
        stats.worst_frac < SentinelConfig::default().warn_frac,
        "{stats:?}"
    );
    assert_eq!(health::status(), pdac_telemetry::HealthStatus::Ok);
    assert_eq!(health::ledger().raised(), 0);

    // Shadow sampling observes completed results only: served bits are
    // identical with and without the tap.
    assert_eq!(plain.len(), sampled.len());
    for (a, b) in plain.iter().zip(&sampled) {
        assert_eq!(a.hidden, b.hidden, "sentinel changed served bits");
    }
    health::reset();
}

#[test]
fn every_fault_class_trips_a_critical_alert() {
    let _guard = test_guard();
    pdac_telemetry::enable();
    let m = model();
    let cases: [(&str, FaultSpec); 5] = [
        ("pdac8-tia", FaultSpec::none().with_tia_gain_drift(0.5)),
        ("pdac8-dark", FaultSpec::none().with_dark_current_ratio(0.5)),
        ("pdac8-droop", FaultSpec::none().with_laser_droop(0.4)),
        (
            "pdac8-stuck",
            FaultSpec::none().with_slot_fault(SlotFault::StuckOn(1)),
        ),
        (
            "pdac8-flipped",
            FaultSpec::none().with_slot_fault(SlotFault::Flipped(1)),
        ),
    ];
    for (name, spec) in cases {
        health::reset();
        let backend = AnalogGemm::new(FaultyPDac::new(pdac8(), spec), name);
        let before = alert_counter("health.alert.pdac");
        let (_, stats) = serve_sampled(&m, &backend);
        assert!(
            stats.alerts > 0,
            "{name}: fault escaped the sentinel: {stats:?}"
        );
        assert!(
            stats.worst_frac >= SentinelConfig::default().critical_frac,
            "{name}: {stats:?}"
        );
        assert!(health::critical_latched(), "{name}: ledger did not latch");
        assert_eq!(health::status(), pdac_telemetry::HealthStatus::Critical);
        // The class counter moved and the ledger names the faulty
        // backend at critical severity.
        assert!(alert_counter("health.alert.pdac") > before, "{name}");
        assert!(
            health::ledger()
                .alerts()
                .iter()
                .any(|a| a.backend == name && a.severity == Severity::Critical),
            "{name}: no critical ledger record"
        );
    }
    health::reset();
}

#[test]
fn failover_reroutes_steps_once_critical_latches() {
    let _guard = test_guard();
    health::reset();
    pdac_telemetry::enable();
    let m = model();
    std::env::set_var("PDAC_SENTINEL_FAILOVER", "1");
    let mut server = TokenServer::new(&m, 2);
    std::env::remove_var("PDAC_SENTINEL_FAILOVER");
    server.admit(Request {
        id: 0,
        prompt: prompt_rows(&m, 2, 42),
        max_new_tokens: 4,
    });
    let backend = AnalogGemm::new(pdac8(), "pdac8");
    // Healthy: steps run on the analog backend.
    let _ = server.step(&backend);
    assert_eq!(server.failover_steps(), 0);
    // Latch critical (as the sentinel worker would) and the very next
    // step reroutes to the exact backend.
    health::raise(Severity::Critical, "pdac8", "matmul", 0.5, 0.15);
    assert!(pdac_telemetry::health_critical());
    server.run(&backend);
    assert!(server.failover_steps() > 0, "no steps rerouted after latch");
    assert_eq!(server.take_completions().len(), 1);
    health::reset();

    // Without the opt-in env the latch never reroutes.
    health::raise(Severity::Critical, "pdac8", "matmul", 0.5, 0.15);
    let mut unarmed = TokenServer::new(&m, 2);
    unarmed.admit(Request {
        id: 0,
        prompt: prompt_rows(&m, 1, 43),
        max_new_tokens: 2,
    });
    unarmed.run(&ExactGemm);
    assert_eq!(unarmed.failover_steps(), 0);
    health::reset();
}

fn alert_counter(name: &str) -> u64 {
    pdac_telemetry::snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |&(_, v)| v)
}
