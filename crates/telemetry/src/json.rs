//! Hand-rolled JSON value tree, serializer and minimal parser.
//!
//! The workspace builds fully offline with zero registry dependencies, so
//! there is no serde. Snapshots are small and flat; this module covers
//! exactly what the sinks need: objects, arrays, strings, bools, null,
//! unsigned integers (exact) and finite floats.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Exact unsigned integer (counters can exceed 2^53).
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` of f64 is shortest round-trippable decimal.
                    let _ = write!(out, "{v:?}");
                } else {
                    // JSON has no inf/NaN; degrade to null.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub at: usize,
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a single JSON document (used by the round-trip tests and any
/// downstream consumer of the JSONL sink).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            msg: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError {
            at: *pos,
            msg: "unexpected character",
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError {
            at: *pos,
            msg: "unexpected end of input",
        }),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            msg: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            msg: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError {
            at: *pos,
            msg: "invalid literal",
        })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseError {
                    at: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(ParseError {
                            at: *pos,
                            msg: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| ParseError {
                            at: *pos,
                            msg: "bad \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                            at: *pos,
                            msg: "bad \\u escape",
                        })?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            msg: "bad escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| ParseError {
                    at: *pos,
                    msg: "invalid utf-8",
                })?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(ParseError {
            at: start,
            msg: "expected number",
        });
    }
    if !float && !text.starts_with('-') {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
        at: start,
        msg: "invalid number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_then_parse_round_trips() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("a \"b\"\n\tc\\".into())),
            ("count".into(), Json::Int(u64::MAX)),
            ("x".into(), Json::Num(0.1 + 0.2)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::Int(1), Json::Num(-2.5), Json::Str("é".into())]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("{} extra").is_err());
    }
}
