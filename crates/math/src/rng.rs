//! Small deterministic PRNG for tests, examples and Monte-Carlo studies.
//!
//! The workspace builds fully offline, so we cannot depend on the `rand`
//! crate. [`SplitMix64`] (Steele, Lea & Flood, 2014) is a tiny, well-mixed
//! 64-bit generator: a Weyl sequence with a two-round finalizer. It is not
//! cryptographic, but it passes BigCrush and is more than adequate for
//! seeding simulations and randomized property tests.

/// SplitMix64 pseudo-random generator.
///
/// The API mirrors the subset of `rand` the workspace used to rely on, so
/// call sites read the same (`seed_from_u64`, `gen_bool`, range helpers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Distinct seeds yield
    /// uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the *open* interval `(0, 1)`; safe for `ln()`.
    pub fn open01(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. Panics if `lo >= hi` or either is
    /// non-finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform integer in the *inclusive* range `[lo, hi]`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "bad range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // far below what any test here can resolve.
        let x = self.next_u64() as u128;
        (lo as i128 + ((x * span) >> 64) as i128) as i64
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_i64(lo as i64, hi as i64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Standard normal via Box-Muller (one draw per call; the paired
    /// variate is discarded to keep the generator stateless beyond `state`).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.open01();
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_matches_splitmix64() {
        // First outputs for seed 1234567 from the published reference
        // implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        let mut again = SplitMix64::seed_from_u64(1234567);
        assert_eq!(again.next_u64(), a);
        assert_eq!(again.next_u64(), b);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.open01();
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn range_draws_stay_inside() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range_f64(-3.0, 2.5);
            assert!((-3.0..2.5).contains(&x));
            let k = rng.gen_range_i64(-7, 7);
            assert!((-7..=7).contains(&k));
        }
    }

    #[test]
    fn integer_range_hits_both_endpoints() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range_i64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.standard_normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }
}
