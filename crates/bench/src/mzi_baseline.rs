//! MZI-array PTC vs dynamically-operated DDot (paper Sec. II-A3).
//!
//! The paper's background motivates Lightening-Transformer — and hence
//! the P-DAC — by the MZI mesh's offline mapping cost: "mapping a 12×12
//! matrix takes approximately 1.5 ms for conducting SVD and phase
//! decomposition", while transformers generate Q/K/V operands *at
//! runtime*. This module quantifies the asymmetry: per-operand
//! reprogramming latency of the mesh vs the single 5 GHz modulation cycle
//! the DDot path needs, and verifies both compute the same numerics.

use pdac_math::Mat;
use pdac_photonics::mzi_mesh::{MappingCostModel, MziMeshPtc};
use pdac_power::ArchConfig;

/// One row of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingRow {
    /// Matrix dimension.
    pub n: usize,
    /// MZI-mesh reprogramming latency, seconds.
    pub mesh_mapping_s: f64,
    /// DDot operand-load latency, seconds (one modulation cycle).
    pub ddot_mapping_s: f64,
    /// Ratio mesh / DDot.
    pub ratio: f64,
}

/// Builds the latency comparison for the given dimensions.
pub fn mapping_comparison(dims: &[usize]) -> Vec<MappingRow> {
    let model = MappingCostModel::calibrated();
    let arch = ArchConfig::lt_b();
    let ddot_cycle = 1.0 / arch.clock_hz;
    dims.iter()
        .map(|&n| {
            let mesh = model.mapping_seconds(n);
            MappingRow {
                n,
                mesh_mapping_s: mesh,
                ddot_mapping_s: ddot_cycle,
                ratio: mesh / ddot_cycle,
            }
        })
        .collect()
}

/// Renders the baseline-comparison report, including a functional
/// cross-check that the programmed mesh and an exact matvec agree.
pub fn report() -> String {
    let mut out = String::from(
        "MZI-mesh PTC vs dynamically-operated DDot (paper Sec. II-A3)\n\
         =============================================================\n\n\
         Operand (re)programming latency per matrix:\n\
         \n    n     MZI mesh      DDot load     ratio\n",
    );
    for row in mapping_comparison(&[4, 8, 12, 16, 32, 64]) {
        out.push_str(&format!(
            "  {:>3}   {:>9.3} ms   {:>8.3} ns   {:>9.2e}\n",
            row.n,
            row.mesh_mapping_s * 1e3,
            row.ddot_mapping_s * 1e9,
            row.ratio
        ));
    }
    out.push_str(
        "\n(the paper quotes ~1.5 ms for n = 12; the DDot path re-modulates\n\
         operands every 5 GHz cycle, which is why dynamic Q/K/V matmuls are\n\
         infeasible on SVD meshes)\n",
    );

    // Functional cross-check at n = 12.
    let n = 12;
    let w = Mat::from_fn(n, n, |r, c| (((r * 7 + c * 3) % 11) as f64 / 11.0) - 0.5);
    let ptc = MziMeshPtc::program(&w).expect("square matrix");
    let x: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) - 0.4).collect();
    let want = w.matvec(&x).expect("length matches");
    let got = ptc.matvec(&x);
    let err: f64 = want
        .iter()
        .zip(&got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    out.push_str(&format!(
        "\nfunctional check (n = {n}): programmed mesh reproduces W·x with \
         max |err| = {err:.2e} using {} MZIs\n",
        ptc.mzi_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quote_at_n_12() {
        let rows = mapping_comparison(&[12]);
        let t = rows[0].mesh_mapping_s;
        assert!((t - 1.5e-3).abs() / 1.5e-3 < 0.15, "t = {t}");
    }

    #[test]
    fn mesh_is_many_orders_slower_to_program() {
        for row in mapping_comparison(&[8, 12, 32]) {
            assert!(row.ratio > 1e5, "n={}: ratio {}", row.n, row.ratio);
        }
    }

    #[test]
    fn ratio_grows_with_dimension() {
        let rows = mapping_comparison(&[4, 8, 16, 32]);
        for pair in rows.windows(2) {
            assert!(pair[1].ratio > pair[0].ratio);
        }
    }

    #[test]
    fn report_includes_functional_check() {
        let r = report();
        assert!(r.contains("1.5 ms"));
        assert!(r.contains("functional check"));
        assert!(r.contains("MZIs"));
    }
}
