#![warn(missing_docs)]

//! Transformer workload substrate for the P-DAC evaluation.
//!
//! The paper evaluates on BERT-base (sequence length 128) and DeiT
//! (ImageNet1K 224×224, 197 tokens). This crate provides everything the
//! evaluation needs from the model side:
//!
//! * [`ops`] — softmax, layer norm, GELU and residual ops on
//!   [`pdac_math::Mat`] activations;
//! * [`quant`] — per-tensor symmetric quantization of activations and
//!   weights onto the converter code grid;
//! * [`prepared`] — pre-converted operands and the [`prepared::WeightCache`]
//!   memo that lets a GEMM backend quantize+convert a weight matrix once
//!   and reuse it across every decode step;
//! * [`gemm`] — pluggable GEMM backends: exact `f64`, and an analog
//!   backend that pushes every operand through an
//!   [`pdac_core::MzmDriver`] (P-DAC or electrical DAC) before the —
//!   physically exact — photonic dot product;
//! * [`config`] — model shape descriptions ([`config::TransformerConfig::bert_base`],
//!   [`config::TransformerConfig::deit_base`]);
//! * [`workload`] — op-trace generation: exact MAC counts, bytes moved
//!   and element-wise op counts per class, consumed by `pdac-power`'s
//!   energy model to regenerate Figs. 9/10;
//! * [`inference`] — a functional encoder forward pass with seeded random
//!   weights, used to validate the paper's claim that LLM inference
//!   tolerates the P-DAC's bounded analog error;
//! * [`batch`] — the batched decode engine: [`batch::BatchedKvCache`] +
//!   [`TransformerModel::decode_batch`] advance S sequences per step
//!   through one stacked activation matrix (weights stream through the
//!   converters once per step, attention stays per-sequence), row-for-row
//!   bit-identical to S independent `decode_step` calls;
//! * [`paged`] — the paged KV cache: fixed-size token blocks behind
//!   per-slot page tables with refcounts + copy-on-write, hash-consed
//!   prefix sharing, and an LRU-evicting byte budget
//!   (`PDAC_KV_BUDGET_BYTES`) — a drop-in for [`batch::BatchedKvCache`]
//!   via [`TransformerModel::decode_batch_paged`], preserving the same
//!   bit-identity contract.
//!
//! # Examples
//!
//! ```
//! use pdac_nn::config::TransformerConfig;
//!
//! let bert = TransformerConfig::bert_base();
//! let trace = pdac_nn::workload::op_trace(&bert);
//! assert!(trace.total_macs() > 10_000_000_000); // ~11.2 G MACs
//! ```

pub mod accuracy;
pub mod batch;
pub mod config;
pub mod gemm;
pub mod generative;
pub mod inference;
pub mod ops;
pub mod paged;
pub mod prepared;
pub mod quant;
pub mod tap;
pub mod workload;

pub use batch::{BatchedKvCache, DecodeScratch};
pub use config::TransformerConfig;
pub use gemm::{AnalogGemm, AsymmetricGemm, ExactGemm, GemmBackend};
pub use inference::{KvCache, TransformerModel};
pub use paged::{prefix_block_hashes, KvStats, PageAllocator, PageId, PagedConfig, PagedKvCache};
pub use prepared::{PreparedOperand, WeightCache};
