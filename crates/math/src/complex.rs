//! Complex arithmetic for optical field amplitudes.
//!
//! Optical fields carry both amplitude and phase (paper Sec. II-A3), so
//! every photonic device model in `pdac-photonics` operates on complex
//! numbers. This module provides a small, dependency-free `f64` complex
//! type with the operations those models need: polar construction,
//! conjugation, exponentials and the usual ring operations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use pdac_math::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// assert_eq!(a + b, Complex64::new(4.0, 1.0));
/// assert_eq!(a * b, Complex64::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * e^{jθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pdac_math::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — a unit phasor. This is the phase-shifter transfer factor
    /// of paper Eq. 4.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`. Optical intensity is proportional to this
    /// quantity (`I ∝ ½|E|²`).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `z == 0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance on both components.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn constructors_and_accessors() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(Complex64::from_re(2.0), Complex64::new(2.0, 0.0));
        assert_eq!(Complex64::from(2.5).re, 2.5);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let theta = -PI + (k as f64) * (2.0 * PI / 16.0) + 1e-3;
            let z = Complex64::cis(theta);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 3.25);
        assert!((a + b - b).approx_eq(a, 1e-12));
        assert!((a * b / b).approx_eq(a, 1e-12));
        assert!((a * a.recip()).approx_eq(Complex64::ONE, 1e-12));
        assert_eq!(-a, Complex64::new(-1.5, 2.0));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a.conj().conj(), a);
        let prod = a * a.conj();
        assert!((prod.re - a.norm_sqr()).abs() < 1e-12);
        assert!(prod.im.abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex64::I * Complex64::I).approx_eq(Complex64::new(-1.0, 0.0), 1e-15));
    }

    #[test]
    fn exp_of_j_pi_over_2() {
        let z = Complex64::new(0.0, FRAC_PI_2).exp();
        assert!(z.approx_eq(Complex64::I, 1e-12));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::ONE;
        z += Complex64::I;
        z -= Complex64::ONE;
        z *= Complex64::new(0.0, 1.0);
        assert!(z.approx_eq(Complex64::new(-1.0, 0.0), 1e-12));
        z /= Complex64::new(0.0, 1.0);
        assert!(z.approx_eq(Complex64::I, 1e-12));
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // Full-circle phasor sum is zero: destructive interference.
        let n = 8;
        let total: Complex64 = (0..n)
            .map(|k| Complex64::cis(2.0 * PI * k as f64 / n as f64))
            .sum();
        assert!(total.approx_eq(Complex64::ZERO, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn scalar_ops() {
        let z = Complex64::new(1.0, -1.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, -2.0));
        assert_eq!(2.0 * z, Complex64::new(2.0, -2.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, -0.5));
    }
}
