//! Microbenches of the fast GEMM engine: tuned kernels vs the reference
//! triple loop, and the analog pipeline with/without the converter LUT
//! and the weight-conversion cache.
//!
//! Emits `BENCH_gemm.json` (override the path with `PDAC_BENCH_OUT`)
//! with per-variant throughput and the speedup of the full fast path
//! over the seed scalar path. Knobs: `PDAC_BENCH_MS` (wall-clock budget
//! per bench), `PDAC_BENCH_MAX_DIM` (largest cube; default 512).

use pdac_bench::microbench::{bench, black_box, BenchResult};
use pdac_core::converter::MzmDriver;
use pdac_core::ideal::IdealDac;
use pdac_core::lut::ConverterLut;
use pdac_core::pdac::PDac;
use pdac_math::gemm::default_threads;
use pdac_math::rng::SplitMix64;
use pdac_math::Mat;
use pdac_nn::gemm::{AnalogGemm, GemmBackend};
use pdac_nn::quant::QuantizedMat;
use pdac_telemetry::Json;

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = SplitMix64::seed_from_u64(seed);
    Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-1.0, 1.0))
}

/// One measured variant at one size, with derived throughput.
fn record(size: usize, result: &BenchResult) -> Json {
    let macs = (size * size * size) as f64;
    Json::Obj(vec![
        ("name".into(), Json::Str(result.name.clone())),
        ("size".into(), Json::Int(size as u64)),
        ("iters".into(), Json::Int(result.iters)),
        ("mean_ns".into(), Json::Num(result.mean_ns)),
        ("min_ns".into(), Json::Num(result.min_ns)),
        (
            "gmacs_per_s".into(),
            Json::Num(macs / result.mean_ns.max(1.0)),
        ),
    ])
}

fn main() {
    let max_dim = std::env::var("PDAC_BENCH_MAX_DIM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(512);
    let bits = 8;
    let driver = PDac::with_optimal_approx(bits).unwrap();
    let lut = ConverterLut::new(&driver);

    let mut records = Vec::new();
    let mut speedups = Vec::new();
    for size in [64usize, 256, 512] {
        if size > max_dim {
            println!("gemm_engine: skipping {size}^3 (PDAC_BENCH_MAX_DIM={max_dim})");
            continue;
        }
        let a = random_mat(size, size, 2 * size as u64);
        let b = random_mat(size, size, 2 * size as u64 + 1);

        let exact_naive = bench(&format!("gemm_engine/{size}/exact_naive"), || {
            black_box(&a).matmul_reference(black_box(&b)).unwrap()
        });
        let exact_fast = bench(&format!("gemm_engine/{size}/exact_fast"), || {
            black_box(&a).matmul(black_box(&b)).unwrap()
        });

        // The seed analog path, spelled out: per-element scalar driver
        // conversion of both operands on every call, reference matmul.
        // (Today's `dequantize_with` tabulates large slices, so the
        // pre-LUT behaviour has to be reproduced explicitly here.)
        let seed_dequantize = |x: &Mat| {
            let q = QuantizedMat::quantize(x, bits);
            let data: Vec<f64> = q
                .codes()
                .iter()
                .map(|&c| q.scale() * driver.convert(c))
                .collect();
            Mat::from_rows(x.rows(), x.cols(), data).unwrap()
        };
        let analog_seed = bench(&format!("gemm_engine/{size}/analog_seed"), || {
            let aq = seed_dequantize(black_box(&a));
            let bq = seed_dequantize(black_box(&b));
            aq.matmul_reference(&bq).unwrap()
        });
        // LUT conversion, no weight reuse.
        let analog_lut = bench(&format!("gemm_engine/{size}/analog_lut"), || {
            let aq = QuantizedMat::quantize(black_box(&a), bits).dequantize_with(&lut);
            let bq = QuantizedMat::quantize(black_box(&b), bits).dequantize_with(&lut);
            aq.matmul(&bq).unwrap()
        });
        // The full fast path: LUT + cached weight conversion.
        let backend = AnalogGemm::new(driver.clone(), "pdac8");
        let analog_cached = bench(&format!("gemm_engine/{size}/analog_lut_cache"), || {
            backend.matmul(black_box(&a), black_box(&b))
        });
        // The exact integer route: code-linear ideal driver, i8×i8→i32
        // kernel against memoized packed code panels, dequantize at end.
        let int8_backend = AnalogGemm::new(IdealDac::new(bits).unwrap(), "ideal8");
        let analog_int8 = bench(&format!("gemm_engine/{size}/analog_int8"), || {
            int8_backend.matmul(black_box(&a), black_box(&b))
        });
        // The product-LUT gather route, forced on: bit-identical to the
        // P-DAC f64 pipeline, streaming byte codes. Recorded for the
        // memory-bound comparison; not expected to win at compute-bound
        // cube shapes, so it carries no gated ratio.
        let lut_backend = AnalogGemm::new(driver.clone(), "pdac8lut").with_product_lut_floor(0);
        let analog_int8_lut = bench(&format!("gemm_engine/{size}/analog_int8_lut"), || {
            lut_backend.matmul(black_box(&a), black_box(&b))
        });

        let fast_over_naive = exact_naive.mean_ns / exact_fast.mean_ns.max(1.0);
        let analog_over_seed = analog_seed.mean_ns / analog_cached.mean_ns.max(1.0);
        let int8_over_cache = analog_cached.mean_ns / analog_int8.mean_ns.max(1.0);
        println!(
            "gemm_engine/{size}: exact fast/naive {fast_over_naive:.2}x, \
             analog lut+cache/seed {analog_over_seed:.2}x, \
             int8/lut_cache {int8_over_cache:.2}x \
             (cache hits {}, misses {})",
            backend.cache().hits(),
            backend.cache().misses(),
        );
        // The headline claim of the integer engine, asserted where it is
        // measured: ≥2× over the analog LUT+cache f64 path at 256³.
        if size == 256 {
            assert!(
                int8_over_cache >= 2.0,
                "integer route regressed: {int8_over_cache:.2}x < 2x over analog_lut_cache at 256^3"
            );
        }
        for r in [
            &exact_naive,
            &exact_fast,
            &analog_seed,
            &analog_lut,
            &analog_cached,
            &analog_int8,
            &analog_int8_lut,
        ] {
            records.push(record(size, r));
        }
        let speedup = Json::Obj(vec![
            ("size".into(), Json::Int(size as u64)),
            ("exact_fast_over_naive".into(), Json::Num(fast_over_naive)),
            (
                "analog_lut_cache_over_seed".into(),
                Json::Num(analog_over_seed),
            ),
            (
                "analog_lut_over_seed".into(),
                Json::Num(analog_seed.mean_ns / analog_lut.mean_ns.max(1.0)),
            ),
            (
                "analog_int8_over_lut_cache".into(),
                Json::Num(int8_over_cache),
            ),
        ]);
        // Also into `results`, where the bench-gate step looks for the
        // machine-relative `_over_` ratios (the raw timing records carry
        // run-varying identity fields like `iters`, so only these
        // per-size ratio records are cross-run comparable).
        records.push(speedup.clone());
        speedups.push(speedup);
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("gemm_engine".into())),
        ("driver".into(), Json::Str("pdac".into())),
        ("bits".into(), Json::Int(u64::from(bits))),
        ("threads".into(), Json::Int(default_threads() as u64)),
        ("results".into(), Json::Arr(records)),
        ("speedups".into(), Json::Arr(speedups)),
    ]);
    let out_path = std::env::var("PDAC_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json").into());
    std::fs::write(&out_path, doc.render() + "\n").expect("write bench json");
    println!("gemm_engine: wrote {out_path}");
}
