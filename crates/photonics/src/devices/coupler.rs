//! Directional coupler.
//!
//! Couples light of the same wavelength between two adjacent waveguides
//! (paper Eq. 5). The 2×2 transfer matrix is
//!
//! ```text
//! ( t        j√(1−t²) )
//! ( j√(1−t²)        t )
//! ```
//!
//! with transmission coefficient `t`. A 50:50 coupler (`t = 1/√2`) is the
//! combining element of the DDot unit.

use pdac_math::{CMat, Complex64};

/// A 2×2 directional coupler with transmission coefficient `t ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use pdac_photonics::DirectionalCoupler;
/// use pdac_math::Complex64;
///
/// let dc = DirectionalCoupler::fifty_fifty();
/// let (top, bottom) = dc.couple(Complex64::ONE, Complex64::ZERO);
/// // Power splits evenly between outputs.
/// assert!((top.norm_sqr() - 0.5).abs() < 1e-12);
/// assert!((bottom.norm_sqr() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionalCoupler {
    t: f64,
}

impl DirectionalCoupler {
    /// Creates a coupler with transmission coefficient `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0, 1]`.
    pub fn new(t: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&t),
            "transmission coefficient must lie in [0, 1]"
        );
        Self { t }
    }

    /// The 50:50 coupler (`t = 1/√2`) used in DDot.
    pub fn fifty_fifty() -> Self {
        Self::new(std::f64::consts::FRAC_1_SQRT_2)
    }

    /// Transmission coefficient.
    pub fn t(&self) -> f64 {
        self.t
    }

    /// Cross-coupling coefficient `√(1−t²)`.
    pub fn kappa(&self) -> f64 {
        (1.0 - self.t * self.t).sqrt()
    }

    /// The transfer matrix of paper Eq. 5.
    pub fn transfer(&self) -> CMat {
        let jk = Complex64::I.scale(self.kappa());
        CMat::from_rows(
            2,
            2,
            vec![
                Complex64::from_re(self.t),
                jk,
                jk,
                Complex64::from_re(self.t),
            ],
        )
        .expect("2x2 literal")
    }

    /// Couples the fields on the two input ports, returning
    /// `(top_out, bottom_out)`.
    pub fn couple(&self, top: Complex64, bottom: Complex64) -> (Complex64, Complex64) {
        let jk = Complex64::I.scale(self.kappa());
        (
            top.scale(self.t) + bottom * jk,
            top * jk + bottom.scale(self.t),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_unitary_for_any_t() {
        for &t in &[0.0, 0.25, std::f64::consts::FRAC_1_SQRT_2, 0.9, 1.0] {
            let dc = DirectionalCoupler::new(t);
            assert!(dc.transfer().is_unitary(1e-12), "t={t}");
        }
    }

    #[test]
    fn energy_conserved_in_couple() {
        let dc = DirectionalCoupler::new(0.6);
        let a = Complex64::new(0.3, -0.4);
        let b = Complex64::new(-1.1, 0.2);
        let (o1, o2) = dc.couple(a, b);
        let pin = a.norm_sqr() + b.norm_sqr();
        let pout = o1.norm_sqr() + o2.norm_sqr();
        assert!((pin - pout).abs() < 1e-12);
    }

    #[test]
    fn full_transmission_is_identity() {
        let dc = DirectionalCoupler::new(1.0);
        let (o1, o2) = dc.couple(Complex64::ONE, Complex64::I);
        assert!(o1.approx_eq(Complex64::ONE, 1e-12));
        assert!(o2.approx_eq(Complex64::I, 1e-12));
    }

    #[test]
    fn full_coupling_swaps_with_j() {
        let dc = DirectionalCoupler::new(0.0);
        let (o1, o2) = dc.couple(Complex64::ONE, Complex64::ZERO);
        assert!(o1.approx_eq(Complex64::ZERO, 1e-12));
        assert!(o2.approx_eq(Complex64::I, 1e-12));
    }

    #[test]
    fn ddot_sum_difference_structure() {
        // Paper's DDot derivation: DC(1/√2) after a −90° shift on y gives
        // outputs ∝ (x+y, j(x−y)).
        let dc = DirectionalCoupler::fifty_fifty();
        let x = Complex64::from_re(0.8);
        let y = Complex64::from_re(-0.35);
        let y_shifted = y * Complex64::cis(-std::f64::consts::FRAC_PI_2); // −jy
        let (o1, o2) = dc.couple(x, y_shifted);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        // o1 = (x + j(−jy))/√2 = (x + y)/√2
        assert!(o1.approx_eq(Complex64::from_re(s * (0.8 - 0.35)), 1e-12));
        // o2 = (jx + (−jy))/√2 = j(x − y)/√2
        assert!(o2.approx_eq(Complex64::new(0.0, s * (0.8 + 0.35)), 1e-12));
    }

    #[test]
    fn couple_matches_transfer_matvec() {
        let dc = DirectionalCoupler::new(0.42);
        let a = Complex64::new(0.1, 0.9);
        let b = Complex64::new(-0.5, 0.5);
        let (o1, o2) = dc.couple(a, b);
        let v = dc.transfer().matvec(&[a, b]).unwrap();
        assert!(o1.approx_eq(v[0], 1e-12));
        assert!(o2.approx_eq(v[1], 1e-12));
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn rejects_out_of_range_t() {
        DirectionalCoupler::new(1.2);
    }
}
