//! Ablation: power savings across bit precisions (extends Figs. 5/11).
fn main() {
    print!("{}", pdac_bench::ablations::bit_sweep_report());
}
