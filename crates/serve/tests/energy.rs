//! The server's per-request energy ledger and load-shed hook.
//!
//! Lives in its own integration-test process because the energy meter is
//! a process-global ambient: installing one while the lib tests decode
//! in parallel would corrupt both sides' expectations.

use pdac_nn::{ExactGemm, TransformerConfig, TransformerModel};
use pdac_power::meter::EnergyMeter;
use pdac_power::model::{DriverKind, PowerModel};
use pdac_power::{ArchConfig, EnergyModel, OpClass, TechParams};
use pdac_serve::{Request, TokenServer};

fn model() -> TransformerModel {
    TransformerModel::random(TransformerConfig::tiny(), 4, 7)
}

fn prompt_rows(m: &TransformerModel, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            (0..m.config().hidden)
                .map(|_| rng.gen_range_f64(-1.0, 1.0))
                .collect()
        })
        .collect()
}

fn pdac_meter() -> EnergyMeter {
    let pm = PowerModel::new(
        ArchConfig::lt_b(),
        TechParams::calibrated(),
        DriverKind::PhotonicDac,
    );
    EnergyMeter::new(EnergyModel::new(pm), 8)
}

fn serve_all(m: &TransformerModel, max_batch: usize) -> (Vec<pdac_serve::Completion>, f64, f64) {
    let mut server = TokenServer::new(m, max_batch);
    for (id, (p, n)) in [(2usize, 3usize), (0, 2), (4, 4)].into_iter().enumerate() {
        server.admit(Request {
            id: id as u64,
            prompt: prompt_rows(m, p, 10 + id as u64),
            max_new_tokens: n,
        });
    }
    server.run(&ExactGemm);
    let total = server.total_energy_j();
    let per_tok = server.joules_per_token();
    let mut done = server.take_completions();
    done.sort_by_key(|c| c.id);
    (done, total, per_tok)
}

// Global-meter tests share one process-wide slot; a single #[test] keeps
// them from interleaving across test threads.
#[test]
fn energy_ledger_and_load_shed() {
    let m = model();

    // Without a meter the ledger stays silent.
    let (plain, total, per_tok) = serve_all(&m, 2);
    assert_eq!(total, 0.0);
    assert_eq!(per_tok, 0.0);
    assert!(plain.iter().all(|c| c.energy_j == 0.0));

    // With a meter: same bits, a positive ledger that adds up.
    let handle = pdac_power::meter::install(pdac_meter());
    let (metered, total, per_tok) = serve_all(&m, 2);
    pdac_power::meter::uninstall();
    for (a, b) in plain.iter().zip(&metered) {
        assert_eq!(a.hidden, b.hidden, "metering changed served bits");
    }
    assert!(total > 0.0);
    assert!(per_tok > 0.0);
    assert!(metered.iter().all(|c| c.energy_j > 0.0));
    let sum: f64 = metered.iter().map(|c| c.energy_j).sum();
    assert!(
        (sum - total).abs() <= 1e-12 * total,
        "per-request energy {sum} != server total {total}"
    );
    // Every request retired, so the whole metered total was attributed;
    // the meter itself saw at least that much activity.
    assert!(handle.snapshot().total_j() >= total);

    // Load shed: latch the budget while a batch is in flight and new
    // admissions must wait; clear it and they drain.
    let meter = pdac_power::meter::install(pdac_meter().with_budget_w(Some(1e-12)));
    let mut server = TokenServer::new(&m, 4);
    for id in 0..3 {
        server.admit(Request {
            id,
            prompt: prompt_rows(&m, 1, id),
            max_new_tokens: 3,
        });
    }
    // First step: nothing active yet, so admission proceeds regardless.
    let _ = server.step(&ExactGemm);
    assert_eq!(server.active(), 3);
    // A burst of modeled activity over a tiny budget latches the meter.
    meter.record(OpClass::Ffn, 1_000_000_000, 0, 0);
    meter.flush();
    assert!(meter.over_budget());
    server.admit(Request {
        id: 9,
        prompt: prompt_rows(&m, 1, 9),
        max_new_tokens: 1,
    });
    let shed_before = server.shed_steps();
    let _ = server.step(&ExactGemm);
    assert_eq!(server.shed_steps(), shed_before + 1);
    assert_eq!(server.pending(), 1, "latched budget must defer admission");
    // The in-flight batch keeps draining; once it empties, an idle
    // server admits regardless of the latch (otherwise nothing would
    // ever run to clear it), so the deferred request is still served.
    server.run(&ExactGemm);
    pdac_power::meter::uninstall();
    assert!(server.is_idle());
    assert_eq!(server.take_completions().len(), 4);
}
