//! Maclaurin series machinery for `arccos`.
//!
//! Paper Eq. 14 expands `arccos(r) = π/2 − (r + r³/6 + 3r⁵/40 + …)`; the
//! P-DAC's simplest variant keeps only the first-order term (Eq. 15). This
//! module provides the exact series coefficients to arbitrary order so the
//! reproduction can (a) regenerate the paper's first-order analysis, and
//! (b) quantify how many terms a hypothetical higher-order photonic
//! implementation would need (ablation EXT1).

use std::f64::consts::FRAC_PI_2;

/// Coefficient of `r^(2n+1)` in the Maclaurin series of `arcsin(r)`:
/// `(2n)! / (4^n (n!)² (2n+1))`.
///
/// `arccos(r) = π/2 − arcsin(r)`, so these are exactly the coefficients
/// subtracted in paper Eq. 14 (`n = 0 → 1`, `n = 1 → 1/6`, `n = 2 → 3/40`).
///
/// Computed with a multiplicative recurrence to stay exact in `f64` for the
/// orders of interest.
///
/// # Examples
///
/// ```
/// use pdac_math::series::arcsin_coefficient;
/// assert_eq!(arcsin_coefficient(0), 1.0);
/// assert!((arcsin_coefficient(1) - 1.0 / 6.0).abs() < 1e-15);
/// assert!((arcsin_coefficient(2) - 3.0 / 40.0).abs() < 1e-15);
/// ```
pub fn arcsin_coefficient(n: usize) -> f64 {
    // c_n = binom(2n, n) / (4^n (2n+1));
    // ratio c_{n}/c_{n-1} = (2n-1)(2n) / (4 n²) * (2n-1)/(2n+1)
    //                     = ((2n-1)²) / (2n (2n+1)) ... derive stepwise below.
    let mut central = 1.0; // binom(2k, k) / 4^k
    for k in 1..=n {
        let k = k as f64;
        central *= (2.0 * k - 1.0) / (2.0 * k);
    }
    central / (2.0 * n as f64 + 1.0)
}

/// Evaluates the truncated `arccos` series of paper Eq. 14 with `terms`
/// odd-power terms.
///
/// `terms = 1` reproduces the paper's first-order approximation
/// `π/2 − r` (Eq. 15).
///
/// # Panics
///
/// Panics if `terms == 0`.
///
/// # Examples
///
/// ```
/// use pdac_math::series::arccos_series;
/// // First order: f(1) = pi/2 - 1.
/// let f1 = arccos_series(1.0, 1);
/// assert!((f1 - (std::f64::consts::FRAC_PI_2 - 1.0)).abs() < 1e-15);
/// // Many terms converge to arccos for |r| < 1.
/// let f = arccos_series(0.5, 40);
/// assert!((f - 0.5f64.acos()).abs() < 1e-12);
/// ```
pub fn arccos_series(r: f64, terms: usize) -> f64 {
    assert!(terms > 0, "series needs at least one term");
    let mut sum = 0.0;
    let r2 = r * r;
    let mut power = r;
    let mut central = 1.0;
    for n in 0..terms {
        if n > 0 {
            let k = n as f64;
            central *= (2.0 * k - 1.0) / (2.0 * k);
            power *= r2;
        }
        sum += central / (2.0 * n as f64 + 1.0) * power;
    }
    FRAC_PI_2 - sum
}

/// Worst-case relative reconstruction error of the truncated series over
/// `r ∈ (0, 1]`, sampled at `n` points.
///
/// "Reconstruction error" is the paper's metric: the error of
/// `cos(f(r))` against `r` (what the MZM actually outputs), not the error
/// of `f(r)` against `arccos(r)`.
///
/// # Panics
///
/// Panics if `terms == 0` or `n < 2`.
pub fn series_reconstruction_error(terms: usize, n: usize) -> f64 {
    assert!(n >= 2, "need at least two samples");
    let mut worst: f64 = 0.0;
    for i in 1..=n {
        let r = i as f64 / n as f64;
        let err = ((arccos_series(r, terms).cos() - r) / r).abs();
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_coefficients() {
        assert_eq!(arcsin_coefficient(0), 1.0);
        assert!((arcsin_coefficient(1) - 1.0 / 6.0).abs() < 1e-15);
        assert!((arcsin_coefficient(2) - 3.0 / 40.0).abs() < 1e-15);
        assert!((arcsin_coefficient(3) - 15.0 / 336.0).abs() < 1e-15);
    }

    #[test]
    fn coefficients_decrease() {
        for n in 1..20 {
            assert!(arcsin_coefficient(n) < arcsin_coefficient(n - 1));
        }
    }

    #[test]
    fn first_order_matches_eq15() {
        for r in [-1.0, -0.3, 0.0, 0.5, 1.0] {
            let got = arccos_series(r, 1);
            assert!((got - (std::f64::consts::FRAC_PI_2 - r)).abs() < 1e-15);
        }
    }

    #[test]
    fn series_converges_interior() {
        for &r in &[0.0, 0.1, 0.5, 0.9] {
            let got = arccos_series(r, 200);
            assert!(
                (got - r.acos()).abs() < 1e-6,
                "r={r}: {got} vs {}",
                r.acos()
            );
        }
    }

    #[test]
    fn series_is_odd_symmetric_about_pi_over_2() {
        // arccos(-r) = pi - arccos(r) => series(-r) + series(r) = pi.
        for &r in &[0.2, 0.6, 0.9] {
            let s = arccos_series(r, 50) + arccos_series(-r, 50);
            assert!((s - std::f64::consts::PI).abs() < 1e-12);
        }
    }

    #[test]
    fn first_order_reconstruction_error_is_paper_15_9_percent() {
        // Paper: max error of the first-order cut is ~15.9% at r = ±1.
        let err = series_reconstruction_error(1, 10_000);
        assert!((err - 0.159).abs() < 2e-3, "got {err}");
    }

    #[test]
    fn more_terms_reduce_error() {
        let e1 = series_reconstruction_error(1, 1000);
        let e2 = series_reconstruction_error(2, 1000);
        let e4 = series_reconstruction_error(4, 1000);
        assert!(e2 < e1);
        assert!(e4 < e2);
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn zero_terms_rejected() {
        arccos_series(0.5, 0);
    }
}
