//! Microbenches of accelerator GEMM execution.

use pdac_accel::config::{AccelConfig, DriverChoice};
use pdac_accel::functional::FunctionalGemm;
use pdac_accel::scheduler::{GemmShape, TilingPlan};
use pdac_bench::microbench::{bench, black_box};
use pdac_math::Mat;
use pdac_power::ArchConfig;

fn main() {
    // Analytical planning is cheap: bench at BERT-layer scale.
    let arch = ArchConfig::lt_b();
    bench("gemm/plan_bert_projection", || {
        TilingPlan::plan(black_box(GemmShape::new(128, 768, 768)), &arch)
    });
    // Functional simulation: smaller shapes.
    for (choice, name) in [
        (DriverChoice::ElectricalDac, "edac"),
        (DriverChoice::PhotonicDac, "pdac"),
    ] {
        let config = AccelConfig::new(
            ArchConfig {
                cores: 2,
                rows: 4,
                cols: 4,
                wavelengths: 8,
                clock_hz: 5e9,
            },
            8,
            choice,
        )
        .unwrap();
        let engine = FunctionalGemm::new(config).unwrap();
        let a = Mat::from_fn(16, 32, |r, c| ((r * 7 + c) % 13) as f64 / 13.0 - 0.5);
        let b_mat = Mat::from_fn(32, 16, |r, c| ((r + c * 5) % 11) as f64 / 11.0 - 0.5);
        bench(&format!("gemm/functional_16x32x16/{name}"), || {
            engine.execute(black_box(&a), black_box(&b_mat)).unwrap()
        });
    }
}
