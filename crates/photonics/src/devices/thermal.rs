//! Thermal tuning of micro-ring resonators.
//!
//! MRRs select wavelengths "with precise tuning achieved through
//! temperature adjustments" (paper Fig. 1 discussion). A micro-heater
//! above the ring red-shifts its resonance; holding a shift costs static
//! power, and settling takes microseconds — the numbers behind both the
//! EO interface's energy and the MZI mesh's slow reprogramming.

use crate::devices::mrr::MicroRing;

/// A micro-heater bonded to one ring.
///
/// # Examples
///
/// ```
/// use pdac_photonics::devices::thermal::ThermalTuner;
/// use pdac_photonics::MicroRing;
///
/// let tuner = ThermalTuner::silicon_typical();
/// let ring = MicroRing::new(1550.0, 0.1);
/// let (tuned, power_mw) = tuner.tune_to(&ring, 1550.8)?;
/// assert!((tuned.resonance_nm() - 1550.8).abs() < 1e-12);
/// assert!(power_mw > 0.0);
/// # Ok::<(), pdac_photonics::devices::thermal::TuneError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalTuner {
    /// Resonance shift per unit heater power, nm/mW.
    pub efficiency_nm_per_mw: f64,
    /// Maximum heater power, mW.
    pub max_power_mw: f64,
    /// Thermal settling time constant, seconds.
    pub settling_s: f64,
}

/// Errors from tuning requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TuneError {
    /// The requested shift is a blue-shift (heaters only red-shift).
    BlueShift {
        /// Requested shift in nm (negative).
        shift_nm: f64,
    },
    /// The shift needs more heater power than available.
    OutOfRange {
        /// Power that would be required, mW.
        required_mw: f64,
        /// Heater limit, mW.
        limit_mw: f64,
    },
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::BlueShift { shift_nm } => {
                write!(
                    f,
                    "thermal tuning cannot blue-shift ({shift_nm} nm requested)"
                )
            }
            TuneError::OutOfRange {
                required_mw,
                limit_mw,
            } => {
                write!(
                    f,
                    "shift needs {required_mw} mW, heater limit {limit_mw} mW"
                )
            }
        }
    }
}

impl std::error::Error for TuneError {}

impl ThermalTuner {
    /// Typical silicon micro-heater: 0.25 nm/mW, 30 mW limit, ~4 µs
    /// settling.
    pub fn silicon_typical() -> Self {
        Self {
            efficiency_nm_per_mw: 0.25,
            max_power_mw: 30.0,
            settling_s: 4e-6,
        }
    }

    /// Heater power needed to hold a `shift_nm` red-shift.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] for blue-shifts or shifts past the heater
    /// range.
    pub fn power_for_shift(&self, shift_nm: f64) -> Result<f64, TuneError> {
        if shift_nm < 0.0 {
            return Err(TuneError::BlueShift { shift_nm });
        }
        let required = shift_nm / self.efficiency_nm_per_mw;
        if required > self.max_power_mw {
            return Err(TuneError::OutOfRange {
                required_mw: required,
                limit_mw: self.max_power_mw,
            });
        }
        Ok(required)
    }

    /// Tunes `ring` to `target_nm`, returning the tuned ring and the
    /// holding power in mW.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] when the target is unreachable.
    pub fn tune_to(&self, ring: &MicroRing, target_nm: f64) -> Result<(MicroRing, f64), TuneError> {
        let shift = target_nm - ring.resonance_nm();
        let power = self.power_for_shift(shift)?;
        Ok((ring.tuned_by(shift), power))
    }

    /// Full tuning range in nm.
    pub fn range_nm(&self) -> f64 {
        self.efficiency_nm_per_mw * self.max_power_mw
    }

    /// Static power (W) to hold a bank of `rings` rings at an average
    /// shift of `avg_shift_nm`.
    ///
    /// # Panics
    ///
    /// Panics if `avg_shift_nm` is negative.
    pub fn bank_holding_watts(&self, rings: usize, avg_shift_nm: f64) -> f64 {
        assert!(avg_shift_nm >= 0.0, "average shift must be nonnegative");
        rings as f64 * avg_shift_nm / self.efficiency_nm_per_mw * 1e-3
    }
}

/// Thermal crosstalk between neighbouring heaters on one bus.
///
/// The paper notes that DDot's passive PS/DC have "no issues with
/// thermal crosstalk" — implying the *active* ring banks do. Heat from
/// heater `j` leaks into ring `i` with a coupling that decays
/// geometrically with their separation, detuning rings that wanted to
/// stay put.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalCrosstalk {
    /// Fraction of a neighbour's shift leaked at distance 1.
    pub nearest_coupling: f64,
    /// Additional decay per extra ring of separation.
    pub decay_per_ring: f64,
}

impl ThermalCrosstalk {
    /// Typical dense-bank values: 5% nearest-neighbour leak, 3× decay
    /// per ring.
    pub fn typical() -> Self {
        Self {
            nearest_coupling: 0.05,
            decay_per_ring: 3.0,
        }
    }

    /// Coupling coefficient between rings `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (self-coupling is the heater's own effect).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert_ne!(i, j, "self-coupling is not crosstalk");
        let d = i.abs_diff(j) as u32;
        self.nearest_coupling / self.decay_per_ring.powi(d as i32 - 1)
    }

    /// Actual resonance shifts of a bank given the *commanded* shifts:
    /// each ring receives its own shift plus leakage from every other
    /// heater.
    pub fn realized_shifts(&self, commanded_nm: &[f64]) -> Vec<f64> {
        let n = commanded_nm.len();
        (0..n)
            .map(|i| {
                let leak: f64 = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| self.coupling(i, j) * commanded_nm[j])
                    .sum();
                commanded_nm[i] + leak
            })
            .collect()
    }

    /// Worst detuning error across the bank (realized − commanded).
    pub fn worst_detuning_nm(&self, commanded_nm: &[f64]) -> f64 {
        self.realized_shifts(commanded_nm)
            .iter()
            .zip(commanded_nm)
            .map(|(r, c)| (r - c).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosstalk_decays_with_distance() {
        let x = ThermalCrosstalk::typical();
        assert!((x.coupling(0, 1) - 0.05).abs() < 1e-12);
        assert!((x.coupling(0, 2) - 0.05 / 3.0).abs() < 1e-12);
        assert!(x.coupling(0, 5) < x.coupling(0, 2));
        assert_eq!(x.coupling(3, 4), x.coupling(4, 3));
    }

    #[test]
    fn idle_ring_between_hot_neighbours_detunes() {
        let x = ThermalCrosstalk::typical();
        let realized = x.realized_shifts(&[1.0, 0.0, 1.0]);
        // Middle ring commanded 0 but receives 2 × 5% leakage.
        assert!((realized[1] - 0.10).abs() < 1e-12);
        assert!((x.worst_detuning_nm(&[1.0, 0.0, 1.0]) - 0.10).abs() < 1e-9);
    }

    #[test]
    fn uniform_commands_detune_uniformly() {
        let x = ThermalCrosstalk::typical();
        let realized = x.realized_shifts(&[0.5; 4]);
        for (i, r) in realized.iter().enumerate() {
            assert!(*r > 0.5, "ring {i}: {r}");
        }
        // Inner rings collect more leakage than edge rings.
        assert!(realized[1] > realized[0]);
    }

    #[test]
    fn detuning_can_break_channel_isolation() {
        // A 0.1 nm-FWHM ring detuned by 0.1 nm drops to half power:
        // the link between thermal crosstalk and WDM integrity.
        let x = ThermalCrosstalk::typical();
        let detune = x.worst_detuning_nm(&[1.0, 0.0, 1.0]);
        let ring = MicroRing::new(1550.0, 0.1).tuned_by(detune);
        assert!(ring.drop_power_fraction(1550.0) < 0.6);
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn self_coupling_rejected() {
        ThermalCrosstalk::typical().coupling(2, 2);
    }

    #[test]
    fn power_scales_with_shift() {
        let t = ThermalTuner::silicon_typical();
        let p1 = t.power_for_shift(0.5).unwrap();
        let p2 = t.power_for_shift(1.0).unwrap();
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
        assert!((p1 - 2.0).abs() < 1e-12); // 0.5 nm / 0.25 nm/mW
    }

    #[test]
    fn blue_shift_rejected() {
        let t = ThermalTuner::silicon_typical();
        assert!(matches!(
            t.power_for_shift(-0.1),
            Err(TuneError::BlueShift { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let t = ThermalTuner::silicon_typical();
        // Range is 7.5 nm.
        assert!((t.range_nm() - 7.5).abs() < 1e-12);
        let err = t.power_for_shift(10.0).unwrap_err();
        assert!(matches!(err, TuneError::OutOfRange { .. }));
        assert!(err.to_string().contains("mW"));
    }

    #[test]
    fn tune_to_shifts_ring() {
        let t = ThermalTuner::silicon_typical();
        let ring = MicroRing::new(1550.0, 0.1);
        let (tuned, power) = t.tune_to(&ring, 1551.6).unwrap();
        assert!((tuned.resonance_nm() - 1551.6).abs() < 1e-12);
        assert!((power - 6.4).abs() < 1e-12);
        assert!(tuned.drop_power_fraction(1551.6) > 0.999);
    }

    #[test]
    fn bank_power_accumulates() {
        let t = ThermalTuner::silicon_typical();
        // 1024 rings at 0.4 nm average: 1024 · 1.6 mW = 1.64 W.
        let w = t.bank_holding_watts(1024, 0.4);
        assert!((w - 1.6384).abs() < 1e-9);
    }

    #[test]
    fn zero_shift_is_free() {
        let t = ThermalTuner::silicon_typical();
        assert_eq!(t.power_for_shift(0.0).unwrap(), 0.0);
        assert_eq!(t.bank_holding_watts(100, 0.0), 0.0);
    }
}
