//! Paged vs flat KV cache: memory footprint and throughput of a
//! shared-prefix decode batch.
//!
//! The workload is the serving shape that paging exists for: `BATCH`
//! sequences whose prompts share a long common prefix (75% by default).
//! The flat side decodes every sequence's full prompt through
//! `BatchedKvCache`; the paged side computes the shared prefix **once**,
//! publishes it, and maps it into every slot via `lookup_prefix`, then
//! decodes only the divergent tails. Both sides must produce
//! bit-identical final hidden states — asserted every rep.
//!
//! Emits `BENCH_kv.json` (override with `PDAC_BENCH_OUT`) with two
//! gated ratios per backend:
//!
//! * `flat_bytes_over_paged_bytes` — flat KV bytes over paged backing
//!   bytes (page granularity, shared pages counted once). ≥ 2× at the
//!   default 75%-shared shape, i.e. the paged cache fits in ≤ 0.5× the
//!   flat footprint.
//! * `paged_tps_over_flat` — end-to-end decode throughput ratio at
//!   equal serving work. Prefix reuse skips recompute, so this should
//!   sit ≥ 1; the default-config floor is 0.95 (within 5% of flat).
//!
//! Knobs: `PDAC_BENCH_KV_HIDDEN` / `_LAYERS` / `_HEADS` (default
//! 64/2/4), `_BATCH` (8), `_PROMPT` / `_SHARED` (32/24), `_TOKENS`
//! (generated per sequence, 4), `_BLOCK` (page size in tokens, 4),
//! `_BACKENDS` (`exact,pdac`), `_REPS` (3 — interleaved min-of-reps).

use std::time::Instant;

use pdac_core::pdac::PDac;
use pdac_math::rng::SplitMix64;
use pdac_math::Mat;
use pdac_nn::{
    prefix_block_hashes, AnalogGemm, BatchedKvCache, DecodeScratch, ExactGemm, GemmBackend,
    PagedConfig, PagedKvCache, TransformerConfig, TransformerModel,
};
use pdac_serve::feedback_embedding;
use pdac_telemetry::Json;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Per-step token matrices for `s` sequences sharing the first `shared`
/// prompt positions; divergent tails and per-sequence rows are seeded
/// independently.
fn prompt_tokens(hidden: usize, s: usize, prompt: usize, shared: usize, seed: u64) -> Vec<Mat> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..prompt)
        .map(|t| {
            if t < shared {
                let row: Vec<f64> = (0..hidden).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect();
                Mat::from_fn(s, hidden, |_, c| row[c])
            } else {
                Mat::from_fn(s, hidden, |_, _| rng.gen_range_f64(-1.0, 1.0))
            }
        })
        .collect()
}

/// Feedback rows for the next generated step.
fn feedback_batch(last: &Mat) -> Mat {
    let (s, hidden) = (last.rows(), last.cols());
    let mut data = Vec::with_capacity(s * hidden);
    for r in 0..s {
        data.extend(feedback_embedding(last.row_slice(r)));
    }
    Mat::from_rows(s, hidden, data).expect("feedback batch")
}

/// Full-prompt decode through the flat batched cache; returns elapsed
/// seconds, the final hidden rows, and the flat KV byte footprint.
fn run_flat(
    model: &TransformerModel,
    backend: &dyn GemmBackend,
    prompt: &[Mat],
    gen: usize,
) -> (f64, Mat, usize) {
    let s = prompt[0].rows();
    let hidden = model.config().hidden;
    let layers = model.config().layers;
    let mut cache = BatchedKvCache::new(model, s);
    let start = Instant::now();
    let mut last = model.decode_batch(&prompt[0], &mut cache, backend);
    for tok in &prompt[1..] {
        last = model.decode_batch(tok, &mut cache, backend);
    }
    for _ in 0..gen {
        let next = feedback_batch(&last);
        last = model.decode_batch(&next, &mut cache, backend);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let rows: usize = (0..s).map(|sq| cache.seq(sq).len()).sum();
    let flat_bytes = rows * layers * 2 * hidden * 8;
    (elapsed, last, flat_bytes)
}

/// The same workload through the paged cache with prefix sharing: slot 0
/// decodes the shared prefix once and publishes it, every slot then maps
/// the published pages and decodes only its divergent tail. Returns
/// elapsed seconds, the final hidden rows, and the paged backing bytes.
fn run_paged(
    model: &TransformerModel,
    backend: &dyn GemmBackend,
    prompt: &[Mat],
    shared: usize,
    gen: usize,
    block: usize,
) -> (f64, Mat, usize) {
    let s = prompt[0].rows();
    let hidden = model.config().hidden;
    let mut cache = PagedKvCache::new(model, s, PagedConfig::new(block));
    let mut scratch = DecodeScratch::new();
    let mut got = Mat::zeros(1, 1);
    let shared_rows: Vec<Vec<f64>> = prompt[..shared]
        .iter()
        .map(|t| t.row_slice(0).to_vec())
        .collect();
    let hashes = prefix_block_hashes(shared_rows.iter().map(Vec::as_slice), block);
    let slots: Vec<usize> = (0..s).collect();
    let start = Instant::now();
    // Shared prefix: computed once on slot 0, published, remapped.
    for tok in &prompt[..shared] {
        let one = Mat::from_fn(1, hidden, |_, c| tok.row_slice(0)[c]);
        model.decode_paged_with(&one, &mut cache, &[0], backend, &mut scratch, &mut got);
    }
    cache.publish_prefix(0, &hashes);
    cache.reset_slot(0);
    for &slot in &slots {
        let mapped = cache.lookup_prefix(slot, &hashes);
        assert_eq!(mapped, shared, "published prefix must map fully");
    }
    // Divergent tails + generation, batched across all slots.
    let mut last = Mat::zeros(s, hidden);
    for tok in &prompt[shared..] {
        last = model.decode_batch_paged(tok, &mut cache, backend);
    }
    for _ in 0..gen {
        let next = feedback_batch(&last);
        last = model.decode_batch_paged(&next, &mut cache, backend);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let paged_bytes = cache.allocator().backing_bytes();
    (elapsed, last, paged_bytes)
}

fn main() {
    let hidden = env_usize("PDAC_BENCH_KV_HIDDEN", 64);
    let layers = env_usize("PDAC_BENCH_KV_LAYERS", 2);
    let heads = env_usize("PDAC_BENCH_KV_HEADS", 4);
    let batch = env_usize("PDAC_BENCH_KV_BATCH", 8);
    let prompt_len = env_usize("PDAC_BENCH_KV_PROMPT", 32);
    let shared = env_usize("PDAC_BENCH_KV_SHARED", 24).min(prompt_len);
    let gen = env_usize("PDAC_BENCH_KV_TOKENS", 4);
    let block = env_usize("PDAC_BENCH_KV_BLOCK", 4).max(1);
    let reps = env_usize("PDAC_BENCH_KV_REPS", 3).max(1);
    let backend_names =
        std::env::var("PDAC_BENCH_KV_BACKENDS").unwrap_or_else(|_| "exact,pdac".to_string());
    let default_run = hidden == 64 && prompt_len == 32 && shared == 24 && batch == 8;
    assert!(
        shared.is_multiple_of(block),
        "PDAC_BENCH_KV_SHARED must be a multiple of PDAC_BENCH_KV_BLOCK \
         so the whole prefix is publishable"
    );

    let config = TransformerConfig {
        name: "kv-bench".to_string(),
        layers,
        hidden,
        heads,
        ff_mult: 4,
        seq_len: prompt_len + gen,
    };
    config.validate().expect("valid bench config");
    let model = TransformerModel::random(config, 4, 42);

    let backends: Vec<(&str, Box<dyn GemmBackend>)> = vec![
        ("exact", Box::new(ExactGemm) as Box<dyn GemmBackend>),
        (
            "pdac",
            Box::new(AnalogGemm::new(
                PDac::with_optimal_approx(8).expect("8-bit pdac"),
                "pdac-8b",
            )),
        ),
    ]
    .into_iter()
    .filter(|(label, _)| backend_names.split(',').any(|b| b.trim() == *label))
    .collect();

    let mut records = Vec::new();
    for (label, backend) in &backends {
        let prompt = prompt_tokens(hidden, batch, prompt_len, shared, 42);
        // Both sides serve the same work: batch × (prompt + generated)
        // tokens of completed sequence state.
        let served_tokens = (batch * (prompt_len + gen)) as f64;
        // Warm pass primes the weight caches out of the timed region.
        let _ = run_flat(&model, backend.as_ref(), &prompt, 1.min(gen));
        let _ = run_paged(&model, backend.as_ref(), &prompt, shared, 1.min(gen), block);
        let mut flat_s = f64::INFINITY;
        let mut paged_s = f64::INFINITY;
        let mut flat_bytes = 0usize;
        let mut paged_bytes = 0usize;
        for rep in 0..reps {
            let (run_a, run_b);
            if rep % 2 == 0 {
                run_a = run_flat(&model, backend.as_ref(), &prompt, gen);
                run_b = run_paged(&model, backend.as_ref(), &prompt, shared, gen, block);
            } else {
                run_b = run_paged(&model, backend.as_ref(), &prompt, shared, gen, block);
                run_a = run_flat(&model, backend.as_ref(), &prompt, gen);
            }
            let (fs, flat_last, fb) = run_a;
            let (ps, paged_last, pb) = run_b;
            // Paging must be pure data movement: the shared-prefix run
            // ends on the same bits as the recompute-everything run.
            let diffs = flat_last
                .as_slice()
                .iter()
                .zip(paged_last.as_slice())
                .filter(|(x, y)| x.to_bits() != y.to_bits())
                .count();
            assert_eq!(diffs, 0, "kv_paged/{label}: paged run diverged from flat");
            flat_s = flat_s.min(fs);
            paged_s = paged_s.min(ps);
            flat_bytes = fb;
            paged_bytes = pb;
        }
        let flat_tps = served_tokens / flat_s.max(1e-12);
        let paged_tps = served_tokens / paged_s.max(1e-12);
        let tps_ratio = paged_tps / flat_tps.max(1e-12);
        let bytes_ratio = flat_bytes as f64 / (paged_bytes as f64).max(1.0);
        println!(
            "kv_paged/{label}: flat {flat_tps:>9.1} tok/s / {flat_bytes} B, \
             paged {paged_tps:>9.1} tok/s / {paged_bytes} B, \
             bytes ratio {bytes_ratio:.2}x, tps ratio {tps_ratio:.2}x"
        );
        if default_run {
            assert!(
                bytes_ratio >= 2.0,
                "kv_paged/{label}: paged cache used more than 0.5x the flat \
                 bytes ({bytes_ratio:.2}x reduction, floor 2x)"
            );
            assert!(
                tps_ratio >= 0.95,
                "kv_paged/{label}: paged throughput {tps_ratio:.2}x of flat, \
                 below the 0.95x floor"
            );
        }
        records.push(Json::Obj(vec![
            ("backend".into(), Json::Str((*label).into())),
            ("mode".into(), Json::Str("shared_prefix".into())),
            ("batch".into(), Json::Int(batch as u64)),
            ("prompt".into(), Json::Int(prompt_len as u64)),
            ("shared".into(), Json::Int(shared as u64)),
            ("block".into(), Json::Int(block as u64)),
            ("flat_s".into(), Json::Num(flat_s)),
            ("paged_s".into(), Json::Num(paged_s)),
            // Num, not Int: byte footprints are measurements — keeping
            // them out of the record identity lets allocation-pattern
            // changes gate on the ratio instead of "missing record".
            ("flat_bytes".into(), Json::Num(flat_bytes as f64)),
            ("paged_bytes".into(), Json::Num(paged_bytes as f64)),
            ("flat_tokens_per_s".into(), Json::Num(flat_tps)),
            ("paged_tokens_per_s".into(), Json::Num(paged_tps)),
            ("flat_bytes_over_paged_bytes".into(), Json::Num(bytes_ratio)),
            ("paged_tps_over_flat".into(), Json::Num(tps_ratio)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("kv_paged".into())),
        ("hidden".into(), Json::Int(hidden as u64)),
        ("layers".into(), Json::Int(layers as u64)),
        ("heads".into(), Json::Int(heads as u64)),
        ("generated".into(), Json::Int(gen as u64)),
        ("reps".into(), Json::Int(reps as u64)),
        ("results".into(), Json::Arr(records)),
    ]);
    let out_path = std::env::var("PDAC_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kv.json").into());
    std::fs::write(&out_path, doc.render() + "\n").expect("write bench json");
    println!("kv_paged: wrote {out_path}");
}
