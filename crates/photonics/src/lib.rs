#![warn(missing_docs)]

//! Photonic device and circuit simulation for the P-DAC reproduction.
//!
//! This crate models the optical substrate that both Lightening-Transformer
//! and the P-DAC are built from (paper Sec. II):
//!
//! * [`field`] — optical fields: complex amplitude per WDM wavelength, with
//!   intensity defined as `I = ½|E|²` as in the paper's DDot derivation;
//! * [`wavelength`] — WDM wavelength grids and channel bookkeeping;
//! * [`devices`] — transfer-function models of every component the paper
//!   uses: lasers, Mach-Zehnder modulators (full Eq. 3 including splitting
//!   imbalance `k` and `V_π`), phase shifters (Eq. 4), directional couplers
//!   (Eq. 5), micro-ring resonators (Fig. 1), photodetectors and
//!   transimpedance amplifiers (Eq. 1);
//! * [`ddot`] — the Dynamically-operated full-range Dot-product unit
//!   (Eq. 6) that computes `x·y` from two detector currents;
//! * [`eo_interface`] — the multi-bit electro-optic interface of Fig. 2
//!   (one bit per time slot per wavelength, after CAMON);
//! * [`wdm`] — wavelength multiplexing with optional inter-channel
//!   crosstalk;
//! * [`noise`] — shot/thermal/RIN noise injection with seeded RNGs;
//! * [`circuit`] — composition of 2×2 passive devices into transfer-matrix
//!   chains.
//!
//! All passive devices are energy-conserving (unitary transfer matrices)
//! unless an explicit insertion loss is configured; property tests enforce
//! this.
//!
//! # Examples
//!
//! ```
//! use pdac_photonics::ddot::DDotUnit;
//!
//! let ddot = DDotUnit::ideal(4);
//! let x = [0.5, -0.25, 0.75, 0.1];
//! let y = [0.2, 0.9, -0.4, -0.6];
//! let got = ddot.dot(&x, &y)?;
//! let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
//! assert!((got - exact).abs() < 1e-12);
//! # Ok::<(), pdac_photonics::ddot::DDotError>(())
//! ```

pub mod ber;
pub mod circuit;
pub mod ddot;
pub mod devices;
pub mod eo_interface;
pub mod field;
pub mod loss;
pub mod mzi_mesh;
pub mod noise;
pub mod wavelength;
pub mod wdm;

pub use ddot::DDotUnit;
pub use devices::coupler::DirectionalCoupler;
pub use devices::laser::Laser;
pub use devices::mrr::MicroRing;
pub use devices::mzm::Mzm;
pub use devices::phase_shifter::PhaseShifter;
pub use devices::photodetector::Photodetector;
pub use devices::tia::Tia;
pub use field::OpticalField;
pub use wavelength::WavelengthGrid;
