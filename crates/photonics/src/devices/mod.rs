//! Transfer-function models of the photonic components used by
//! Lightening-Transformer and the P-DAC (paper Figs. 1–4, 7).
//!
//! Conventions shared by all device models:
//!
//! * Fields are complex amplitudes; intensity is `½|E|²`.
//! * Passive lossless devices have unitary transfer matrices (energy
//!   conservation); explicit insertion loss is expressed in dB.
//! * Voltages are in volts; `V_π` is the voltage producing a π phase shift.

pub mod attenuator;
pub mod coupler;
pub mod laser;
pub mod mrr;
pub mod mzm;
pub mod phase_shifter;
pub mod photodetector;
pub mod thermal;
pub mod tia;
