//! Laser source.
//!
//! A multi-wavelength comb source feeding the WDM links and modulator
//! banks. The model tracks *optical* output per channel and *electrical*
//! wall-plug draw (optical / efficiency); the power crate's laser
//! component scales this draw with bit precision because higher-precision
//! detection needs a larger optical SNR budget.

use crate::field::OpticalField;
use pdac_math::Complex64;

/// A continuous-wave comb laser emitting equal power on `channels`
/// wavelengths.
///
/// # Examples
///
/// ```
/// use pdac_photonics::Laser;
///
/// let laser = Laser::new(4, 1e-3, 0.2)?;
/// let field = laser.emit();
/// assert_eq!(field.channels(), 4);
/// // Per-channel intensity equals the configured optical power.
/// assert!((field.total_intensity() - 4e-3).abs() < 1e-12);
/// assert!((laser.wall_plug_watts() - 4e-3 / 0.2).abs() < 1e-12);
/// # Ok::<(), pdac_photonics::devices::laser::LaserError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laser {
    channels: usize,
    power_per_channel_watts: f64,
    wall_plug_efficiency: f64,
}

/// Errors from [`Laser`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaserError {
    /// Zero channels requested.
    NoChannels,
    /// Optical power was non-positive or non-finite.
    BadPower,
    /// Efficiency outside `(0, 1]`.
    BadEfficiency,
}

impl std::fmt::Display for LaserError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaserError::NoChannels => write!(f, "laser needs at least one channel"),
            LaserError::BadPower => write!(f, "per-channel power must be positive and finite"),
            LaserError::BadEfficiency => write!(f, "wall-plug efficiency must lie in (0, 1]"),
        }
    }
}

impl std::error::Error for LaserError {}

impl Laser {
    /// Creates a comb laser.
    ///
    /// # Errors
    ///
    /// Returns a [`LaserError`] describing the offending parameter.
    pub fn new(
        channels: usize,
        power_per_channel_watts: f64,
        wall_plug_efficiency: f64,
    ) -> Result<Self, LaserError> {
        if channels == 0 {
            return Err(LaserError::NoChannels);
        }
        if !(power_per_channel_watts.is_finite() && power_per_channel_watts > 0.0) {
            return Err(LaserError::BadPower);
        }
        if !(wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0) {
            return Err(LaserError::BadEfficiency);
        }
        Ok(Self {
            channels,
            power_per_channel_watts,
            wall_plug_efficiency,
        })
    }

    /// Number of comb lines.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Optical power per channel in watts.
    pub fn power_per_channel_watts(&self) -> f64 {
        self.power_per_channel_watts
    }

    /// Total optical output power in watts.
    pub fn optical_watts(&self) -> f64 {
        self.power_per_channel_watts * self.channels as f64
    }

    /// Electrical wall-plug draw in watts.
    pub fn wall_plug_watts(&self) -> f64 {
        self.optical_watts() / self.wall_plug_efficiency
    }

    /// Emits the CW field: amplitude `√(2P)` on each channel so that the
    /// intensity convention `I = ½|E|²` recovers `P` per channel.
    pub fn emit(&self) -> OpticalField {
        let amp = (2.0 * self.power_per_channel_watts).sqrt();
        OpticalField::from_amplitudes(vec![Complex64::from_re(amp); self.channels])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_intensity_matches_power() {
        let laser = Laser::new(8, 2e-3, 0.25).unwrap();
        let f = laser.emit();
        assert!((f.total_intensity() - 16e-3).abs() < 1e-12);
        assert!((laser.optical_watts() - 16e-3).abs() < 1e-15);
    }

    #[test]
    fn wall_plug_includes_efficiency() {
        let laser = Laser::new(1, 1e-3, 0.1).unwrap();
        assert!((laser.wall_plug_watts() - 1e-2).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(Laser::new(0, 1e-3, 0.2), Err(LaserError::NoChannels));
        assert_eq!(Laser::new(1, 0.0, 0.2), Err(LaserError::BadPower));
        assert_eq!(Laser::new(1, f64::NAN, 0.2), Err(LaserError::BadPower));
        assert_eq!(Laser::new(1, 1e-3, 0.0), Err(LaserError::BadEfficiency));
        assert_eq!(Laser::new(1, 1e-3, 1.5), Err(LaserError::BadEfficiency));
    }

    #[test]
    fn error_messages() {
        assert!(LaserError::NoChannels.to_string().contains("channel"));
        assert!(LaserError::BadEfficiency.to_string().contains("(0, 1]"));
    }
}
