//! One-shot artifact generation: every figure report and CSV table into
//! a directory.
//!
//! `cargo run -p pdac-bench --bin make_figures -- out/` leaves a
//! directory a reviewer can diff against the paper: one `.txt` per
//! figure/extension report plus machine-readable `.csv` power and energy
//! tables.

use crate::lt_b_models;
use pdac_nn::config::TransformerConfig;
use pdac_nn::workload::op_trace;
use pdac_power::report::{energy_csv, power_csv};
use pdac_power::EnergyModel;
use std::fs;
use std::io;
use std::path::Path;

/// The text reports generated, as `(file name, contents)` pairs.
pub fn text_reports() -> Vec<(&'static str, String)> {
    vec![
        ("fig5_power_breakdown.txt", crate::fig5::report()),
        ("fig8_approx_error.txt", crate::fig8::report(41)),
        ("fig9_bert_energy.txt", crate::fig9_10::report_bert()),
        ("fig10_deit_energy.txt", crate::fig9_10::report_deit()),
        ("fig11_compute_bound.txt", crate::fig11::report()),
        ("ablation_k_sweep.txt", crate::ablations::k_sweep_report(39)),
        (
            "ablation_bit_sweep.txt",
            crate::ablations::bit_sweep_report(),
        ),
        ("mzi_baseline.txt", crate::mzi_baseline::report()),
        ("generative_decode.txt", crate::generative::report()),
        ("arch_scaling.txt", crate::scaling::report()),
        ("crosstalk_study.txt", crate::crosstalk::report()),
        ("bit_error_study.txt", crate::bit_error::report()),
    ]
}

/// The CSV tables generated, as `(file name, contents)` pairs: power
/// breakdowns for both drivers × both precisions, and the BERT/DeiT
/// energy tables.
pub fn csv_tables() -> Vec<(String, String)> {
    let (baseline, pdac) = lt_b_models();
    let mut out = Vec::new();
    for (tag, model) in [("baseline", &baseline), ("pdac", &pdac)] {
        for bits in [4u8, 8] {
            out.push((
                format!("power_{tag}_{bits}bit.csv"),
                power_csv(&model.breakdown(bits)),
            ));
        }
    }
    for config in [
        TransformerConfig::bert_base(),
        TransformerConfig::deit_base(),
    ] {
        let trace = op_trace(&config);
        for (tag, model) in [("baseline", &baseline), ("pdac", &pdac)] {
            for bits in [4u8, 8] {
                let e = EnergyModel::new(model.clone()).energy(&trace, bits);
                let name = if config.seq_len == 128 {
                    "bert"
                } else {
                    "deit"
                };
                out.push((format!("energy_{name}_{tag}_{bits}bit.csv"), energy_csv(&e)));
            }
        }
    }
    out
}

/// Writes every report and table under `dir` (created if needed).
/// Returns the number of files written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_all(dir: &Path) -> io::Result<usize> {
    fs::create_dir_all(dir)?;
    let mut count = 0;
    for (name, contents) in text_reports() {
        fs::write(dir.join(name), contents)?;
        count += 1;
    }
    for (name, contents) in csv_tables() {
        fs::write(dir.join(name), contents)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_nonempty_and_named_uniquely() {
        let reports = text_reports();
        assert!(reports.len() >= 12);
        let mut names: Vec<&str> = reports.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reports.len());
        for (name, contents) in &reports {
            assert!(contents.len() > 100, "{name} too short");
        }
    }

    #[test]
    fn csv_tables_have_headers() {
        for (name, csv) in csv_tables() {
            assert!(
                csv.starts_with("driver,") || csv.starts_with("workload,"),
                "{name} missing header"
            );
            assert!(csv.lines().count() >= 2, "{name} has no data rows");
        }
    }

    #[test]
    fn write_all_creates_files() {
        let dir = std::env::temp_dir().join("pdac_artifacts_test");
        let _ = fs::remove_dir_all(&dir);
        let n = write_all(&dir).unwrap();
        let on_disk = fs::read_dir(&dir).unwrap().count();
        assert_eq!(n, on_disk);
        assert!(n >= 20);
        let _ = fs::remove_dir_all(&dir);
    }
}
