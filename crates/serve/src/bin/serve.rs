//! Continuous-batching serving simulation: drives a multi-request trace
//! through the [`pdac_serve::TokenServer`] and reports throughput.
//!
//! ```text
//! cargo run --release -p pdac-serve --bin serve
//! ```
//!
//! Environment knobs (all optional):
//!
//! * `PDAC_SERVE_REQUESTS` — number of requests in the trace (default 8)
//! * `PDAC_SERVE_PROMPT` — prompt length per request (default 4)
//! * `PDAC_SERVE_MAX_NEW` — tokens generated per request (default 8)
//! * `PDAC_SERVE_BATCH` — batch capacity (default 4)
//! * `PDAC_SERVE_BACKEND` — `exact` | `pdac` | `edac` | `hybrid`
//!   (default `pdac`; `hybrid` runs activations on the P-DAC and
//!   weights on the e-DAC path)
//! * `PDAC_SERVE_KV` — `flat` | `paged` (default `flat`): `paged` backs
//!   the KV cache with the block allocator + prefix sharing, honouring
//!   `PDAC_KV_BLOCK_TOKENS` / `PDAC_KV_BUDGET_BYTES`; the run is
//!   re-played on a flat server afterwards and both completions must be
//!   bit-identical (the paging CI smoke)
//! * `PDAC_SERVE_SHARED_PROMPT` — first N prompt tokens identical
//!   across all requests (default 0), so a paged run exercises
//!   hash-consed prefix sharing
//! * `PDAC_SERVE_HIDDEN` / `PDAC_SERVE_LAYERS` / `PDAC_SERVE_HEADS` —
//!   model shape (default 64 / 2 / 4)
//! * `PDAC_SERVE_METER` — `auto` | `pdac` | `edac` | `hybrid` | `off`:
//!   the [`pdac_power::meter`] driver pricing the live energy ledger
//!   (default `auto`: matched to the backend, P-DAC for `exact`)
//! * `PDAC_POWER_BUDGET_W` — arms the meter's modeled power budget;
//!   over-budget steps shed admissions (`serve.load_shed`)
//! * `PDAC_SERVE_METRICS_OUT` (or `--metrics-out <path>`) — write the
//!   Prometheus exposition (the same text `/metrics` serves) to a file
//! * `PDAC_SERVE_TRACE_OUT` (or `--trace-out <path>`) — write a
//!   Chrome-trace JSON (load in `chrome://tracing` or Perfetto) and
//!   validate it through the in-tree parser before exiting
//! * `PDAC_SERVE_HTTP` (or `--http <addr>`, `http` feature only) —
//!   serve `/metrics` + `/trace` + `/health` on the given address while
//!   running
//! * `PDAC_SENTINEL_RATE` (`sentinel` feature) — sampling probability of
//!   the online drift sentinel (default 0.02; `0` disables it). Sampled
//!   analog GEMMs are replayed through the exact reference off the hot
//!   path and scored against the paper budgets; threshold crossings
//!   raise `health.alert.*` records
//! * `PDAC_SENTINEL_FAULT` (`sentinel` feature) — inject a deterministic
//!   device fault into the P-DAC backend:
//!   `tia|dark|droop|stuck|flipped[:magnitude]` (requires
//!   `PDAC_SERVE_BACKEND=pdac`); the sentinel must then trip the
//!   matching alert
//! * `PDAC_SENTINEL_FAILOVER=1` — reroute decode steps to the exact
//!   backend once a critical drift alert latches
//!   (`serve.sentinel_failover`)
//! * `--health` (or `PDAC_SERVE_HEALTH=1`) — print the final health
//!   verdict and alert table; exit nonzero when a critical alert
//!   latched during the run
//!
//! After the run it prints a p50/p95/p99 latency table for the SLO
//! histograms (queue-wait, TTFT, ITL, e2e) and — when a meter is
//! installed — a per-class energy table with joules/token and
//! tokens/joule. Exits nonzero if any request fails to retire, the
//! trace file fails validation, or the meter ran but the `power.*`
//! gauges are missing from telemetry (the CI smoke gates).

use std::time::Instant;

use pdac_telemetry::HistogramSummary;

use pdac_core::edac::ElectricalDac;
use pdac_core::pdac::PDac;
use pdac_nn::{
    AnalogGemm, AsymmetricGemm, ExactGemm, GemmBackend, PagedConfig, TransformerConfig,
    TransformerModel,
};
use pdac_power::meter::EnergyMeter;
use pdac_power::model::{DriverKind, PowerModel};
use pdac_power::{ArchConfig, EnergyModel, OpClass, TechParams};
use pdac_serve::{Request, TokenServer};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--flag value` from argv, falling back to the environment variable.
fn arg_or_env(flag: &str, env: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(env).ok())
}

/// Valueless `--flag` from argv, or `env=1`.
fn flag_or_env(flag: &str, env: &str) -> bool {
    std::env::args().any(|a| a == flag) || std::env::var(env).is_ok_and(|v| v == "1")
}

/// Structural sanity checks on an emitted Chrome-trace document: the
/// round-trip gate the CI obs smoke relies on. `strict_parents` is off
/// when the ring dropped events (a parent may then be truncated away).
fn validate_trace(text: &str, strict_parents: bool) -> Result<usize, String> {
    let doc = pdac_telemetry::json::parse(text).map_err(|e| format!("parse error: {e:?}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(pdac_telemetry::Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut seen_ids = std::collections::HashSet::new();
    for (i, e) in events.iter().enumerate() {
        let id = e
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(pdac_telemetry::Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing args.id"))?;
        let parent = e
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(pdac_telemetry::Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing args.parent"))?;
        let ts = e
            .get("ts")
            .and_then(pdac_telemetry::Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let dur = e
            .get("dur")
            .and_then(pdac_telemetry::Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing dur"))?;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i}: negative ts/dur"));
        }
        if strict_parents && parent != 0 && !seen_ids.contains(&parent) {
            return Err(format!("event {i}: parent {parent} after child {id}"));
        }
        seen_ids.insert(id);
    }
    Ok(events.len())
}

fn print_slo_table(histograms: &[HistogramSummary]) {
    println!(
        "serve: SLO {:<18} {:>7} {:>12} {:>12} {:>12}",
        "histogram", "count", "p50_ms", "p95_ms", "p99_ms"
    );
    for name in ["serve.queue_wait", "serve.ttft", "serve.itl", "serve.e2e"] {
        if let Some(h) = histograms.iter().find(|h| h.name == name) {
            println!(
                "serve: SLO {:<18} {:>7} {:>12.4} {:>12.4} {:>12.4}",
                h.name,
                h.count,
                h.p50 * 1e3,
                h.p95 * 1e3,
                h.p99 * 1e3
            );
        }
    }
}

fn print_energy_table(
    meter: &EnergyMeter,
    esnap: &pdac_power::meter::EnergySnapshot,
    server: &TokenServer,
    generated: u64,
) {
    println!(
        "serve: energy driver={} bits={} budget_w={}",
        meter.model().power_model().driver(),
        meter.bits(),
        meter
            .budget_w()
            .map_or("none".to_string(), |w| format!("{w}")),
    );
    println!(
        "serve: energy {:<10} {:>12} {:>12} {:>14} {:>12}",
        "class", "compute_uj", "movement_uj", "elementwise_uj", "total_uj"
    );
    for class in [OpClass::Attention, OpClass::Ffn, OpClass::Other] {
        if let Some(c) = esnap.breakdown.class(class) {
            println!(
                "serve: energy {:<10} {:>12.3} {:>12.3} {:>14.3} {:>12.3}",
                class.to_string(),
                c.compute_j * 1e6,
                c.movement_j * 1e6,
                c.elementwise_j * 1e6,
                c.total_j() * 1e6,
            );
        }
    }
    let attributed = server.total_energy_j();
    let jpt = server.joules_per_token();
    let tokens_per_j = if attributed > 0.0 {
        generated as f64 / attributed
    } else {
        0.0
    };
    println!(
        "serve: energy total_j={:.6e} attributed_j={:.6e} joules_per_token={:.6e} \
         tokens_per_joule={:.1} shed_steps={}",
        esnap.total_j(),
        attributed,
        jpt,
        tokens_per_j,
        server.shed_steps(),
    );
}

fn main() {
    let requests = env_usize("PDAC_SERVE_REQUESTS", 8);
    let prompt_len = env_usize("PDAC_SERVE_PROMPT", 4);
    let max_new = env_usize("PDAC_SERVE_MAX_NEW", 8);
    let batch = env_usize("PDAC_SERVE_BATCH", 4);
    let hidden = env_usize("PDAC_SERVE_HIDDEN", 64);
    let layers = env_usize("PDAC_SERVE_LAYERS", 2);
    let heads = env_usize("PDAC_SERVE_HEADS", 4);
    let backend_name = std::env::var("PDAC_SERVE_BACKEND").unwrap_or_else(|_| "pdac".to_string());
    let kv_mode = std::env::var("PDAC_SERVE_KV").unwrap_or_else(|_| "flat".to_string());
    let paged = match kv_mode.as_str() {
        "flat" => false,
        "paged" => true,
        other => {
            eprintln!("unknown PDAC_SERVE_KV {other:?} (use flat|paged)");
            std::process::exit(2);
        }
    };
    let shared_prompt = env_usize("PDAC_SERVE_SHARED_PROMPT", 0).min(prompt_len);

    let config = TransformerConfig {
        name: "serve-sim".to_string(),
        layers,
        hidden,
        heads,
        ff_mult: 4,
        seq_len: (prompt_len + max_new).max(1),
    };
    config.validate().expect("valid serving config");
    let model = TransformerModel::random(config, 4, 42);

    let backend: Box<dyn GemmBackend> = match backend_name.as_str() {
        "exact" => Box::new(ExactGemm),
        "edac" => Box::new(AnalogGemm::new(
            ElectricalDac::new(8).expect("8-bit edac"),
            "edac-8b",
        )),
        "pdac" => Box::new(AnalogGemm::new(
            PDac::with_optimal_approx(8).expect("8-bit pdac"),
            "pdac-8b",
        )),
        "hybrid" => Box::new(AsymmetricGemm::new(
            PDac::with_optimal_approx(8).expect("8-bit pdac"),
            ElectricalDac::new(8).expect("8-bit edac"),
            "hybrid-8b",
        )),
        other => {
            eprintln!("unknown PDAC_SERVE_BACKEND {other:?} (use exact|pdac|edac|hybrid)");
            std::process::exit(2);
        }
    };

    // Deterministic fault injection for the sentinel smoke: wrap the
    // P-DAC in a FaultyPDac so the drift sentinel has something real to
    // catch. A parse error exits nonzero — a typo must not silently run
    // the clean backend and report green.
    #[cfg(feature = "sentinel")]
    let backend: Box<dyn GemmBackend> = match std::env::var("PDAC_SENTINEL_FAULT") {
        Err(_) => backend,
        Ok(raw) => match pdac_serve::sentinel::fault_spec(&raw) {
            Err(msg) => {
                eprintln!("serve: {msg}");
                std::process::exit(2);
            }
            Ok(None) => backend,
            Ok(Some(spec)) => {
                if backend_name != "pdac" {
                    eprintln!("serve: PDAC_SENTINEL_FAULT requires PDAC_SERVE_BACKEND=pdac");
                    std::process::exit(2);
                }
                println!("serve: sentinel fault injected: {raw}");
                Box::new(AnalogGemm::new(
                    pdac_serve::sentinel::FaultyPDac::new(
                        PDac::with_optimal_approx(8).expect("8-bit pdac"),
                        spec,
                    ),
                    "pdac-8b-faulty",
                ))
            }
        },
    };

    // The live energy ledger: price executed activity under the driver
    // matching the serving backend (overridable to compare drive paths
    // on identical activity).
    let meter_name = std::env::var("PDAC_SERVE_METER").unwrap_or_else(|_| "auto".to_string());
    let meter_driver = match meter_name.as_str() {
        "off" => None,
        "pdac" => Some(DriverKind::PhotonicDac),
        "edac" => Some(DriverKind::ElectricalDac),
        "hybrid" => Some(DriverKind::Hybrid),
        "auto" => Some(match backend_name.as_str() {
            "edac" => DriverKind::ElectricalDac,
            "hybrid" => DriverKind::Hybrid,
            // `pdac`, and `exact` standing in for the modeled target.
            _ => DriverKind::PhotonicDac,
        }),
        other => {
            eprintln!("unknown PDAC_SERVE_METER {other:?} (use auto|pdac|edac|hybrid|off)");
            std::process::exit(2);
        }
    };
    let meter = meter_driver.map(|driver| {
        let pm = PowerModel::new(ArchConfig::lt_b(), TechParams::calibrated(), driver);
        pdac_power::meter::install(EnergyMeter::new(EnergyModel::new(pm), 8).with_budget_env())
    });

    let trace_out = arg_or_env("--trace-out", "PDAC_SERVE_TRACE_OUT");
    if trace_out.is_some() && std::env::var("PDAC_TRACE_CAPACITY").is_err() {
        // Size the ring for the whole run before the global collector's
        // first use, so smoke traces don't wrap.
        std::env::set_var("PDAC_TRACE_CAPACITY", "262144");
    }
    pdac_telemetry::enable();

    // Arm the drift sentinel (default rate 0.02; PDAC_SENTINEL_RATE=0
    // disables). It shadows the whole run and is drained before the
    // telemetry snapshot below, so its gauges and alerts land in every
    // exporter.
    #[cfg(feature = "sentinel")]
    let sentinel = pdac_serve::sentinel::install_from_env();

    #[cfg(feature = "http")]
    let _http = arg_or_env("--http", "PDAC_SERVE_HTTP").map(|addr| {
        let server = pdac_telemetry::http::serve_metrics(pdac_telemetry::global(), &addr)
            .expect("bind metrics endpoint");
        println!("serve: metrics http on {}", server.addr());
        server
    });

    let mut server = if paged {
        TokenServer::new_paged(&model, batch, PagedConfig::from_env())
    } else {
        TokenServer::new(&model, batch)
    };
    // Shared prefix drawn once so every request opens with the same
    // tokens (system-prompt shape); tails stay per-request.
    let mut shared_rng = pdac_math::rng::SplitMix64::seed_from_u64(999);
    let shared_tokens: Vec<Vec<f64>> = (0..shared_prompt)
        .map(|_| {
            (0..model.config().hidden)
                .map(|_| shared_rng.gen_range_f64(-1.0, 1.0))
                .collect()
        })
        .collect();
    let trace: Vec<Request> = (0..requests)
        .map(|id| {
            let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(1000 + id as u64);
            let prompt = (0..prompt_len)
                .map(|t| {
                    if t < shared_prompt {
                        shared_tokens[t].clone()
                    } else {
                        (0..model.config().hidden)
                            .map(|_| rng.gen_range_f64(-1.0, 1.0))
                            .collect()
                    }
                })
                .collect();
            Request {
                id: id as u64,
                prompt,
                max_new_tokens: max_new,
            }
        })
        .collect();
    for req in &trace {
        server.admit(req.clone());
    }

    let start = Instant::now();
    let steps = server.run(&*backend);
    let elapsed = start.elapsed().as_secs_f64();
    let completions = server.take_completions();

    let generated = server.generated_tokens();
    let fed = server.fed_tokens();
    let tok_per_s = generated as f64 / elapsed.max(1e-12);
    println!(
        "serve: backend={} requests={requests} prompt={prompt_len} max_new={max_new} \
         batch_capacity={batch}",
        backend.name()
    );
    println!(
        "serve: steps={steps} fed_tokens={fed} generated_tokens={generated} \
         mean_occupancy={:.2} elapsed_s={elapsed:.4} tokens_per_s={tok_per_s:.1}",
        server.mean_occupancy()
    );

    // Drain the sentinel before snapshotting: every sampled GEMM is
    // replayed, scored and (if warranted) alerted by the time the
    // drift gauges are exported.
    #[cfg(feature = "sentinel")]
    let sentinel_stats = sentinel.map(pdac_serve::sentinel::SentinelHandle::finish);

    // Final flush so the `power.*` gauges reflect the whole run before
    // the snapshot is taken (and exported below).
    let energy = meter.as_ref().map(|m| m.flush());

    let snap = pdac_telemetry::snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    println!(
        "serve: telemetry admitted={} retired={}",
        counter("serve.admitted"),
        counter("serve.retired")
    );
    if let Some(stats) = server.kv_stats() {
        println!(
            "serve: kv paged block={} pages={} bytes={} shared_tokens={} shared_hits={} \
             evicted={} cow={} over_budget={} deferred={}",
            env_usize("PDAC_KV_BLOCK_TOKENS", 16),
            stats.live_pages,
            stats.live_bytes,
            stats.shared_tokens,
            stats.shared_hits,
            stats.evicted_pages,
            stats.cow_copies,
            stats.over_budget_pages,
            server.kv_deferred(),
        );
        // The paging smoke: a paged run must leave the kv gauges in
        // telemetry, and a shared-prompt trace must actually share.
        if !snap.gauges.iter().any(|(n, _)| n == "serve.kv.pages") {
            eprintln!("serve: FAIL — paged run but gauge serve.kv.pages missing");
            std::process::exit(1);
        }
        if shared_prompt > 0 && requests > 1 && counter("serve.kv.shared") == 0 {
            eprintln!("serve: FAIL — shared prompts but serve.kv.shared stayed 0");
            std::process::exit(1);
        }
    }
    print_slo_table(&snap.histograms);

    if let (Some(meter), Some(esnap)) = (&meter, &energy) {
        print_energy_table(meter, esnap, &server, generated);
        // The observability smoke: a run with the meter on must leave
        // the energy gauges in telemetry (and thus in every exporter).
        for gauge in ["power.energy.total_j", "power.compute_w"] {
            if !snap.gauges.iter().any(|(n, _)| n == gauge) {
                eprintln!("serve: FAIL — meter active but gauge {gauge} missing");
                std::process::exit(1);
            }
        }
    }

    #[cfg(feature = "sentinel")]
    if let Some(stats) = &sentinel_stats {
        println!(
            "serve: sentinel sampled={} scored={} dropped={} alerts={} worst_frac={:.3} \
             failover_steps={}",
            stats.sampled,
            stats.scored,
            stats.dropped,
            stats.alerts,
            stats.worst_frac,
            server.failover_steps(),
        );
        // The sentinel smoke: a run that scored samples must leave the
        // drift gauges in telemetry (mirrors the power gauge gate).
        if stats.scored > 0
            && !snap
                .gauges
                .iter()
                .any(|(n, _)| n.starts_with("health.drift."))
        {
            eprintln!("serve: FAIL — sentinel scored samples but health.drift.* gauges missing");
            std::process::exit(1);
        }
    }

    if let Some(path) = arg_or_env("--metrics-out", "PDAC_SERVE_METRICS_OUT") {
        let text = pdac_telemetry::export::prometheus_text(&snap);
        std::fs::write(&path, &text).expect("write metrics file");
        println!("serve: metrics written to {path}");
    }

    if let Some(path) = trace_out {
        let events = pdac_telemetry::global().events();
        let dropped = pdac_telemetry::global().trace_buffer().dropped();
        if dropped > 0 {
            eprintln!("serve: WARNING trace truncated, {dropped} events dropped by the ring");
        }
        let text = pdac_telemetry::export::chrome_trace_string(&events);
        std::fs::write(&path, &text).expect("write trace file");
        match validate_trace(&text, dropped == 0) {
            Ok(n) => println!("serve: trace OK — {n} events written to {path}"),
            Err(e) => {
                eprintln!("serve: FAIL — invalid trace: {e}");
                std::process::exit(1);
            }
        }
    }

    if completions.len() != requests || counter("serve.retired") != requests as u64 {
        eprintln!(
            "serve: FAIL — {} of {requests} requests retired",
            completions.len()
        );
        std::process::exit(1);
    }
    assert!(
        completions.iter().all(|c| c.hidden.len() == max_new),
        "every completion carries max_new hidden states"
    );

    if paged {
        // Paging must never change results: replay the identical trace
        // on a flat server and demand bit-identical completions.
        let mut flat = TokenServer::new(&model, batch);
        for req in &trace {
            flat.admit(req.clone());
        }
        flat.run(&*backend);
        let mut flat_done = flat.take_completions();
        let mut paged_done = completions.clone();
        flat_done.sort_by_key(|c| c.id);
        paged_done.sort_by_key(|c| c.id);
        let identical = flat_done.len() == paged_done.len()
            && flat_done.iter().zip(&paged_done).all(|(f, p)| {
                f.id == p.id
                    && f.hidden.len() == p.hidden.len()
                    && f.hidden.iter().zip(&p.hidden).all(|(a, b)| {
                        a.len() == b.len()
                            && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
                    })
            });
        if !identical {
            eprintln!("serve: FAIL — paged completions diverged from the flat replay");
            std::process::exit(1);
        }
        println!("serve: kv paged completions bit-identical to flat replay");
    }

    // The health verdict gate: mirror the ledger to stdout and exit
    // nonzero when critical drift latched (the CI sentinel smoke runs
    // this twice: clean must pass, fault-injected must fail here).
    if flag_or_env("--health", "PDAC_SERVE_HEALTH") {
        let ledger = pdac_telemetry::health::ledger();
        println!(
            "serve: health status={} alerts_raised={} warn={} critical={} dropped={}",
            ledger.status().label(),
            ledger.raised(),
            ledger.warn_count(),
            ledger.critical_count(),
            ledger.dropped(),
        );
        for a in ledger.alerts() {
            println!(
                "serve: health alert severity={} backend={} op={} measured={:.4} budget={:.4}",
                a.severity.label(),
                a.backend,
                a.op,
                a.measured,
                a.budget,
            );
        }
        if ledger.critical_latched() {
            eprintln!("serve: FAIL — critical drift alert latched");
            std::process::exit(1);
        }
    }
    println!("serve: OK — all {requests} requests retired");
}
