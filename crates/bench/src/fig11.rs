//! Fig. 11: full compute-bound power comparison.
//!
//! Paper datapoints: P-DAC totals 11.81 W (4-bit) and 26.64 W (8-bit);
//! reductions 19.9% and 47.7%; 8-bit P-DAC shares ADC 16.0% and
//! P-DAC 20.1%; 4-bit laser share ≈ 46.5%.

use crate::{lt_b_models, pct_row};
use pdac_power::model::power_saving;
use pdac_power::Component;

/// Paper-reported P-DAC design totals: (bits, watts).
pub const PAPER_TOTALS: [(u8, f64); 2] = [(4, 11.81), (8, 26.64)];
/// Paper-reported savings: (bits, fraction).
pub const PAPER_SAVINGS: [(u8, f64); 2] = [(4, 0.199), (8, 0.477)];

/// Regenerates Fig. 11 as a text report.
pub fn report() -> String {
    let (baseline, pdac) = lt_b_models();
    let mut out = String::from(
        "Fig. 11 — Power breakdown, fully compute-bound (baseline vs P-DAC)\n\
         ===================================================================\n",
    );
    for (panel, (bits, paper_total)) in ["(a)+(c)", "(b)+(d)"].iter().zip(PAPER_TOTALS) {
        let b = baseline.breakdown(bits);
        let p = pdac.breakdown(bits);
        out.push_str(&format!("\n{panel} {bits}-bit\n"));
        out.push_str(&format!("  baseline total {:.2} W\n", b.total_watts()));
        for (c, w) in b.entries() {
            out.push_str(&format!(
                "    {c:<14} {w:>7.3} W ({:>5.1}%)\n",
                100.0 * w / b.total_watts()
            ));
        }
        out.push_str(&format!(
            "  P-DAC total {:.2} W (paper {paper_total} W)\n",
            p.total_watts()
        ));
        for (c, w) in p.entries() {
            out.push_str(&format!(
                "    {c:<14} {w:>7.3} W ({:>5.1}%)\n",
                100.0 * w / p.total_watts()
            ));
        }
        let paper_saving = PAPER_SAVINGS
            .iter()
            .find(|(bb, _)| *bb == bits)
            .expect("table covers both")
            .1;
        out.push_str(&pct_row(
            &format!("power reduction @ {bits}-bit"),
            power_saving(&baseline, &pdac, bits),
            paper_saving,
        ));
        out.push('\n');
    }
    // The paper's closing observation: at 8-bit the laser dominates the
    // P-DAC design's remaining power.
    let p8 = pdac.breakdown(8);
    out.push_str(&format!(
        "\nlaser share of 8-bit P-DAC design: {:.1}% (paper: \"majority ... constrained by the laser\")\n",
        100.0 * p8.share(Component::Laser)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let (_, pdac) = lt_b_models();
        for (bits, paper) in PAPER_TOTALS {
            let got = pdac.breakdown(bits).total_watts();
            assert!(
                (got - paper).abs() / paper < 0.01,
                "{bits}-bit: {got} vs paper {paper}"
            );
        }
    }

    #[test]
    fn savings_match_paper() {
        let (baseline, pdac) = lt_b_models();
        for (bits, paper) in PAPER_SAVINGS {
            let got = power_saving(&baseline, &pdac, bits);
            assert!((got - paper).abs() < 0.005, "{bits}-bit: {got} vs {paper}");
        }
    }

    #[test]
    fn eight_bit_shares_match_fig11d() {
        let (_, pdac) = lt_b_models();
        let p8 = pdac.breakdown(8);
        assert!((p8.share(Component::Adc) - 0.160).abs() < 0.01);
        assert!((p8.share(Component::PDac) - 0.201).abs() < 0.01);
        assert!(p8.share(Component::Laser) > 0.5); // the laser dominates
    }

    #[test]
    fn four_bit_laser_share_matches_fig11c() {
        let (_, pdac) = lt_b_models();
        assert!((pdac.breakdown(4).share(Component::Laser) - 0.465).abs() < 0.01);
    }

    #[test]
    fn report_renders_panels() {
        let r = report();
        assert!(r.contains("(a)+(c) 4-bit"));
        assert!(r.contains("(b)+(d) 8-bit"));
        assert!(r.contains("laser share"));
    }
}
