//! Injectable time sources.
//!
//! Everything in the collector that measures time goes through the
//! [`Clock`] trait so tests can drive spans with a deterministic
//! [`ManualClock`] while production uses the monotonic OS clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// The epoch is arbitrary; only differences are meaningful.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds since the clock's own epoch.
    fn now_ns(&self) -> u64;
}

/// Real monotonic clock backed by [`std::time::Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of process uptime.
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// Deterministic clock for tests: time only moves when told to.
///
/// Shared via `Arc` between the test body (which advances it) and the
/// collector (which reads it).
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Jump to an absolute time.
    pub fn set_ns(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }

    /// Move time forward by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}
