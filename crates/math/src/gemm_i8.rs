//! Byte-size integer GEMM kernels for the quantized analog code domain.
//!
//! The analog pipeline quantizes every operand to signed byte-size codes
//! (`|code| ≤ 2^(b−1) − 1 ≤ 127` for `b ≤ 8` bits) before the drive path
//! ever sees it. When the driver's code→amplitude map is *exactly linear*
//! in the code, the whole f64 product collapses into the code domain:
//! accumulate `Σ ca·cb` in `i32` — which is **exact**, no rounding anywhere
//! — and apply the two scale factors once at the end. This module provides
//! that integer engine, mirroring [`crate::gemm`]'s structure: `B` packed
//! into [`NR_I8`]-column panels, an `MR × NR` register-tiled micro-kernel,
//! and row/column-panel threading over the persistent [`crate::pool`]
//! worker pool (`PDAC_THREADS` honored via [`crate::gemm::default_threads`]).
//!
//! Two layers of determinism, stronger than the f64 engine's:
//!
//! * Integer accumulation is associative, so results are bit-identical for
//!   **any** traversal order — any thread count, any blocking, any ISA.
//! * The packed layout pairs adjacent `k` steps (`k` rounded up to even,
//!   zero-padded) so the hot loop maps 1:1 onto the AVX-512 VNNI
//!   `vpdpwssd` instruction (i16×i16 pair dot-accumulate into i32 lanes).
//!   A portable micro-kernel over the *same* layout serves every other
//!   CPU; runtime feature detection picks the implementation per process.
//!
//! For drivers that are **not** code-linear (the P-DAC's approximated
//! arccos, the e-DAC's voltage-grid snap) the product of two dequantized
//! amplitudes is still a pure function of the two codes. The
//! [`gemm_product_lut`] kernel gathers precomputed per-pair products
//! `table[a_idx | b_idx]` (a 256×256 f64 table built by the core crate
//! from the driver LUTs with per-call scales folded in) and accumulates
//! them in ascending-`k` order with one accumulator per cell — **exactly**
//! the per-term values and reduction order of the f64 pipeline, so its
//! output is bit-identical to quantize→dequantize→`Mat::matmul` for every
//! driver, while reading 8× less operand memory (byte codes, not f64).
//!
//! Overflow: `i32` accumulation of byte-size products is exact while
//! `k · 127² < 2³¹`, i.e. `k ≤` [`MAX_K_I8`] ≈ 133 k — far beyond any
//! transformer contraction dimension here. Entry points assert it.

use crate::gemm::PAR_MIN_MACS;
use crate::pool::WorkerPool;
use std::sync::OnceLock;

/// Register-tile rows of the integer micro-kernel.
const MR: usize = 4;
/// Packed `B` panel width: one AVX-512 register of `i32` lanes.
pub const NR_I8: usize = 16;
/// Local alias so kernel code reads like `crate::gemm`.
const NR: usize = NR_I8;

/// Largest contraction dimension for which `i32` accumulation of
/// byte-size code products (`|code| ≤ 127`) cannot overflow.
pub const MAX_K_I8: usize = (i32::MAX as usize) / (127 * 127);

/// Column-tile width of the product-LUT gather kernel.
const LUT_JT: usize = 8;

/// Whether the AVX-512 VNNI micro-kernel is available on this CPU.
/// Cached per process; both implementations are bit-identical, so this
/// only ever affects speed.
fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vnni")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// VNNI `MR × NR` micro-kernel: each `k` pair broadcasts two adjacent
    /// `A` codes as one `i32` against a 32-value interleaved `B` stripe;
    /// `vpdpwssd` multiplies the i16 pairs and accumulates both products
    /// into the matching i32 lane in one instruction.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F + AVX-512VNNI (guard with
    /// [`super::simd_available`]). `a_rows` slices must hold at least
    /// `kp` values each; `panel` at least `kp * NR`; `kp` must be even.
    #[target_feature(enable = "avx512f", enable = "avx512vnni")]
    pub unsafe fn micro_i8(a_rows: [&[i16]; MR], panel: &[i16], kp: usize) -> [[i32; NR]; MR] {
        let mut acc = [_mm512_setzero_si512(); MR];
        for kk2 in 0..kp / 2 {
            let stripe = _mm512_loadu_si512(panel.as_ptr().add(kk2 * 2 * NR) as *const _);
            for (acc_v, a_row) in acc.iter_mut().zip(&a_rows) {
                let pair = (a_row.as_ptr().add(kk2 * 2) as *const i32).read_unaligned();
                *acc_v = _mm512_dpwssd_epi32(*acc_v, _mm512_set1_epi32(pair), stripe);
            }
        }
        let mut out = [[0i32; NR]; MR];
        for (row, acc_v) in out.iter_mut().zip(&acc) {
            _mm512_storeu_si512(row.as_mut_ptr() as *mut _, *acc_v);
        }
        out
    }

    /// Single-row VNNI variant for the `m % MR` tail.
    ///
    /// # Safety
    ///
    /// Same contract as [`micro_i8`].
    #[target_feature(enable = "avx512f", enable = "avx512vnni")]
    pub unsafe fn micro_i8_row(a_row: &[i16], panel: &[i16], kp: usize) -> [i32; NR] {
        let mut acc = _mm512_setzero_si512();
        for kk2 in 0..kp / 2 {
            let stripe = _mm512_loadu_si512(panel.as_ptr().add(kk2 * 2 * NR) as *const _);
            let pair = (a_row.as_ptr().add(kk2 * 2) as *const i32).read_unaligned();
            acc = _mm512_dpwssd_epi32(acc, _mm512_set1_epi32(pair), stripe);
        }
        let mut out = [0i32; NR];
        _mm512_storeu_si512(out.as_mut_ptr() as *mut _, acc);
        out
    }
}

/// Portable `MR × NR` micro-kernel over the same pair-interleaved panel
/// layout the VNNI kernel reads — integer arithmetic is exact, so the two
/// implementations agree bit for bit.
#[inline]
fn micro_i8_portable(a_rows: [&[i16]; MR], panel: &[i16], kp: usize) -> [[i32; NR]; MR] {
    let mut acc = [[0i32; NR]; MR];
    for kk2 in 0..kp / 2 {
        let stripe: &[i16; 2 * NR] = panel[kk2 * 2 * NR..kk2 * 2 * NR + 2 * NR]
            .try_into()
            .expect("stripe");
        for (acc_row, a_row) in acc.iter_mut().zip(&a_rows) {
            let a0 = a_row[kk2 * 2] as i32;
            let a1 = a_row[kk2 * 2 + 1] as i32;
            for (j, cell) in acc_row.iter_mut().enumerate() {
                *cell += a0 * stripe[j * 2] as i32 + a1 * stripe[j * 2 + 1] as i32;
            }
        }
    }
    acc
}

/// Single-row portable variant for the `m % MR` tail.
#[inline]
fn micro_i8_portable_row(a_row: &[i16], panel: &[i16], kp: usize) -> [i32; NR] {
    let mut acc = [0i32; NR];
    for kk2 in 0..kp / 2 {
        let stripe: &[i16; 2 * NR] = panel[kk2 * 2 * NR..kk2 * 2 * NR + 2 * NR]
            .try_into()
            .expect("stripe");
        let a0 = a_row[kk2 * 2] as i32;
        let a1 = a_row[kk2 * 2 + 1] as i32;
        for (j, cell) in acc.iter_mut().enumerate() {
            *cell += a0 * stripe[j * 2] as i32 + a1 * stripe[j * 2 + 1] as i32;
        }
    }
    acc
}

#[inline]
fn run_micro(a_rows: [&[i16]; MR], panel: &[i16], kp: usize, simd: bool) -> [[i32; NR]; MR] {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true when `simd_available` detected
        // AVX-512F + VNNI, and callers uphold the slice-length contract.
        return unsafe { simd::micro_i8(a_rows, panel, kp) };
    }
    let _ = simd;
    micro_i8_portable(a_rows, panel, kp)
}

#[inline]
fn run_micro_row(a_row: &[i16], panel: &[i16], kp: usize, simd: bool) -> [i32; NR] {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: as in `run_micro`.
        return unsafe { simd::micro_i8_row(a_row, panel, kp) };
    }
    let _ = simd;
    micro_i8_portable_row(a_row, panel, kp)
}

/// Code matrix `B` packed once into pair-interleaved [`NR_I8`]-column
/// panels for repeated integer products (the weight side of every
/// projection). Panel `p` holds columns `p·NR ..` as `kp/2` stripes of
/// `2·NR` i16 values, adjacent `k` steps interleaved per column
/// (`stripe[2j] = b[2kk2][j]`, `stripe[2j+1] = b[2kk2+1][j]`), with `k`
/// rounded up to even (`kp`) and ragged tails zero-padded. The layout
/// feeds one `vpdpwssd` per stripe; the portable kernel reads it too.
#[derive(Debug, Clone)]
pub struct PackedBi8 {
    bp: Vec<i16>,
    k: usize,
    kp: usize,
    n: usize,
}

impl PackedBi8 {
    /// Packs row-major code matrix `b` (`k × n`, `|code| ≤ 127`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n` or `k > MAX_K_I8`.
    pub fn pack(b: &[i16], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "rhs length");
        assert!(k <= MAX_K_I8, "k={k} overflows i32 code accumulation");
        let kp = k.div_ceil(2) * 2;
        let panels = n.div_ceil(NR);
        let mut bp = vec![0i16; panels * kp * NR];
        for (kk, b_row) in b.chunks_exact(n).enumerate() {
            debug_assert!(b_row.iter().all(|&c| (-127..=127).contains(&c)));
            for (p, cols) in b_row.chunks(NR).enumerate() {
                let at = p * kp * NR + (kk / 2) * 2 * NR + (kk % 2);
                for (j, &c) in cols.iter().enumerate() {
                    bp[at + j * 2] = c;
                }
            }
        }
        Self { bp, k, kp, n }
    }

    /// Inner (contraction) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column count of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packed size in bytes (the weight-cache memory accounting hook).
    pub fn packed_bytes(&self) -> usize {
        self.bp.len() * std::mem::size_of::<i16>()
    }
}

/// Multiplies a row panel of padded `A` codes (`rows × kp`, row-major) by
/// packed panels into the matching output panel (`rows × n`, overwritten).
fn gemm_panel_i8(
    a_panel: &[i16],
    bp: &[i16],
    kp: usize,
    n: usize,
    out_panel: &mut [i32],
    simd: bool,
) {
    let rows = out_panel.len().checked_div(n).unwrap_or(0);
    let panel_len = kp * NR;
    let mut r = 0;
    while r + MR <= rows {
        let a_rows = [
            &a_panel[r * kp..(r + 1) * kp],
            &a_panel[(r + 1) * kp..(r + 2) * kp],
            &a_panel[(r + 2) * kp..(r + 3) * kp],
            &a_panel[(r + 3) * kp..(r + 4) * kp],
        ];
        for (p, panel) in bp.chunks_exact(panel_len).enumerate() {
            let c = p * NR;
            let w = NR.min(n - c);
            let acc = run_micro(a_rows, panel, kp, simd);
            for (i, acc_row) in acc.iter().enumerate() {
                out_panel[(r + i) * n + c..(r + i) * n + c + w].copy_from_slice(&acc_row[..w]);
            }
        }
        r += MR;
    }
    while r < rows {
        let a_row = &a_panel[r * kp..(r + 1) * kp];
        for (p, panel) in bp.chunks_exact(panel_len).enumerate() {
            let c = p * NR;
            let w = NR.min(n - c);
            let acc = run_micro_row(a_row, panel, kp, simd);
            out_panel[r * n + c..r * n + c + w].copy_from_slice(&acc[..w]);
        }
        r += 1;
    }
}

/// Zero-pads each `k`-length row of `a` to stride `kp` (no-op copy
/// avoided by callers when `kp == k`).
fn pad_rows(a: &[i16], m: usize, k: usize, kp: usize) -> Vec<i16> {
    let mut ap = vec![0i16; m * kp];
    for (src, dst) in a.chunks_exact(k).zip(ap.chunks_exact_mut(kp)) {
        dst[..k].copy_from_slice(src);
    }
    ap
}

/// A `*mut i32` that may cross thread boundaries; every user hands
/// disjoint index ranges to each pool task.
#[derive(Clone, Copy)]
struct SendPtrI32(*mut i32);

impl SendPtrI32 {
    #[inline]
    fn get(self) -> *mut i32 {
        self.0
    }
}

// SAFETY: see the struct docs — all uses partition the output buffer
// into disjoint per-task regions.
unsafe impl Send for SendPtrI32 {}
unsafe impl Sync for SendPtrI32 {}

/// Same contract for the product-LUT f64 output.
#[derive(Clone, Copy)]
struct SendPtrF64(*mut f64);

impl SendPtrF64 {
    #[inline]
    fn get(self) -> *mut f64 {
        self.0
    }
}

// SAFETY: as for `SendPtrI32`.
unsafe impl Send for SendPtrF64 {}
unsafe impl Sync for SendPtrF64 {}

/// Computes the exact `m × n` integer code product of row-major `a`
/// (`m × k`) and prepacked `b` into `out` (fully overwritten):
/// `out[r][c] = Σ_k a[r][k] · b[k][c]` in `i32`, using up to `threads`
/// pool workers. Bit-identical for every thread count and ISA (integer
/// accumulation is exact).
///
/// # Panics
///
/// Panics if slice lengths disagree with the packed dimensions.
pub fn gemm_i8_prepacked(a: &[i16], b: &PackedBi8, m: usize, out: &mut [i32], threads: usize) {
    let (k, kp, n) = (b.k, b.kp, b.n);
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(out.len(), m * n, "output length");
    let simd = simd_available();
    let padded;
    let a_panel: &[i16] = if kp == k {
        a
    } else {
        padded = pad_rows(a, m, k, kp);
        &padded
    };
    let macs = m * k * n;
    let threads = if macs >= PAR_MIN_MACS { threads } else { 1 };
    if m == 1 {
        let threads = threads.clamp(1, n.div_ceil(NR));
        if threads == 1 {
            gemm_panel_i8(a_panel, &b.bp, kp, n, out, simd);
            return;
        }
        // Column split at panel granularity: each task owns a contiguous
        // run of packed panels and the matching output columns.
        let panels = n.div_ceil(NR);
        let panels_per = panels.div_ceil(threads);
        let tasks = panels.div_ceil(panels_per);
        let panel_len = kp * NR;
        let bp = &b.bp;
        let out_ptr = SendPtrI32(out.as_mut_ptr());
        WorkerPool::global().run(tasks, &move |t| {
            let p0 = t * panels_per;
            let c0 = p0 * NR;
            let width = (panels_per * NR).min(n - c0);
            // SAFETY: column chunks are disjoint per task index.
            let out_chunk = unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(c0), width) };
            let bp_chunk = &bp[p0 * panel_len..((p0 + panels_per).min(panels)) * panel_len];
            gemm_panel_i8(a_panel, bp_chunk, kp, width, out_chunk, simd);
        });
        return;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        gemm_panel_i8(a_panel, &b.bp, kp, n, out, simd);
        return;
    }
    let rows_per = m.div_ceil(threads);
    let tasks = m.div_ceil(rows_per);
    let bp = &b.bp;
    let out_ptr = SendPtrI32(out.as_mut_ptr());
    WorkerPool::global().run(tasks, &move |t| {
        let r0 = t * rows_per;
        let rows = rows_per.min(m - r0);
        // SAFETY: row panels are disjoint per task index.
        let out_panel =
            unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(r0 * n), rows * n) };
        gemm_panel_i8(
            &a_panel[r0 * kp..(r0 + rows) * kp],
            bp,
            kp,
            n,
            out_panel,
            simd,
        );
    });
}

/// Packs `b` and runs [`gemm_i8_prepacked`] — the transient-operand entry
/// point (per-step attention scores/values, where `B` changes every call).
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions or
/// `k > MAX_K_I8`.
pub fn gemm_i8(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
    threads: usize,
) {
    let packed = PackedBi8::pack(b, k, n);
    gemm_i8_prepacked(a, &packed, m, out, threads);
}

/// One grouped row: exact ascending-`k` axpy in `i32` (ordering is
/// irrelevant for exact integer sums; axpy autovectorizes without a
/// packing pass, which transient per-group operands would not amortize).
#[inline]
fn grouped_row_i8(a_row: &[i16], b_block: &[i16], n: usize, out_row: &mut [i32]) {
    out_row.fill(0);
    for (&a_k, b_row) in a_row.iter().zip(b_block.chunks_exact(n)) {
        let a_v = a_k as i32;
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += a_v * bv as i32;
        }
    }
}

/// Grouped integer row products mirroring [`crate::gemm::gemm_grouped`]:
/// row `g` of `a` (`groups × k`) times block `g` of `b` (`groups` stacked
/// `k × n` blocks) into row `g` of `out` — the batched-attention shape
/// where every group has its own transient right operand.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions or
/// `k > MAX_K_I8`.
pub fn gemm_i8_grouped(
    a: &[i16],
    b: &[i16],
    groups: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
    threads: usize,
) {
    assert_eq!(a.len(), groups * k, "lhs length");
    assert_eq!(b.len(), groups * k * n, "rhs length");
    assert_eq!(out.len(), groups * n, "output length");
    assert!(k <= MAX_K_I8, "k={k} overflows i32 code accumulation");
    if groups == 0 {
        return;
    }
    let macs = groups * k * n;
    let threads = if macs >= PAR_MIN_MACS {
        threads.clamp(1, groups)
    } else {
        1
    };
    if threads == 1 {
        for g in 0..groups {
            grouped_row_i8(
                &a[g * k..(g + 1) * k],
                &b[g * k * n..(g + 1) * k * n],
                n,
                &mut out[g * n..(g + 1) * n],
            );
        }
        return;
    }
    let rows_per = groups.div_ceil(threads);
    let tasks = groups.div_ceil(rows_per);
    let out_ptr = SendPtrI32(out.as_mut_ptr());
    WorkerPool::global().run(tasks, &move |t| {
        let g0 = t * rows_per;
        let rows = rows_per.min(groups - g0);
        for g in g0..g0 + rows {
            // SAFETY: group rows are disjoint per task index.
            let out_row = unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(g * n), n) };
            grouped_row_i8(
                &a[g * k..(g + 1) * k],
                &b[g * k * n..(g + 1) * k * n],
                n,
                out_row,
            );
        }
    });
}

/// Length the product table passed to [`gemm_product_lut`] must have:
/// `a` indices are pre-shifted byte codes (`(code + bias) << 8`), `b`
/// indices plain biased bytes, so the table is a dense 256×256 grid.
pub const PRODUCT_LUT_LEN: usize = 1 << 16;

/// One output row chunk of the product-LUT gather, ascending-`k` per cell
/// with a single accumulator — the f64 pipeline's exact reduction.
#[inline]
fn lut_row_chunk(
    a_row: &[u16],
    b_idx: &[u8],
    k: usize,
    n: usize,
    c0: usize,
    table: &[f64],
    out_chunk: &mut [f64],
) {
    let mut c = 0;
    while c < out_chunk.len() {
        let w = LUT_JT.min(out_chunk.len() - c);
        let mut acc = [0.0f64; LUT_JT];
        for (kk, &ai) in a_row.iter().enumerate().take(k) {
            let ai = ai as usize;
            let b_seg = &b_idx[kk * n + c0 + c..kk * n + c0 + c + w];
            for (cell, &bv) in acc.iter_mut().zip(b_seg) {
                *cell += table[ai | bv as usize];
            }
        }
        out_chunk[c..c + w].copy_from_slice(&acc[..w]);
        c += w;
    }
}

/// Accumulates precomputed code-pair products: `out[r][c] = Σ_k
/// table[a_idx[r][k] | b_idx[k][c]]`, each cell one ascending-`k` f64
/// reduction from `0.0` — term values **and** reduction order match the
/// f64 pipeline exactly (each table entry is the rounded product of the
/// two dequantized amplitudes), so the result is bit-identical to
/// dequantizing both operands and running [`crate::gemm::gemm`], for any
/// driver and any thread count.
///
/// `a_idx` is `m × k` of pre-shifted biased codes (`(code+bias) << 8`);
/// `b_idx` is `k × n` of biased codes; `table` is the dense
/// [`PRODUCT_LUT_LEN`] grid.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_product_lut(
    a_idx: &[u16],
    b_idx: &[u8],
    m: usize,
    k: usize,
    n: usize,
    table: &[f64],
    out: &mut [f64],
    threads: usize,
) {
    assert_eq!(a_idx.len(), m * k, "lhs length");
    assert_eq!(b_idx.len(), k * n, "rhs length");
    assert_eq!(out.len(), m * n, "output length");
    assert_eq!(table.len(), PRODUCT_LUT_LEN, "product table length");
    let macs = m * k * n;
    let threads = if macs >= PAR_MIN_MACS { threads } else { 1 };
    if m == 1 {
        let threads = threads.clamp(1, n);
        if threads == 1 {
            lut_row_chunk(a_idx, b_idx, k, n, 0, table, out);
            return;
        }
        let chunk = n.div_ceil(threads);
        let tasks = n.div_ceil(chunk);
        let out_ptr = SendPtrF64(out.as_mut_ptr());
        WorkerPool::global().run(tasks, &move |t| {
            let c0 = t * chunk;
            let width = chunk.min(n - c0);
            // SAFETY: column chunks are disjoint per task index.
            let out_chunk = unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(c0), width) };
            lut_row_chunk(a_idx, b_idx, k, n, c0, table, out_chunk);
        });
        return;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        for (a_row, out_row) in a_idx.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            lut_row_chunk(a_row, b_idx, k, n, 0, table, out_row);
        }
        return;
    }
    let rows_per = m.div_ceil(threads);
    let tasks = m.div_ceil(rows_per);
    let out_ptr = SendPtrF64(out.as_mut_ptr());
    WorkerPool::global().run(tasks, &move |t| {
        let r0 = t * rows_per;
        let rows = rows_per.min(m - r0);
        for r in r0..r0 + rows {
            // SAFETY: output rows are disjoint per task index.
            let out_row = unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(r * n), n) };
            lut_row_chunk(&a_idx[r * k..(r + 1) * k], b_idx, k, n, 0, table, out_row);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_codes(len: usize, seed: u64) -> Vec<i16> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..len)
            .map(|_| (rng.gen_range_f64(-127.0, 128.0).floor() as i16).clamp(-127, 127))
            .collect()
    }

    fn reference(a: &[i16], b: &[i16], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for r in 0..m {
            for kk in 0..k {
                let x = a[r * k + kk] as i32;
                for c in 0..n {
                    out[r * n + c] += x * b[kk * n + c] as i32;
                }
            }
        }
        out
    }

    // Rectangular, prime, and degenerate shapes (satellite: property
    // tests across thread counts 1/2/7).
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 64, 64),
        (1, 128, 640),
        (2, 100, 3),
        (3, 31, 1),
        (4, 4, 4),
        (5, 7, 3),
        (7, 1, 7),
        (13, 17, 19),
        (16, 16, 16),
        (33, 17, 29),
        (47, 53, 61),
        (64, 64, 64),
        (65, 64, 129),
    ];

    #[test]
    fn integer_kernel_matches_reference_for_all_shapes_and_threads() {
        for &(m, k, n) in SHAPES {
            let a = random_codes(m * k, 900 + (m * k) as u64);
            let b = random_codes(k * n, 901 + (k * n) as u64);
            let want = reference(&a, &b, m, k, n);
            for threads in [1, 2, 7] {
                let mut got = vec![i32::MIN; m * n];
                gemm_i8(&a, &b, m, k, n, &mut got, threads);
                assert_eq!(got, want, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn prepacked_matches_packing_entry() {
        for &(m, k, n) in &[(1, 128, 640), (5, 7, 3), (33, 17, 29), (65, 64, 129)] {
            let a = random_codes(m * k, 70);
            let b = random_codes(k * n, 71);
            let packed = PackedBi8::pack(&b, k, n);
            assert_eq!((packed.k(), packed.n()), (k, n));
            assert!(packed.packed_bytes() >= k * n * 2);
            for threads in [1, 2, 7] {
                let mut plain = vec![0i32; m * n];
                let mut pre = vec![0i32; m * n];
                gemm_i8(&a, &b, m, k, n, &mut plain, threads);
                gemm_i8_prepacked(&a, &packed, m, &mut pre, threads);
                assert_eq!(pre, plain, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn portable_and_simd_micro_kernels_agree() {
        if !simd_available() {
            return; // portable path is the reference on this machine
        }
        for &(m, k, n) in &[(8, 34, 32), (5, 7, 19), (4, 2, 16)] {
            let a = random_codes(m * k, 81);
            let b = random_codes(k * n, 82);
            let packed = PackedBi8::pack(&b, k, n);
            let kp = packed.kp;
            let ap = pad_rows(&a, m, k, kp);
            let mut via_simd = vec![0i32; m * n];
            let mut via_portable = vec![0i32; m * n];
            gemm_panel_i8(&ap, &packed.bp, kp, n, &mut via_simd, true);
            gemm_panel_i8(&ap, &packed.bp, kp, n, &mut via_portable, false);
            assert_eq!(via_simd, via_portable, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn grouped_matches_per_group_reference() {
        for &(g, k, n) in &[
            (1, 16, 16),
            (3, 7, 5),
            (8, 32, 96),
            (16, 64, 512),
            (5, 1, 9),
        ] {
            let a = random_codes(g * k, 60 + g as u64);
            let b = random_codes(g * k * n, 61 + (k * n) as u64);
            let mut want = vec![0i32; g * n];
            for r in 0..g {
                let row = reference(
                    &a[r * k..(r + 1) * k],
                    &b[r * k * n..(r + 1) * k * n],
                    1,
                    k,
                    n,
                );
                want[r * n..(r + 1) * n].copy_from_slice(&row);
            }
            for threads in [1, 2, 7] {
                let mut got = vec![i32::MIN; g * n];
                gemm_i8_grouped(&a, &b, g, k, n, &mut got, threads);
                assert_eq!(got, want, "g={g} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn grouped_zero_groups_is_noop() {
        let mut out: Vec<i32> = vec![];
        gemm_i8_grouped(&[], &[], 0, 4, 4, &mut out, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn extreme_codes_do_not_overflow() {
        let (m, k, n) = (2, 257, 3);
        let a = vec![127i16; m * k];
        let b = vec![-127i16; k * n];
        let mut got = vec![0i32; m * n];
        gemm_i8(&a, &b, m, k, n, &mut got, 1);
        assert!(got.iter().all(|&v| v == 257 * 127 * -127));
    }

    #[test]
    fn max_k_guard_is_sane() {
        const { assert!(MAX_K_I8 > 100_000) };
        assert!((MAX_K_I8 as i64) * 127 * 127 <= i32::MAX as i64);
        assert!(((MAX_K_I8 + 1) as i64) * 127 * 127 > i32::MAX as i64);
    }

    #[test]
    fn product_lut_matches_scalar_gather_for_all_threads() {
        // Synthetic table: any dense 256×256 grid exercises the indexing.
        let mut table = vec![0.0f64; PRODUCT_LUT_LEN];
        let mut rng = SplitMix64::seed_from_u64(0x9DAC);
        for v in table.iter_mut() {
            *v = rng.gen_range_f64(-1.0, 1.0);
        }
        for &(m, k, n) in &[
            (1, 5, 3),
            (1, 128, 640),
            (4, 17, 29),
            (13, 64, 80),
            (65, 64, 129),
        ] {
            let mut rng = SplitMix64::seed_from_u64(7000 + (m * k * n) as u64);
            let a_idx: Vec<u16> = (0..m * k)
                .map(|_| ((rng.gen_range_f64(0.0, 255.0) as u16) & 0xFF) << 8)
                .collect();
            let b_idx: Vec<u8> = (0..k * n)
                .map(|_| rng.gen_range_f64(0.0, 255.0) as u8)
                .collect();
            let mut want = vec![0.0f64; m * n];
            for r in 0..m {
                for c in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += table[(a_idx[r * k + kk] as usize) | b_idx[kk * n + c] as usize];
                    }
                    want[r * n + c] = acc;
                }
            }
            for threads in [1, 2, 7] {
                let mut got = vec![f64::NAN; m * n];
                gemm_product_lut(&a_idx, &b_idx, m, k, n, &table, &mut got, threads);
                assert_eq!(got, want, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }
}
