//! Output analog-to-digital converter.
//!
//! After the DDot units produce analog dot products, ADCs digitize the
//! balanced-detector outputs back into the electrical domain (visible as
//! the ADC slice of the paper's power breakdowns, Figs. 5 and 11). The
//! functional model quantizes a bounded analog value onto a signed code
//! grid with configurable full-scale range and clipping.

/// A signed ADC with `bits` resolution over `[−full_scale, full_scale]`.
///
/// # Examples
///
/// ```
/// use pdac_core::Adc;
///
/// let adc = Adc::new(8, 2.0)?;
/// let code = adc.sample(1.0);
/// assert_eq!(code, 64); // 1.0 / 2.0 · 127 ≈ 63.5 → 64
/// assert!((adc.value_of(code) - 1.0).abs() < adc.lsb());
/// # Ok::<(), pdac_core::adc::AdcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    bits: u8,
    full_scale: f64,
}

/// Errors from [`Adc`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdcError {
    /// Bit width outside `2..=16`.
    UnsupportedBits(u8),
    /// Full-scale range non-positive or non-finite.
    BadFullScale,
}

impl std::fmt::Display for AdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdcError::UnsupportedBits(b) => write!(f, "bit width {b} outside 2..=16"),
            AdcError::BadFullScale => write!(f, "full scale must be positive and finite"),
        }
    }
}

impl std::error::Error for AdcError {}

impl Adc {
    /// Creates an ADC.
    ///
    /// # Errors
    ///
    /// Returns [`AdcError`] for invalid parameters.
    pub fn new(bits: u8, full_scale: f64) -> Result<Self, AdcError> {
        if !(2..=16).contains(&bits) {
            return Err(AdcError::UnsupportedBits(bits));
        }
        if !(full_scale.is_finite() && full_scale > 0.0) {
            return Err(AdcError::BadFullScale);
        }
        Ok(Self { bits, full_scale })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale input magnitude.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Largest output code magnitude.
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// One least-significant-bit step in input units.
    pub fn lsb(&self) -> f64 {
        self.full_scale / self.max_code() as f64
    }

    /// Samples an analog value to a code (round-to-nearest, clipping at
    /// full scale).
    pub fn sample(&self, x: f64) -> i32 {
        let m = self.max_code() as f64;
        (x / self.full_scale * m).round().clamp(-m, m) as i32
    }

    /// The analog value a code represents.
    pub fn value_of(&self, code: i32) -> f64 {
        let m = self.max_code();
        code.clamp(-m, m) as f64 / m as f64 * self.full_scale
    }

    /// Round-trips an analog value through the converter.
    pub fn requantize(&self, x: f64) -> f64 {
        self.value_of(self.sample(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_error_bounded_by_half_lsb() {
        let adc = Adc::new(8, 4.0).unwrap();
        let mut x = -4.0;
        while x <= 4.0 {
            let err = (adc.requantize(x) - x).abs();
            assert!(err <= adc.lsb() / 2.0 + 1e-12, "x={x}");
            x += 0.0173;
        }
    }

    #[test]
    fn clipping_at_full_scale() {
        let adc = Adc::new(8, 1.0).unwrap();
        assert_eq!(adc.sample(5.0), 127);
        assert_eq!(adc.sample(-5.0), -127);
        assert_eq!(adc.requantize(5.0), 1.0);
    }

    #[test]
    fn zero_is_exact() {
        let adc = Adc::new(6, 1.0).unwrap();
        assert_eq!(adc.sample(0.0), 0);
        assert_eq!(adc.value_of(0), 0.0);
    }

    #[test]
    fn lsb_scales_with_resolution() {
        let a = Adc::new(4, 1.0).unwrap();
        let b = Adc::new(8, 1.0).unwrap();
        assert!(b.lsb() < a.lsb() / 15.0);
    }

    #[test]
    fn validation() {
        assert_eq!(Adc::new(1, 1.0), Err(AdcError::UnsupportedBits(1)));
        assert_eq!(Adc::new(8, 0.0), Err(AdcError::BadFullScale));
        assert_eq!(Adc::new(8, f64::INFINITY), Err(AdcError::BadFullScale));
    }
}
