//! Criterion benches of the power/energy model evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pdac_bench::lt_b_models;
use pdac_nn::config::TransformerConfig;
use pdac_nn::workload::op_trace;
use pdac_power::EnergyModel;

fn bench_power(c: &mut Criterion) {
    let (baseline, pdac) = lt_b_models();
    c.bench_function("power/breakdown", |b| {
        b.iter(|| baseline.breakdown(black_box(8)).total_watts())
    });
    let trace = op_trace(&TransformerConfig::bert_base());
    let em = EnergyModel::new(pdac);
    c.bench_function("power/bert_energy", |b| {
        b.iter(|| em.energy(black_box(&trace), 8).total_j())
    });
    c.bench_function("power/trace_generation", |b| {
        b.iter(|| op_trace(black_box(&TransformerConfig::deit_base())))
    });
}

criterion_group!(benches, bench_power);
criterion_main!(benches);
