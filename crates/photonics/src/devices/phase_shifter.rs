//! Phase shifter.
//!
//! Applies `x′ = e^{jφ}·x` (paper Eq. 4). In the DDot unit a fixed −90°
//! phase shifter rotates the `y` operand before the 50:50 coupler so the
//! coupler outputs become `x+y` and `j(x−y)` (up to the 1/√2 factor).
//! Static phase shifters are fully passive: "no extra energy consumption
//! because no need for external control".

use pdac_math::{CMat, Complex64};

/// A static phase shifter with phase `φ` in radians.
///
/// # Examples
///
/// ```
/// use pdac_photonics::PhaseShifter;
/// use pdac_math::Complex64;
///
/// let ps = PhaseShifter::minus_90();
/// let out = ps.shift(Complex64::ONE);
/// assert!(out.approx_eq(-Complex64::I, 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseShifter {
    phase: f64,
}

impl PhaseShifter {
    /// Creates a phase shifter with the given phase in radians.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not finite.
    pub fn new(phase: f64) -> Self {
        assert!(phase.is_finite(), "phase must be finite");
        Self { phase }
    }

    /// The −90° shifter used on the `y` arm of the DDot unit.
    pub fn minus_90() -> Self {
        Self::new(-std::f64::consts::FRAC_PI_2)
    }

    /// Phase in radians.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Applies the shifter to a single field amplitude.
    #[inline]
    pub fn shift(&self, e: Complex64) -> Complex64 {
        e * Complex64::cis(self.phase)
    }

    /// 2×2 transfer matrix acting on `(top, bottom)` with the shifter on
    /// the **bottom** arm — the configuration in the paper's DDot
    /// derivation (`diag(1, e^{−jπ/2})` acting on `(x, y)`).
    pub fn transfer_bottom(&self) -> CMat {
        CMat::from_rows(
            2,
            2,
            vec![
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::cis(self.phase),
            ],
        )
        .expect("2x2 literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn shift_preserves_magnitude() {
        let ps = PhaseShifter::new(1.234);
        let e = Complex64::new(0.6, -0.8);
        assert!((ps.shift(e).norm() - e.norm()).abs() < 1e-12);
    }

    #[test]
    fn pi_shift_negates() {
        let ps = PhaseShifter::new(PI);
        assert!(ps.shift(Complex64::ONE).approx_eq(-Complex64::ONE, 1e-12));
    }

    #[test]
    fn minus_90_rotates_to_minus_j() {
        let ps = PhaseShifter::minus_90();
        assert!((ps.phase() + FRAC_PI_2).abs() < 1e-15);
        assert!(ps
            .shift(Complex64::ONE)
            .approx_eq(Complex64::new(0.0, -1.0), 1e-12));
    }

    #[test]
    fn transfer_matrix_is_unitary() {
        let ps = PhaseShifter::new(0.37);
        assert!(ps.transfer_bottom().is_unitary(1e-12));
    }

    #[test]
    fn transfer_matrix_leaves_top_arm_alone() {
        let ps = PhaseShifter::minus_90();
        let m = ps.transfer_bottom();
        let out = m.matvec(&[Complex64::ONE, Complex64::ONE]).unwrap();
        assert!(out[0].approx_eq(Complex64::ONE, 1e-12));
        assert!(out[1].approx_eq(Complex64::new(0.0, -1.0), 1e-12));
    }

    #[test]
    fn composition_adds_phases() {
        let a = PhaseShifter::new(0.3);
        let b = PhaseShifter::new(0.9);
        let direct = PhaseShifter::new(1.2).shift(Complex64::ONE);
        let composed = b.shift(a.shift(Complex64::ONE));
        assert!(direct.approx_eq(composed, 1e-12));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_phase() {
        PhaseShifter::new(f64::NAN);
    }
}
