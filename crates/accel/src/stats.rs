//! Run statistics and energy integration.
//!
//! [`RunStats`] collects the activity counters of a simulated GEMM;
//! [`RunStats::energy_j`] integrates them against a `pdac-power`
//! [`PowerModel`] (compute power × runtime) plus per-byte memory energy,
//! so the two abstraction levels of the reproduction — analytical energy
//! modeling and functional simulation — stay consistent.

use crate::memory::TrafficCounters;
use crate::scheduler::TilingPlan;
use pdac_power::model::PowerModel;
use pdac_power::ArchConfig;
use std::fmt;

/// Per-byte energy of the on-chip SRAM hierarchy, picojoules. DRAM
/// streaming uses the calibrated FFN movement rate from `TechParams`.
const SRAM_PJ_PER_BYTE: f64 = 8.0;

/// Activity counters from one simulated GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Useful multiply-accumulates.
    pub macs: u64,
    /// Core-cycles of issued work.
    pub core_cycles: u64,
    /// Wall-clock cycles after distribution over cores.
    pub cycles: u64,
    /// Operand modulations (converter activations).
    pub conversions: u64,
    /// ADC samples.
    pub adc_samples: u64,
    /// Memory traffic.
    pub traffic: TrafficCounters,
}

impl RunStats {
    /// Builds stats from a tiling plan and traffic counters.
    pub fn from_plan(plan: &TilingPlan, traffic: TrafficCounters) -> Self {
        Self {
            macs: plan.shape.macs(),
            core_cycles: plan.core_cycles,
            cycles: plan.cycles,
            conversions: plan.conversions,
            adc_samples: plan.adc_samples,
            traffic,
        }
    }

    /// Publishes these counters into the global telemetry collector under
    /// the `accel.stats.*` namespace, so the analytical layer and any
    /// functional run share one metrics view. No-op when telemetry is
    /// disabled (or compiled out).
    pub fn record_telemetry(&self) {
        pdac_telemetry::counter_add("accel.stats.macs", self.macs);
        pdac_telemetry::counter_add("accel.stats.core_cycles", self.core_cycles);
        pdac_telemetry::counter_add("accel.stats.cycles", self.cycles);
        pdac_telemetry::counter_add("accel.stats.conversions", self.conversions);
        pdac_telemetry::counter_add("accel.stats.adc_samples", self.adc_samples);
        pdac_telemetry::counter_add("accel.stats.bytes_total", self.traffic.total());
        pdac_telemetry::counter_add("accel.stats.bytes_dram", self.traffic.dram_total());
    }

    /// Runtime in seconds at the architecture clock.
    pub fn runtime_s(&self, arch: &ArchConfig) -> f64 {
        self.cycles as f64 / arch.clock_hz
    }

    /// Achieved fraction of peak throughput (0.0 for an empty run, so a
    /// zero-cycle plan cannot divide by zero).
    pub fn utilization(&self, arch: &ArchConfig) -> f64 {
        let peak = self.cycles as f64 * arch.macs_per_cycle() as f64;
        if peak == 0.0 {
            return 0.0;
        }
        self.macs as f64 / peak
    }

    /// Total energy in joules under `power`: compute power integrated
    /// over the runtime, plus SRAM traffic at a flat on-chip rate and
    /// DRAM traffic at the calibrated streaming rate.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn energy_j(&self, power: &PowerModel, bits: u8) -> f64 {
        let compute = power.breakdown(bits).total_watts() * self.runtime_s(power.arch());
        let sram_bytes = (self.traffic.total() - self.traffic.dram_total()) as f64;
        let movement = sram_bytes * SRAM_PJ_PER_BYTE * 1e-12
            + self.traffic.dram_total() as f64 * power.tech().ffn_movement_pj_per_byte * 1e-12;
        compute + movement
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MACs in {} cycles ({} conversions, {} ADC samples; {})",
            self.macs, self.cycles, self.conversions, self.adc_samples, self.traffic
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::GemmShape;
    use pdac_power::model::DriverKind;
    use pdac_power::TechParams;

    fn plan() -> (TilingPlan, ArchConfig) {
        let arch = ArchConfig::lt_b();
        (TilingPlan::plan(GemmShape::new(64, 64, 64), &arch), arch)
    }

    #[test]
    fn from_plan_copies_counts() {
        let (p, _) = plan();
        let s = RunStats::from_plan(&p, TrafficCounters::default());
        assert_eq!(s.macs, 64 * 64 * 64);
        assert_eq!(s.cycles, p.cycles);
        assert_eq!(s.conversions, p.conversions);
    }

    #[test]
    fn utilization_zero_cycles_is_zero() {
        let arch = ArchConfig::lt_b();
        let s = RunStats {
            macs: 0,
            core_cycles: 0,
            cycles: 0,
            conversions: 0,
            adc_samples: 0,
            traffic: TrafficCounters::default(),
        };
        assert_eq!(s.utilization(&arch), 0.0);
    }

    #[test]
    fn utilization_full_for_exact_fit() {
        let (p, arch) = plan();
        let s = RunStats::from_plan(&p, TrafficCounters::default());
        assert!((s.utilization(&arch) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_with_cycles() {
        let arch = ArchConfig::lt_b();
        let small = TilingPlan::plan(GemmShape::new(64, 64, 64), &arch);
        let large = TilingPlan::plan(GemmShape::new(128, 64, 64), &arch);
        let pm = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let es = RunStats::from_plan(&small, TrafficCounters::default()).energy_j(&pm, 8);
        let el = RunStats::from_plan(&large, TrafficCounters::default()).energy_j(&pm, 8);
        assert!((el / es - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pdac_energy_below_baseline_energy() {
        let (p, arch) = plan();
        let s = RunStats::from_plan(&p, TrafficCounters::default());
        let base = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::ElectricalDac,
        );
        let pdac = PowerModel::new(arch, TechParams::calibrated(), DriverKind::PhotonicDac);
        assert!(s.energy_j(&pdac, 8) < s.energy_j(&base, 8));
    }

    #[test]
    fn movement_energy_added() {
        let (p, arch) = plan();
        let traffic = TrafficCounters {
            dram_read: 1_000_000,
            ..Default::default()
        };
        let with = RunStats::from_plan(&p, traffic);
        let without = RunStats::from_plan(&p, TrafficCounters::default());
        let pm = PowerModel::new(arch, TechParams::calibrated(), DriverKind::PhotonicDac);
        let delta = with.energy_j(&pm, 8) - without.energy_j(&pm, 8);
        let expected = 1e6 * 140.0e-12;
        assert!((delta - expected).abs() < 1e-9);
    }

    #[test]
    fn display_contains_counts() {
        let (p, _) = plan();
        let s = RunStats::from_plan(&p, TrafficCounters::default());
        let text = s.to_string();
        assert!(text.contains("MACs"));
        assert!(text.contains("cycles"));
    }
}
