//! Ablation studies extending the paper's evaluation.
//!
//! * [`k_sweep`] — the Eq. 17 objective and worst-case error as a
//!   function of the breakpoint `k`, exposing why 0.7236 is optimal;
//! * [`bit_sweep`] — power savings across bit widths 2..=12,
//!   generalizing the paper's 4/8-bit points and locating where the DAC
//!   overtakes every other component;
//! * [`approx_ladder`] — reconstruction error versus number of Taylor
//!   terms (what a hypothetical higher-order photonic decomposition
//!   would buy).

use crate::lt_b_models;
use pdac_core::approx::{integrated_error_objective, ArccosApprox};
use pdac_math::series::series_reconstruction_error;
use pdac_power::model::power_saving;
use pdac_power::Component;

/// One row of the k-sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KSweepPoint {
    /// Candidate breakpoint.
    pub k: f64,
    /// Eq. 17 integrated relative error.
    pub objective: f64,
    /// Worst-case reconstruction error of the resulting Eq. 18 form.
    pub max_error: f64,
}

/// Sweeps the breakpoint over `(0, 1)` with `n` interior points.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn k_sweep(n: usize) -> Vec<KSweepPoint> {
    assert!(n >= 2, "need at least two sweep points");
    (1..=n)
        .map(|i| {
            let k = i as f64 / (n + 1) as f64;
            let approx = ArccosApprox::three_segment(k);
            KSweepPoint {
                k,
                objective: integrated_error_objective(k),
                max_error: approx.max_reconstruction_error(4001).0,
            }
        })
        .collect()
}

/// Renders the k-sweep as a text report with the optimum marked.
pub fn k_sweep_report(n: usize) -> String {
    let points = k_sweep(n);
    let best = points
        .iter()
        .min_by(|a, b| a.objective.partial_cmp(&b.objective).expect("finite"))
        .expect("nonempty sweep");
    let mut out = String::from(
        "Ablation — breakpoint sweep for Eq. 17\n======================================\n\
         \n    k       objective   max.err%\n",
    );
    for p in &points {
        let marker = if (p.k - best.k).abs() < 1e-12 {
            "  <-- minimum"
        } else {
            ""
        };
        out.push_str(&format!(
            "  {:.3}   {:9.5}   {:7.2}{marker}\n",
            p.k,
            p.objective,
            100.0 * p.max_error
        ));
    }
    out.push_str(&format!(
        "\nsweep minimum near k = {:.3}; exact solver: k = {:.4} (paper: 0.7236)\n",
        best.k,
        pdac_core::approx::solve_optimal_breakpoint(1e-7)
    ));
    out
}

/// One row of the bit sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitSweepPoint {
    /// Bit precision.
    pub bits: u8,
    /// Baseline total watts.
    pub baseline_watts: f64,
    /// P-DAC design total watts.
    pub pdac_watts: f64,
    /// Fractional saving.
    pub saving: f64,
    /// DAC share of the baseline.
    pub dac_share: f64,
}

/// Sweeps bit widths `2..=12` on LT-B.
pub fn bit_sweep() -> Vec<BitSweepPoint> {
    let (baseline, pdac) = lt_b_models();
    (2u8..=12)
        .map(|bits| {
            let b = baseline.breakdown(bits);
            BitSweepPoint {
                bits,
                baseline_watts: b.total_watts(),
                pdac_watts: pdac.breakdown(bits).total_watts(),
                saving: power_saving(&baseline, &pdac, bits),
                dac_share: b.share(Component::Dac),
            }
        })
        .collect()
}

/// Renders the bit sweep as a text report.
pub fn bit_sweep_report() -> String {
    let mut out = String::from(
        "Ablation — precision sweep on LT-B\n==================================\n\
         \n  bits   baseline W   P-DAC W   saving%   DAC share%\n",
    );
    for p in bit_sweep() {
        out.push_str(&format!(
            "  {:>4}   {:>10.2}   {:>7.2}   {:>7.1}   {:>10.1}\n",
            p.bits,
            p.baseline_watts,
            p.pdac_watts,
            100.0 * p.saving,
            100.0 * p.dac_share
        ));
    }
    out
}

/// Reconstruction error versus Taylor-series order (1 term = Eq. 15).
pub fn approx_ladder(max_terms: usize) -> Vec<(usize, f64)> {
    (1..=max_terms)
        .map(|t| (t, series_reconstruction_error(t, 4000)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_minimum_near_paper_value() {
        let points = k_sweep(39); // k = 0.025 .. 0.975
        let best = points
            .iter()
            .min_by(|a, b| a.objective.partial_cmp(&b.objective).unwrap())
            .unwrap();
        assert!((best.k - 0.7236).abs() < 0.05, "best k = {}", best.k);
    }

    #[test]
    fn k_sweep_objective_is_unimodal_enough() {
        let points = k_sweep(19);
        // Ends are worse than the interior minimum.
        let min = points
            .iter()
            .map(|p| p.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(points[0].objective > min);
        assert!(points.last().unwrap().objective > min);
    }

    #[test]
    fn bit_sweep_saving_grows_beyond_4_bits() {
        // Below 4 bits the fixed controller/driver savings dominate and
        // the curve is flat; from 4 bits on, the DAC's exponential term
        // drives strictly growing savings.
        let sweep = bit_sweep();
        for pair in sweep.windows(2) {
            assert!(pair[1].dac_share > pair[0].dac_share);
            if pair[0].bits >= 4 {
                assert!(
                    pair[1].saving > pair[0].saving,
                    "saving at {} bits not above {} bits",
                    pair[1].bits,
                    pair[0].bits
                );
            }
        }
    }

    #[test]
    fn dac_becomes_majority_beyond_8_bits() {
        let sweep = bit_sweep();
        let p8 = sweep.iter().find(|p| p.bits == 8).unwrap();
        assert!(p8.dac_share > 0.5);
        let p4 = sweep.iter().find(|p| p.bits == 4).unwrap();
        assert!(p4.dac_share < 0.25);
    }

    #[test]
    fn approx_ladder_decreases() {
        let ladder = approx_ladder(6);
        for pair in ladder.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-12);
        }
        // First rung is the paper's 15.9%.
        assert!((ladder[0].1 - 0.159).abs() < 3e-3);
    }

    #[test]
    fn reports_render() {
        assert!(k_sweep_report(9).contains("minimum"));
        assert!(bit_sweep_report().contains("DAC share"));
    }
}
