//! Regenerates paper Fig. 9: BERT-base energy breakdown, DAC vs P-DAC.
fn main() {
    print!("{}", pdac_bench::fig9_10::report_bert());
}
