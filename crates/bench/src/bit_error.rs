//! Digital link-error extension: how optical bit errors compound with
//! the P-DAC's analog approximation.
//!
//! The paper budgets only the analog arccos error (8.5%). But the
//! optical *digital* word feeding the P-DAC crosses a real link first;
//! at low SNR, slot flips corrupt codes before conversion — and a
//! flipped MSB is catastrophic where the analog error is merely
//! bounded. This study sweeps link SNR and reports the end-to-end
//! conversion error, locating the SNR floor at which the digital link
//! stops mattering relative to the 8.5% analog budget.

use pdac_core::pdac::PDac;
use pdac_core::MzmDriver;
use pdac_math::rng::SplitMix64;
use pdac_math::stats::Summary;
use pdac_photonics::ber::SlotReceiver;
use pdac_photonics::eo_interface::OpticalWord;

/// One row of the SNR sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitErrorRow {
    /// Link SNR in dB.
    pub snr_db: f64,
    /// Analytic slot error rate.
    pub slot_error_rate: f64,
    /// Mean end-to-end |relative error| of converted values.
    pub mean_error: f64,
    /// Worst observed |relative error|.
    pub worst_error: f64,
}

/// Sweeps link SNR, converting random codes through receive → P-DAC.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn sweep(snrs_db: &[f64], trials: usize) -> Vec<BitErrorRow> {
    assert!(trials > 0, "need at least one trial");
    let pdac = PDac::with_optimal_approx(8).expect("valid bits");
    snrs_db
        .iter()
        .map(|&snr| {
            let sigma = 1e-3 / 10f64.powf(snr / 20.0);
            let rx = SlotReceiver::new(1e-3, sigma).expect("valid receiver");
            let mut rng = SplitMix64::seed_from_u64(31_337);
            let mut errors = Summary::new();
            for _ in 0..trials {
                let code =
                    rng.gen_range_i64(32, 127) as i32 * if rng.gen_bool(0.5) { 1 } else { -1 };
                let ideal = code as f64 / 127.0;
                let word = OpticalWord::encode(code, 8).expect("in range");
                let received = rx.receive(&word, &mut rng);
                let out = pdac.convert(received.decode());
                errors.push(((out - ideal) / ideal).abs());
            }
            BitErrorRow {
                snr_db: snr,
                slot_error_rate: rx.slot_error_rate(),
                mean_error: errors.mean().expect("nonempty"),
                worst_error: errors.max().expect("nonempty"),
            }
        })
        .collect()
}

/// Renders the study.
pub fn report() -> String {
    let rows = sweep(&[8.0, 12.0, 16.0, 20.0, 26.0], 4000);
    let mut out = String::from(
        "Digital link errors × P-DAC analog error (8-bit, |code| >= 32)\n\
         ===============================================================\n\n\
         SNR dB   slot BER     mean err%   worst err%\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "  {:>5.0}   {:>9.2e}   {:>8.2}   {:>9.1}\n",
            r.snr_db,
            r.slot_error_rate,
            100.0 * r.mean_error,
            100.0 * r.worst_error
        ));
    }
    out.push_str(
        "\n(the analog budget alone gives mean ~4% / worst 8.5%; the link\n\
         must reach roughly 20 dB before digital flips vanish beneath the\n\
         analog floor — below that, MSB flips dominate with errors >100%)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_snr_converges_to_analog_floor() {
        let rows = sweep(&[26.0], 2000);
        // At Q(10) the link is error-free: only the 8.5%-bounded analog
        // error remains.
        assert!(rows[0].worst_error < 0.09, "{:?}", rows[0]);
        assert!(rows[0].mean_error < 0.06);
    }

    #[test]
    fn low_snr_blows_past_analog_budget() {
        let rows = sweep(&[8.0], 2000);
        assert!(rows[0].worst_error > 0.5, "{:?}", rows[0]);
    }

    #[test]
    fn error_monotone_in_snr() {
        let rows = sweep(&[10.0, 16.0, 24.0], 2000);
        assert!(rows[0].mean_error > rows[1].mean_error);
        assert!(rows[1].mean_error >= rows[2].mean_error);
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("slot BER"));
        assert!(r.contains("analog"));
    }
}
