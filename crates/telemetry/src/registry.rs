//! The metric registry: named counters, gauges, histograms and the span
//! event ring buffer, all behind one [`Collector`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, MonotonicClock};
use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::span::{OwnedSpan, Span, TraceCtx};
use crate::trace::TraceBuffer;

/// One completed span occurrence, stored in the in-memory ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Unique id within the collector (allocated at open, ≥ 1).
    pub id: u64,
    /// Id of the causal parent span (0 = root).
    pub parent: u64,
    /// Dense id of the recording thread (see [`crate::span::thread_id`]).
    pub thread: u64,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Nesting depth at the time the span was opened (0 = root).
    pub depth: u32,
    /// Optional user payload (e.g. a request id), surfaced in exports.
    pub arg: Option<u64>,
}

impl SpanEvent {
    pub fn elapsed_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Default capacity of the span-event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// A metrics collector: owns the registries, the clock and the event ring.
///
/// Cheap to create; tests build their own with a [`ManualClock`]
/// (`crate::clock::ManualClock`) while production code uses the process
/// global (see [`crate::global`]).
pub struct Collector {
    clock: Arc<dyn Clock>,
    enabled: AtomicBool,
    /// Span-event recording (metrics stay on when this is off — the
    /// "metrics-only" runtime level).
    tracing: AtomicBool,
    next_span_id: AtomicU64,
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    events: TraceBuffer,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Collector on the real monotonic clock, enabled.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Collector on an injected clock, enabled.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self::with_clock_and_capacity(clock, DEFAULT_EVENT_CAPACITY)
    }

    /// Collector on an injected clock with a custom span-event ring
    /// capacity, enabled.
    pub fn with_clock_and_capacity(clock: Arc<dyn Clock>, event_capacity: usize) -> Self {
        Self {
            clock,
            enabled: AtomicBool::new(true),
            tracing: AtomicBool::new(true),
            next_span_id: AtomicU64::new(1),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: TraceBuffer::new(event_capacity),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggles span-*event* recording ("full tracing" vs "metrics-only"):
    /// with tracing off, spans still time into their histograms but no
    /// [`SpanEvent`] is pushed to the ring.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::SeqCst);
    }

    /// Whether span events are being recorded.
    pub fn is_tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Allocates a fresh span id (≥ 1, unique within this collector).
    pub(crate) fn alloc_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Get or create the named counter.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Convenience: bump a counter if the collector is enabled.
    pub fn add(&self, name: &'static str, delta: u64) {
        if self.is_enabled() {
            self.counter(name).add(delta);
        }
    }

    /// Convenience: set a gauge if the collector is enabled.
    pub fn set(&self, name: &'static str, value: f64) {
        if self.is_enabled() {
            self.gauge(name).set(value);
        }
    }

    /// Convenience: record a histogram sample if the collector is enabled.
    pub fn observe(&self, name: &'static str, value: f64) {
        if self.is_enabled() {
            self.histogram(name).record(value);
        }
    }

    /// Open an RAII span timer; its wall time lands in the histogram
    /// named `name` (in seconds) when the guard drops. The span's parent
    /// is the thread's innermost open scoped span.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span::enter(self, name)
    }

    /// Open an RAII span whose parent is `ctx` instead of the thread's
    /// current span (it still becomes the current span until dropped).
    pub fn span_under(&self, name: &'static str, ctx: TraceCtx) -> Span<'_> {
        Span::enter_under(self, name, ctx)
    }

    /// Open a long-lived [`OwnedSpan`] detached from the nesting stack;
    /// `arg` (e.g. a request id) is surfaced in trace exports.
    pub fn open_span(
        &self,
        name: &'static str,
        parent: TraceCtx,
        arg: Option<u64>,
    ) -> OwnedSpan<'_> {
        OwnedSpan::open(self, name, parent, arg)
    }

    /// Record a span retroactively with explicit timestamps (for
    /// intervals only known after the fact, like queue wait). The event
    /// lands in the ring and the duration in the `name` histogram.
    pub fn record_span(
        &self,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        parent: TraceCtx,
        arg: Option<u64>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let event = SpanEvent {
            name,
            id: self.alloc_span_id(),
            parent: parent.0,
            thread: crate::span::thread_id(),
            start_ns,
            end_ns: end_ns.max(start_ns),
            depth: u32::from(parent.0 != 0),
            arg,
        };
        self.histogram(name)
            .record(event.elapsed_ns() as f64 * 1e-9);
        self.push_event(event);
    }

    pub(crate) fn push_event(&self, event: SpanEvent) {
        if self.is_tracing() {
            self.events.push(event);
        }
    }

    /// The span-event ring buffer (for drop accounting).
    pub fn trace_buffer(&self) -> &TraceBuffer {
        &self.events
    }

    /// Completed span events, oldest first (bounded ring buffer).
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.snapshot()
    }

    /// Clear all metrics and events (names are forgotten too).
    pub fn reset(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
        self.events.clear();
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.to_string(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| (name.to_string(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| {
                // Cumulative occupancy over the log2 grid, Prometheus
                // histogram style: underflow folds into the lowest bound,
                // overflow only appears in the implicit `+Inf` (= count).
                let mut buckets = Vec::new();
                let mut cumulative = h.underflow_count();
                if cumulative > 0 {
                    buckets.push((crate::metrics::bucket_bounds(0).0, cumulative));
                }
                for i in 0..crate::metrics::BUCKETS {
                    let in_bin = h.bucket_count(i);
                    if in_bin > 0 {
                        cumulative += in_bin;
                        buckets.push((crate::metrics::bucket_bounds(i).1, cumulative));
                    }
                }
                HistogramSummary {
                    name: name.to_string(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min().unwrap_or(0.0),
                    max: h.max().unwrap_or(0.0),
                    mean: h.mean(),
                    p50: h.quantile(0.5).unwrap_or(0.0),
                    p95: h.quantile(0.95).unwrap_or(0.0),
                    p99: h.quantile(0.99).unwrap_or(0.0),
                    buckets,
                }
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Summary statistics of one histogram at snapshot time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    /// Occupied log2 buckets as `(upper_bound, cumulative_count)` pairs,
    /// ascending. Underflow samples are folded into the lowest bound;
    /// overflow only shows up in the implicit `+Inf` bucket (= `count`).
    pub buckets: Vec<(f64, u64)>,
}

/// Point-in-time copy of a collector's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSummary>,
}

impl Snapshot {
    /// Serialize with the hand-rolled JSON writer (single line).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The snapshot as a [`Json`] value tree.
    pub fn to_json_value(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(name, v)| (name.clone(), Json::Int(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(name, v)| (name.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Arr(
            self.histograms
                .iter()
                .map(|h| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(h.name.clone())),
                        ("count".into(), Json::Int(h.count)),
                        ("sum".into(), Json::Num(h.sum)),
                        ("min".into(), Json::Num(h.min)),
                        ("max".into(), Json::Num(h.max)),
                        ("mean".into(), Json::Num(h.mean)),
                        ("p50".into(), Json::Num(h.p50)),
                        ("p95".into(), Json::Num(h.p95)),
                        ("p99".into(), Json::Num(h.p99)),
                        (
                            "buckets".into(),
                            Json::Arr(
                                h.buckets
                                    .iter()
                                    .map(|(le, cumulative)| {
                                        Json::Arr(vec![Json::Num(*le), Json::Int(*cumulative)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }

    /// Render a fixed-width text table (for stderr or stdout reports).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<44} {:>16}\n", "counter", "value"));
            out.push_str(&format!("{:-<44} {:-<16}\n", "", ""));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<44} {v:>16}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("\n{:<44} {:>16}\n", "gauge", "value"));
            out.push_str(&format!("{:-<44} {:-<16}\n", "", ""));
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<44} {v:>16.6e}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n{:<34} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "sum", "mean", "p50", "p95", "p99"
            ));
            out.push_str(&format!(
                "{:-<34} {:-<9} {:-<12} {:-<12} {:-<12} {:-<12} {:-<12}\n",
                "", "", "", "", "", "", ""
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<34} {:>9} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e}\n",
                    h.name, h.count, h.sum, h.mean, h.p50, h.p95, h.p99
                ));
            }
        }
        out
    }
}
