//! Regenerates paper Fig. 8: f(r) vs arccos(r) with the error profile.
fn main() {
    print!("{}", pdac_bench::fig8::report(41));
}
