//! `pdac-telemetry`: zero-dependency tracing and metrics for the P-DAC
//! simulation stack.
//!
//! The crate provides atomic [`Counter`]s and [`Gauge`]s, fixed-bucket
//! log-scale [`Histogram`]s, RAII [`Span`] timers with nesting, an
//! injectable [`Clock`] (monotonic or deterministic), and snapshot sinks
//! (in-memory, stderr table, JSONL with a hand-rolled serializer).
//!
//! # Two levels of "off"
//!
//! * **Compile time** — building with `default-features = false` (no
//!   `enabled` feature) replaces the whole hot-path API with inlineable
//!   zero-sized no-ops, so instrumented library code costs literally
//!   nothing.
//! * **Run time** — with the feature on, the global collector starts
//!   *disabled*; every entry point is a single relaxed atomic load until
//!   [`enable`] is called.
//!
//! # Quickstart
//!
//! ```
//! pdac_telemetry::enable();
//! {
//!     let _span = pdac_telemetry::span("demo.work");
//!     pdac_telemetry::counter_add("demo.items", 3);
//! }
//! let snap = pdac_telemetry::snapshot();
//! assert_eq!(snap.counters[0], ("demo.items".to_string(), 3));
//! println!("{}", snap.to_json());
//! # pdac_telemetry::disable();
//! # pdac_telemetry::reset();
//! ```

#[cfg(feature = "enabled")]
pub mod clock;
#[cfg(feature = "enabled")]
pub mod export;
#[cfg(feature = "enabled")]
pub mod health;
#[cfg(all(feature = "enabled", feature = "serve-http"))]
pub mod http;
#[cfg(feature = "enabled")]
pub mod json;
#[cfg(feature = "enabled")]
pub mod metrics;
#[cfg(feature = "enabled")]
pub mod registry;
#[cfg(feature = "enabled")]
pub mod sink;
#[cfg(feature = "enabled")]
pub mod span;
#[cfg(feature = "enabled")]
pub mod trace;

#[cfg(feature = "enabled")]
pub use clock::{Clock, ManualClock, MonotonicClock};
#[cfg(feature = "enabled")]
pub use export::{chrome_trace, prometheus_text};
#[cfg(feature = "enabled")]
pub use health::{AlertRecord, HealthLedger, HealthStatus, Severity};
#[cfg(feature = "enabled")]
pub use json::Json;
#[cfg(feature = "enabled")]
pub use metrics::{Counter, Gauge, Histogram};
#[cfg(feature = "enabled")]
pub use registry::{Collector, HistogramSummary, Snapshot, SpanEvent};
#[cfg(feature = "enabled")]
pub use sink::{JsonlSink, MemorySink, Sink, StderrTableSink};
#[cfg(feature = "enabled")]
pub use span::{OwnedSpan, Span, TraceCtx};
#[cfg(feature = "enabled")]
pub use trace::TraceBuffer;

#[cfg(feature = "enabled")]
mod global {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;

    use crate::registry::{Collector, Snapshot, DEFAULT_EVENT_CAPACITY};
    use crate::span::{OwnedSpan, Span, TraceCtx};

    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    /// The process-wide collector (created on first use, starts disabled).
    /// The span-event ring capacity honours `PDAC_TRACE_CAPACITY` at first
    /// use (default [`DEFAULT_EVENT_CAPACITY`]).
    pub fn global() -> &'static Collector {
        GLOBAL.get_or_init(|| {
            let capacity = std::env::var("PDAC_TRACE_CAPACITY")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_EVENT_CAPACITY);
            Collector::with_clock_and_capacity(
                std::sync::Arc::new(crate::clock::MonotonicClock::new()),
                capacity,
            )
        })
    }

    /// Turn global collection on.
    pub fn enable() {
        global().set_enabled(true);
        ACTIVE.store(true, Ordering::SeqCst);
    }

    /// Turn global collection off; instrumentation returns to ~1 atomic
    /// load per call site.
    pub fn disable() {
        ACTIVE.store(false, Ordering::SeqCst);
        if let Some(c) = GLOBAL.get() {
            c.set_enabled(false);
        }
    }

    /// Whether the global collector is currently recording.
    #[inline]
    pub fn is_enabled() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Open a span against the global collector (inert when disabled).
    #[inline]
    pub fn span(name: &'static str) -> Span<'static> {
        if is_enabled() {
            global().span(name)
        } else {
            Span::noop()
        }
    }

    /// Open a span whose parent is `ctx` instead of the thread's current
    /// span (inert when disabled).
    #[inline]
    pub fn span_under(name: &'static str, ctx: TraceCtx) -> Span<'static> {
        if is_enabled() {
            global().span_under(name, ctx)
        } else {
            Span::noop()
        }
    }

    /// Open a long-lived detached span (see [`OwnedSpan`]); inert when
    /// disabled.
    #[inline]
    pub fn open_span(name: &'static str, parent: TraceCtx, arg: Option<u64>) -> OwnedSpan<'static> {
        if is_enabled() {
            global().open_span(name, parent, arg)
        } else {
            OwnedSpan::noop()
        }
    }

    /// Record a span retroactively with explicit timestamps (no-op when
    /// disabled).
    #[inline]
    pub fn record_span(
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        parent: TraceCtx,
        arg: Option<u64>,
    ) {
        if is_enabled() {
            global().record_span(name, start_ns, end_ns, parent, arg);
        }
    }

    /// The global clock's current time, for bracketing retroactive spans
    /// (0 when disabled so disabled timestamps are harmless).
    #[inline]
    pub fn now_ns() -> u64 {
        if is_enabled() {
            global().clock().now_ns()
        } else {
            0
        }
    }

    /// The innermost open scoped span on this thread, as a context.
    #[inline]
    pub fn current_ctx() -> TraceCtx {
        crate::span::current_ctx()
    }

    /// Toggle span-*event* recording on the global collector: with
    /// tracing off metrics still record ("metrics-only" level).
    pub fn set_tracing(on: bool) {
        global().set_tracing(on);
    }

    /// Whether the global collector records span events.
    pub fn is_tracing() -> bool {
        global().is_tracing()
    }

    /// Bump a global counter (no-op when disabled).
    #[inline]
    pub fn counter_add(name: &'static str, delta: u64) {
        if is_enabled() {
            global().counter(name).add(delta);
        }
    }

    /// Set a global gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(name: &'static str, value: f64) {
        if is_enabled() {
            global().gauge(name).set(value);
        }
    }

    /// Record a histogram sample globally (no-op when disabled).
    #[inline]
    pub fn observe(name: &'static str, value: f64) {
        if is_enabled() {
            global().histogram(name).record(value);
        }
    }

    /// Snapshot the global collector.
    pub fn snapshot() -> Snapshot {
        global().snapshot()
    }

    /// Clear every global metric and span event.
    pub fn reset() {
        global().reset();
    }
}

#[cfg(feature = "enabled")]
pub use global::{
    counter_add, current_ctx, disable, enable, gauge_set, global, is_enabled, is_tracing, now_ns,
    observe, open_span, record_span, reset, set_tracing, snapshot, span, span_under,
};

/// Whether the global health ledger has latched a critical drift alert
/// (see [`health`]). One relaxed atomic load; `false` until the sentinel
/// raises a critical alert.
#[cfg(feature = "enabled")]
#[inline]
pub fn health_critical() -> bool {
    health::critical_latched()
}

// ---------------------------------------------------------------------------
// Compile-time no-op surface (feature `enabled` off). Mirrors the hot-path
// API exactly so instrumented crates build unchanged; everything inlines to
// nothing.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod noop {
    /// Inert span guard (compile-time disabled build).
    #[must_use]
    pub struct Span;

    impl Span {
        #[inline(always)]
        pub fn noop() -> Self {
            Span
        }

        #[inline(always)]
        pub fn is_recording(&self) -> bool {
            false
        }

        #[inline(always)]
        pub fn ctx(&self) -> TraceCtx {
            TraceCtx::NONE
        }
    }

    /// Inert span context (compile-time disabled build).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct TraceCtx;

    impl TraceCtx {
        pub const NONE: TraceCtx = TraceCtx;

        #[inline(always)]
        pub fn id(&self) -> u64 {
            0
        }

        #[inline(always)]
        pub fn is_none(&self) -> bool {
            true
        }
    }

    /// Inert long-lived span (compile-time disabled build). Carries a
    /// phantom lifetime so `OwnedSpan<'static>` struct fields type-check
    /// identically in both builds.
    #[must_use]
    pub struct OwnedSpan<'a>(core::marker::PhantomData<&'a ()>);

    impl OwnedSpan<'_> {
        #[inline(always)]
        pub fn noop() -> Self {
            OwnedSpan(core::marker::PhantomData)
        }

        #[inline(always)]
        pub fn is_recording(&self) -> bool {
            false
        }

        #[inline(always)]
        pub fn ctx(&self) -> TraceCtx {
            TraceCtx::NONE
        }

        #[inline(always)]
        pub fn end(self) {}
    }

    #[inline(always)]
    pub fn enable() {}

    #[inline(always)]
    pub fn disable() {}

    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn span_under(_name: &'static str, _ctx: TraceCtx) -> Span {
        Span
    }

    #[inline(always)]
    pub fn open_span(
        _name: &'static str,
        _parent: TraceCtx,
        _arg: Option<u64>,
    ) -> OwnedSpan<'static> {
        OwnedSpan::noop()
    }

    #[inline(always)]
    pub fn record_span(
        _name: &'static str,
        _start_ns: u64,
        _end_ns: u64,
        _parent: TraceCtx,
        _arg: Option<u64>,
    ) {
    }

    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    #[inline(always)]
    pub fn current_ctx() -> TraceCtx {
        TraceCtx
    }

    #[inline(always)]
    pub fn set_tracing(_on: bool) {}

    #[inline(always)]
    pub fn is_tracing() -> bool {
        false
    }

    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    #[inline(always)]
    pub fn gauge_set(_name: &'static str, _value: f64) {}

    #[inline(always)]
    pub fn observe(_name: &'static str, _value: f64) {}

    #[inline(always)]
    pub fn health_critical() -> bool {
        false
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    counter_add, current_ctx, disable, enable, gauge_set, health_critical, is_enabled, is_tracing,
    now_ns, observe, open_span, record_span, set_tracing, span, span_under, OwnedSpan, Span,
    TraceCtx,
};
