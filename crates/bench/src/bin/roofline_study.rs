//! Extension: roofline placement of prefill vs decode on LT-B.
use pdac_accel::roofline::{analyze, ridge_intensity, BandwidthModel};
use pdac_nn::config::TransformerConfig;
use pdac_nn::generative::{arithmetic_intensity, decode_trace};
use pdac_nn::workload::op_trace;
use pdac_power::ArchConfig;

fn main() {
    let arch = ArchConfig::lt_b();
    println!("Roofline placement on LT-B (20.48 TMAC/s peak)");
    println!("==============================================\n");
    for (name, bw) in [
        ("HBM-class (400 GB/s)", BandwidthModel::hbm_class()),
        ("DDR-class (50 GB/s)", BandwidthModel::ddr_class()),
    ] {
        println!("{name}: ridge at {:.1} MAC/B", ridge_intensity(&arch, &bw));
        let config = TransformerConfig::bert_base();
        let prefill = op_trace(&config);
        let decode = decode_trace(&config, 512, 8);
        for (phase, trace) in [("prefill", &prefill), ("decode ", &decode)] {
            let macs = trace.total_macs();
            let bytes: u64 = trace.entries.iter().map(|e| e.bytes_at_8bit).sum();
            let p = analyze(&arch, &bw, macs, bytes, 0);
            println!(
                "  {phase}: {:>6.1} MAC/B -> {} (compute utilization {:.1}%)",
                arithmetic_intensity(trace),
                p.regime,
                100.0 * p.compute_utilization
            );
        }
        println!();
    }
    println!(
        "The paper's Fig. 11 is the compute-bound corner; generative\n\
         decoding lives deep in the DRAM-bound region, where idle optics\n\
         make the duty-cycle power model (breakdown_at_utilization) the\n\
         relevant one."
    );
}
