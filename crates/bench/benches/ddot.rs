//! Criterion benches of the photonic DDot unit across WDM sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pdac_photonics::DDotUnit;

fn bench_ddot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddot");
    for lambda in [4usize, 8, 16, 64] {
        let unit = DDotUnit::ideal(lambda);
        let x: Vec<f64> = (0..lambda).map(|i| (i as f64 / lambda as f64) - 0.5).collect();
        let y: Vec<f64> = (0..lambda).map(|i| 0.5 - (i as f64 / lambda as f64)).collect();
        group.bench_with_input(BenchmarkId::new("dot", lambda), &lambda, |b, _| {
            b.iter(|| unit.dot(black_box(&x), black_box(&y)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ddot);
criterion_main!(benches);
