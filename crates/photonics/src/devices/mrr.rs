//! Micro-ring resonator.
//!
//! An MRR "filters and selects specific wavelengths by resonating at
//! frequencies influenced by its structure, with precise tuning achieved
//! through temperature adjustments" (paper Fig. 1). We model an
//! add-drop ring with a Lorentzian drop-port response around the tuned
//! resonance: close to resonance light is captured (dropped), far away it
//! passes through. This is the mux/demux element of the WDM links and the
//! modulating element of the multi-bit EO interface.

use pdac_math::Complex64;

/// An add-drop micro-ring resonator tuned to a resonance wavelength.
///
/// # Examples
///
/// ```
/// use pdac_photonics::MicroRing;
///
/// let mrr = MicroRing::new(1550.0, 0.1);
/// // On resonance nearly all power drops.
/// assert!(mrr.drop_power_fraction(1550.0) > 0.99);
/// // Far off resonance nearly none does.
/// assert!(mrr.drop_power_fraction(1558.0) < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroRing {
    resonance_nm: f64,
    linewidth_nm: f64,
}

impl MicroRing {
    /// Creates a ring tuned to `resonance_nm` with full-width
    /// half-maximum `linewidth_nm`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn new(resonance_nm: f64, linewidth_nm: f64) -> Self {
        assert!(resonance_nm > 0.0, "resonance wavelength must be positive");
        assert!(linewidth_nm > 0.0, "linewidth must be positive");
        Self {
            resonance_nm,
            linewidth_nm,
        }
    }

    /// Resonance wavelength in nm.
    pub fn resonance_nm(&self) -> f64 {
        self.resonance_nm
    }

    /// FWHM linewidth in nm.
    pub fn linewidth_nm(&self) -> f64 {
        self.linewidth_nm
    }

    /// Quality factor `Q = λ₀ / FWHM`.
    pub fn q_factor(&self) -> f64 {
        self.resonance_nm / self.linewidth_nm
    }

    /// Retunes the resonance by `delta_nm` (thermal tuning; red-shift for
    /// positive heater drive).
    pub fn tuned_by(&self, delta_nm: f64) -> Self {
        Self::new(self.resonance_nm + delta_nm, self.linewidth_nm)
    }

    /// Fraction of optical power transferred to the drop port at
    /// `wavelength_nm` — a Lorentzian centred on the resonance.
    pub fn drop_power_fraction(&self, wavelength_nm: f64) -> f64 {
        let half = self.linewidth_nm / 2.0;
        let d = wavelength_nm - self.resonance_nm;
        half * half / (d * d + half * half)
    }

    /// Fraction of power continuing on the through port.
    pub fn through_power_fraction(&self, wavelength_nm: f64) -> f64 {
        1.0 - self.drop_power_fraction(wavelength_nm)
    }

    /// Splits a field amplitude at `wavelength_nm` into
    /// `(drop_amplitude, through_amplitude)`. Power is conserved.
    pub fn split(&self, e: Complex64, wavelength_nm: f64) -> (Complex64, Complex64) {
        let d = self.drop_power_fraction(wavelength_nm);
        (e.scale(d.sqrt()), e.scale((1.0 - d).sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_resonance_drops_everything() {
        let r = MicroRing::new(1550.0, 0.2);
        assert!((r.drop_power_fraction(1550.0) - 1.0).abs() < 1e-12);
        assert!(r.through_power_fraction(1550.0) < 1e-12);
    }

    #[test]
    fn half_maximum_at_half_linewidth() {
        let r = MicroRing::new(1550.0, 0.2);
        let at_hwhm = r.drop_power_fraction(1550.1);
        assert!((at_hwhm - 0.5).abs() < 1e-12);
    }

    #[test]
    fn q_factor() {
        let r = MicroRing::new(1550.0, 0.155);
        assert!((r.q_factor() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn thermal_tuning_shifts_resonance() {
        let r = MicroRing::new(1550.0, 0.1).tuned_by(0.8);
        assert_eq!(r.resonance_nm(), 1550.8);
        assert!(r.drop_power_fraction(1550.8) > 0.999);
        assert!(r.drop_power_fraction(1550.0) < 0.05);
    }

    #[test]
    fn split_conserves_power() {
        let r = MicroRing::new(1550.0, 0.1);
        let e = Complex64::new(0.7, -0.3);
        for &wl in &[1549.9, 1550.0, 1550.05, 1551.0] {
            let (drop, through) = r.split(e, wl);
            let total = drop.norm_sqr() + through.norm_sqr();
            assert!((total - e.norm_sqr()).abs() < 1e-12, "wl={wl}");
        }
    }

    #[test]
    fn neighbour_channel_isolation() {
        // 0.8 nm away with 0.1 nm linewidth: < 0.5% crosstalk.
        let r = MicroRing::new(1550.0, 0.1);
        assert!(r.drop_power_fraction(1550.8) < 0.005);
    }

    #[test]
    #[should_panic(expected = "linewidth")]
    fn rejects_zero_linewidth() {
        MicroRing::new(1550.0, 0.0);
    }
}
