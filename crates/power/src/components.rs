//! Hardware components and their bit-precision scaling laws.
//!
//! Each component of the LT-B power breakdown (paper Figs. 5 and 11) gets
//! a parametric unit model. The scaling laws encode the physics the paper
//! leans on:
//!
//! * **Electrical DAC** — `E(b) = α·b + β·2^b` pJ/conversion: a linear
//!   digital-switching term plus an exponential capacitor-array term (the
//!   switched-capacitor architecture of the paper's reference DAC, Caragiulo et al.).
//!   This is why "as bit precision increases ... DAC power consumption
//!   becomes a critical factor".
//! * **ADC** — linear in `b` (the paper's ADC slice grows only ~2× from
//!   4-bit to 8-bit, so its model is SAR-like with bit-serial cycles).
//! * **Laser** — exponential per-bit growth: each extra bit of detected
//!   precision demands a larger optical SNR budget.
//! * **P-DAC unit** — linear in `b`: one photodetector + TIA branch per
//!   bit slot, plus the integrated MZM bias ("its power usage dependent on
//!   the reference voltage").
//! * **MZM driver, controller, SRAM + digital** — the baseline's
//!   remaining electrical support, linear or constant in `b`.

use std::fmt;

/// A component of the accelerator power breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Comb laser wall-plug power.
    Laser,
    /// Electrical DAC array (baseline only).
    Dac,
    /// DAC control logic computing drive voltages (baseline only).
    Controller,
    /// MZM driver amplifiers (baseline only; the P-DAC integrates its MZM).
    MzmDriver,
    /// P-DAC units: per-bit PD + TIA branches, summing network, MZM bias.
    PDac,
    /// Output ADC array.
    Adc,
    /// On-chip SRAM and remaining digital logic.
    SramDigital,
}

impl Component {
    /// All components in canonical display order.
    pub const ALL: [Component; 7] = [
        Component::Laser,
        Component::Dac,
        Component::Controller,
        Component::MzmDriver,
        Component::PDac,
        Component::Adc,
        Component::SramDigital,
    ];
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Component::Laser => "Laser",
            Component::Dac => "DAC",
            Component::Controller => "Controller",
            Component::MzmDriver => "MZM driver",
            Component::PDac => "P-DAC",
            Component::Adc => "ADC",
            Component::SramDigital => "SRAM+digital",
        };
        f.write_str(name)
    }
}

/// Per-conversion energy of the baseline electrical DAC:
/// `E(b) = linear_pj_per_bit·b + exp_pj·2^b` picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacEnergyLaw {
    /// Digital switching term coefficient (pJ per bit).
    pub linear_pj_per_bit: f64,
    /// Capacitor-array term coefficient (pJ per `2^b`).
    pub exp_pj: f64,
}

impl DacEnergyLaw {
    /// Energy per conversion at `bits` precision, in picojoules.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn energy_pj(&self, bits: u8) -> f64 {
        assert!((2..=16).contains(&bits), "bits outside 2..=16");
        self.linear_pj_per_bit * bits as f64 + self.exp_pj * (1u64 << bits) as f64
    }
}

/// Laser wall-plug power law: `P(b) = base_watts · growth^(b − 4)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaserPowerLaw {
    /// Wall-plug power at the 4-bit reference point, in watts.
    pub base_watts_at_4bit: f64,
    /// Multiplicative growth per extra bit of precision.
    pub growth_per_bit: f64,
}

impl LaserPowerLaw {
    /// Wall-plug watts at `bits` precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn watts(&self, bits: u8) -> f64 {
        assert!((2..=16).contains(&bits), "bits outside 2..=16");
        self.base_watts_at_4bit * self.growth_per_bit.powi(bits as i32 - 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac_law_is_superlinear() {
        let law = DacEnergyLaw {
            linear_pj_per_bit: 0.05,
            exp_pj: 0.01,
        };
        let e4 = law.energy_pj(4);
        let e8 = law.energy_pj(8);
        assert!(e8 > 2.0 * e4, "doubling bits must more than double energy");
    }

    #[test]
    fn dac_law_components() {
        let law = DacEnergyLaw {
            linear_pj_per_bit: 1.0,
            exp_pj: 0.0,
        };
        assert_eq!(law.energy_pj(8), 8.0);
        let law = DacEnergyLaw {
            linear_pj_per_bit: 0.0,
            exp_pj: 1.0,
        };
        assert_eq!(law.energy_pj(4), 16.0);
    }

    #[test]
    fn laser_law_reference_point() {
        let law = LaserPowerLaw {
            base_watts_at_4bit: 5.0,
            growth_per_bit: 1.3,
        };
        assert_eq!(law.watts(4), 5.0);
        assert!((law.watts(6) - 5.0 * 1.69).abs() < 1e-9);
        assert!(law.watts(3) < 5.0);
    }

    #[test]
    fn component_display_and_order() {
        assert_eq!(Component::Laser.to_string(), "Laser");
        assert_eq!(Component::PDac.to_string(), "P-DAC");
        assert_eq!(Component::ALL.len(), 7);
    }

    #[test]
    #[should_panic(expected = "bits outside")]
    fn dac_law_rejects_bad_bits() {
        DacEnergyLaw {
            linear_pj_per_bit: 1.0,
            exp_pj: 1.0,
        }
        .energy_pj(1);
    }
}
