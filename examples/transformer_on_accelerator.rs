//! Run an entire transformer forward pass *on* the simulated
//! Lightening-Transformer: every matmul executes through quantization,
//! the configured converter, the photonic DDot units and the output
//! ADCs, while the backend accumulates cycles, conversions and traffic.
//!
//! Run with: `cargo run --release --example transformer_on_accelerator`

use pdac::accel::backend::AccelBackend;
use pdac::accel::config::{AccelConfig, DriverChoice};
use pdac::math::stats::cosine_similarity;
use pdac::nn::inference::TransformerModel;
use pdac::nn::{ExactGemm, TransformerConfig};
use pdac::power::model::{DriverKind, PowerModel};
use pdac::power::{ArchConfig, TechParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = ArchConfig {
        cores: 2,
        rows: 4,
        cols: 4,
        wavelengths: 8,
        clock_hz: 5e9,
    };
    let model = TransformerModel::random(TransformerConfig::tiny(), 8, 11);
    let input = model.random_input(1);
    let exact = model.forward(&input, &ExactGemm);

    println!("tiny transformer (2 layers, d=32, 8 tokens) on the simulator\n");
    for choice in [DriverChoice::ElectricalDac, DriverChoice::PhotonicDac] {
        let backend = AccelBackend::new(AccelConfig::new(arch.clone(), 8, choice)?)?;
        let out = model.forward(&input, &backend);
        let cs = cosine_similarity(out.as_slice(), exact.as_slice()).unwrap();

        let driver_kind = match choice {
            DriverChoice::ElectricalDac => DriverKind::ElectricalDac,
            _ => DriverKind::PhotonicDac,
        };
        let power = PowerModel::new(arch.clone(), TechParams::calibrated(), driver_kind);
        println!("{choice}:");
        println!("  GEMMs executed      {}", backend.gemms_executed());
        println!("  total cycles        {}", backend.total_cycles());
        println!("  operand conversions {}", backend.total_conversions());
        println!("  useful MACs         {}", backend.total_macs());
        println!("  output cosine vs exact {cs:.6}");
        println!(
            "  energy (this network)  {:.3} µJ\n",
            backend.total_energy_j(&power, 8) * 1e6
        );
    }
    Ok(())
}
