//! Criterion benches of the arccos approximation pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pdac_core::approx::{integrated_error_objective, solve_optimal_breakpoint, ArccosApprox};

fn bench_approx(c: &mut Criterion) {
    let optimal = ArccosApprox::optimal();
    c.bench_function("approx/drive_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut r = -1.0;
            while r <= 1.0 {
                acc += optimal.drive(black_box(r));
                r += 1.0 / 512.0;
            }
            acc
        })
    });
    c.bench_function("approx/objective_eval", |b| {
        b.iter(|| integrated_error_objective(black_box(0.7236)))
    });
    c.bench_function("approx/solve_optimal_k", |b| {
        b.iter(|| solve_optimal_breakpoint(black_box(1e-5)))
    });
    c.bench_function("approx/max_error_scan", |b| {
        b.iter(|| optimal.max_reconstruction_error(black_box(4001)))
    });
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
