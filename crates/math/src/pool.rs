//! Persistent worker-thread pool for the GEMM engine.
//!
//! The PR 2 kernels split row panels across `std::thread::scope`, which
//! re-pays thread spawn and join on every call — measurable exactly in
//! the small-GEMM regime the decode hot path lives in (one 64³ product
//! is ~100 µs of math but a spawn costs tens of µs per thread). This
//! module replaces per-call spawning with a process-wide pool of parked
//! workers:
//!
//! * Workers are spawned once (lazily, on first parallel call) and then
//!   park on a condvar between jobs — an idle pool costs nothing.
//! * A job is a batch of independent tasks `0..count`; workers and the
//!   submitting thread claim task indices from a shared atomic counter,
//!   so row-panel distribution is dynamic (a slow panel never straggles
//!   behind an idle worker).
//! * The submitting thread participates in its own job, so a pool sized
//!   `n` applies `n` threads of compute with `n − 1` parked workers.
//!
//! Determinism: the pool only changes *which thread* computes a task,
//! never what the task computes. The GEMM kernels assign each output
//! cell to exactly one task and accumulate it in ascending-`k` order, so
//! results are bit-identical to the single-threaded and scoped-spawn
//! paths for every pool size (see [`crate::gemm`] module docs).
//!
//! Sizing follows [`crate::gemm::default_threads`]: the `PDAC_THREADS`
//! environment variable when set, else the machine's available
//! parallelism. With one thread the pool spawns no workers at all and
//! every job runs inline on the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A raw pointer to the job closure with the lifetime erased.
///
/// Safety contract: [`WorkerPool::run`] does not return until every task
/// of the job has finished, so the closure outlives every dereference.
#[derive(Clone, Copy)]
struct ErasedFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// allowed) and the submitting thread keeps it alive until the job
// completes, which `run` enforces by blocking.
unsafe impl Send for ErasedFn {}
unsafe impl Sync for ErasedFn {}

/// One in-flight batch of tasks.
#[derive(Clone)]
struct Job {
    f: ErasedFn,
    /// Total task count; indices `0..count` run exactly once each.
    count: usize,
    /// Next unclaimed task index.
    next: Arc<AtomicUsize>,
    /// Completed task count; the job is done when it reaches `count`.
    finished: Arc<AtomicUsize>,
    /// Set when any task panicked (the submitter re-panics).
    panicked: Arc<AtomicBool>,
}

impl Job {
    /// Claims and runs tasks until none remain, then reports how many
    /// this thread completed.
    fn work(&self) -> usize {
        let mut done = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                return done;
            }
            let f = self.f;
            // SAFETY: `run` keeps the closure alive until `finished`
            // reaches `count`, which cannot happen before this call
            // returns and the increment below lands.
            if catch_unwind(AssertUnwindSafe(|| unsafe { (*f.0)(i) })).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            self.finished.fetch_add(1, Ordering::Release);
            done += 1;
        }
    }

    fn is_done(&self) -> bool {
        self.finished.load(Ordering::Acquire) >= self.count
    }
}

#[derive(Default)]
struct State {
    /// Jobs with (potentially) unclaimed tasks, oldest first. The
    /// submitter removes its own job after completion, so entries whose
    /// tasks are all claimed are skipped, not popped, by workers.
    jobs: Vec<Job>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes parked workers when a job is submitted (or on shutdown).
    work: Condvar,
    /// Wakes submitters waiting for their job's last task.
    done: Condvar,
}

/// A pool of parked worker threads executing batches of independent
/// tasks (see the module docs for the GEMM use and the determinism
/// argument).
///
/// # Examples
///
/// ```
/// use pdac_math::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let sum = AtomicUsize::new(0);
/// pool.run(10, &|i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 45);
/// ```
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool applying `threads` total threads of compute: the
    /// caller plus `threads − 1` parked workers (`threads <= 1` spawns
    /// nothing and [`Self::run`] executes inline).
    pub fn new(threads: usize) -> Self {
        let workers = threads.saturating_sub(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("pdac-pool-{w}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn pool worker");
        }
        Self { inner, workers }
    }

    /// The process-wide pool, sized by
    /// [`crate::gemm::default_threads`] (so `PDAC_THREADS` is honored)
    /// and created on first use.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(crate::gemm::default_threads()))
    }

    /// Number of parked worker threads (total compute is `workers + 1`:
    /// the submitting thread participates).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `task(i)` for every `i in 0..count`, each exactly once,
    /// distributing indices dynamically over the calling thread and the
    /// pool workers. Returns when every task has finished.
    ///
    /// Tasks must be independent; ordering and thread assignment are
    /// unspecified. Concurrent `run` calls from different threads are
    /// allowed and share the workers.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (after all tasks have completed, so
    /// no task is left running with dangling borrows).
    pub fn run(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        if count == 0 {
            return;
        }
        if self.workers == 0 || count == 1 {
            for i in 0..count {
                task(i);
            }
            return;
        }
        let job = Job {
            f: ErasedFn(unsafe {
                // SAFETY: lifetime erasure only; `run` blocks until the
                // last task finished, so the borrow outlives all use.
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    task as *const _,
                )
            }),
            count,
            next: Arc::new(AtomicUsize::new(0)),
            finished: Arc::new(AtomicUsize::new(0)),
            panicked: Arc::new(AtomicBool::new(false)),
        };
        {
            let mut state = self.inner.state.lock().expect("pool state");
            state.jobs.push(job.clone());
        }
        self.inner.work.notify_all();
        // Participate: the submitting thread is one of the pool's
        // compute threads for its own job.
        job.work();
        if !job.is_done() {
            let mut state = self.inner.state.lock().expect("pool state");
            while !job.is_done() {
                state = self.inner.done.wait(state).expect("pool state");
            }
            drop(state);
        }
        // Remove the exhausted job so the queue stays small.
        {
            let mut state = self.inner.state.lock().expect("pool state");
            state
                .jobs
                .retain(|j| !Arc::ptr_eq(&j.finished, &job.finished));
        }
        assert!(
            !job.panicked.load(Ordering::Acquire),
            "worker pool task panicked"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("pool state");
        state.shutdown = true;
        drop(state);
        self.inner.work.notify_all();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool state");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(job) = state
                    .jobs
                    .iter()
                    .find(|j| j.next.load(Ordering::Relaxed) < j.count)
                {
                    break job.clone();
                }
                state = inner.work.wait(state).expect("pool state");
            }
        };
        if job.work() > 0 && job.is_done() {
            // This worker may have finished the job's last task; wake
            // any submitter blocked on completion. Lock ordering with
            // the submitter's wait loop prevents a missed wakeup.
            let _guard = inner.state.lock().expect("pool state");
            inner.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        for count in [0usize, 1, 2, 3, 7, 64, 257] {
            let hits: Vec<AtomicUsize> = (0..count).map(|_| AtomicUsize::new(0)).collect();
            pool.run(count, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "count={count}"
            );
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 0);
        let sum = AtomicUsize::new(0);
        pool.run(5, &|i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 15);
    }

    #[test]
    fn sequential_jobs_reuse_the_same_workers() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 400);
    }

    #[test]
    fn tasks_can_write_disjoint_output_regions() {
        let pool = WorkerPool::new(4);
        let mut out = vec![0usize; 100];
        let chunk = 7;
        let count = out.len().div_ceil(chunk);
        let base = out.as_mut_ptr() as usize;
        let len = out.len();
        pool.run(count, &|i| {
            let start = i * chunk;
            let width = chunk.min(len - start);
            // SAFETY: tasks own disjoint chunks of `out`.
            let slice =
                unsafe { std::slice::from_raw_parts_mut((base as *mut usize).add(start), width) };
            for (off, v) in slice.iter_mut().enumerate() {
                *v = start + off;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| {
                assert!(i != 2, "boom");
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a panicked job.
        let sum = AtomicUsize::new(0);
        pool.run(3, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 3);
    }

    #[test]
    fn global_pool_matches_default_threads() {
        let pool = WorkerPool::global();
        assert_eq!(pool.workers() + 1, crate::gemm::default_threads().max(1));
    }

    #[test]
    fn drop_shuts_workers_down() {
        let pool = WorkerPool::new(3);
        pool.run(4, &|_| {});
        drop(pool);
        // Nothing to assert beyond "no hang": workers observed shutdown.
    }
}
