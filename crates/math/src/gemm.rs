//! Tuned f64 GEMM kernels: cache-blocked, B packed into column panels,
//! and multi-threaded over row panels.
//!
//! The naive triple loop in [`crate::Mat::matmul_reference`] is the
//! correctness-grade seed; every kernel here reproduces it **bit for
//! bit**. The trick is that bit-identity only pins down the per-cell
//! reduction: each output element must accumulate its `k` products in
//! ascending-`k` order, one `mul` + one `add` at a time, starting from
//! `0.0`. Everything else — packing `B` into [`NR`]-column panels so the
//! micro-kernel loads one short contiguous `B` stripe per `k` step,
//! register-tiling `MR × NR` output blocks of independent accumulators
//! that the compiler keeps in SIMD registers (the inner loop is a
//! broadcast-multiply-add across lanes, with no cross-lane reduction to
//! block vectorization), and splitting row/column panels across worker
//! threads — reorders *between* cells, never *within* one, so the result
//! is identical for any thread count.
//!
//! Parallel dispatch goes through the persistent [`crate::pool`] worker
//! pool instead of spawning threads per call; [`gemm_scoped`] keeps the
//! original `std::thread::scope` dispatch as a differential baseline
//! (same panel split, same kernels) for the verify matrix and the
//! `pool_vs_scope` microbench.
//!
//! Thread count comes from [`default_threads`]: the `PDAC_THREADS`
//! environment variable when set, else [`std::thread::available_parallelism`].
//! Small products stay on the calling thread (dispatch costs more than it
//! saves below [`PAR_MIN_MACS`] multiply-adds). Weight matrices that are
//! multiplied repeatedly can be packed once into a [`PackedB`] and fed to
//! [`gemm_prepacked`], skipping the per-call packing pass entirely.

use crate::pool::WorkerPool;
use std::sync::OnceLock;

/// Register-tile rows: the micro-kernel produces `MR × NR` output cells
/// per pass with independent accumulators.
const MR: usize = 4;
/// Register-tile columns (one packed `B` panel width): a multiple of the
/// widest f64 SIMD lane count so the accumulator rows vectorize cleanly.
const NR: usize = 8;

/// Minimum multiply-add count before the packed kernel is worth its
/// `B`-packing pass; below this the axpy loop (no allocation) wins.
const PACK_MIN_MACS: usize = 32 * 32 * 32;

/// Minimum multiply-add count before spawning worker threads pays for
/// itself.
pub const PAR_MIN_MACS: usize = 64 * 64 * 64;

/// The process-wide worker-thread count for GEMM and matvec: the
/// `PDAC_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. Cached after the
/// first call; results are bit-identical for every value.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("PDAC_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Strict ascending-order dot product: the per-cell reduction shared by
/// every kernel (and by the reference loop).
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `MR × NR` micro-kernel: `MR · NR` independent ascending-`k` reductions
/// over `MR` rows of `A` and one packed `B` column panel (`k` contiguous
/// stripes of `NR` values). Each `k` step broadcasts one `A` value per
/// row against the panel stripe — lane-parallel multiply-adds with no
/// cross-lane dependency, which LLVM turns into SIMD.
#[inline]
fn micro_kernel(a_rows: [&[f64]; MR], panel: &[f64], k: usize) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    for kk in 0..k {
        let stripe: &[f64; NR] = panel[kk * NR..kk * NR + NR].try_into().expect("stripe");
        for (acc_row, a_row) in acc.iter_mut().zip(&a_rows) {
            let a = a_row[kk];
            for (cell, &b) in acc_row.iter_mut().zip(stripe) {
                *cell += a * b;
            }
        }
    }
    acc
}

/// Single-row variant of [`micro_kernel`] for the `m % MR` tail.
#[inline]
fn micro_kernel_row(a_row: &[f64], panel: &[f64], k: usize) -> [f64; NR] {
    let mut acc = [0.0f64; NR];
    for kk in 0..k {
        let stripe: &[f64; NR] = panel[kk * NR..kk * NR + NR].try_into().expect("stripe");
        let a = a_row[kk];
        for (cell, &b) in acc.iter_mut().zip(stripe) {
            *cell += a * b;
        }
    }
    acc
}

/// Packs row-major `b` (`k × n`) into `NR`-column panels: panel `p`
/// holds columns `p·NR ..` as `k` contiguous stripes of `NR` values
/// (ragged tail zero-padded), so the micro-kernel streams `B`
/// sequentially. Reuses `bp`'s allocation.
fn pack_b_panels(b: &[f64], k: usize, n: usize, bp: &mut Vec<f64>) {
    let panels = n.div_ceil(NR);
    bp.clear();
    bp.resize(panels * k * NR, 0.0);
    for (kk, b_row) in b.chunks_exact(n).enumerate() {
        for (p, cols) in b_row.chunks(NR).enumerate() {
            let at = p * k * NR + kk * NR;
            bp[at..at + cols.len()].copy_from_slice(cols);
        }
    }
}

/// Multiplies a row panel of `A` (`rows × k`, row-major) by panel-packed
/// `B` (see [`pack_b_panels`]) into the matching output panel
/// (`rows × n`, row-major, fully overwritten).
fn gemm_panel_packed(a_panel: &[f64], bp: &[f64], k: usize, n: usize, out_panel: &mut [f64]) {
    let rows = out_panel.len().checked_div(n).unwrap_or(0);
    let panel_len = k * NR;
    let mut r = 0;
    while r + MR <= rows {
        let a_rows = [
            &a_panel[r * k..(r + 1) * k],
            &a_panel[(r + 1) * k..(r + 2) * k],
            &a_panel[(r + 2) * k..(r + 3) * k],
            &a_panel[(r + 3) * k..(r + 4) * k],
        ];
        for (p, panel) in bp.chunks_exact(panel_len).enumerate() {
            let c = p * NR;
            let w = NR.min(n - c);
            let acc = micro_kernel(a_rows, panel, k);
            for (i, acc_row) in acc.iter().enumerate() {
                out_panel[(r + i) * n + c..(r + i) * n + c + w].copy_from_slice(&acc_row[..w]);
            }
        }
        r += MR;
    }
    while r < rows {
        let a_row = &a_panel[r * k..(r + 1) * k];
        for (p, panel) in bp.chunks_exact(panel_len).enumerate() {
            let c = p * NR;
            let w = NR.min(n - c);
            let acc = micro_kernel_row(a_row, panel, k);
            out_panel[r * n + c..r * n + c + w].copy_from_slice(&acc[..w]);
        }
        r += 1;
    }
}

/// Axpy-ordered fallback for thin/small products: no packing, no
/// allocation. `out_panel` must be zeroed. Per cell this is still an
/// ascending-`k` reduction — the loop order only interleaves cells.
fn gemm_panel_axpy(a_panel: &[f64], b: &[f64], k: usize, n: usize, out_panel: &mut [f64]) {
    for (a_row, out_row) in a_panel.chunks_exact(k).zip(out_panel.chunks_exact_mut(n)) {
        for (&a_rk, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_rk * bv;
            }
        }
    }
}

/// A `*mut f64` that may cross thread boundaries.
///
/// Safety contract: every user hands disjoint index ranges to each pool
/// task, so no two tasks alias the same elements.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the
    /// whole `Send + Sync` wrapper, not the raw pointer field.
    #[inline]
    fn get(self) -> *mut f64 {
        self.0
    }
}

// SAFETY: see the struct docs — all uses partition the output buffer
// into disjoint per-task regions.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// One column chunk of the row-vector × matrix product, ascending-`k`
/// per cell (shared by the pooled and scoped vecmat dispatches).
#[inline]
fn vecmat_chunk(a_row: &[f64], b: &[f64], k: usize, n: usize, c0: usize, out_chunk: &mut [f64]) {
    out_chunk.fill(0.0);
    for kk in 0..k {
        let a_k = a_row[kk];
        let b_seg = &b[kk * n + c0..kk * n + c0 + out_chunk.len()];
        for (o, &bv) in out_chunk.iter_mut().zip(b_seg) {
            *o += a_k * bv;
        }
    }
}

/// Row-vector × matrix with the output columns split across pool workers
/// (the decode-step shape `1 × k · k × n`, where row-panel splitting has
/// nothing to distribute).
fn vecmat(a_row: &[f64], b: &[f64], k: usize, n: usize, out: &mut [f64], threads: usize) {
    let threads = threads.clamp(1, n);
    if threads == 1 {
        vecmat_chunk(a_row, b, k, n, 0, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    let tasks = n.div_ceil(chunk);
    let out_ptr = SendPtr(out.as_mut_ptr());
    WorkerPool::global().run(tasks, &move |t| {
        let c0 = t * chunk;
        let width = chunk.min(n - c0);
        // SAFETY: column chunks are disjoint per task index.
        let out_chunk = unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(c0), width) };
        vecmat_chunk(a_row, b, k, n, c0, out_chunk);
    });
}

/// Computes the `m × n` product of row-major `a` (`m × k`) and `b`
/// (`k × n`) into `out` (fully overwritten), using up to `threads`
/// worker threads.
///
/// The result is bit-identical to the reference triple loop for every
/// `threads` value (see module docs for why).
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn gemm(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, out: &mut [f64], threads: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(out.len(), m * n, "output length");
    let macs = m * k * n;
    if m == 1 {
        let threads = if macs >= PAR_MIN_MACS { threads } else { 1 };
        vecmat(a, b, k, n, out, threads);
        return;
    }
    if macs < PACK_MIN_MACS || m < MR {
        out.fill(0.0);
        gemm_panel_axpy(a, b, k, n, out);
        return;
    }
    let mut bp = Vec::new();
    pack_b_panels(b, k, n, &mut bp);
    let threads = threads.clamp(1, m);
    if threads == 1 || macs < PAR_MIN_MACS {
        gemm_panel_packed(a, &bp, k, n, out);
        return;
    }
    gemm_packed_pooled(a, &bp, m, k, n, out, threads);
}

/// Row-panel dispatch of the packed kernel over the persistent pool.
/// The panel split matches the scoped path (`m.div_ceil(threads)` rows
/// per task), and the per-cell reduction is independent of the split, so
/// results are bit-identical for every `threads` value.
fn gemm_packed_pooled(
    a: &[f64],
    bp: &[f64],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f64],
    threads: usize,
) {
    let rows_per = m.div_ceil(threads);
    let tasks = m.div_ceil(rows_per);
    let out_ptr = SendPtr(out.as_mut_ptr());
    WorkerPool::global().run(tasks, &move |t| {
        let r0 = t * rows_per;
        let rows = rows_per.min(m - r0);
        // SAFETY: row panels are disjoint per task index.
        let out_panel =
            unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(r0 * n), rows * n) };
        gemm_panel_packed(&a[r0 * k..(r0 + rows) * k], bp, k, n, out_panel);
    });
}

/// The pre-pool GEMM dispatch: identical panel split and kernels to
/// [`gemm`], but parallel work spawns fresh `std::thread::scope` threads
/// per call. Kept as the differential baseline the verify matrix checks
/// the pooled path against, and as the "before" side of the
/// `pool_vs_scope` microbench.
pub fn gemm_scoped(
    a: &[f64],
    b: &[f64],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f64],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(out.len(), m * n, "output length");
    let macs = m * k * n;
    if m == 1 {
        let threads = if macs >= PAR_MIN_MACS { threads } else { 1 };
        let threads = threads.clamp(1, n);
        if threads == 1 {
            vecmat_chunk(a, b, k, n, 0, out);
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move || vecmat_chunk(a, b, k, n, t * chunk, out_chunk));
            }
        });
        return;
    }
    if macs < PACK_MIN_MACS || m < MR {
        out.fill(0.0);
        gemm_panel_axpy(a, b, k, n, out);
        return;
    }
    let mut bp = Vec::new();
    pack_b_panels(b, k, n, &mut bp);
    let threads = threads.clamp(1, m);
    if threads == 1 || macs < PAR_MIN_MACS {
        gemm_panel_packed(a, &bp, k, n, out);
        return;
    }
    let rows_per = m.div_ceil(threads);
    let bp = &bp;
    std::thread::scope(|scope| {
        for (a_panel, out_panel) in a.chunks(rows_per * k).zip(out.chunks_mut(rows_per * n)) {
            scope.spawn(move || gemm_panel_packed(a_panel, bp, k, n, out_panel));
        }
    });
}

/// `B` packed once into [`NR`]-column panels for repeated products
/// against changing left operands (the decode hot path multiplies every
/// activation batch by the same weight matrices step after step).
///
/// [`gemm_prepacked`] over a `PackedB` is bit-identical to [`gemm`] over
/// the original row-major `B`: packing only changes memory layout, and
/// the per-cell reduction order is fixed (see module docs).
#[derive(Debug, Clone)]
pub struct PackedB {
    bp: Vec<f64>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Packs row-major `b` (`k × n`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(b: &[f64], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "rhs length");
        let mut bp = Vec::new();
        pack_b_panels(b, k, n, &mut bp);
        Self { bp, k, n }
    }

    /// Inner (contraction) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column count of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Computes the `m × n` product of row-major `a` (`m × k`) and a
/// prepacked `B`, bit-identical to [`gemm`] with the unpacked `B` (the
/// packing pass is skipped, not changed). `m == 1` runs the packed
/// micro-kernel directly — still one ascending-`k` reduction per cell.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn gemm_prepacked(a: &[f64], b: &PackedB, m: usize, out: &mut [f64], threads: usize) {
    let (k, n) = (b.k, b.n);
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(out.len(), m * n, "output length");
    let macs = m * k * n;
    if m == 1 {
        // The axpy column order and the panel micro-kernel compute the
        // same ascending-k reduction per cell; reuse the packed panels
        // so the prepack pays off even for single rows.
        gemm_panel_packed(a, &b.bp, k, n, out);
        return;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 || macs < PAR_MIN_MACS {
        gemm_panel_packed(a, &b.bp, k, n, out);
        return;
    }
    gemm_packed_pooled(a, &b.bp, m, k, n, out, threads);
}

/// Grouped row-vector products: row `g` of `a` (`groups × k`, row-major)
/// times block `g` of `b` (`groups` stacked contiguous `k × n` row-major
/// blocks, so `b` is `(groups·k) × n`) into row `g` of `out`
/// (`groups × n`, fully overwritten).
///
/// This is the batched-decode attention shape: each grouped sequence has
/// its *own* transient right operand (gathered Kᵀ or V), so a single
/// dense GEMM cannot fuse them — but the `groups` independent row
/// products can still share one pool dispatch and one cache-warm pass
/// over the stacked operand. Each output row is bit-identical to
/// `gemm(&a[g*k..], &b[g*k*n..], 1, k, n, ..)` because every cell is the
/// same ascending-`k` reduction; splitting rows/columns across workers
/// reorders between cells, never within one.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn gemm_grouped(
    a: &[f64],
    b: &[f64],
    groups: usize,
    k: usize,
    n: usize,
    out: &mut [f64],
    threads: usize,
) {
    assert_eq!(a.len(), groups * k, "lhs length");
    assert_eq!(b.len(), groups * k * n, "rhs length");
    assert_eq!(out.len(), groups * n, "output length");
    if groups == 0 {
        return;
    }
    let macs = groups * k * n;
    let threads = if macs >= PAR_MIN_MACS { threads } else { 1 };
    if threads <= 1 {
        for g in 0..groups {
            vecmat_chunk(
                &a[g * k..(g + 1) * k],
                &b[g * k * n..(g + 1) * k * n],
                k,
                n,
                0,
                &mut out[g * n..(g + 1) * n],
            );
        }
        return;
    }
    // 2-D task grid: split rows first, then columns when workers remain
    // (groups is often smaller than the pool).
    let row_tasks = threads.clamp(1, groups);
    let rows_per = groups.div_ceil(row_tasks);
    let row_tasks = groups.div_ceil(rows_per);
    let col_tasks = (threads / row_tasks).clamp(1, n);
    let col_per = n.div_ceil(col_tasks);
    let col_tasks = n.div_ceil(col_per);
    let out_ptr = SendPtr(out.as_mut_ptr());
    WorkerPool::global().run(row_tasks * col_tasks, &move |t| {
        let r0 = (t / col_tasks) * rows_per;
        let rows = rows_per.min(groups - r0);
        let c0 = (t % col_tasks) * col_per;
        let width = col_per.min(n - c0);
        for g in r0..r0 + rows {
            // SAFETY: (row, column-chunk) regions are disjoint per task
            // index.
            let out_chunk =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(g * n + c0), width) };
            vecmat_chunk(
                &a[g * k..(g + 1) * k],
                &b[g * k * n..(g + 1) * k * n],
                k,
                n,
                c0,
                out_chunk,
            );
        }
    });
}

/// Matrix-vector product `out = a · v` (`a` is `m × k`, row-major) on the
/// same thread pool: each output element is one ascending-`k` dot, so the
/// result is bit-identical to the reference loop for every thread count.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn gemv(a: &[f64], v: &[f64], m: usize, k: usize, out: &mut [f64], threads: usize) {
    assert_eq!(a.len(), m * k, "matrix length");
    assert_eq!(v.len(), k, "vector length");
    assert_eq!(out.len(), m, "output length");
    let threads = if m * k >= PAR_MIN_MACS {
        threads.clamp(1, m)
    } else {
        1
    };
    if threads == 1 {
        for (o, a_row) in out.iter_mut().zip(a.chunks_exact(k)) {
            *o = dot(a_row, v);
        }
        return;
    }
    let rows_per = m.div_ceil(threads);
    let tasks = m.div_ceil(rows_per);
    let out_ptr = SendPtr(out.as_mut_ptr());
    WorkerPool::global().run(tasks, &move |t| {
        let r0 = t * rows_per;
        let rows = rows_per.min(m - r0);
        // SAFETY: row panels are disjoint per task index.
        let out_panel = unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(r0), rows) };
        let a_panel = &a[r0 * k..(r0 + rows) * k];
        for (o, a_row) in out_panel.iter_mut().zip(a_panel.chunks_exact(k)) {
            *o = dot(a_row, v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect()
    }

    fn reference(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for r in 0..m {
            for kk in 0..k {
                let x = a[r * k + kk];
                for c in 0..n {
                    out[r * n + c] += x * b[kk * n + c];
                }
            }
        }
        out
    }

    #[test]
    fn packed_kernel_matches_reference_bitwise() {
        for (m, k, n) in [
            (4, 4, 4),
            (5, 7, 3),
            (16, 16, 16),
            (33, 17, 29),
            (64, 64, 64),
            (1, 64, 64),
            (2, 100, 3),
            (7, 1, 7),
        ] {
            let a = random(m * k, 1000 + (m * k) as u64);
            let b = random(k * n, 2000 + (k * n) as u64);
            let want = reference(&a, &b, m, k, n);
            for threads in [1, 2, 8] {
                let mut got = vec![f64::NAN; m * n];
                gemm(&a, &b, m, k, n, &mut got, threads);
                assert_eq!(got, want, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn gemv_matches_reference_bitwise() {
        for (m, k) in [(1, 1), (3, 9), (64, 64), (129, 65)] {
            let a = random(m * k, 31);
            let v = random(k, 32);
            let mut want = vec![0.0; m];
            for r in 0..m {
                let mut acc = 0.0;
                for c in 0..k {
                    acc += a[r * k + c] * v[c];
                }
                want[r] = acc;
            }
            for threads in [1, 4] {
                let mut got = vec![f64::NAN; m];
                gemv(&a, &v, m, k, &mut got, threads);
                assert_eq!(got, want, "m={m} k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn large_threaded_product_is_deterministic() {
        let (m, k, n) = (96, 80, 72);
        let a = random(m * k, 7);
        let b = random(k * n, 8);
        let mut one = vec![0.0; m * n];
        let mut eight = vec![0.0; m * n];
        gemm(&a, &b, m, k, n, &mut one, 1);
        gemm(&a, &b, m, k, n, &mut eight, 8);
        assert_eq!(one, eight);
        assert_eq!(one, reference(&a, &b, m, k, n));
    }

    #[test]
    fn default_threads_is_positive_and_stable() {
        let t = default_threads();
        assert!(t >= 1);
        assert_eq!(t, default_threads());
    }

    #[test]
    fn pooled_matches_scoped_bitwise() {
        for (m, k, n) in [(1, 80, 90), (5, 7, 3), (33, 17, 29), (96, 80, 72)] {
            let a = random(m * k, 41 + m as u64);
            let b = random(k * n, 42 + n as u64);
            for threads in [1, 2, 7] {
                let mut pooled = vec![f64::NAN; m * n];
                let mut scoped = vec![f64::NAN; m * n];
                gemm(&a, &b, m, k, n, &mut pooled, threads);
                gemm_scoped(&a, &b, m, k, n, &mut scoped, threads);
                assert_eq!(pooled, scoped, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn grouped_matches_per_row_gemm_bitwise() {
        // Includes shapes past PAR_MIN_MACS so the pooled 2-D split runs.
        for (g, k, n) in [
            (1, 16, 16),
            (3, 7, 5),
            (4, 64, 64),
            (8, 32, 96),
            (16, 64, 512),
            (5, 1, 9),
        ] {
            let a = random(g * k, 71 + (g * k) as u64);
            let b = random(g * k * n, 72 + (k * n) as u64);
            let mut want = vec![f64::NAN; g * n];
            for r in 0..g {
                gemm(
                    &a[r * k..(r + 1) * k],
                    &b[r * k * n..(r + 1) * k * n],
                    1,
                    k,
                    n,
                    &mut want[r * n..(r + 1) * n],
                    1,
                );
            }
            for threads in [1, 2, 7, 32] {
                let mut got = vec![f64::NAN; g * n];
                gemm_grouped(&a, &b, g, k, n, &mut got, threads);
                assert_eq!(got, want, "g={g} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn grouped_zero_groups_is_noop() {
        let mut out: Vec<f64> = vec![];
        gemm_grouped(&[], &[], 0, 4, 4, &mut out, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn prepacked_matches_gemm_bitwise() {
        for (m, k, n) in [(1, 64, 64), (2, 100, 3), (16, 16, 16), (96, 80, 72)] {
            let a = random(m * k, 51);
            let b = random(k * n, 52);
            let packed = PackedB::pack(&b, k, n);
            assert_eq!((packed.k(), packed.n()), (k, n));
            for threads in [1, 2, 8] {
                let mut plain = vec![f64::NAN; m * n];
                let mut pre = vec![f64::NAN; m * n];
                gemm(&a, &b, m, k, n, &mut plain, threads);
                gemm_prepacked(&a, &packed, m, &mut pre, threads);
                assert_eq!(pre, plain, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }
}
