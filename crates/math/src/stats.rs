//! Summary statistics and signal-fidelity metrics.
//!
//! The reproduction reports P-DAC numerical fidelity as RMSE, SQNR and
//! cosine similarity between analog results and exact references (standing
//! in for the paper's "acceptable range for human perception" claim about
//! LLM outputs).

/// Arithmetic mean. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use pdac_math::stats::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Root-mean-square error between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equal lengths");
    assert!(!a.is_empty(), "rmse requires nonempty input");
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Signal-to-quantization-noise ratio in dB: `10·log10(‖ref‖² / ‖ref−sig‖²)`.
///
/// Returns `f64::INFINITY` when the signals are identical.
///
/// # Panics
///
/// Panics if lengths differ or the reference has zero energy.
pub fn sqnr_db(reference: &[f64], signal: &[f64]) -> f64 {
    assert_eq!(reference.len(), signal.len(), "sqnr requires equal lengths");
    let sig: f64 = reference.iter().map(|x| x * x).sum();
    assert!(sig > 0.0, "reference signal must have nonzero energy");
    let noise: f64 = reference
        .iter()
        .zip(signal)
        .map(|(r, s)| (r - s) * (r - s))
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / noise).log10()
    }
}

/// Cosine similarity between two vectors. Returns `None` when either vector
/// has zero norm.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "cosine similarity requires equal lengths");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        None
    } else {
        Some(dot / (na * nb))
    }
}

/// Maximum absolute element of a slice (0 for empty input).
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

/// Maximum relative error `|a−b| / max(|b|, floor)` across two slices.
///
/// `floor` guards the division for near-zero reference entries; the paper
/// reports relative errors only for `r` bounded away from 0.
///
/// # Panics
///
/// Panics if lengths differ or `floor <= 0`.
pub fn max_relative_error(a: &[f64], b: &[f64], floor: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "relative error requires equal lengths");
    assert!(floor > 0.0, "floor must be positive");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / y.abs().max(floor))
        .fold(0.0, f64::max)
}

/// A running summary (count/mean/min/max/RMS) built incrementally.
///
/// # Examples
///
/// ```
/// use pdac_math::stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, -2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.min(), Some(-2.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Root mean square, or `None` when empty.
    pub fn rms(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.sum_sq / self.count as f64).sqrt())
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0, 1.0, 1.0]), Some(0.0));
        let sd = std_dev(&[1.0, 3.0]).unwrap();
        assert!((sd - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn rmse_known_value() {
        let got = rmse(&[1.0, 2.0], &[1.0, 4.0]);
        assert!((got - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn rmse_rejects_mismatch() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sqnr_identical_is_infinite() {
        assert!(sqnr_db(&[1.0, 2.0], &[1.0, 2.0]).is_infinite());
    }

    #[test]
    fn sqnr_known_value() {
        // noise energy = 0.01, signal energy = 1 -> 20 dB.
        let got = sqnr_db(&[1.0], &[0.9]);
        assert!((got - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_similarity_cases() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 3.0]).unwrap().abs() < 1e-12);
        assert!((cosine_similarity(&[1.0], &[-2.0]).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), None);
    }

    #[test]
    fn max_relative_error_uses_floor() {
        // Reference 0 would blow up without the floor.
        let e = max_relative_error(&[0.1], &[0.0], 1.0);
        assert!((e - 0.1).abs() < 1e-12);
        let e2 = max_relative_error(&[1.1, 2.0], &[1.0, 2.0], 1e-9);
        assert!((e2 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn summary_accumulates() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        let rms = s.rms().unwrap();
        assert!((rms - (30.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.rms(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn max_abs_empty_is_zero() {
        assert_eq!(max_abs(&[]), 0.0);
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
    }
}
