//! Benchmark regression gate: compares a fresh `BENCH_*.json` document
//! against a checked-in baseline and fails on regressions.
//!
//! Absolute timings are machine-specific, so the gate only inspects
//! **machine-relative** metrics inside each `results` record:
//!
//! * higher-is-better ratios — fields named `speedup` or containing
//!   `_over_` — must not fall below `baseline × (1 − tol)`;
//! * lower-is-better fractions — fields containing `overhead` — must
//!   not exceed `baseline + slack` (absolute slack, since overheads
//!   hover near zero and a relative band would be meaningless there).
//!
//! Records are matched across documents by their identity fields (every
//! string or integer field: backend, batch, shape, threads, mode, …);
//! a baseline record with no fresh counterpart is itself a failure —
//! silently dropping a configuration is how regressions hide.

use pdac_telemetry::Json;

/// Outcome of one gated metric comparison.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Identity of the record (e.g. `backend=pdac batch=8`).
    pub record: String,
    /// The gated metric's field name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// The bound the fresh value was held to.
    pub bound: f64,
    /// Whether the fresh value is within the bound.
    pub pass: bool,
}

impl GateCheck {
    /// One fixed-width report line.
    pub fn render(&self) -> String {
        format!(
            "{:<6} {:<40} {:<24} base {:>10.4} fresh {:>10.4} bound {:>10.4}",
            if self.pass { "ok" } else { "FAIL" },
            self.record,
            self.metric,
            self.baseline,
            self.fresh,
            self.bound,
        )
    }
}

/// A full gate run over one baseline/fresh document pair.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-metric comparisons, in baseline order.
    pub checks: Vec<GateCheck>,
    /// Baseline records that have no identity match in the fresh doc.
    pub missing: Vec<String>,
}

impl GateReport {
    /// True when every check passed and no record went missing.
    pub fn pass(&self) -> bool {
        self.missing.is_empty() && self.checks.iter().all(|c| c.pass)
    }
}

/// Is this field a gated higher-is-better ratio?
fn is_ratio(key: &str) -> bool {
    key == "speedup" || key.contains("_over_")
}

/// Is this field a gated lower-is-better fraction?
fn is_overhead(key: &str) -> bool {
    key.contains("overhead")
}

/// Is this field a measured value rather than part of the record's
/// identity? Gated metrics plus anything in seconds / per-second. This
/// matters because the hand-rolled parser reads an integral float
/// (`"elapsed_s": 3`) back as an integer, which would otherwise land in
/// the identity and break cross-document matching.
fn is_measurement(key: &str) -> bool {
    is_ratio(key) || is_overhead(key) || key.ends_with("_s") || key.ends_with("_per_s")
}

/// The identity of a `results` record: every string field plus every
/// non-measurement integer field, rendered `key=value` in document
/// order.
fn identity(record: &Json) -> String {
    let Json::Obj(fields) = record else {
        return String::from("<non-object>");
    };
    let mut parts = Vec::new();
    for (key, value) in fields {
        match value {
            Json::Str(s) => parts.push(format!("{key}={s}")),
            Json::Int(i) if !is_measurement(key) => parts.push(format!("{key}={i}")),
            _ => {}
        }
    }
    parts.join(" ")
}

fn results(doc: &Json) -> &[Json] {
    doc.get("results")
        .and_then(Json::as_arr)
        .unwrap_or_default()
}

/// Compare `fresh` against `baseline`.
///
/// `tol` is the relative drop allowed on ratio metrics (0.35 ⇒ fresh may
/// be 35% below baseline); `slack` the absolute rise allowed on overhead
/// fractions.
pub fn gate(baseline: &Json, fresh: &Json, tol: f64, slack: f64) -> GateReport {
    let mut checks = Vec::new();
    let mut missing = Vec::new();
    let fresh_records = results(fresh);
    for base_record in results(baseline) {
        let id = identity(base_record);
        let Some(fresh_record) = fresh_records.iter().find(|r| identity(r) == id) else {
            missing.push(id);
            continue;
        };
        let Json::Obj(fields) = base_record else {
            continue;
        };
        for (key, value) in fields {
            let Some(base) = value.as_f64() else {
                continue;
            };
            let Some(fresh_value) = fresh_record.get(key).and_then(Json::as_f64) else {
                // A gated metric vanished from the fresh record.
                if is_ratio(key) || is_overhead(key) {
                    checks.push(GateCheck {
                        record: id.clone(),
                        metric: key.clone(),
                        baseline: base,
                        fresh: f64::NAN,
                        bound: f64::NAN,
                        pass: false,
                    });
                }
                continue;
            };
            if is_ratio(key) {
                let bound = base * (1.0 - tol);
                checks.push(GateCheck {
                    record: id.clone(),
                    metric: key.clone(),
                    baseline: base,
                    fresh: fresh_value,
                    bound,
                    pass: fresh_value >= bound,
                });
            } else if is_overhead(key) {
                let bound = base + slack;
                checks.push(GateCheck {
                    record: id.clone(),
                    metric: key.clone(),
                    baseline: base,
                    fresh: fresh_value,
                    bound,
                    pass: fresh_value <= bound,
                });
            }
        }
    }
    GateReport { checks, missing }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(speedup: f64, overhead: f64) -> Json {
        pdac_telemetry::json::parse(&format!(
            r#"{{"bench":"t","results":[
                {{"backend":"pdac","batch":8,"elapsed_s":1.0,
                  "speedup":{speedup},"trace_overhead":{overhead}}}
            ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_docs_pass() {
        let base = doc(5.0, 0.02);
        let report = gate(&base, &base, 0.25, 0.03);
        assert!(report.pass());
        assert_eq!(report.checks.len(), 2); // speedup + trace_overhead
        assert!(report.missing.is_empty());
    }

    #[test]
    fn speedup_regression_fails_but_tolerance_band_holds() {
        let base = doc(5.0, 0.02);
        // 10% drop within a 25% band: fine.
        assert!(gate(&base, &doc(4.5, 0.02), 0.25, 0.03).pass());
        // 50% drop: regression.
        let report = gate(&base, &doc(2.5, 0.02), 0.25, 0.03);
        assert!(!report.pass());
        let failed: Vec<_> = report.checks.iter().filter(|c| !c.pass).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].metric, "speedup");
    }

    #[test]
    fn overhead_uses_absolute_slack() {
        let base = doc(5.0, 0.02);
        assert!(gate(&base, &doc(5.0, 0.04), 0.25, 0.03).pass());
        assert!(!gate(&base, &doc(5.0, 0.08), 0.25, 0.03).pass());
    }

    #[test]
    fn absolute_timings_are_not_gated() {
        let base = doc(5.0, 0.02);
        // elapsed_s differs wildly — irrelevant, machine-specific.
        let fresh = pdac_telemetry::json::parse(
            r#"{"bench":"t","results":[
                {"backend":"pdac","batch":8,"elapsed_s":99.0,
                 "speedup":5.0,"trace_overhead":0.02}
            ]}"#,
        )
        .unwrap();
        assert!(gate(&base, &fresh, 0.25, 0.03).pass());
    }

    #[test]
    fn missing_record_fails() {
        let base = doc(5.0, 0.02);
        let fresh = pdac_telemetry::json::parse(
            r#"{"bench":"t","results":[
                {"backend":"exact","batch":8,"speedup":5.0,"trace_overhead":0.02}
            ]}"#,
        )
        .unwrap();
        let report = gate(&base, &fresh, 0.25, 0.03);
        assert!(!report.pass());
        assert_eq!(report.missing.len(), 1);
        assert!(report.missing[0].contains("backend=pdac"));
    }

    #[test]
    fn missing_gated_metric_fails() {
        let base = doc(5.0, 0.02);
        let fresh = pdac_telemetry::json::parse(
            r#"{"bench":"t","results":[
                {"backend":"pdac","batch":8,"elapsed_s":1.0,"speedup":5.0}
            ]}"#,
        )
        .unwrap();
        let report = gate(&base, &fresh, 0.25, 0.03);
        assert!(!report.pass());
        assert!(report
            .checks
            .iter()
            .any(|c| c.metric == "trace_overhead" && !c.pass));
    }
}
