//! Running neural workloads *on* the simulated accelerator.
//!
//! [`AccelBackend`] adapts [`FunctionalGemm`] to the
//! [`pdac_nn::GemmBackend`] interface, so an entire transformer forward
//! pass executes GEMM-by-GEMM through the photonic models — converter,
//! DDot, ADC — while accumulating cycle, conversion and traffic
//! statistics for the whole network. This closes the loop between the
//! paper's two evaluation views: numerical fidelity (Sec. III) and
//! energy (Sec. IV) come from one simulated execution.

use crate::functional::FunctionalGemm;
use crate::stats::RunStats;
use pdac_math::Mat;
use pdac_nn::GemmBackend;
use pdac_power::model::PowerModel;
use std::cell::RefCell;

/// A [`GemmBackend`] that executes every matmul on the functional
/// accelerator simulator and accumulates run statistics.
///
/// # Examples
///
/// ```
/// use pdac_accel::backend::AccelBackend;
/// use pdac_accel::config::AccelConfig;
/// use pdac_nn::{GemmBackend, TransformerConfig};
/// use pdac_nn::inference::TransformerModel;
///
/// let backend = AccelBackend::new(AccelConfig::lt_b_pdac(8)?)?;
/// let model = TransformerModel::random(TransformerConfig::tiny(), 4, 1);
/// let out = model.forward(&model.random_input(2), &backend);
/// assert_eq!(out.shape(), (8, 32));
/// assert!(backend.gemms_executed() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AccelBackend {
    engine: FunctionalGemm,
    runs: RefCell<Vec<RunStats>>,
}

impl std::fmt::Debug for AccelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccelBackend")
            .field("engine", &self.engine)
            .field("gemms", &self.runs.borrow().len())
            .finish()
    }
}

impl AccelBackend {
    /// Builds a backend from an accelerator configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`FunctionalGemm::new`].
    pub fn new(config: crate::config::AccelConfig) -> Result<Self, crate::config::ConfigError> {
        Ok(Self {
            engine: FunctionalGemm::new(config)?,
            runs: RefCell::new(Vec::new()),
        })
    }

    /// Number of GEMMs executed so far.
    pub fn gemms_executed(&self) -> usize {
        self.runs.borrow().len()
    }

    /// Total wall-clock cycles across all executed GEMMs (sequential
    /// execution assumption).
    pub fn total_cycles(&self) -> u64 {
        self.runs.borrow().iter().map(|r| r.cycles).sum()
    }

    /// Total useful MACs.
    pub fn total_macs(&self) -> u64 {
        self.runs.borrow().iter().map(|r| r.macs).sum()
    }

    /// Total operand conversions (modulation events).
    pub fn total_conversions(&self) -> u64 {
        self.runs.borrow().iter().map(|r| r.conversions).sum()
    }

    /// Total energy across all executed GEMMs under `power`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn total_energy_j(&self, power: &PowerModel, bits: u8) -> f64 {
        self.runs
            .borrow()
            .iter()
            .map(|r| r.energy_j(power, bits))
            .sum()
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&self) {
        self.runs.borrow_mut().clear();
    }
}

impl GemmBackend for AccelBackend {
    fn matmul(&self, a: &Mat, b: &Mat) -> Mat {
        let run = self
            .engine
            .execute(a, b)
            .expect("caller provides chained dimensions");
        self.runs.borrow_mut().push(run.stats);
        run.output
    }

    fn name(&self) -> &str {
        "accelerator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccelConfig, DriverChoice};
    use pdac_math::stats::cosine_similarity;
    use pdac_nn::inference::TransformerModel;
    use pdac_nn::{ExactGemm, TransformerConfig};
    use pdac_power::model::DriverKind;
    use pdac_power::{ArchConfig, TechParams};

    fn small_config(choice: DriverChoice) -> AccelConfig {
        AccelConfig::new(
            ArchConfig {
                cores: 2,
                rows: 4,
                cols: 4,
                wavelengths: 8,
                clock_hz: 5e9,
            },
            8,
            choice,
        )
        .unwrap()
    }

    #[test]
    fn transformer_runs_on_accelerator() {
        let backend = AccelBackend::new(small_config(DriverChoice::PhotonicDac)).unwrap();
        let model = TransformerModel::random(TransformerConfig::tiny(), 4, 9);
        let input = model.random_input(3);
        let accel_out = model.forward(&input, &backend);
        let exact_out = model.forward(&input, &ExactGemm);
        let cs = cosine_similarity(accel_out.as_slice(), exact_out.as_slice()).unwrap();
        assert!(cs > 0.95, "cosine {cs}");
        // tiny: 2 layers × (3 proj + 2·heads attn matmuls + 1 out + 2 ffn).
        assert_eq!(backend.gemms_executed(), 2 * (4 + 2 * 4 + 2));
        assert!(backend.total_cycles() > 0);
        assert!(backend.total_conversions() > 0);
    }

    #[test]
    fn stats_reset() {
        let backend = AccelBackend::new(small_config(DriverChoice::PhotonicDac)).unwrap();
        let a = Mat::identity(4);
        let _ = backend.matmul(&a, &a);
        assert_eq!(backend.gemms_executed(), 1);
        backend.reset_stats();
        assert_eq!(backend.gemms_executed(), 0);
        assert_eq!(backend.total_macs(), 0);
    }

    #[test]
    fn pdac_backend_spends_less_energy_than_baseline() {
        // Same network, same cycles — the energy difference comes from
        // the power model, exactly as in the paper.
        let model = TransformerModel::random(TransformerConfig::tiny(), 4, 9);
        let input = model.random_input(4);

        let pdac_backend = AccelBackend::new(small_config(DriverChoice::PhotonicDac)).unwrap();
        let base_backend = AccelBackend::new(small_config(DriverChoice::ElectricalDac)).unwrap();
        let _ = model.forward(&input, &pdac_backend);
        let _ = model.forward(&input, &base_backend);
        assert_eq!(pdac_backend.total_cycles(), base_backend.total_cycles());

        let arch = ArchConfig::lt_b();
        let pdac_power = PowerModel::new(
            arch.clone(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        );
        let base_power = PowerModel::new(arch, TechParams::calibrated(), DriverKind::ElectricalDac);
        let ep = pdac_backend.total_energy_j(&pdac_power, 8);
        let eb = base_backend.total_energy_j(&base_power, 8);
        assert!(ep < eb, "pdac {ep} vs baseline {eb}");
    }

    #[test]
    fn decode_batch_on_accelerator_matches_sequential() {
        // AccelBackend only implements `matmul`; the batched decode path
        // must fall back to the trait's default per-row forms and stay
        // bit-identical to sequential `decode_step` calls even when every
        // product runs through the functional accelerator simulator.
        use pdac_nn::BatchedKvCache;

        let backend = AccelBackend::new(small_config(DriverChoice::PhotonicDac)).unwrap();
        let model = TransformerModel::random(TransformerConfig::tiny(), 4, 11);
        let hidden = model.config().hidden;
        let s = 3;
        let mut batch = BatchedKvCache::new(&model, s);
        let mut singles: Vec<_> = (0..s).map(|_| model.new_cache()).collect();
        let mut rng = pdac_math::rng::SplitMix64::seed_from_u64(77);
        for _step in 0..3 {
            let tokens = Mat::from_fn(s, hidden, |_, _| rng.gen_range_f64(-1.0, 1.0));
            let batched = model.decode_batch(&tokens, &mut batch, &backend);
            for (seq, cache) in singles.iter_mut().enumerate() {
                let single = model.decode_step(&tokens.row(seq), cache, &backend);
                assert_eq!(batched.row_slice(seq), &single[..], "seq {seq}");
            }
        }
        assert!(backend.gemms_executed() > 0);
    }

    #[test]
    fn backend_name() {
        let backend = AccelBackend::new(small_config(DriverChoice::PhotonicDac)).unwrap();
        assert_eq!(backend.name(), "accelerator");
    }
}
