//! Functional transformer inference with pluggable GEMM backends.
//!
//! Validates the paper's central application claim: "since our target
//! application is LLMs, which are inherently tolerant to minor
//! inaccuracies, the P-DAC is perfectly suited for such use cases."
//! We run the same seeded, randomly-initialized encoder stack once with
//! exact GEMMs and once with analog GEMMs (P-DAC or electrical DAC), and
//! measure output fidelity (cosine similarity, SQNR, top-1 agreement on a
//! classification head).
//!
//! Weights are seeded and scaled like trained transformer weights
//! (`N(0, 1/√d)`-style); inputs are seeded token embeddings. Pretrained
//! checkpoints and GLUE/ImageNet data are not available offline — the
//! substitution and its rationale are documented in DESIGN.md §3.

use crate::config::TransformerConfig;
use crate::gemm::GemmBackend;
use crate::ops::{gelu_mat, layer_norm_rows, mean_pool_rows, residual, softmax_rows};
use pdac_math::gemm::PackedB;
use pdac_math::rng::SplitMix64;
use pdac_math::stats::{cosine_similarity, sqnr_db};
use pdac_math::Mat;
use std::sync::OnceLock;

/// One encoder layer's weights (fields crate-visible for the batched
/// decode engine in [`crate::batch`]).
#[derive(Debug, Clone)]
pub(crate) struct EncoderLayer {
    pub(crate) wq: Mat,
    pub(crate) wk: Mat,
    pub(crate) wv: Mat,
    pub(crate) wo: Mat,
    pub(crate) w1: Mat,
    pub(crate) w2: Mat,
    pub(crate) ln1_gamma: Vec<f64>,
    pub(crate) ln1_beta: Vec<f64>,
    pub(crate) ln2_gamma: Vec<f64>,
    pub(crate) ln2_beta: Vec<f64>,
    /// Lazily panel-packed weights for the exact batched decode path
    /// (built on first use by [`Self::packs`]; derived data, so excluded
    /// from equality). Solo decode never touches them — the pack memory
    /// roughly doubles the weights, so only batched callers pay for it.
    pub(crate) packs: OnceLock<LayerPacks>,
}

/// Panel-packed forms ([`PackedB`]) of one layer's six weight matrices,
/// bit-identical inputs to `pdac_math::gemm::gemm_prepacked` (packing
/// only changes memory layout — see the math-crate module docs).
#[derive(Debug, Clone)]
pub(crate) struct LayerPacks {
    pub(crate) wq: PackedB,
    pub(crate) wk: PackedB,
    pub(crate) wv: PackedB,
    pub(crate) wo: PackedB,
    pub(crate) w1: PackedB,
    pub(crate) w2: PackedB,
}

impl PartialEq for EncoderLayer {
    /// Weight equality only: `packs` is a deterministic function of the
    /// weights, so two layers with equal weights are equal whether or
    /// not either has packed yet.
    fn eq(&self, other: &Self) -> bool {
        self.wq == other.wq
            && self.wk == other.wk
            && self.wv == other.wv
            && self.wo == other.wo
            && self.w1 == other.w1
            && self.w2 == other.w2
            && self.ln1_gamma == other.ln1_gamma
            && self.ln1_beta == other.ln1_beta
            && self.ln2_gamma == other.ln2_gamma
            && self.ln2_beta == other.ln2_beta
    }
}

fn random_weight(rng: &mut SplitMix64, rows: usize, cols: usize) -> Mat {
    let std = 1.0 / (rows as f64).sqrt();
    Mat::from_fn(rows, cols, |_, _| {
        rng.gen_range_f64(-1.0, 1.0) * std * 1.732
    })
}

impl EncoderLayer {
    fn random(config: &TransformerConfig, rng: &mut SplitMix64) -> Self {
        let d = config.hidden;
        let ff = config.ff_dim();
        Self {
            wq: random_weight(rng, d, d),
            wk: random_weight(rng, d, d),
            wv: random_weight(rng, d, d),
            wo: random_weight(rng, d, d),
            w1: random_weight(rng, d, ff),
            w2: random_weight(rng, ff, d),
            ln1_gamma: vec![1.0; d],
            ln1_beta: vec![0.0; d],
            ln2_gamma: vec![1.0; d],
            ln2_beta: vec![0.0; d],
            packs: OnceLock::new(),
        }
    }

    /// The layer's panel-packed weights, built once on first call (the
    /// exact backend's batched projections skip their per-call packing
    /// pass with these — see `GemmBackend::matmul_batch_packed_into`).
    pub(crate) fn packs(&self) -> &LayerPacks {
        self.packs.get_or_init(|| {
            let pack = |w: &Mat| PackedB::pack(w.as_slice(), w.rows(), w.cols());
            LayerPacks {
                wq: pack(&self.wq),
                wk: pack(&self.wk),
                wv: pack(&self.wv),
                wo: pack(&self.wo),
                w1: pack(&self.w1),
                w2: pack(&self.w2),
            }
        })
    }

    fn forward(
        &self,
        x: &Mat,
        config: &TransformerConfig,
        backend: &dyn GemmBackend,
        causal: bool,
    ) -> Mat {
        let q = backend.matmul(x, &self.wq);
        let k = backend.matmul(x, &self.wk);
        let v = backend.matmul(x, &self.wv);
        let dh = config.head_dim();
        let scale = 1.0 / (dh as f64).sqrt();
        let s = x.rows();
        let mut context = Mat::zeros(s, config.hidden);
        for head in 0..config.heads {
            let cols = head * dh..(head + 1) * dh;
            let qh = Mat::from_fn(s, dh, |r, c| q[(r, cols.start + c)]);
            let kh = Mat::from_fn(s, dh, |r, c| k[(r, cols.start + c)]);
            let vh = Mat::from_fn(s, dh, |r, c| v[(r, cols.start + c)]);
            // Scores and attention-weighted values run on the photonic
            // cores too (these are the "dynamic" matmuls LT emphasizes).
            let mut scores = backend.matmul(&qh, &kh.transpose()).map(|x| x * scale);
            if causal {
                for r in 0..s {
                    for c in (r + 1)..s {
                        scores[(r, c)] = f64::NEG_INFINITY;
                    }
                }
            }
            let probs = softmax_rows(&scores);
            let ctx = backend.matmul(&probs, &vh);
            for r in 0..s {
                for c in 0..dh {
                    context[(r, cols.start + c)] = ctx[(r, c)];
                }
            }
        }
        self.finish_block(x, &context, backend)
    }

    /// Output projection + residual/LN + FFN, shared by both paths.
    fn finish_block(&self, x: &Mat, context: &Mat, backend: &dyn GemmBackend) -> Mat {
        let attn_out = backend.matmul(context, &self.wo);
        let x = layer_norm_rows(
            &residual(x, &attn_out),
            &self.ln1_gamma,
            &self.ln1_beta,
            1e-9,
        );
        let h = gelu_mat(&backend.matmul(&x, &self.w1));
        let ffn_out = backend.matmul(&h, &self.w2);
        layer_norm_rows(
            &residual(&x, &ffn_out),
            &self.ln2_gamma,
            &self.ln2_beta,
            1e-9,
        )
    }
}

/// The cached K/V rows of one layer during auto-regressive decoding
/// ("the KV cache stores precomputed K and V vectors, allowing the model
/// to reuse them for subsequent tokens" — paper Sec. II-A1).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct LayerCache {
    pub(crate) k: Vec<Vec<f64>>,
    pub(crate) v: Vec<Vec<f64>>,
}

impl LayerCache {
    pub(crate) fn push_row(&mut self, k_new: &[f64], v_new: &[f64]) {
        self.k.push(k_new.to_vec());
        self.v.push(v_new.to_vec());
    }

    pub(crate) fn len(&self) -> usize {
        self.k.len()
    }
}

/// A whole-model KV cache for incremental decoding.
///
/// Create with [`TransformerModel::new_cache`], feed tokens through
/// [`TransformerModel::decode_step`].
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    pub(crate) layers: Vec<LayerCache>,
}

impl KvCache {
    /// Number of tokens currently cached.
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, LayerCache::len)
    }

    /// Whether no tokens have been decoded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A randomly-initialized transformer encoder with a classification head.
///
/// # Examples
///
/// ```
/// use pdac_nn::{TransformerModel, TransformerConfig, ExactGemm};
///
/// let model = TransformerModel::random(TransformerConfig::tiny(), 10, 42);
/// let input = model.random_input(7);
/// let logits = model.logits(&input, &ExactGemm);
/// assert_eq!(logits.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerModel {
    config: TransformerConfig,
    pub(crate) layers: Vec<EncoderLayer>,
    classifier: Mat,
}

impl TransformerModel {
    /// Builds a model with seeded random weights and `classes` output
    /// logits.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation or `classes == 0`.
    pub fn random(config: TransformerConfig, classes: usize, seed: u64) -> Self {
        config.validate().expect("config must be valid");
        assert!(classes > 0, "need at least one output class");
        let mut rng = SplitMix64::seed_from_u64(seed);
        let layers = (0..config.layers)
            .map(|_| EncoderLayer::random(&config, &mut rng))
            .collect();
        let classifier = random_weight(&mut rng, config.hidden, classes);
        Self {
            config,
            layers,
            classifier,
        }
    }

    /// The model's shape.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// A seeded random input of shape `seq_len × hidden` (token
    /// embeddings standing in for real data).
    pub fn random_input(&self, seed: u64) -> Mat {
        let mut rng = SplitMix64::seed_from_u64(seed);
        Mat::from_fn(self.config.seq_len, self.config.hidden, |_, _| {
            rng.gen_range_f64(-1.0, 1.0)
        })
    }

    /// Runs the encoder stack (bidirectional attention), returning the
    /// final hidden states.
    pub fn forward(&self, input: &Mat, backend: &dyn GemmBackend) -> Mat {
        let _span = pdac_telemetry::span("nn.inference.forward");
        assert_eq!(
            input.shape(),
            (self.config.seq_len, self.config.hidden),
            "input shape mismatch"
        );
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x, &self.config, backend, false);
        }
        x
    }

    /// Runs the stack with a causal attention mask (decoder-style), for
    /// any number of rows up to the configured sequence length.
    ///
    /// # Panics
    ///
    /// Panics if the input's hidden dimension mismatches the model.
    pub fn forward_causal(&self, input: &Mat, backend: &dyn GemmBackend) -> Mat {
        assert_eq!(input.cols(), self.config.hidden, "hidden dim mismatch");
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x, &self.config, backend, true);
        }
        x
    }

    /// Creates an empty KV cache for [`Self::decode_step`].
    pub fn new_cache(&self) -> KvCache {
        KvCache {
            layers: vec![LayerCache::default(); self.layers.len()],
        }
    }

    /// Decodes one token embedding incrementally against the cache,
    /// returning the token's final hidden state (1 × hidden).
    ///
    /// Equivalent to the corresponding row of [`Self::forward_causal`]
    /// over the full prefix — the KV-cache identity of paper Sec. II-A1.
    ///
    /// # Panics
    ///
    /// Panics if `token.len() != hidden` or the cache has a different
    /// layer count.
    pub fn decode_step(
        &self,
        token: &[f64],
        cache: &mut KvCache,
        backend: &dyn GemmBackend,
    ) -> Vec<f64> {
        let mut scratch = crate::batch::DecodeScratch::new();
        self.decode_step_with(token, cache, backend, &mut scratch)
    }

    /// Mean-pooled classification logits.
    pub fn logits(&self, input: &Mat, backend: &dyn GemmBackend) -> Vec<f64> {
        let hidden = self.forward(input, backend);
        let pooled = mean_pool_rows(&hidden);
        self.classifier
            .transpose()
            .matvec(&pooled)
            .expect("classifier matches hidden dim")
    }

    /// Argmax class of the logits.
    pub fn predict(&self, input: &Mat, backend: &dyn GemmBackend) -> usize {
        let logits = self.logits(input, backend);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

/// Output-fidelity comparison between a reference and a test backend.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// Test backend name.
    pub backend: String,
    /// Mean cosine similarity of logits over the batch.
    pub mean_cosine: f64,
    /// Mean SQNR of logits in dB.
    pub mean_sqnr_db: f64,
    /// Fraction of inputs whose argmax class agrees.
    pub top1_agreement: f64,
    /// Batch size evaluated.
    pub samples: usize,
}

/// Runs `samples` seeded inputs through `model` under both backends and
/// reports logits fidelity.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn fidelity_study(
    model: &TransformerModel,
    reference: &dyn GemmBackend,
    test: &dyn GemmBackend,
    samples: usize,
) -> FidelityReport {
    assert!(samples > 0, "need at least one sample");
    let mut cos_sum = 0.0;
    let mut sqnr_sum = 0.0;
    let mut agree = 0usize;
    for i in 0..samples {
        let input = model.random_input(1000 + i as u64);
        let ref_logits = model.logits(&input, reference);
        let test_logits = model.logits(&input, test);
        cos_sum += cosine_similarity(&ref_logits, &test_logits).unwrap_or(0.0);
        sqnr_sum += sqnr_db(&ref_logits, &test_logits).min(120.0);
        let ref_arg = argmax(&ref_logits);
        let test_arg = argmax(&test_logits);
        if ref_arg == test_arg {
            agree += 1;
        }
    }
    FidelityReport {
        backend: test.name().to_string(),
        mean_cosine: cos_sum / samples as f64,
        mean_sqnr_db: sqnr_sum / samples as f64,
        top1_agreement: agree as f64 / samples as f64,
        samples,
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))
        .map(|(i, _)| i)
        .expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{AnalogGemm, ExactGemm};
    use pdac_core::edac::ElectricalDac;
    use pdac_core::pdac::PDac;

    fn tiny_model() -> TransformerModel {
        TransformerModel::random(TransformerConfig::tiny(), 4, 7)
    }

    #[test]
    fn forward_shape_is_preserved() {
        let m = tiny_model();
        let x = m.random_input(1);
        let out = m.forward(&x, &ExactGemm);
        assert_eq!(out.shape(), (8, 32));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny_model();
        let x = m.random_input(2);
        let a = m.forward(&x, &ExactGemm);
        let b = m.forward(&x, &ExactGemm);
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let m = tiny_model();
        let a = m.logits(&m.random_input(1), &ExactGemm);
        let b = m.logits(&m.random_input(2), &ExactGemm);
        assert_ne!(a, b);
    }

    #[test]
    fn layernorm_keeps_activations_bounded() {
        // Activation magnitudes must not blow up through the stack —
        // this is what makes per-tensor quantization viable.
        let m = tiny_model();
        let out = m.forward(&m.random_input(3), &ExactGemm);
        assert!(out.max_abs() < 10.0);
    }

    #[test]
    fn pdac_inference_tracks_exact() {
        let m = tiny_model();
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac-8b");
        let report = fidelity_study(&m, &ExactGemm, &pdac, 8);
        assert!(report.mean_cosine > 0.95, "{report:?}");
        assert!(report.top1_agreement >= 0.75, "{report:?}");
    }

    #[test]
    fn edac_fidelity_beats_pdac_fidelity() {
        let m = tiny_model();
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac-8b");
        let edac = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "edac-8b");
        let rp = fidelity_study(&m, &ExactGemm, &pdac, 6);
        let re = fidelity_study(&m, &ExactGemm, &edac, 6);
        assert!(
            re.mean_sqnr_db > rp.mean_sqnr_db,
            "edac {re:?} vs pdac {rp:?}"
        );
    }

    #[test]
    fn predict_is_stable_under_pdac() {
        let m = tiny_model();
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac-8b");
        let x = m.random_input(11);
        // Most inputs keep their argmax; this seeded one must.
        let exact = m.predict(&x, &ExactGemm);
        let analog = m.predict(&x, &pdac);
        assert_eq!(exact, analog);
    }

    #[test]
    fn decode_steps_match_causal_forward() {
        // The KV-cache identity: decoding token-by-token reproduces the
        // rows of the full causal forward pass exactly.
        let m = tiny_model();
        let input = m.random_input(21);
        let full = m.forward_causal(&input, &ExactGemm);
        let mut cache = m.new_cache();
        for t in 0..input.rows() {
            let hidden = m.decode_step(&input.row(t), &mut cache, &ExactGemm);
            for (c, h) in hidden.iter().enumerate() {
                assert!(
                    (h - full[(t, c)]).abs() < 1e-9,
                    "token {t} dim {c}: {h} vs {}",
                    full[(t, c)]
                );
            }
        }
        assert_eq!(cache.len(), input.rows());
    }

    #[test]
    fn causal_differs_from_bidirectional() {
        let m = tiny_model();
        let input = m.random_input(22);
        let causal = m.forward_causal(&input, &ExactGemm);
        let bidir = m.forward(&input, &ExactGemm);
        // The last token sees everything either way only in the first
        // layer; deeper layers mix, so outputs differ.
        assert_ne!(causal, bidir);
        // But the very first token attends only to itself in both the
        // causal pass's first layer and its decode equivalent.
        assert!(causal[(0, 0)].is_finite());
    }

    #[test]
    fn cache_starts_empty_and_grows() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        assert!(cache.is_empty());
        let token = vec![0.1; 32];
        let _ = m.decode_step(&token, &mut cache, &ExactGemm);
        let _ = m.decode_step(&token, &mut cache, &ExactGemm);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn decode_works_with_analog_backend() {
        let m = tiny_model();
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac");
        let mut exact_cache = m.new_cache();
        let mut analog_cache = m.new_cache();
        let token = m.random_input(5).row(0);
        let he = m.decode_step(&token, &mut exact_cache, &ExactGemm);
        let ha = m.decode_step(&token, &mut analog_cache, &pdac);
        let cs = pdac_math::stats::cosine_similarity(&he, &ha).unwrap();
        assert!(cs > 0.9, "cosine {cs}");
    }

    #[test]
    fn decode_steps_reuse_cached_weight_conversions() {
        // Across decode steps the six stable weight matrices per layer
        // hit the analog backend's weight cache (the per-step kh/vh
        // cache views are fresh allocations and legitimately miss);
        // each weight converts exactly once.
        let m = tiny_model();
        let pdac = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac");
        let mut cache = m.new_cache();
        let input = m.random_input(6);
        let steps = 4;
        for t in 0..steps {
            let _ = m.decode_step(&input.row(t), &mut cache, &pdac);
        }
        // 2 layers × 6 weights miss on step 0, then hit on every later step.
        let weight_matmuls = 2 * 6;
        assert_eq!(pdac.cache().hits(), (steps as u64 - 1) * weight_matmuls);
        assert!(pdac.cache().misses() >= weight_matmuls);
    }

    #[test]
    #[should_panic(expected = "hidden dim mismatch")]
    fn decode_rejects_wrong_token_width() {
        let m = tiny_model();
        let mut cache = m.new_cache();
        m.decode_step(&[0.0; 7], &mut cache, &ExactGemm);
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn wrong_input_shape_rejected() {
        let m = tiny_model();
        let bad = Mat::zeros(3, 32);
        m.forward(&bad, &ExactGemm);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn fidelity_needs_samples() {
        let m = tiny_model();
        fidelity_study(&m, &ExactGemm, &ExactGemm, 0);
    }
}
