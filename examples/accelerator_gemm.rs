//! Running a GEMM on the simulated Lightening-Transformer: tiling,
//! cycle counts, functional output accuracy and energy, for both drive
//! paths.
//!
//! Run with: `cargo run --release --example accelerator_gemm`

use pdac::accel::config::{AccelConfig, DriverChoice};
use pdac::accel::functional::FunctionalGemm;
use pdac::accel::scheduler::{GemmShape, TilingPlan};
use pdac::math::stats::cosine_similarity;
use pdac::math::Mat;
use pdac::power::model::{DriverKind, PowerModel};
use pdac::power::{ArchConfig, TechParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Analytical: a full BERT projection layer on LT-B.
    let arch = ArchConfig::lt_b();
    let plan = TilingPlan::plan(GemmShape::new(128, 768, 768), &arch);
    println!("BERT projection (128x768x768) on LT-B:");
    println!(
        "  {} core-cycles over {} cores -> {} cycles ({:.2} µs @ 5 GHz)",
        plan.core_cycles,
        arch.cores,
        plan.cycles,
        plan.runtime_s(&arch) * 1e6
    );
    println!(
        "  {} operand modulations, {} ADC samples, utilization {:.0}%\n",
        plan.conversions,
        plan.adc_samples,
        100.0 * plan.utilization(&arch)
    );

    // 2. Functional: push real numbers through the photonic path on a
    //    small instance and compare both converters.
    let small = ArchConfig {
        cores: 2,
        rows: 4,
        cols: 4,
        wavelengths: 8,
        clock_hz: 5e9,
    };
    let a = Mat::from_fn(16, 24, |r, c| (((r * 13 + c * 7) % 29) as f64 / 29.0) - 0.5);
    let b = Mat::from_fn(24, 12, |r, c| (((r * 5 + c * 11) % 23) as f64 / 23.0) - 0.5);
    let exact = a.matmul(&b)?;

    println!("functional 16x24x12 GEMM (8-bit operands):");
    for choice in [
        DriverChoice::ElectricalDac,
        DriverChoice::PhotonicDac,
        DriverChoice::PhotonicDacFirstOrder,
    ] {
        let engine = FunctionalGemm::new(AccelConfig::new(small.clone(), 8, choice)?)?;
        let run = engine.execute(&a, &b)?;
        let cs = cosine_similarity(run.output.as_slice(), exact.as_slice()).unwrap();
        println!(
            "  {choice:<22} distance {:.4}, cosine {:.6}, {} cycles",
            run.output.distance(&exact),
            cs,
            run.stats.cycles
        );
    }

    // 3. Energy for the analytical plan under both power models.
    let tech = TechParams::calibrated();
    for (driver, label) in [
        (DriverKind::ElectricalDac, "baseline"),
        (DriverKind::PhotonicDac, "P-DAC"),
    ] {
        let pm = PowerModel::new(arch.clone(), tech.clone(), driver);
        let energy = pm.breakdown(8).total_watts() * plan.runtime_s(&arch);
        println!(
            "\n  {label:<9} compute energy for the projection: {:.2} µJ \
             ({:.2} W over {:.2} µs)",
            energy * 1e6,
            pm.breakdown(8).total_watts(),
            plan.runtime_s(&arch) * 1e6
        );
    }
    Ok(())
}
