//! Property-based tests for the accelerator simulator.

use pdac_accel::config::{AccelConfig, DriverChoice};
use pdac_accel::functional::FunctionalGemm;
use pdac_accel::memory::{MemoryConfig, MemoryHierarchy};
use pdac_accel::scheduler::{GemmShape, TilingPlan};
use pdac_math::Mat;
use pdac_power::ArchConfig;
use proptest::prelude::*;

fn arch_strategy() -> impl Strategy<Value = ArchConfig> {
    (1usize..8, 1usize..8, 1usize..8, 1usize..8).prop_map(|(cores, rows, cols, wl)| ArchConfig {
        cores,
        rows,
        cols,
        wavelengths: wl,
        clock_hz: 5e9,
    })
}

proptest! {
    #[test]
    fn plan_covers_all_macs(
        arch in arch_strategy(),
        m in 1usize..64, k in 1usize..64, n in 1usize..64,
    ) {
        let shape = GemmShape::new(m, k, n);
        let plan = TilingPlan::plan(shape, &arch);
        // Issued MAC capacity always covers the useful MACs.
        let issued = plan.core_cycles
            * (arch.rows * arch.cols * arch.wavelengths) as u64;
        prop_assert!(issued >= shape.macs());
        // Utilization in (0, 1].
        let u = plan.utilization(&arch);
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
    }

    #[test]
    fn wall_clock_cycles_bounded(
        arch in arch_strategy(),
        m in 1usize..64, k in 1usize..64, n in 1usize..64,
    ) {
        let plan = TilingPlan::plan(GemmShape::new(m, k, n), &arch);
        prop_assert!(plan.cycles <= plan.core_cycles);
        prop_assert!(plan.cycles * arch.cores as u64 >= plan.core_cycles);
    }

    #[test]
    fn exact_fit_has_full_utilization(
        arch in arch_strategy(),
        mt in 1usize..4, kt in 1usize..4, nt in 1usize..4,
    ) {
        let shape = GemmShape::new(mt * arch.rows, kt * arch.wavelengths, nt * arch.cols);
        let plan = TilingPlan::plan(shape, &arch);
        prop_assert!((plan.utilization(&arch) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn functional_output_tracks_exact(
        vals in prop::collection::vec(-1.0f64..1.0, 24),
    ) {
        let a = Mat::from_rows(4, 6, vals.clone()).unwrap();
        let b = Mat::from_rows(6, 4, vals.iter().rev().cloned().collect()).unwrap();
        let arch = ArchConfig { cores: 2, rows: 2, cols: 2, wavelengths: 4, clock_hz: 5e9 };
        let engine = FunctionalGemm::new(
            AccelConfig::new(arch, 8, DriverChoice::ElectricalDac).unwrap(),
        )
        .unwrap();
        let run = engine.execute(&a, &b).unwrap();
        let exact = a.matmul(&b).unwrap();
        let scale = exact.distance(&Mat::zeros(4, 4)).max(0.25);
        prop_assert!(run.output.distance(&exact) / scale < 0.2);
    }

    #[test]
    fn memory_counters_are_additive(bytes in prop::collection::vec(1u64..1_000_000, 1..8)) {
        let mut one = MemoryHierarchy::new(MemoryConfig::lt_b());
        let mut total = 0u64;
        for &b in &bytes {
            one.load_activations(b);
            total += 3 * b; // m2 read + m1 write + m1 read
        }
        prop_assert_eq!(one.counters().total(), total);
    }

    #[test]
    fn weight_routing_depends_only_on_size(sz in 1u64..(32 << 20)) {
        let mut mem = MemoryHierarchy::new(MemoryConfig::lt_b());
        let on_chip = mem.load_weights(sz);
        prop_assert_eq!(on_chip, sz <= MemoryConfig::lt_b().m2_bytes);
        prop_assert_eq!(mem.counters().dram_read > 0, !on_chip);
    }
}
