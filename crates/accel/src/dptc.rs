//! A physical DPTC core: the tile-level photonic engine of
//! Lightening-Transformer (paper Fig. 3).
//!
//! One core multiplies an `rows × λ` operand tile `X` against a
//! `λ × cols` tile `Y` per cycle. Physically:
//!
//! * a **row bank** of `rows × λ` MZMs encodes `X` — row `i`'s vector is
//!   broadcast along the core's `i`-th horizontal bus,
//! * a **column bank** of `cols × λ` MZMs encodes `Y` — column `j`'s
//!   vector travels the `j`-th vertical bus,
//! * the DDot unit at `(i, j)` interferes the two buses and its balanced
//!   detectors emit `X[i,:]·Y[:,j]`.
//!
//! The hardware point this module captures beyond `FunctionalGemm`:
//! **operand reuse**. Each row vector is modulated once and consumed by
//! `cols` DDot units (and vice versa), which is exactly why the
//! conversion count per cycle is `(rows + cols)·λ` and not
//! `2·rows·cols·λ` — the economics behind the paper's Fig. 4 DAC-count
//! observation. Splitting each modulated bus across its consumers also
//! divides optical power, which the loss accounting below tracks.

use pdac_core::MzmDriver;
use pdac_math::stats::Summary;
use pdac_math::Mat;
use pdac_photonics::DDotUnit;
use std::fmt;

/// Errors from tile execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// An operand tile does not match the core's geometry.
    ShapeMismatch {
        /// Expected shape.
        expected: (usize, usize),
        /// Supplied shape.
        got: (usize, usize),
    },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::ShapeMismatch { expected, got } => write!(
                f,
                "tile shape {}x{} does not match core geometry {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for TileError {}

/// Result of one tile cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct TileRun {
    /// The `rows × cols` partial-product tile.
    pub output: Mat,
    /// Operand modulations this cycle (`(rows + cols) · λ`).
    pub conversions: u64,
    /// Mean optical power per DDot input after bus splitting, relative
    /// to a unit-amplitude modulated signal.
    pub mean_input_power: f64,
}

/// A physical DPTC core bound to a converter.
pub struct DptcCore {
    rows: usize,
    cols: usize,
    wavelengths: usize,
    driver: Box<dyn MzmDriver>,
    ddot: DDotUnit,
}

impl fmt::Debug for DptcCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DptcCore")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("wavelengths", &self.wavelengths)
            .field("driver_bits", &self.driver.bits())
            .finish()
    }
}

impl DptcCore {
    /// Builds a core with the given geometry and MZM drive path.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(rows: usize, cols: usize, wavelengths: usize, driver: Box<dyn MzmDriver>) -> Self {
        assert!(
            rows > 0 && cols > 0 && wavelengths > 0,
            "geometry must be nonzero"
        );
        Self {
            rows,
            cols,
            wavelengths,
            ddot: DDotUnit::ideal(wavelengths),
            driver,
        }
    }

    /// Core geometry `(rows, cols, wavelengths)`.
    pub fn geometry(&self) -> (usize, usize, usize) {
        (self.rows, self.cols, self.wavelengths)
    }

    /// MZMs in the core: `(rows + cols) · λ`.
    pub fn mzm_count(&self) -> usize {
        (self.rows + self.cols) * self.wavelengths
    }

    /// DDot units in the core.
    pub fn ddot_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Executes one tile cycle: `X (rows×λ) · Y (λ×cols)`, with operands
    /// quantized and driven through the converter **once per bank
    /// element** (hardware operand reuse), then consumed by every DDot
    /// on the corresponding bus.
    ///
    /// `x`/`y` values must already be scaled into `[−1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::ShapeMismatch`] for wrong tile shapes.
    pub fn run_tile(&self, x: &Mat, y: &Mat) -> Result<TileRun, TileError> {
        let _span = pdac_telemetry::span("accel.dptc.run_tile");
        if x.shape() != (self.rows, self.wavelengths) {
            return Err(TileError::ShapeMismatch {
                expected: (self.rows, self.wavelengths),
                got: x.shape(),
            });
        }
        if y.shape() != (self.wavelengths, self.cols) {
            return Err(TileError::ShapeMismatch {
                expected: (self.wavelengths, self.cols),
                got: y.shape(),
            });
        }
        // Modulate each bank element exactly once.
        let xm = x.map(|v| self.driver.convert_value(v));
        let ym = y.map(|v| self.driver.convert_value(v));

        // Bus splitting: a row signal feeds `cols` DDots, a column signal
        // feeds `rows`; passive splitters divide the field by √n.
        let row_split = 1.0 / (self.cols as f64).sqrt();
        let col_split = 1.0 / (self.rows as f64).sqrt();

        let mut out = Mat::zeros(self.rows, self.cols);
        let mut power = Summary::new();
        let mut xv = vec![0.0; self.wavelengths];
        let mut yv = vec![0.0; self.wavelengths];
        for i in 0..self.rows {
            for j in 0..self.cols {
                for t in 0..self.wavelengths {
                    xv[t] = xm[(i, t)] * row_split;
                    yv[t] = ym[(t, j)] * col_split;
                }
                power.extend(xv.iter().map(|v| 0.5 * v * v));
                let detected = self
                    .ddot
                    .dot(&xv, &yv)
                    .expect("operand length matches unit channels");
                // The split factors are known constants; the receiver's
                // gain removes them (√cols·√rows rescale).
                out[(i, j)] = detected * (self.cols as f64 * self.rows as f64).sqrt();
            }
        }
        pdac_telemetry::counter_add("accel.dptc.conversions", self.mzm_count() as u64);
        Ok(TileRun {
            output: out,
            conversions: self.mzm_count() as u64,
            mean_input_power: power.mean().unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdac_core::edac::ElectricalDac;
    use pdac_core::pdac::PDac;
    use pdac_math::rng::SplitMix64;

    fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = SplitMix64::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-1.0, 1.0))
    }

    fn core(bits: u8) -> DptcCore {
        DptcCore::new(4, 4, 8, Box::new(ElectricalDac::new(bits).unwrap()))
    }

    #[test]
    fn geometry_and_counts() {
        let c = core(8);
        assert_eq!(c.geometry(), (4, 4, 8));
        assert_eq!(c.mzm_count(), 64);
        assert_eq!(c.ddot_count(), 16);
    }

    #[test]
    fn tile_product_tracks_exact() {
        let c = core(8);
        let x = random_mat(4, 8, 1);
        let y = random_mat(8, 4, 2);
        let run = c.run_tile(&x, &y).unwrap();
        let exact = x.matmul(&y).unwrap();
        let rel = run.output.distance(&exact) / exact.max_abs().max(1e-9);
        assert!(rel < 0.1, "relative distance {rel}");
    }

    #[test]
    fn conversions_reflect_operand_reuse() {
        // 4×8 + 8×4 = 64 modulations for 16 dot products of length 8:
        // without reuse it would be 2·16·8 = 256.
        let c = core(8);
        let run = c
            .run_tile(&random_mat(4, 8, 3), &random_mat(8, 4, 4))
            .unwrap();
        assert_eq!(run.conversions, 64);
    }

    #[test]
    fn split_rescaling_is_exact_for_ideal_converter() {
        // With a near-ideal converter the √(rows·cols) rescale must make
        // the split transparent: compare 2×2 vs 8×8 fan-out cores.
        let small = DptcCore::new(2, 2, 4, Box::new(ElectricalDac::new(12).unwrap()));
        let x = random_mat(2, 4, 5);
        let y = random_mat(4, 2, 6);
        let run = small.run_tile(&x, &y).unwrap();
        let exact = x.matmul(&y).unwrap();
        assert!(run.output.distance(&exact) < 0.01);
    }

    #[test]
    fn larger_fanout_means_less_power_per_ddot() {
        let narrow = DptcCore::new(2, 2, 4, Box::new(ElectricalDac::new(8).unwrap()));
        let wide = DptcCore::new(2, 8, 4, Box::new(ElectricalDac::new(8).unwrap()));
        let x2 = random_mat(2, 4, 7);
        let p_narrow = narrow
            .run_tile(&x2, &random_mat(4, 2, 8))
            .unwrap()
            .mean_input_power;
        let p_wide = wide
            .run_tile(&x2, &random_mat(4, 8, 9))
            .unwrap()
            .mean_input_power;
        assert!(
            p_wide < p_narrow,
            "wider fan-out must dilute optical power: {p_wide} vs {p_narrow}"
        );
    }

    #[test]
    fn pdac_core_is_less_accurate_than_edac_core() {
        let x = random_mat(4, 8, 10);
        let y = random_mat(8, 4, 11);
        let exact = x.matmul(&y).unwrap();
        let e = core(8).run_tile(&x, &y).unwrap().output.distance(&exact);
        let p = DptcCore::new(4, 4, 8, Box::new(PDac::with_optimal_approx(8).unwrap()))
            .run_tile(&x, &y)
            .unwrap()
            .output
            .distance(&exact);
        assert!(p > e);
    }

    #[test]
    fn shape_mismatch_reported() {
        let c = core(8);
        let err = c
            .run_tile(&random_mat(3, 8, 12), &random_mat(8, 4, 13))
            .unwrap_err();
        assert!(matches!(err, TileError::ShapeMismatch { .. }));
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn matches_functional_gemm_numerics() {
        // The tile engine and the scalar-chunk engine implement the same
        // math; on an exact-fit GEMM they must agree closely.
        use crate::config::{AccelConfig, DriverChoice};
        use crate::functional::FunctionalGemm;
        use pdac_power::ArchConfig;

        let arch = ArchConfig {
            cores: 1,
            rows: 4,
            cols: 4,
            wavelengths: 8,
            clock_hz: 5e9,
        };
        let engine =
            FunctionalGemm::new(AccelConfig::new(arch, 8, DriverChoice::PhotonicDac).unwrap())
                .unwrap();
        let tile_core = DptcCore::new(4, 4, 8, Box::new(PDac::with_optimal_approx(8).unwrap()));
        let x = random_mat(4, 8, 14);
        let y = random_mat(8, 4, 15);
        let a = engine.execute(&x, &y).unwrap().output;
        let b = tile_core.run_tile(&x, &y).unwrap().output;
        // Same converters, same DDot identity; differences only from the
        // functional engine's ADC requantization of partials.
        assert!(a.distance(&b) < 0.2, "distance {}", a.distance(&b));
    }
}
