//! The differential conformance engine.
//!
//! Runs the same GEMM / decode workloads through every backend pair the
//! workspace promises equivalence or bounded error for, and turns each
//! promise into a [`CheckResult`]:
//!
//! * **Bit identity** — blocked/threaded kernels vs the reference triple
//!   loop, [`ConverterLut`] vs the scalar drive path, cached
//!   ([`WeightCache`]/[`PreparedOperand`]) vs uncached conversion. These
//!   paths advertise *exact* equivalence; one differing bit fails.
//! * **Error budgets** — the P-DAC's per-element relative reconstruction
//!   error against the paper's ≈8.5% bound (Eq. 18), and configurable
//!   end-to-end GEMM tolerances for the analog and functional backends.
//! * **Fault sweeps** — [`FaultyPDac`] at increasing fault magnitudes:
//!   errors must stay finite (never NaN), monotone in magnitude, and get
//!   quarantined into the `verify.fault.*` telemetry histograms.
//!
//! [`WeightCache`]: pdac_nn::prepared::WeightCache
//! [`PreparedOperand`]: pdac_nn::prepared::PreparedOperand

use crate::faults::{FaultSpec, FaultyPDac, SlotFault};
use crate::report::{CheckKind, CheckResult, ConformanceReport};
use pdac_accel::config::{AccelConfig, DriverChoice};
use pdac_accel::functional::FunctionalGemm;
use pdac_core::converter::MzmDriver;
use pdac_core::edac::ElectricalDac;
use pdac_core::ideal::IdealDac;
use pdac_core::lut::ConverterLut;
use pdac_core::pdac::PDac;
use pdac_math::gemm::{gemm, gemm_prepacked, gemm_scoped, PackedB};
use pdac_math::rng::SplitMix64;
use pdac_math::Mat;
use pdac_nn::gemm::{AnalogGemm, AsymmetricGemm, ExactGemm, GemmBackend};
use pdac_nn::quant::QuantizedMat;
use pdac_nn::{
    prefix_block_hashes, BatchedKvCache, DecodeScratch, KvCache, PagedConfig, PagedKvCache,
    TransformerConfig, TransformerModel,
};
use pdac_power::ArchConfig;

/// Configuration of one conformance run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceConfig {
    /// Seed for every randomized operand (the run is fully deterministic).
    pub seed: u64,
    /// Converter bit widths to cross-check.
    pub bits: Vec<u8>,
    /// Per-element relative reconstruction-error budget for the P-DAC
    /// (paper Eq. 18 reports ≈8.5%; the default leaves 0.2% headroom for
    /// the numerically solved breakpoint).
    pub per_element_budget: f64,
    /// End-to-end relative Frobenius-error budget for analog GEMM
    /// against the exact backend.
    pub gemm_budget: f64,
    /// GEMM shapes `(m, k, n)` used by the kernel and backend checks.
    pub gemm_shapes: Vec<(usize, usize, usize)>,
    /// Decode steps for the cached-weights workload.
    pub decode_steps: usize,
    /// TIA gain-drift magnitudes for the fault sweep (ascending).
    pub gain_drifts: Vec<f64>,
    /// Dark-current ratios for the fault sweep (ascending).
    pub dark_ratios: Vec<f64>,
    /// Laser droop fractions for the fault sweep (ascending).
    pub laser_droops: Vec<f64>,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        Self {
            seed: 0x9D_AC,
            bits: vec![4, 8],
            per_element_budget: 0.087,
            gemm_budget: 0.15,
            gemm_shapes: vec![(17, 29, 13), (32, 64, 24), (1, 128, 64), (5, 5, 5)],
            decode_steps: 6,
            gain_drifts: vec![0.0, 0.02, 0.05, 0.1, 0.2],
            dark_ratios: vec![0.0, 0.02, 0.05, 0.1, 0.2],
            laser_droops: vec![0.0, 0.05, 0.1, 0.2, 0.4],
        }
    }
}

fn random_mat(rows: usize, cols: usize, rng: &mut SplitMix64) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-1.0, 1.0))
}

/// Elements whose bit patterns differ between two equally shaped
/// matrices.
fn differing_bits(a: &Mat, b: &Mat) -> usize {
    assert_eq!(a.shape(), b.shape(), "conformance pair must share a shape");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .filter(|(x, y)| x.to_bits() != y.to_bits())
        .count()
}

/// Relative Frobenius distance `‖a − b‖ / ‖b‖` (b is the golden side).
fn relative_distance(a: &Mat, b: &Mat) -> f64 {
    let norm: f64 = b.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
    a.distance(b) / norm.max(1e-300)
}

fn bit_identity_check(name: &str, diffs: usize, detail: String) -> CheckResult {
    CheckResult {
        name: name.to_string(),
        kind: CheckKind::BitIdentity,
        passed: diffs == 0,
        worst: diffs as f64,
        budget: 0.0,
        detail,
    }
}

fn tolerance_check(name: &str, worst: f64, budget: f64, detail: String) -> CheckResult {
    CheckResult {
        name: name.to_string(),
        kind: CheckKind::Tolerance,
        passed: worst.is_finite() && worst <= budget,
        worst,
        budget,
        detail,
    }
}

fn invariant_check(name: &str, holds: bool, detail: String) -> CheckResult {
    CheckResult {
        name: name.to_string(),
        kind: CheckKind::Invariant,
        passed: holds,
        worst: if holds { 0.0 } else { 1.0 },
        budget: 0.0,
        detail,
    }
}

/// Checks that `values` is nondecreasing up to `slack` (graceful,
/// monotone degradation); `worst` is the largest observed decrease.
fn monotone_check(name: &str, values: &[f64], slack: f64, detail: String) -> CheckResult {
    let finite = values.iter().all(|v| v.is_finite());
    let mut worst_drop = 0.0f64;
    for pair in values.windows(2) {
        worst_drop = worst_drop.max(pair[0] - pair[1]);
    }
    CheckResult {
        name: name.to_string(),
        kind: CheckKind::Monotone,
        passed: finite && worst_drop <= slack,
        worst: worst_drop,
        budget: slack,
        detail,
    }
}

// ---------------------------------------------------------------------------
// Backend-pair matrix
// ---------------------------------------------------------------------------

/// Blocked / threaded / in-place / matvec kernels vs the reference
/// triple loop — bit identity across shapes and thread counts.
fn kernel_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut diffs_threaded = 0usize;
    let mut diffs_into = 0usize;
    let mut diffs_matvec = 0usize;
    let mut out = Mat::zeros(1, 1);
    for &(m, k, n) in &cfg.gemm_shapes {
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let reference = a.matmul_reference(&b).expect("shapes chain");
        diffs_threaded += differing_bits(&a.matmul(&b).unwrap(), &reference);
        for threads in [1usize, 2, 8] {
            diffs_threaded +=
                differing_bits(&a.matmul_with_threads(&b, threads).unwrap(), &reference);
        }
        a.matmul_into(&b, &mut out).unwrap();
        diffs_into += differing_bits(&out, &reference);
        let v = b.col(0);
        let got = a.matvec(&v).unwrap();
        let want = a.matvec_reference(&v).unwrap();
        diffs_matvec += got
            .iter()
            .zip(&want)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
    }
    let shapes = format!("shapes={:?} threads=[default,1,2,8]", cfg.gemm_shapes);
    vec![
        bit_identity_check(
            "kernel.matmul.threaded_vs_reference",
            diffs_threaded,
            shapes.clone(),
        ),
        bit_identity_check(
            "kernel.matmul_into_vs_reference",
            diffs_into,
            shapes.clone(),
        ),
        bit_identity_check("kernel.matvec_vs_reference", diffs_matvec, shapes),
    ]
}

/// Persistent worker-pool GEMM vs the scoped-spawn baseline and the
/// reference triple loop — bit identity across shapes and explicit
/// thread counts (including odd panel splits).
fn pool_kernel_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x900C);
    let bit_diffs = |x: &[f64], y: &[f64]| {
        x.iter()
            .zip(y)
            .filter(|(p, q)| p.to_bits() != q.to_bits())
            .count()
    };
    let mut diffs_scoped = 0usize;
    let mut diffs_reference = 0usize;
    let mut diffs_prepacked = 0usize;
    for &(m, k, n) in &cfg.gemm_shapes {
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let reference = a.matmul_reference(&b).expect("shapes chain");
        let packed = PackedB::pack(b.as_slice(), k, n);
        for threads in [1usize, 2, 7] {
            let mut pooled = vec![0.0; m * n];
            let mut scoped = vec![0.0; m * n];
            let mut pre = vec![0.0; m * n];
            gemm(a.as_slice(), b.as_slice(), m, k, n, &mut pooled, threads);
            gemm_scoped(a.as_slice(), b.as_slice(), m, k, n, &mut scoped, threads);
            gemm_prepacked(a.as_slice(), &packed, m, &mut pre, threads);
            diffs_scoped += bit_diffs(&pooled, &scoped);
            diffs_prepacked += bit_diffs(&pooled, &pre);
            diffs_reference += bit_diffs(&pooled, reference.as_slice());
        }
    }
    let detail = format!("shapes={:?} threads=[1,2,7]", cfg.gemm_shapes);
    vec![
        bit_identity_check("kernel.pool.gemm_vs_scoped", diffs_scoped, detail.clone()),
        bit_identity_check(
            "kernel.pool.gemm_vs_reference",
            diffs_reference,
            detail.clone(),
        ),
        bit_identity_check("kernel.pool.prepacked_vs_gemm", diffs_prepacked, detail),
    ]
}

/// Batched decode vs sequential decode: every row of every
/// `decode_batch` step must be bit-identical to feeding that sequence
/// through `decode_step` alone — for the exact and the cached analog
/// backend (per-row activation quantization + prepacked weights).
fn batched_decode_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let model = TransformerModel::random(TransformerConfig::tiny(), 4, cfg.seed);
    let hidden = model.config().hidden;
    let s = 3usize;
    let steps = cfg.decode_steps.clamp(2, 4);
    let backends: Vec<(&str, Box<dyn GemmBackend>)> = vec![
        ("exact", Box::new(ExactGemm)),
        (
            "pdac",
            Box::new(AnalogGemm::new(
                PDac::with_optimal_approx(8).expect("valid bits"),
                "pdac8",
            )),
        ),
    ];
    let mut checks = Vec::new();
    for (label, backend) in backends {
        let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xBA7C4);
        let mut batch = BatchedKvCache::new(&model, s);
        let mut solo: Vec<_> = (0..s).map(|_| model.new_cache()).collect();
        let mut diffs = 0usize;
        for _ in 0..steps {
            let tokens = random_mat(s, hidden, &mut rng);
            let got = model.decode_batch(&tokens, &mut batch, backend.as_ref());
            for (sq, cache) in solo.iter_mut().enumerate() {
                let want = model.decode_step(&tokens.row(sq), cache, backend.as_ref());
                diffs += got
                    .row_slice(sq)
                    .iter()
                    .zip(&want)
                    .filter(|(x, y)| x.to_bits() != y.to_bits())
                    .count();
            }
        }
        checks.push(bit_identity_check(
            &format!("decode.batch.{label}.rows_vs_decode_step"),
            diffs,
            format!("{steps} steps x batch {s}: decode_batch rows vs independent decode_step"),
        ));
    }
    checks
}

/// The slot-grouped attention path under *ragged* cache lengths:
/// caches are pre-warmed to distinct depths (2/0/1/2) so every
/// subsequent step decodes against three slot-groups at once — one of
/// them holding two sequences — and each `decode_batch_with` row must
/// still be bit-identical to feeding that sequence through
/// `decode_step` alone, for the exact and the analog backend.
///
/// [`batched_decode_checks`] starts every cache empty, so all
/// sequences share one slot-group; this check pins the gather /
/// grouped-GEMM / scatter bookkeeping that only multiple groups
/// exercise.
fn grouped_attention_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let model = TransformerModel::random(TransformerConfig::tiny(), 4, cfg.seed);
    let hidden = model.config().hidden;
    let warm = [2usize, 0, 1, 2];
    let s = warm.len();
    let steps = cfg.decode_steps.clamp(2, 4);
    let backends: Vec<(&str, Box<dyn GemmBackend>)> = vec![
        ("exact", Box::new(ExactGemm)),
        (
            "pdac",
            Box::new(AnalogGemm::new(
                PDac::with_optimal_approx(8).expect("valid bits"),
                "pdac8",
            )),
        ),
    ];
    let mut checks = Vec::new();
    for (label, backend) in backends {
        let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x6A0B5);
        let mut batched: Vec<KvCache> = (0..s).map(|_| model.new_cache()).collect();
        let mut solo: Vec<KvCache> = (0..s).map(|_| model.new_cache()).collect();
        // Warm both sides identically so the batch starts ragged.
        for (sq, &depth) in warm.iter().enumerate() {
            for _ in 0..depth {
                let tok = random_mat(1, hidden, &mut rng);
                let _ = model.decode_step(&tok.row(0), &mut batched[sq], backend.as_ref());
                let _ = model.decode_step(&tok.row(0), &mut solo[sq], backend.as_ref());
            }
        }
        let mut scratch = DecodeScratch::new();
        let mut got = Mat::zeros(1, 1);
        let mut diffs = 0usize;
        for _ in 0..steps {
            let tokens = random_mat(s, hidden, &mut rng);
            {
                let mut refs: Vec<&mut KvCache> = batched.iter_mut().collect();
                model.decode_batch_with(
                    &tokens,
                    &mut refs,
                    backend.as_ref(),
                    &mut scratch,
                    &mut got,
                );
            }
            for (sq, cache) in solo.iter_mut().enumerate() {
                let want = model.decode_step(&tokens.row(sq), cache, backend.as_ref());
                diffs += got
                    .row_slice(sq)
                    .iter()
                    .zip(&want)
                    .filter(|(x, y)| x.to_bits() != y.to_bits())
                    .count();
            }
        }
        checks.push(bit_identity_check(
            &format!("decode.batch.grouped_attention.{label}.rows_vs_decode_step"),
            diffs,
            format!(
                "{steps} steps x batch {s}, pre-warmed cache depths {warm:?} (three \
                 slot-groups per step): decode_batch_with rows vs independent decode_step"
            ),
        ));
    }
    checks
}

/// The paged KV cache vs the flat caches: the same ragged decode
/// workload run through `decode_paged_with` (page-table indirection,
/// block 2 so every sequence spans multiple pages) and through solo
/// `decode_step` must produce bit-identical rows — for the exact and
/// the cached analog backend. Plus two paged-only properties: a
/// prefix-shared continuation matches the unshared run bit-for-bit, and
/// copy-on-write divergence never mutates the forked-from sequence's
/// pages.
fn paged_kv_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let model = TransformerModel::random(TransformerConfig::tiny(), 4, cfg.seed);
    let hidden = model.config().hidden;
    let warm = [2usize, 0, 1];
    let s = warm.len();
    let steps = cfg.decode_steps.clamp(2, 4);
    let block = 2usize;
    let backends: Vec<(&str, Box<dyn GemmBackend>)> = vec![
        ("exact", Box::new(ExactGemm)),
        (
            "pdac",
            Box::new(AnalogGemm::new(
                PDac::with_optimal_approx(8).expect("valid bits"),
                "pdac8",
            )),
        ),
    ];
    let mut checks = Vec::new();
    for (label, backend) in backends {
        let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x9A6ED);
        let mut paged = PagedKvCache::new(&model, s, PagedConfig::new(block));
        let mut solo: Vec<KvCache> = (0..s).map(|_| model.new_cache()).collect();
        let mut scratch = DecodeScratch::new();
        let mut got = Mat::zeros(1, 1);
        // Warm both sides to ragged depths, slot by slot through the
        // paged engine itself.
        for (sq, &depth) in warm.iter().enumerate() {
            for _ in 0..depth {
                let tok = random_mat(1, hidden, &mut rng);
                model.decode_paged_with(
                    &tok,
                    &mut paged,
                    &[sq],
                    backend.as_ref(),
                    &mut scratch,
                    &mut got,
                );
                let _ = model.decode_step(&tok.row(0), &mut solo[sq], backend.as_ref());
            }
        }
        let slots: Vec<usize> = (0..s).collect();
        let mut diffs = 0usize;
        for _ in 0..steps {
            let tokens = random_mat(s, hidden, &mut rng);
            model.decode_paged_with(
                &tokens,
                &mut paged,
                &slots,
                backend.as_ref(),
                &mut scratch,
                &mut got,
            );
            for (sq, cache) in solo.iter_mut().enumerate() {
                let want = model.decode_step(&tokens.row(sq), cache, backend.as_ref());
                diffs += got
                    .row_slice(sq)
                    .iter()
                    .zip(&want)
                    .filter(|(x, y)| x.to_bits() != y.to_bits())
                    .count();
            }
        }
        checks.push(bit_identity_check(
            &format!("decode.kv.paged_vs_flat.{label}"),
            diffs,
            format!(
                "{steps} steps x batch {s}, block {block}, pre-warmed depths {warm:?}: \
                 decode_paged_with rows vs independent decode_step"
            ),
        ));
    }

    // Shared prefix vs unshared: slot 0 decodes a block-aligned prompt
    // and publishes it; slot 1 maps the shared pages and continues with
    // the same tokens — its outputs must be bit-identical to the
    // recomputed (unshared) sequence.
    {
        let backend = ExactGemm;
        let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x54A6E);
        let prompt_len = 2 * block;
        let extra = steps;
        let mut paged = PagedKvCache::new(&model, 2, PagedConfig::new(block));
        let mut solo = model.new_cache();
        let mut scratch = DecodeScratch::new();
        let mut got = Mat::zeros(1, 1);
        let tokens: Vec<Mat> = (0..prompt_len + extra)
            .map(|_| random_mat(1, hidden, &mut rng))
            .collect();
        let mut unshared = Vec::new();
        for tok in &tokens {
            model.decode_paged_with(tok, &mut paged, &[0], &backend, &mut scratch, &mut got);
            unshared.push(got.clone());
            let _ = model.decode_step(&tok.row(0), &mut solo, &backend);
        }
        let prompt_slices: Vec<&[f64]> = tokens[..prompt_len]
            .iter()
            .map(|t| t.row_slice(0))
            .collect();
        let hashes = prefix_block_hashes(prompt_slices, block);
        paged.publish_prefix(0, &hashes);
        let shared = paged.lookup_prefix(1, &hashes);
        let mut diffs = 0usize;
        for (i, tok) in tokens.iter().enumerate().skip(shared) {
            model.decode_paged_with(tok, &mut paged, &[1], &backend, &mut scratch, &mut got);
            diffs += differing_bits(&got, &unshared[i]);
        }
        // Sharing must actually have happened, or the comparison is
        // vacuous — count a silent non-share as a failure.
        diffs += usize::from(shared == 0);
        checks.push(bit_identity_check(
            "decode.kv.shared_prefix_vs_unshared",
            diffs,
            format!(
                "prompt {prompt_len} (block {block}, {shared} tokens shared) + {extra} \
                 continuation steps: prefix-shared slot vs unshared decode"
            ),
        ));

        // Copy-on-write isolation: fork slot 1's sequence into slot 0
        // (retired above — reset first), push a divergent step, and the
        // original's K/V bits must be untouched.
        paged.reset_slot(0);
        // CoW only fires when the forked tail page is partial; pad the
        // source sequence off a block boundary first.
        if paged.seq_len(1).is_multiple_of(block) {
            let tok = random_mat(1, hidden, &mut rng);
            model.decode_paged_with(&tok, &mut paged, &[1], &backend, &mut scratch, &mut got);
        }
        let snapshot = |paged: &PagedKvCache| {
            let mut bits = Vec::new();
            for li in 0..model.config().layers {
                for t in 0..paged.seq_len(1) {
                    bits.extend(paged.k_row(1, li, t).iter().map(|v| v.to_bits()));
                    bits.extend(paged.v_row(1, li, t).iter().map(|v| v.to_bits()));
                }
            }
            bits
        };
        let before = snapshot(&paged);
        let cow_before = paged.stats().cow_copies;
        paged.fork_slot(0, 1);
        let tok = random_mat(1, hidden, &mut rng);
        model.decode_paged_with(&tok, &mut paged, &[0], &backend, &mut scratch, &mut got);
        let after = snapshot(&paged);
        let cow_hit = paged.stats().cow_copies > cow_before;
        checks.push(invariant_check(
            "decode.kv.fork_cow_isolated",
            before == after && cow_hit,
            format!(
                "fork + divergent step: original K/V bits unchanged={} cow_triggered={cow_hit}",
                before == after
            ),
        ));
    }
    checks
}

/// Observability must never touch results: the same batched-decode
/// workload run with global telemetry fully enabled (spans + events)
/// and fully disabled must produce bit-identical hidden states.
fn tracing_invariance_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let model = TransformerModel::random(TransformerConfig::tiny(), 4, cfg.seed);
    let hidden = model.config().hidden;
    let s = 3usize;
    let steps = cfg.decode_steps.clamp(2, 4);
    let backend = AnalogGemm::new(PDac::with_optimal_approx(8).expect("valid bits"), "pdac8");

    let run = |tracing_on: bool| -> Vec<Mat> {
        if tracing_on {
            pdac_telemetry::enable();
            pdac_telemetry::set_tracing(true);
        } else {
            pdac_telemetry::disable();
        }
        let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x7AACE);
        let mut batch = BatchedKvCache::new(&model, s);
        (0..steps)
            .map(|_| {
                let tokens = random_mat(s, hidden, &mut rng);
                model.decode_batch(&tokens, &mut batch, &backend)
            })
            .collect()
    };

    let was_enabled = pdac_telemetry::is_enabled();
    let was_tracing = pdac_telemetry::is_tracing();
    let with_tracing = run(true);
    let without = run(false);
    // Restore whatever observability level the harness was running at.
    if was_enabled {
        pdac_telemetry::enable();
    } else {
        pdac_telemetry::disable();
    }
    pdac_telemetry::set_tracing(was_tracing);

    let diffs: usize = with_tracing
        .iter()
        .zip(&without)
        .map(|(a, b)| differing_bits(a, b))
        .sum();
    vec![bit_identity_check(
        "decode.tracing.on_off_bit_identity",
        diffs,
        format!("{steps} steps x batch {s}: full tracing vs telemetry disabled"),
    )]
}

/// The drift sentinel shadow-samples live analog GEMMs, but taps
/// observe completed results only: the same batched-decode workload run
/// with a full-rate [`crate::sentinel::Sentinel`] installed and with no
/// tap must produce bit-identical hidden states — and the sentinel must
/// actually have scored samples (or the identity proved nothing).
fn sentinel_invariance_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    use crate::sentinel::{Sentinel, SentinelConfig};

    // The tap and the health ledger are process-global; serialize with
    // every other sentinel user in this test process.
    let _guard = crate::sentinel::test_guard();
    let model = TransformerModel::random(TransformerConfig::tiny(), 4, cfg.seed);
    let hidden = model.config().hidden;
    let s = 3usize;
    let steps = cfg.decode_steps.clamp(2, 4);
    let backend = AnalogGemm::new(PDac::with_optimal_approx(8).expect("valid bits"), "pdac8");

    let run = || -> Vec<Mat> {
        let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x5E47);
        let mut batch = BatchedKvCache::new(&model, s);
        (0..steps)
            .map(|_| {
                let tokens = random_mat(s, hidden, &mut rng);
                model.decode_batch(&tokens, &mut batch, &backend)
            })
            .collect()
    };

    let handle = Sentinel::install(SentinelConfig {
        rate: 1.0,
        per_element_budget: cfg.per_element_budget,
        gemm_budget: cfg.gemm_budget,
        ..SentinelConfig::default()
    });
    let with_sentinel = run();
    let stats = handle.finish();
    let without = run();
    // A clean decode must not leave alerts behind for later checks.
    pdac_telemetry::health::reset();

    let diffs: usize = with_sentinel
        .iter()
        .zip(&without)
        .map(|(a, b)| differing_bits(a, b))
        .sum();
    // A sentinel that sampled nothing would make the identity vacuous.
    let vacuous = usize::from(stats.scored == 0);
    vec![bit_identity_check(
        "decode.sentinel.on_off_bit_identity",
        diffs + vacuous,
        format!(
            "{steps} steps x batch {s}: full-rate sentinel vs no tap \
({} sampled, {} scored, {} dropped, worst frac {:.3})",
            stats.sampled, stats.scored, stats.dropped, stats.worst_frac
        ),
    )]
}

/// The live energy meter observes decode activity but must never touch
/// results: the same batched-decode workload run with a P-DAC
/// [`pdac_power::meter::EnergyMeter`] installed and with no meter must
/// produce bit-identical hidden states — and the metered run must have
/// counted real activity (or the check proved nothing).
fn energy_meter_invariance_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    use pdac_power::meter::EnergyMeter;
    use pdac_power::model::{DriverKind, PowerModel};
    use pdac_power::{ArchConfig, EnergyModel, TechParams};

    let model = TransformerModel::random(TransformerConfig::tiny(), 4, cfg.seed);
    let hidden = model.config().hidden;
    let s = 3usize;
    let steps = cfg.decode_steps.clamp(2, 4);
    let backend = AnalogGemm::new(PDac::with_optimal_approx(8).expect("valid bits"), "pdac8");

    let run = || -> Vec<Mat> {
        let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xE4E26);
        let mut batch = BatchedKvCache::new(&model, s);
        (0..steps)
            .map(|_| {
                let tokens = random_mat(s, hidden, &mut rng);
                model.decode_batch(&tokens, &mut batch, &backend)
            })
            .collect()
    };

    // Preserve and restore whatever meter the harness had installed.
    let prior = pdac_power::meter::installed();
    let pm = PowerModel::new(
        ArchConfig::lt_b(),
        TechParams::calibrated(),
        DriverKind::PhotonicDac,
    );
    let handle = pdac_power::meter::install(EnergyMeter::new(EnergyModel::new(pm), 8));
    let metered = run();
    let counted = handle.snapshot();
    pdac_power::meter::uninstall();
    let without = run();
    if let Some(prev) = prior {
        let _ = pdac_power::meter::install_shared(prev);
    }

    let diffs: usize = metered
        .iter()
        .zip(&without)
        .map(|(a, b)| differing_bits(a, b))
        .sum();
    // A meter that recorded nothing would make the identity vacuous.
    let vacuous = usize::from(counted.trace.total_macs() == 0 || counted.total_j() <= 0.0);
    vec![bit_identity_check(
        "decode.energy_meter.on_off_bit_identity",
        diffs + vacuous,
        format!(
            "{steps} steps x batch {s}: P-DAC energy meter installed vs none \
             ({} MACs metered)",
            counted.trace.total_macs()
        ),
    )]
}

/// [`ConverterLut`] vs the scalar drive path for both converters at every
/// representable (and saturating out-of-range) code — bit identity.
fn lut_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let mut checks = Vec::new();
    for &bits in &cfg.bits {
        let drivers: Vec<(&str, Box<dyn MzmDriver>)> = vec![
            (
                "pdac",
                Box::new(PDac::with_optimal_approx(bits).expect("valid bits")),
            ),
            (
                "edac",
                Box::new(ElectricalDac::new(bits).expect("valid bits")),
            ),
        ];
        for (label, driver) in drivers {
            let lut = ConverterLut::new(driver.as_ref());
            let m = driver.max_code();
            let diffs = ((-m - 8)..=(m + 8))
                .filter(|&c| lut.convert(c).to_bits() != driver.convert(c).to_bits())
                .count();
            checks.push(bit_identity_check(
                &format!("converter.lut.{label}.bits{bits}"),
                diffs,
                format!(
                    "all codes in [{}, {}] plus saturating overrange",
                    -m - 8,
                    m + 8
                ),
            ));
        }
    }
    checks
}

/// Per-element reconstruction budgets over every representable code.
///
/// The two drive paths fail differently, so each gets its own metric:
/// the P-DAC's arccos approximation has a *relative* error bound — the
/// paper's ≈8.5% (Eq. 18) — while the electrical baseline's error is
/// *absolute* (half an LSB of its `[0, π]` voltage grid, through a
/// cosine of slope ≤ 1), which at small codes dwarfs the ideal value.
fn per_element_budget_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let mut checks = Vec::new();
    for &bits in &cfg.bits {
        let pdac = PDac::with_optimal_approx(bits).expect("valid bits");
        let m = pdac.max_code();
        let worst_rel = (1..=m)
            .flat_map(|c| [c, -c])
            .map(|c| {
                let ideal = pdac.ideal_value(c);
                ((pdac.convert(c) - ideal) / ideal).abs()
            })
            .fold(0.0f64, f64::max);
        checks.push(tolerance_check(
            &format!("converter.pdac.per_element.bits{bits}"),
            worst_rel,
            cfg.per_element_budget,
            format!("max |(convert(c) - c/m) / (c/m)| over all nonzero {bits}-bit codes"),
        ));

        let edac = ElectricalDac::new(bits).expect("valid bits");
        let worst_abs = (-m..=m)
            .map(|c| (edac.convert(c) - edac.ideal_value(c)).abs())
            .fold(0.0f64, f64::max);
        let half_lsb = std::f64::consts::PI / ((1u32 << bits) - 1) as f64 / 2.0;
        checks.push(tolerance_check(
            &format!("converter.edac.per_element.bits{bits}"),
            worst_abs,
            half_lsb * 1.25,
            format!("max |convert(c) - c/m| over all {bits}-bit codes vs half-LSB voltage grid"),
        ));
    }
    checks
}

/// The fault layer's clean spec against the production P-DAC: drive
/// voltages bit-identical to the synthesized plan, amplitudes within
/// rounding of the physical pipeline.
fn fault_layer_conformance(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let mut checks = Vec::new();
    for &bits in &cfg.bits {
        let pdac = PDac::with_optimal_approx(bits).expect("valid bits");
        let clean = FaultyPDac::new(pdac.clone(), FaultSpec::none());
        let m = pdac.max_code();
        let voltage_diffs = (-m..=m)
            .filter(|&c| clean.drive_voltage(c).to_bits() != pdac.plan().drive_voltage(c).to_bits())
            .count();
        checks.push(bit_identity_check(
            &format!("fault.clean.drive_voltage.bits{bits}"),
            voltage_diffs,
            "clean fault layer vs TiaWeightPlan::drive_voltage".into(),
        ));
        let worst_amp = (-m..=m)
            .map(|c| (clean.convert(c) - pdac.convert(c)).abs())
            .fold(0.0f64, f64::max);
        checks.push(tolerance_check(
            &format!("fault.clean.amplitude.bits{bits}"),
            worst_amp,
            1e-12,
            "clean fault layer vs PDac::convert (TIA-bank and MZM rounding only)".into(),
        ));
    }
    checks
}

/// Direct (scalar-converter, reference-matmul, uncached) analog GEMM:
/// the golden model the fast path must match bit for bit.
fn direct_analog_gemm(a: &Mat, b: &Mat, driver_a: &dyn MzmDriver, driver_b: &dyn MzmDriver) -> Mat {
    let aq = QuantizedMat::quantize(a, driver_a.bits()).dequantize_with(driver_a);
    let bq = QuantizedMat::quantize(b, driver_b.bits()).dequantize_with(driver_b);
    aq.matmul_reference(&bq).expect("shapes chain")
}

/// Runs one cached backend over every shape twice (second pass answers
/// from the weight cache) and bit-compares against the direct pipeline.
fn cached_backend_checks<D: MzmDriver>(
    label: &str,
    backend: &AnalogGemm<D>,
    cfg: &ConformanceConfig,
    rng: &mut SplitMix64,
) -> Vec<CheckResult> {
    let mut diffs = 0usize;
    for &(m, k, n) in &cfg.gemm_shapes {
        let a = random_mat(m, k, rng);
        let b = random_mat(k, n, rng);
        let golden = direct_analog_gemm(&a, &b, backend.driver(), backend.driver());
        diffs += differing_bits(&backend.matmul(&a, &b), &golden);
        diffs += differing_bits(&backend.matmul(&a, &b), &golden);
    }
    let cache = backend.cache();
    vec![
        bit_identity_check(
            &format!("gemm.analog.{label}.cached_vs_direct"),
            diffs,
            format!(
                "LUT+cache+threaded vs scalar+reference+uncached; cache hits={} misses={}",
                cache.hits(),
                cache.misses()
            ),
        ),
        invariant_check(
            &format!("gemm.analog.{label}.cache_counters"),
            cache.hits() == cfg.gemm_shapes.len() as u64
                && cache.misses() == cfg.gemm_shapes.len() as u64,
            format!(
                "one miss then one hit per distinct weight matrix: hits={} misses={}",
                cache.hits(),
                cache.misses()
            ),
        ),
    ]
}

/// LUT + weight-cache + threaded-kernel analog GEMM vs the direct
/// pipeline — bit identity, twice per shape so the second call answers
/// from the cache.
fn cached_gemm_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xCAC4E);
    let bits = 8u8;
    let pdac = PDac::with_optimal_approx(bits).expect("valid bits");
    let edac = ElectricalDac::new(bits).expect("valid bits");

    let pdac_backend = AnalogGemm::new(pdac.clone(), "pdac8");
    let mut checks = cached_backend_checks("pdac", &pdac_backend, cfg, &mut rng);
    let edac_backend = AnalogGemm::new(edac, "edac8");
    checks.extend(cached_backend_checks("edac", &edac_backend, cfg, &mut rng));

    // Hybrid path: P-DAC activations, electrical weights.
    let hybrid = AsymmetricGemm::new(pdac.clone(), edac, "hybrid");
    let mut diffs = 0usize;
    for &(m, k, n) in &cfg.gemm_shapes {
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let golden = direct_analog_gemm(&a, &b, &pdac, &edac);
        diffs += differing_bits(&hybrid.matmul(&a, &b), &golden);
    }
    checks.push(bit_identity_check(
        "gemm.asymmetric.cached_vs_direct",
        diffs,
        "P-DAC activations + electrical weights vs direct pipeline".into(),
    ));
    checks
}

/// End-to-end analog accuracy budgets: nn-level [`AnalogGemm`] and the
/// accel-level [`FunctionalGemm`] signal path against the exact backend.
fn end_to_end_budget_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xE2E);
    let mut checks = Vec::new();
    let (m, k, n) = cfg.gemm_shapes[0];
    let a = random_mat(m, k, &mut rng);
    let b = random_mat(k, n, &mut rng);
    let exact = ExactGemm.matmul(&a, &b);

    let pdac_gemm = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac8");
    let edac_gemm = AnalogGemm::new(ElectricalDac::new(8).unwrap(), "edac8");
    let rel_pdac = relative_distance(&pdac_gemm.matmul(&a, &b), &exact);
    let rel_edac = relative_distance(&edac_gemm.matmul(&a, &b), &exact);
    checks.push(tolerance_check(
        "gemm.analog.pdac.end_to_end",
        rel_pdac,
        cfg.gemm_budget,
        format!("relative Frobenius error vs exact, shape {m}x{k}x{n}"),
    ));
    checks.push(invariant_check(
        "gemm.analog.edac_tighter_than_pdac",
        rel_edac < rel_pdac,
        format!("edac {rel_edac:.3e} < pdac {rel_pdac:.3e}"),
    ));

    // The full functional signal path (EO word → DDot → ADC) on a small
    // architecture: same budget, plus the baseline-ordering invariant.
    let arch = ArchConfig {
        cores: 2,
        rows: 4,
        cols: 4,
        wavelengths: 4,
        clock_hz: 1e9,
    };
    let (fm, fk, fn_) = (8usize, 12usize, 6usize);
    let fa = random_mat(fm, fk, &mut rng);
    let fb = random_mat(fk, fn_, &mut rng);
    let fexact = fa.matmul_reference(&fb).unwrap();
    let mut rels = Vec::new();
    for (label, choice) in [
        ("pdac", DriverChoice::PhotonicDac),
        ("edac", DriverChoice::ElectricalDac),
    ] {
        let config = AccelConfig::new(arch.clone(), 8, choice).expect("valid config");
        let engine = FunctionalGemm::new(config).expect("valid config");
        let run = engine.execute(&fa, &fb).expect("shapes chain");
        let rel = relative_distance(&run.output, &fexact);
        checks.push(tolerance_check(
            &format!("accel.functional.{label}.end_to_end"),
            rel,
            cfg.gemm_budget,
            format!(
                "FunctionalGemm({label}) vs exact, shape {fm}x{fk}x{fn_}, {} driver bits",
                engine.driver().bits()
            ),
        ));
        rels.push(rel);
    }
    checks.push(invariant_check(
        "accel.functional.edac_tighter_than_pdac",
        rels[1] < rels[0],
        format!("edac {:.3e} < pdac {:.3e}", rels[1], rels[0]),
    ));
    checks
}

/// Generative-decode workload: the same weight matrix multiplied by a
/// fresh activation row every step. The cached fast path must match the
/// uncached golden pipeline bit for bit at every step, and the cache must
/// convert the weights exactly once.
fn decode_workload_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xDEC0DE);
    let d = 24usize;
    let out_dim = 16usize;
    let w = random_mat(d, out_dim, &mut rng);
    let pdac = PDac::with_optimal_approx(8).unwrap();
    let backend = AnalogGemm::new(pdac.clone(), "pdac8");
    let mut diffs = 0usize;
    for _ in 0..cfg.decode_steps {
        let x = random_mat(1, d, &mut rng);
        let golden = direct_analog_gemm(&x, &w, &pdac, &pdac);
        diffs += differing_bits(&backend.matmul(&x, &w), &golden);
    }
    vec![
        bit_identity_check(
            "decode.cached_vs_uncached",
            diffs,
            format!("{} decode steps, weights {d}x{out_dim}", cfg.decode_steps),
        ),
        invariant_check(
            "decode.weights_converted_once",
            backend.cache().misses() == 1 && backend.cache().hits() == cfg.decode_steps as u64 - 1,
            format!(
                "cache hits={} misses={} over {} steps",
                backend.cache().hits(),
                backend.cache().misses(),
                cfg.decode_steps
            ),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Fault sweeps
// ---------------------------------------------------------------------------

/// Mean absolute output deviation of `faulty` from `clean` over every
/// representable code.
fn mean_abs_deviation(faulty: &FaultyPDac, clean: &FaultyPDac) -> f64 {
    let m = faulty.inner().max_code();
    let count = (2 * m + 1) as f64;
    (-m..=m)
        .map(|c| (faulty.convert(c) - clean.convert(c)).abs())
        .sum::<f64>()
        / count
}

/// Sweeps one fault axis, recording each error into the quarantine
/// histogram and checking finiteness + monotone degradation.
fn sweep_axis(name: &str, magnitudes: &[f64], spec_of: impl Fn(f64) -> FaultSpec) -> CheckResult {
    let pdac = PDac::with_optimal_approx(8).expect("valid bits");
    let clean = FaultyPDac::new(pdac.clone(), FaultSpec::none());
    let errors: Vec<f64> = magnitudes
        .iter()
        .map(|&mag| {
            let faulty = FaultyPDac::new(pdac.clone(), spec_of(mag));
            let err = mean_abs_deviation(&faulty, &clean);
            pdac_telemetry::observe("verify.fault.mean_abs_error", err);
            err
        })
        .collect();
    pdac_telemetry::counter_add("verify.fault.sweeps", 1);
    // Slack: fold-back near the cos extrema can shave a hair off the
    // mean as a handful of codes wrap; degradation must still dominate.
    let slack = 0.01 * errors.last().copied().unwrap_or(0.0) + 1e-12;
    monotone_check(
        name,
        &errors,
        slack,
        format!("magnitudes={magnitudes:?} mean-abs-errors={errors:?}"),
    )
}

/// Single-slot faults across every slot position: outputs must stay
/// finite and inside the physical amplitude range, whatever the word.
fn slot_fault_checks() -> Vec<CheckResult> {
    let pdac = PDac::with_optimal_approx(8).expect("valid bits");
    let mut all_finite = true;
    let mut worst_amp = 0.0f64;
    let mut faulted_codes = 0u64;
    let clean = FaultyPDac::new(pdac.clone(), FaultSpec::none());
    for slot in 0..8usize {
        for fault in [
            SlotFault::StuckOn(slot),
            SlotFault::StuckOff(slot),
            SlotFault::Flipped(slot),
        ] {
            let faulty = FaultyPDac::new(pdac.clone(), FaultSpec::none().with_slot_fault(fault));
            for code in -127..=127 {
                let out = faulty.convert(code);
                all_finite &= out.is_finite();
                worst_amp = worst_amp.max(out.abs());
                if out.to_bits() != clean.convert(code).to_bits() {
                    faulted_codes += 1;
                }
            }
        }
    }
    pdac_telemetry::counter_add("verify.fault.slot_faulted_codes", faulted_codes);
    vec![
        invariant_check(
            "fault.slots.finite",
            all_finite,
            "24 single-slot faults x 255 codes, no NaN/inf".into(),
        ),
        tolerance_check(
            "fault.slots.amplitude_bounded",
            worst_amp,
            1.0 + 1e-9,
            format!("worst |amplitude| under slot faults; {faulted_codes} code conversions moved"),
        ),
    ]
}

/// GEMM-level graceful degradation: analog GEMM error vs exact must grow
/// monotonically with injected TIA drift and never go non-finite.
fn fault_gemm_check(cfg: &ConformanceConfig) -> CheckResult {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xFA17);
    let (m, k, n) = cfg.gemm_shapes[0];
    let a = random_mat(m, k, &mut rng);
    let b = random_mat(k, n, &mut rng);
    let exact = a.matmul_reference(&b).unwrap();
    let errors: Vec<f64> = cfg
        .gain_drifts
        .iter()
        .map(|&drift| {
            let driver = FaultyPDac::new(
                PDac::with_optimal_approx(8).unwrap(),
                FaultSpec::none().with_tia_gain_drift(drift),
            );
            let backend = AnalogGemm::new(driver, format!("pdac8+drift{drift}"));
            let rel = relative_distance(&backend.matmul(&a, &b), &exact);
            pdac_telemetry::observe("verify.fault.gemm_rel_error", rel);
            rel
        })
        .collect();
    let slack = 0.01 * errors.last().copied().unwrap_or(0.0) + 1e-12;
    monotone_check(
        "fault.gemm.drift_monotone",
        &errors,
        slack,
        format!("drifts={:?} rel-errors={errors:?}", cfg.gain_drifts),
    )
}

/// Integer-domain routing conformance (DESIGN.md §16).
///
/// Three guarantees, one row each:
///
/// * `gemm.int8.{pdac,edac,hybrid}.vs_f64_path` — forcing the
///   product-LUT gather route (floor 0) must reproduce the default f64
///   pipeline **bit for bit** for the physical drivers: the 64 Ki-entry
///   table holds exactly the per-term products the f64 path computes,
///   gathered in the same ascending-`k` order.
/// * `gemm.int8.ideal.vs_integer_reference` — the code-linear ideal
///   driver's automatic integer route must equal a hand-rolled exact
///   `i32` triple loop with the dequantize-at-the-end factor, bitwise.
/// * `gemm.int8.ideal.vs_f64_path` — against the f64 pipeline the
///   integer route only reorders rounding (per-term rounding becomes
///   exact accumulation + one final multiply), so it carries a tight
///   documented tolerance instead of bit identity.
fn int8_route_checks(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    /// A named (default f64 route, forced product-LUT route) backend pair.
    type RoutedPair = (&'static str, Box<dyn GemmBackend>, Box<dyn GemmBackend>);
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x18_D0);
    let mut checks = Vec::new();
    let pairs: Vec<RoutedPair> = vec![
        (
            "pdac",
            Box::new(AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8")),
            Box::new(
                AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "p8lut")
                    .with_product_lut_floor(0),
            ),
        ),
        (
            "edac",
            Box::new(AnalogGemm::new(ElectricalDac::new(8).unwrap(), "e8")),
            Box::new(
                AnalogGemm::new(ElectricalDac::new(8).unwrap(), "e8lut").with_product_lut_floor(0),
            ),
        ),
        (
            "hybrid",
            Box::new(AsymmetricGemm::new(
                PDac::with_optimal_approx(8).unwrap(),
                ElectricalDac::new(8).unwrap(),
                "hy",
            )),
            Box::new(
                AsymmetricGemm::new(
                    PDac::with_optimal_approx(8).unwrap(),
                    ElectricalDac::new(8).unwrap(),
                    "hylut",
                )
                .with_product_lut_floor(0),
            ),
        ),
    ];
    for (name, plain, forced) in &pairs {
        let mut diffs = 0usize;
        let mut cells = 0usize;
        let mut batch = Mat::zeros(1, 1);
        let mut batch_forced = Mat::zeros(1, 1);
        for &(m, k, n) in &cfg.gemm_shapes {
            let a = random_mat(m, k, &mut rng);
            let b = random_mat(k, n, &mut rng);
            diffs += differing_bits(&forced.matmul(&a, &b), &plain.matmul(&a, &b));
            plain.matmul_batch_into(&a, &b, &mut batch);
            forced.matmul_batch_into(&a, &b, &mut batch_forced);
            diffs += differing_bits(&batch_forced, &batch);
            cells += 2 * m * n;
        }
        checks.push(bit_identity_check(
            &format!("gemm.int8.{name}.vs_f64_path"),
            diffs,
            format!(
                "forced product-LUT route vs default f64 pipeline, solo + batched, {} shapes / {cells} cells",
                cfg.gemm_shapes.len()
            ),
        ));
    }
    let ideal_driver = IdealDac::new(8).unwrap();
    let ideal = AnalogGemm::new(ideal_driver, "ideal8");
    let mut ref_diffs = 0usize;
    let mut worst_rel = 0.0f64;
    for &(m, k, n) in &cfg.gemm_shapes {
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let got = ideal.matmul(&a, &b);
        let qa = QuantizedMat::quantize(&a, 8);
        let qb = QuantizedMat::quantize(&b, 8);
        let f = (qa.scale() / 127.0) * (qb.scale() / 127.0);
        let want = Mat::from_fn(m, n, |r, c| {
            let mut acc = 0i32;
            for kk in 0..k {
                acc += qa.codes()[r * k + kk] * qb.codes()[kk * n + c];
            }
            f * acc as f64
        });
        ref_diffs += differing_bits(&got, &want);
        let direct = qa
            .dequantize_with(&ideal_driver)
            .matmul_reference(&qb.dequantize_with(&ideal_driver))
            .unwrap();
        for (g, d) in got.as_slice().iter().zip(direct.as_slice()) {
            worst_rel = worst_rel.max((g - d).abs() / d.abs().max(1.0));
        }
    }
    checks.push(bit_identity_check(
        "gemm.int8.ideal.vs_integer_reference",
        ref_diffs,
        "integer route vs exact i32 triple loop + dequantize-at-end factor".into(),
    ));
    checks.push(tolerance_check(
        "gemm.int8.ideal.vs_f64_path",
        worst_rel,
        1e-12,
        "integer route vs f64 pipeline; differs only by rounding reorder (DESIGN.md §16)".into(),
    ));
    checks
}

/// Runs the backend-pair conformance matrix (no fault injection).
pub fn run_conformance(cfg: &ConformanceConfig) -> ConformanceReport {
    let _span = pdac_telemetry::span("verify.conformance");
    let mut report = ConformanceReport::default();
    report.extend(kernel_checks(cfg));
    report.extend(pool_kernel_checks(cfg));
    report.extend(lut_checks(cfg));
    report.extend(per_element_budget_checks(cfg));
    report.extend(fault_layer_conformance(cfg));
    report.extend(cached_gemm_checks(cfg));
    report.extend(int8_route_checks(cfg));
    report.extend(end_to_end_budget_checks(cfg));
    report.extend(decode_workload_checks(cfg));
    report.extend(batched_decode_checks(cfg));
    report.extend(grouped_attention_checks(cfg));
    report.extend(paged_kv_checks(cfg));
    report.extend(tracing_invariance_checks(cfg));
    report.extend(energy_meter_invariance_checks(cfg));
    report.extend(sentinel_invariance_checks(cfg));
    report
}

/// Runs the fault-injection sweeps.
pub fn run_fault_sweeps(cfg: &ConformanceConfig) -> Vec<CheckResult> {
    let _span = pdac_telemetry::span("verify.fault_sweeps");
    let mut checks = vec![
        sweep_axis("fault.sweep.tia_gain_drift", &cfg.gain_drifts, |m| {
            FaultSpec::none().with_tia_gain_drift(m)
        }),
        sweep_axis("fault.sweep.dark_current", &cfg.dark_ratios, |m| {
            FaultSpec::none().with_dark_current_ratio(m)
        }),
        sweep_axis("fault.sweep.laser_droop", &cfg.laser_droops, |m| {
            FaultSpec::none().with_laser_droop(m)
        }),
    ];
    checks.extend(slot_fault_checks());
    checks.push(fault_gemm_check(cfg));
    checks
}

/// The full matrix: conformance plus fault sweeps.
pub fn run_full(cfg: &ConformanceConfig) -> ConformanceReport {
    let mut report = run_conformance(cfg);
    report.extend(run_fault_sweeps(cfg));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differing_bits_counts_exactly() {
        let a = Mat::from_rows(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let mut b = a.clone();
        assert_eq!(differing_bits(&a, &b), 0);
        b.as_mut_slice()[1] = 2.0 + 1e-16;
        // 2.0 + 1e-16 rounds back to 2.0 — still identical.
        assert_eq!(differing_bits(&a, &b), 0);
        b.as_mut_slice()[1] = f64::from_bits(2.0f64.to_bits() + 1);
        assert_eq!(differing_bits(&a, &b), 1);
    }

    #[test]
    fn monotone_check_flags_decrease() {
        let ok = monotone_check("m", &[0.0, 0.1, 0.2], 1e-12, String::new());
        assert!(ok.passed);
        let bad = monotone_check("m", &[0.2, 0.1], 1e-12, String::new());
        assert!(!bad.passed);
        assert!((bad.worst - 0.1).abs() < 1e-15);
        let nan = monotone_check("m", &[0.0, f64::NAN], 1.0, String::new());
        assert!(!nan.passed);
    }

    #[test]
    fn relative_distance_normalizes() {
        let a = Mat::from_rows(1, 2, vec![2.0, 0.0]).unwrap();
        let b = Mat::from_rows(1, 2, vec![1.0, 0.0]).unwrap();
        assert!((relative_distance(&a, &b) - 1.0).abs() < 1e-12);
    }
}
