//! Trace and metrics exporters on the in-tree serializers — zero deps.
//!
//! * [`chrome_trace`] — Chrome-trace-format JSON (`chrome://tracing`,
//!   Perfetto's legacy JSON importer) from a slice of [`SpanEvent`]s.
//! * [`prometheus_text`] — Prometheus text exposition format from a
//!   metrics [`Snapshot`].

use crate::json::Json;
use crate::registry::{Snapshot, SpanEvent};

/// Build a Chrome-trace-format document (the `{"traceEvents": [...]}`
/// object form) from completed span events.
///
/// Events are emitted as complete (`"ph": "X"`) slices with microsecond
/// `ts`/`dur`, sorted so that every parent precedes its children:
/// ascending start time, then *descending* end time (an enclosing span
/// starts no later and ends no earlier than anything it contains), then
/// ascending span id as the tie-break for zero-width spans.
///
/// Span identity travels in `args`: `id`, `parent` (0 = root) and the
/// optional user payload as `arg`, so tooling can rebuild the exact tree
/// without relying on timestamp nesting.
pub fn chrome_trace(events: &[SpanEvent]) -> Json {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.end_ns.cmp(&a.end_ns))
            .then(a.id.cmp(&b.id))
    });
    let trace_events = sorted
        .iter()
        .map(|e| {
            let mut args = vec![
                ("id".into(), Json::Int(e.id)),
                ("parent".into(), Json::Int(e.parent)),
            ];
            if let Some(arg) = e.arg {
                args.push(("arg".into(), Json::Int(arg)));
            }
            Json::Obj(vec![
                ("name".into(), Json::Str(e.name.to_string())),
                ("cat".into(), Json::Str(category(e.name).to_string())),
                ("ph".into(), Json::Str("X".to_string())),
                ("ts".into(), Json::Num(e.start_ns as f64 / 1e3)),
                ("dur".into(), Json::Num(e.elapsed_ns() as f64 / 1e3)),
                ("pid".into(), Json::Int(1)),
                ("tid".into(), Json::Int(e.thread)),
                ("args".into(), Json::Obj(args)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(trace_events)),
        ("displayTimeUnit".into(), Json::Str("ns".to_string())),
    ])
}

/// Serialize [`chrome_trace`] output to a JSON string.
pub fn chrome_trace_string(events: &[SpanEvent]) -> String {
    chrome_trace(events).render()
}

/// The trace category for a span name: its first dot-separated segment
/// (`serve.step` → `serve`), which maps onto the stack's layers
/// (serve / nn / math / accel).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Render a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as-is, histograms as cumulative
/// `_bucket` series over the occupied log2 bins (`le` upper bounds in
/// scientific notation, closed by the mandatory `le="+Inf"` = `_count`)
/// plus `_sum`/`_count` and p50/p95/p99 `quantile` convenience series on
/// the bare family name.
///
/// Metric names are sanitized to `[a-zA-Z0-9_]` and prefixed `pdac_`
/// (`serve.ttft` → `pdac_serve_ttft`); each family carries `# HELP`
/// (holding the original dotted registry name) and `# TYPE` comments.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    prometheus_text_with_labels(snapshot, &[])
}

/// [`prometheus_text`] with constant labels attached to every sample —
/// the hook for tagging an exposition with e.g. a backend or run id.
/// Label values are escaped per the exposition rules
/// ([`escape_label_value`]); label *names* are sanitized like metric
/// names (minus the prefix).
pub fn prometheus_text_with_labels(snapshot: &Snapshot, labels: &[(&str, &str)]) -> String {
    let constant: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (sanitize_label(k), escape_label_value(v)))
        .collect();
    let render_labels = |extra: Option<(&str, &str)>| -> String {
        let mut parts: Vec<String> = constant
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    };
    let plain = render_labels(None);

    let mut out = String::new();
    let header = |out: &mut String, name: &str, raw: &str, kind: &str| {
        out.push_str(&format!(
            "# HELP {name} pdac metric {} ({kind})\n# TYPE {name} {kind}\n",
            escape_help(raw)
        ));
    };
    for (raw, v) in &snapshot.counters {
        let name = sanitize(raw);
        header(&mut out, &name, raw, "counter");
        out.push_str(&format!("{name}{plain} {v}\n"));
    }
    for (raw, v) in &snapshot.gauges {
        let name = sanitize(raw);
        header(&mut out, &name, raw, "gauge");
        out.push_str(&format!("{name}{plain} {v}\n"));
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        header(&mut out, &name, &h.name, "histogram");
        for (le, cumulative) in &h.buckets {
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                render_labels(Some(("le", &format!("{le:e}"))))
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{} {}\n",
            render_labels(Some(("le", "+Inf"))),
            h.count
        ));
        for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
            out.push_str(&format!(
                "{name}{} {v}\n",
                render_labels(Some(("quantile", &format!("{q}"))))
            ));
        }
        out.push_str(&format!("{name}_sum{plain} {}\n", h.sum));
        out.push_str(&format!("{name}_count{plain} {}\n", h.count));
    }
    out
}

/// Escape a label value for the exposition format: backslash, double
/// quote and newline must be written `\\`, `\"` and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: backslash and newline only (quotes are legal).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus-legal label name: like [`sanitize`] without the prefix.
fn sanitize_label(name: &str) -> String {
    let s = sanitize(name);
    s.strip_prefix("pdac_").unwrap_or(&s).to_string()
}

/// Prometheus-legal metric name: `pdac_` prefix, every run of
/// non-alphanumeric characters collapsed to `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("pdac_");
    let mut last_us = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
            last_us = false;
        } else if !last_us {
            out.push('_');
            last_us = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistogramSummary;

    fn event(id: u64, parent: u64, start: u64, end: u64) -> SpanEvent {
        SpanEvent {
            name: "serve.step",
            id,
            parent,
            thread: 1,
            start_ns: start,
            end_ns: end,
            depth: 0,
            arg: None,
        }
    }

    #[test]
    fn chrome_trace_orders_parents_before_children() {
        // Child (id 2) dropped before parent (id 1) — ring order is
        // child-first; the export must invert that.
        let events = vec![event(2, 1, 500, 900), event(1, 0, 0, 1000)];
        let doc = chrome_trace(&events);
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let ids: Vec<u64> = arr
            .iter()
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("id"))
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }

    /// Minimal exposition parser for the round-trip test: returns
    /// `(types, samples)` where samples are `(name, labels, value)`.
    #[allow(clippy::type_complexity)]
    fn parse_exposition(
        text: &str,
    ) -> (
        Vec<(String, String)>,
        Vec<(String, Vec<(String, String)>, f64)>,
    ) {
        let mut types = Vec::new();
        let mut samples = Vec::new();
        let mut help: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE name kind");
                // Every TYPE must be preceded by its HELP line.
                assert!(help.iter().any(|h| h == name), "missing # HELP for {name}");
                types.push((name.to_string(), kind.to_string()));
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                help.push(rest.split_once(' ').expect("HELP name text").0.to_string());
            } else if !line.is_empty() {
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                let (name, labels) = match series.split_once('{') {
                    None => (series.to_string(), Vec::new()),
                    Some((name, rest)) => {
                        let body = rest.strip_suffix('}').expect("closing brace");
                        let mut labels = Vec::new();
                        // Split on `",` boundaries (values are quoted and
                        // internal quotes escaped, so this is unambiguous).
                        for pair in body.split("\",") {
                            let pair = pair.strip_suffix('"').unwrap_or(pair);
                            let (k, v) = pair.split_once("=\"").expect("k=\"v\"");
                            let mut unescaped = String::new();
                            let mut chars = v.chars();
                            while let Some(c) = chars.next() {
                                if c == '\\' {
                                    match chars.next() {
                                        Some('n') => unescaped.push('\n'),
                                        Some(other) => unescaped.push(other),
                                        None => panic!("dangling escape"),
                                    }
                                } else {
                                    unescaped.push(c);
                                }
                            }
                            labels.push((k.to_string(), unescaped));
                        }
                        (name.to_string(), labels)
                    }
                };
                samples.push((name, labels, value.parse().expect("numeric value")));
            }
        }
        (types, samples)
    }

    #[test]
    fn exposition_round_trips_through_a_parser() {
        let snap = Snapshot {
            counters: vec![("power.budget.exceeded".into(), 3)],
            gauges: vec![("power.compute_w".into(), 12.5)],
            histograms: vec![HistogramSummary {
                name: "serve.energy_per_token_j".into(),
                count: 4,
                sum: 8.0,
                min: 1.0,
                max: 3.0,
                mean: 2.0,
                p50: 2.0,
                p95: 3.0,
                p99: 3.0,
                buckets: vec![(1.0, 1), (2.0, 3), (4.0, 4)],
            }],
        };
        // A hostile label value: quotes, backslash, newline.
        let text = prometheus_text_with_labels(
            &snap,
            &[("backend", "pdac \"8b\" \\ hybrid\nrow"), ("run.id", "r1")],
        );
        let (types, samples) = parse_exposition(&text);
        assert_eq!(
            types,
            vec![
                ("pdac_power_budget_exceeded".into(), "counter".into()),
                ("pdac_power_compute_w".into(), "gauge".into()),
                ("pdac_serve_energy_per_token_j".into(), "histogram".into()),
            ]
        );
        // Values and labels survive the round trip exactly.
        let find = |name: &str| samples.iter().find(|(n, ..)| n == name).unwrap();
        assert_eq!(find("pdac_power_budget_exceeded").2, 3.0);
        assert_eq!(find("pdac_power_compute_w").2, 12.5);
        assert_eq!(find("pdac_serve_energy_per_token_j_sum").2, 8.0);
        assert_eq!(find("pdac_serve_energy_per_token_j_count").2, 4.0);
        for (_, labels, _) in &samples {
            assert_eq!(labels[0].0, "backend");
            assert_eq!(labels[0].1, "pdac \"8b\" \\ hybrid\nrow");
            assert_eq!(labels[1], ("run_id".into(), "r1".into()));
        }
        // The histogram's quantile label rides alongside the constants.
        let quantiles = samples
            .iter()
            .filter(|(n, labels, _)| {
                n == "pdac_serve_energy_per_token_j" && labels.iter().any(|(k, _)| k == "quantile")
            })
            .count();
        assert_eq!(quantiles, 3);
        // Bucket series: every `le` parses (including `+Inf`), bounds
        // ascend, cumulative counts never decrease and close at `_count`.
        let buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|(n, ..)| n == "pdac_serve_energy_per_token_j_bucket")
            .map(|(_, labels, v)| {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .expect("bucket carries le")
                    .1
                    .parse::<f64>()
                    .expect("le parses as f64");
                (le, *v)
            })
            .collect();
        assert_eq!(
            buckets,
            vec![(1.0, 1.0), (2.0, 3.0), (4.0, 4.0), (f64::INFINITY, 4.0)]
        );
    }

    #[test]
    fn live_histogram_buckets_round_trip_cumulatively() {
        // Drive a real log2 histogram through the collector so bucket
        // construction (underflow folding, bin upper bounds) is covered
        // end to end, not just the rendering of a hand-built summary.
        let collector = crate::registry::Collector::new();
        for v in [0.0, 0.75, 0.75, 3.0, f64::INFINITY] {
            collector.observe("sentinel.drift", v);
        }
        let text = prometheus_text(&collector.snapshot());
        let (types, samples) = parse_exposition(&text);
        assert_eq!(
            types,
            vec![("pdac_sentinel_drift".into(), "histogram".into())]
        );
        let buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|(n, ..)| n == "pdac_sentinel_drift_bucket")
            .map(|(_, labels, v)| (labels[0].1.parse::<f64>().unwrap(), *v))
            .collect();
        // 0.0 underfolds to the lowest bound 2^-64; 0.75 twice in
        // [2^-1, 2^0); 3.0 in [2^1, 2^2); +inf only in le="+Inf".
        assert_eq!(
            buckets,
            vec![
                ((-64f64).exp2(), 1.0),
                (1.0, 3.0),
                (4.0, 4.0),
                (f64::INFINITY, 5.0),
            ]
        );
        // Cumulative closure: the +Inf bucket equals _count.
        let count = samples
            .iter()
            .find(|(n, ..)| n == "pdac_sentinel_drift_count")
            .unwrap()
            .2;
        assert_eq!(count, 5.0);
    }

    #[test]
    fn escape_label_value_covers_the_exposition_specials() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
    }

    #[test]
    fn prometheus_text_sanitizes_and_renders_quantiles() {
        let snap = Snapshot {
            counters: vec![("serve.admitted".into(), 7)],
            gauges: vec![("serve.batch_occupancy".into(), 0.5)],
            histograms: vec![HistogramSummary {
                name: "serve.ttft".into(),
                count: 3,
                sum: 6.0,
                min: 1.0,
                max: 3.0,
                mean: 2.0,
                p50: 2.0,
                p95: 3.0,
                p99: 3.0,
                buckets: vec![(2.0, 1), (4.0, 3)],
            }],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE pdac_serve_admitted counter\npdac_serve_admitted 7\n"));
        assert!(text.contains("# TYPE pdac_serve_batch_occupancy gauge\n"));
        assert!(text.contains("pdac_serve_ttft_bucket{le=\"2e0\"} 1\n"));
        assert!(text.contains("pdac_serve_ttft_bucket{le=\"4e0\"} 3\n"));
        assert!(text.contains("pdac_serve_ttft_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("pdac_serve_ttft{quantile=\"0.5\"} 2\n"));
        assert!(text.contains("pdac_serve_ttft_sum 6\n"));
        assert!(text.contains("pdac_serve_ttft_count 3\n"));
    }
}
