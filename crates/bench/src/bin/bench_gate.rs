//! `bench-gate`: benchmark regression gate over `BENCH_*.json` pairs.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [<baseline.json> <fresh.json> ...]
//! ```
//!
//! Compares each fresh document against its checked-in baseline with
//! [`pdac_bench::gate`] and exits nonzero on any regression — the CI
//! step that keeps the batch-decode speedup and the tracing overhead
//! from silently rotting. Knobs:
//!
//! * `PDAC_GATE_TOL` — relative drop allowed on ratio metrics
//!   (`speedup`, `*_over_*`); default 0.35.
//! * `PDAC_GATE_SLACK` — absolute rise allowed on `*overhead*`
//!   fractions; default 0.04.

use pdac_bench::gate::gate;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load(path: &str) -> pdac_telemetry::Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench-gate: cannot read {path}: {e}"));
    pdac_telemetry::json::parse(&text)
        .unwrap_or_else(|e| panic!("bench-gate: {path} is not valid JSON: {e:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json> [...more pairs]");
        std::process::exit(2);
    }
    let tol = env_f64("PDAC_GATE_TOL", 0.35);
    let slack = env_f64("PDAC_GATE_SLACK", 0.04);

    let mut failed = false;
    for pair in args.chunks(2) {
        let (base_path, fresh_path) = (&pair[0], &pair[1]);
        println!("bench-gate: {base_path} vs {fresh_path} (tol {tol}, slack {slack})");
        let report = gate(&load(base_path), &load(fresh_path), tol, slack);
        for check in &report.checks {
            println!("  {}", check.render());
        }
        for id in &report.missing {
            println!("  FAIL   missing record in fresh output: {id}");
        }
        if report.checks.is_empty() && report.missing.is_empty() {
            println!("  FAIL   no gated metrics found in baseline");
            failed = true;
        }
        if !report.pass() {
            failed = true;
        }
    }
    if failed {
        eprintln!("bench-gate: FAIL — regression against baseline");
        std::process::exit(1);
    }
    println!("bench-gate: OK");
}
