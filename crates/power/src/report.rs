//! Tabular exporters for power and energy results.
//!
//! The bench harness prints human-readable reports; downstream analysis
//! (plotting the figures, diffing runs) wants machine-readable tables.
//! This module renders breakdowns as CSV and Markdown without pulling in
//! a serialization framework.

use crate::energy::EnergyBreakdown;
use crate::model::PowerBreakdown;

/// Escapes a CSV field (quotes fields containing separators/quotes).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders a power breakdown as CSV with a header row.
///
/// # Examples
///
/// ```
/// use pdac_power::{ArchConfig, TechParams};
/// use pdac_power::model::{DriverKind, PowerModel};
/// use pdac_power::report::power_csv;
///
/// let m = PowerModel::new(ArchConfig::lt_b(), TechParams::calibrated(), DriverKind::PhotonicDac);
/// let csv = power_csv(&m.breakdown(8));
/// assert!(csv.starts_with("driver,bits,component,watts,share"));
/// assert!(csv.contains("Laser"));
/// ```
pub fn power_csv(breakdown: &PowerBreakdown) -> String {
    let _span = pdac_telemetry::span("power.report.power_csv");
    pdac_telemetry::counter_add("power.report.renders", 1);
    let mut out = String::from("driver,bits,component,watts,share\n");
    let total = breakdown.total_watts();
    for (component, watts) in breakdown.entries() {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6}\n",
            csv_field(&breakdown.driver.to_string()),
            breakdown.bits,
            csv_field(&component.to_string()),
            watts,
            watts / total
        ));
    }
    out
}

/// Renders a power breakdown as a Markdown table.
pub fn power_markdown(breakdown: &PowerBreakdown) -> String {
    let _span = pdac_telemetry::span("power.report.power_markdown");
    pdac_telemetry::counter_add("power.report.renders", 1);
    let total = breakdown.total_watts();
    let mut out = "| component | watts | share |\n|---|---|---|\n".to_string();
    for (component, watts) in breakdown.entries() {
        out.push_str(&format!(
            "| {component} | {watts:.3} | {:.1}% |\n",
            100.0 * watts / total
        ));
    }
    out.push_str(&format!("| **total** | **{total:.3}** | 100% |\n"));
    out
}

/// Renders an energy breakdown as CSV with a header row.
pub fn energy_csv(breakdown: &EnergyBreakdown) -> String {
    let _span = pdac_telemetry::span("power.report.energy_csv");
    pdac_telemetry::counter_add("power.report.renders", 1);
    let mut out = String::from("workload,bits,class,compute_j,movement_j,elementwise_j,total_j\n");
    for c in &breakdown.classes {
        out.push_str(&format!(
            "{},{},{},{:.9e},{:.9e},{:.9e},{:.9e}\n",
            csv_field(&breakdown.workload),
            breakdown.bits,
            c.class,
            c.compute_j,
            c.movement_j,
            c.elementwise_j,
            c.total_j()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchConfig;
    use crate::energy::{EnergyModel, OpClass, OpTrace, TraceEntry};
    use crate::model::{DriverKind, PowerModel};
    use crate::presets::TechParams;

    fn breakdown() -> PowerBreakdown {
        PowerModel::new(
            ArchConfig::lt_b(),
            TechParams::calibrated(),
            DriverKind::ElectricalDac,
        )
        .breakdown(8)
    }

    #[test]
    fn power_csv_has_row_per_component() {
        let b = breakdown();
        let csv = power_csv(&b);
        // header + one line per component + trailing newline handling.
        assert_eq!(csv.trim_end().lines().count(), 1 + b.entries().len());
        assert!(csv.contains("DAC baseline,8,DAC"));
    }

    #[test]
    fn csv_shares_sum_to_one() {
        let csv = power_csv(&breakdown());
        let sum: f64 = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((sum - 1.0).abs() < 1e-5); // shares are printed at 6 decimals
    }

    #[test]
    fn markdown_has_total_row() {
        let md = power_markdown(&breakdown());
        assert!(md.contains("| component |"));
        assert!(md.contains("**total**"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() >= 7);
    }

    #[test]
    fn energy_csv_round_trips_values() {
        let em = EnergyModel::new(PowerModel::new(
            ArchConfig::lt_b(),
            TechParams::calibrated(),
            DriverKind::PhotonicDac,
        ));
        let trace = OpTrace {
            name: "csv, with comma".into(),
            entries: vec![TraceEntry {
                class: OpClass::Attention,
                macs: 1_000_000,
                bytes_at_8bit: 1000,
                elementwise_ops: 10,
            }],
        };
        let e = em.energy(&trace, 8);
        let csv = energy_csv(&e);
        // Comma-containing workload name is quoted.
        assert!(csv.contains("\"csv, with comma\""));
        let data_line = csv.lines().nth(1).unwrap();
        let total: f64 = data_line.rsplit(',').next().unwrap().parse().unwrap();
        assert!((total - e.classes[0].total_j()).abs() < e.classes[0].total_j() * 1e-6);
    }

    #[test]
    fn csv_field_escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }
}
