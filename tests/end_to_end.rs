//! Cross-crate integration tests: the complete P-DAC story, from device
//! physics to paper-level results, exercised through the facade crate.

use pdac::accel::config::{AccelConfig, DriverChoice};
use pdac::accel::functional::FunctionalGemm;
use pdac::core::edac::ElectricalDac;
use pdac::core::pdac::PDac;
use pdac::core::MzmDriver;
use pdac::math::stats::cosine_similarity;
use pdac::math::Mat;
use pdac::nn::config::TransformerConfig;
use pdac::nn::inference::{fidelity_study, TransformerModel};
use pdac::nn::workload::op_trace;
use pdac::nn::{AnalogGemm, ExactGemm};
use pdac::photonics::DDotUnit;
use pdac::power::energy::savings;
use pdac::power::model::{power_saving, DriverKind, PowerModel};
use pdac::power::{ArchConfig, Component, EnergyModel, TechParams};

fn lt_b() -> (PowerModel, PowerModel) {
    let arch = ArchConfig::lt_b();
    let tech = TechParams::calibrated();
    (
        PowerModel::new(arch.clone(), tech.clone(), DriverKind::ElectricalDac),
        PowerModel::new(arch, tech, DriverKind::PhotonicDac),
    )
}

#[test]
fn paper_headline_power_savings() {
    let (baseline, pdac) = lt_b();
    // Abstract: "up to 35.4% reduction ... for 8-bit data sizes" refers
    // to attention energy; the compute-bound headline is 47.7%.
    assert!((power_saving(&baseline, &pdac, 8) - 0.477).abs() < 0.005);
    assert!((power_saving(&baseline, &pdac, 4) - 0.199).abs() < 0.005);
}

#[test]
fn paper_fig5_dac_shares() {
    let (baseline, _) = lt_b();
    assert!((baseline.breakdown(4).share(Component::Dac) - 0.218).abs() < 0.005);
    assert!((baseline.breakdown(8).share(Component::Dac) - 0.505).abs() < 0.005);
}

#[test]
fn paper_running_example_0x40_through_every_layer() {
    // Digital 0x40 → analog 0.5: through the weight plan, the physical
    // pipeline, and a DDot multiplication against 1.0.
    let pdac = PDac::with_optimal_approx(8).unwrap();
    let encoded = pdac.convert(0x40);
    let ideal = 64.0 / 127.0;
    assert!(((encoded - ideal) / ideal).abs() < 0.085 + 1e-9);

    let unit = DDotUnit::ideal(1);
    let product = unit.dot(&[encoded], &[1.0]).unwrap();
    assert!((product - encoded).abs() < 1e-12);
}

#[test]
fn converter_error_flows_through_accelerator_to_transformer() {
    // The same PDac instance drives an accelerator GEMM and a transformer
    // forward pass; both must stay close to their exact references.
    let a = Mat::from_fn(8, 16, |r, c| (((r + 2 * c) % 9) as f64 / 9.0) - 0.45);
    let b = Mat::from_fn(16, 8, |r, c| (((3 * r + c) % 7) as f64 / 7.0) - 0.4);
    let exact = a.matmul(&b).unwrap();

    let arch = ArchConfig {
        cores: 2,
        rows: 4,
        cols: 4,
        wavelengths: 8,
        clock_hz: 5e9,
    };
    let engine =
        FunctionalGemm::new(AccelConfig::new(arch, 8, DriverChoice::PhotonicDac).unwrap()).unwrap();
    let run = engine.execute(&a, &b).unwrap();
    let cs = cosine_similarity(run.output.as_slice(), exact.as_slice()).unwrap();
    assert!(cs > 0.995, "accelerator GEMM cosine {cs}");

    let model = TransformerModel::random(TransformerConfig::tiny(), 8, 5);
    let backend = AnalogGemm::new(PDac::with_optimal_approx(8).unwrap(), "pdac");
    let report = fidelity_study(&model, &ExactGemm, &backend, 4);
    assert!(report.mean_cosine > 0.95, "{report:?}");
}

#[test]
fn bert_and_deit_energy_reductions_match_paper_shape() {
    let (baseline, pdac) = lt_b();
    let be = EnergyModel::new(baseline);
    let pe = EnergyModel::new(pdac);
    for config in [
        TransformerConfig::bert_base(),
        TransformerConfig::deit_base(),
    ] {
        let trace = op_trace(&config);
        let s4 = savings(&be.energy(&trace, 4), &pe.energy(&trace, 4)).total;
        let s8 = savings(&be.energy(&trace, 8), &pe.energy(&trace, 8)).total;
        // Paper: ~11.2% at 4-bit, ~32.3% at 8-bit for both workloads.
        assert!((s4 - 0.112).abs() < 0.03, "{}: s4={s4}", config.name);
        assert!((s8 - 0.323).abs() < 0.03, "{}: s8={s8}", config.name);
    }
}

#[test]
fn functional_and_analytical_energy_agree() {
    // The functional simulator's cycle-derived energy must equal the
    // analytical power × time within float error for a compute-bound run.
    let arch = ArchConfig::lt_b();
    let plan = pdac::accel::scheduler::TilingPlan::plan(
        pdac::accel::scheduler::GemmShape::new(64, 64, 64),
        &arch,
    );
    let pm = PowerModel::new(
        arch.clone(),
        TechParams::calibrated(),
        DriverKind::PhotonicDac,
    );
    let stats =
        pdac::accel::RunStats::from_plan(&plan, pdac::accel::memory::TrafficCounters::default());
    let e = stats.energy_j(&pm, 8);
    let expected = pm.breakdown(8).total_watts() * plan.runtime_s(&arch);
    assert!((e - expected).abs() < 1e-15);
}

#[test]
fn edac_and_pdac_disagree_most_near_breakpoint() {
    let pdac = PDac::with_optimal_approx(8).unwrap();
    let edac = ElectricalDac::new(8).unwrap();
    let worst = (1..=127)
        .max_by(|&a, &b| {
            let da = (pdac.convert(a) - edac.convert(a)).abs();
            let db = (pdac.convert(b) - edac.convert(b)).abs();
            da.partial_cmp(&db).unwrap()
        })
        .unwrap();
    // 0.7236 · 127 ≈ 92.
    assert!(
        (worst - 92).abs() <= 3,
        "largest disagreement at code {worst}"
    );
}

#[test]
fn workspace_types_compose_through_facade() {
    // Smoke test that the facade exposes every layer.
    let _ = pdac::math::Complex64::I;
    let _ = pdac::photonics::Mzm::ideal();
    let _ = pdac::core::Adc::new(8, 1.0).unwrap();
    let _ = pdac::power::ArchConfig::lt_b();
    let _ = pdac::nn::TransformerConfig::tiny();
    let _ = pdac::accel::AccelConfig::lt_b_pdac(8).unwrap();
}
