//! BERT-base inference energy: DAC baseline vs P-DAC (paper Fig. 9).
//!
//! Builds the exact op trace of BERT-base with sequence length 128,
//! integrates it against the calibrated LT-B power model under both
//! drive paths, and prints per-class savings.
//!
//! Run with: `cargo run --example bert_energy`

use pdac::nn::config::TransformerConfig;
use pdac::nn::workload::op_trace;
use pdac::power::energy::savings;
use pdac::power::model::{DriverKind, PowerModel};
use pdac::power::{ArchConfig, EnergyModel, TechParams};

fn main() {
    let config = TransformerConfig::bert_base();
    let trace = op_trace(&config);
    println!(
        "{}: {:.2} G MACs per inference\n",
        config.name,
        trace.total_macs() as f64 / 1e9
    );

    let arch = ArchConfig::lt_b();
    let tech = TechParams::calibrated();
    let baseline = EnergyModel::new(PowerModel::new(
        arch.clone(),
        tech.clone(),
        DriverKind::ElectricalDac,
    ));
    let pdac = EnergyModel::new(PowerModel::new(arch, tech, DriverKind::PhotonicDac));

    for bits in [4u8, 8] {
        let base = baseline.energy(&trace, bits);
        let test = pdac.energy(&trace, bits);
        println!("{base}");
        println!("{test}");
        let rep = savings(&base, &test);
        println!("  -> total saving {:.1}%", 100.0 * rep.total);
        for (class, s) in &rep.per_class {
            println!("     {class:<10} saving {:.1}%", 100.0 * s);
        }
        println!();
    }
}
