//! Extension: WDM interconnect crosstalk vs DDot accuracy.
fn main() {
    print!("{}", pdac_bench::crosstalk::report());
}
