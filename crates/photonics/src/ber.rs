//! Bit-error-rate model for the optical digital link.
//!
//! Before the P-DAC's analog stage, data travels as *digital* optical
//! slots (Fig. 2). A receiver decides lit/dark against a threshold; with
//! Gaussian current noise of σ on a signal swing `I_on`, the slot error
//! probability is `Q((I_on/2)/σ)` where `Q` is the Gaussian tail — the
//! standard OOK link formula. Slot errors flip bits of the code before
//! conversion, an error channel entirely separate from the arccos
//! approximation and one the paper does not budget.

use crate::eo_interface::OpticalWord;
use pdac_math::rng::SplitMix64;

/// Gaussian upper-tail probability `Q(x) = P(N(0,1) > x)`, via the
/// complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation of `erf`; absolute error < 1.5e-7).
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// An on-off-keyed slot receiver.
///
/// # Examples
///
/// ```
/// use pdac_photonics::ber::SlotReceiver;
///
/// let rx = SlotReceiver::new(1e-3, 5e-5)?; // 20σ swing: essentially error-free
/// assert!(rx.slot_error_rate() < 1e-12);
/// # Ok::<(), pdac_photonics::ber::BerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotReceiver {
    on_current: f64,
    noise_sigma: f64,
}

/// Errors from receiver construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BerError {
    /// Signal current must be positive.
    BadSignal,
    /// Noise σ must be nonnegative.
    BadNoise,
}

impl std::fmt::Display for BerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BerError::BadSignal => write!(f, "on-current must be positive"),
            BerError::BadNoise => write!(f, "noise sigma must be nonnegative"),
        }
    }
}

impl std::error::Error for BerError {}

impl SlotReceiver {
    /// Creates a receiver with lit-slot current `on_current` (A) and
    /// Gaussian current noise `noise_sigma` (A); the decision threshold
    /// sits at half swing.
    ///
    /// # Errors
    ///
    /// Returns [`BerError`] for invalid parameters.
    pub fn new(on_current: f64, noise_sigma: f64) -> Result<Self, BerError> {
        if !(on_current.is_finite() && on_current > 0.0) {
            return Err(BerError::BadSignal);
        }
        if !(noise_sigma.is_finite() && noise_sigma >= 0.0) {
            return Err(BerError::BadNoise);
        }
        Ok(Self {
            on_current,
            noise_sigma,
        })
    }

    /// Analytic slot error probability, `Q(I_on / 2σ)` (0 when
    /// noiseless).
    pub fn slot_error_rate(&self) -> f64 {
        if self.noise_sigma == 0.0 {
            0.0
        } else {
            q_function(self.on_current / (2.0 * self.noise_sigma))
        }
    }

    /// Link signal-to-noise ratio in dB (`20·log10(I_on/σ)`).
    ///
    /// # Panics
    ///
    /// Panics for a noiseless receiver (SNR is unbounded).
    pub fn snr_db(&self) -> f64 {
        assert!(
            self.noise_sigma > 0.0,
            "noiseless receiver has unbounded SNR"
        );
        20.0 * (self.on_current / self.noise_sigma).log10()
    }

    /// Receives a word, flipping each slot independently with the slot
    /// error probability (seeded).
    pub fn receive(&self, word: &OpticalWord, rng: &mut SplitMix64) -> OpticalWord {
        let p = self.slot_error_rate();
        let bits = word.bits();
        let mut value = word.decode();
        if p == 0.0 {
            return OpticalWord::encode(value, bits).expect("round trip");
        }
        // Flip slots on the decoded representation: rebuild via slots.
        let mut slots: Vec<bool> = word.slots().to_vec();
        for s in &mut slots {
            if rng.gen_f64() < p {
                *s = !*s;
            }
        }
        // Reassemble: sign slot + magnitude MSB-first.
        let mut mag = 0i32;
        for &b in &slots[1..] {
            mag = (mag << 1) | i32::from(b);
        }
        value = if slots[0] { -mag } else { mag };
        OpticalWord::encode(value, bits).expect("slot pattern is representable")
    }

    /// Monte-Carlo word error rate over `n` random codes at `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bits` outside `2..=16`.
    pub fn word_error_rate(&self, bits: u8, n: usize, seed: u64) -> f64 {
        assert!(n > 0, "need at least one trial");
        let limit = (1i32 << (bits - 1)) - 1;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut errors = 0usize;
        for _ in 0..n {
            let code = rng.gen_range_i64(-limit as i64, limit as i64) as i32;
            let word = OpticalWord::encode(code, bits).expect("in range");
            let received = self.receive(&word, &mut rng);
            if received.decode() != code {
                errors += 1;
            }
        }
        errors as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-5);
        assert!((q_function(3.0) - 1.349_9e-3).abs() < 1e-5);
        assert!(q_function(8.0) < 1e-14);
        // Symmetry: Q(-x) = 1 - Q(x).
        assert!((q_function(-1.0) - (1.0 - q_function(1.0))).abs() < 1e-7);
    }

    #[test]
    fn noiseless_link_is_error_free() {
        let rx = SlotReceiver::new(1e-3, 0.0).unwrap();
        assert_eq!(rx.slot_error_rate(), 0.0);
        assert_eq!(rx.word_error_rate(8, 100, 1), 0.0);
    }

    #[test]
    fn slot_error_tracks_snr() {
        let good = SlotReceiver::new(1e-3, 1e-4).unwrap(); // Q(5)
        let bad = SlotReceiver::new(1e-3, 5e-4).unwrap(); // Q(1)
        assert!(good.slot_error_rate() < bad.slot_error_rate());
        assert!((bad.slot_error_rate() - q_function(1.0)).abs() < 1e-9);
        assert!((good.snr_db() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn word_error_rate_approximates_analytic() {
        // P(word ok) = (1-p)^bits; with p = Q(1) ≈ 0.159 and 8 slots,
        // WER ≈ 1 - 0.841^8 ≈ 0.75.
        let rx = SlotReceiver::new(1e-3, 5e-4).unwrap();
        let wer = rx.word_error_rate(8, 20_000, 7);
        let p = rx.slot_error_rate();
        let analytic = 1.0 - (1.0 - p).powi(8);
        assert!(
            (wer - analytic).abs() < 0.02,
            "wer {wer} vs analytic {analytic}"
        );
    }

    #[test]
    fn received_word_stays_representable() {
        let rx = SlotReceiver::new(1e-3, 1e-3).unwrap(); // very noisy
        let mut rng = SplitMix64::seed_from_u64(3);
        for code in [-127, -1, 0, 64, 127] {
            let w = OpticalWord::encode(code, 8).unwrap();
            let r = rx.receive(&w, &mut rng);
            assert_eq!(r.bits(), 8);
            assert!(r.decode().abs() <= 127);
        }
    }

    #[test]
    fn validation() {
        assert_eq!(SlotReceiver::new(0.0, 1e-4), Err(BerError::BadSignal));
        assert_eq!(SlotReceiver::new(1e-3, -1.0), Err(BerError::BadNoise));
        assert!(BerError::BadSignal.to_string().contains("positive"));
    }
}
