//! Why dynamic operation matters: the MZI-mesh PTC (SVD-programmed, the
//! paper's Sec. II background) vs the DDot path for transformer-style
//! dynamically-generated operands.
//!
//! Run with: `cargo run --example mzi_vs_ddot`

use pdac::math::Mat;
use pdac::photonics::mzi_mesh::{MappingCostModel, MziMeshPtc};
use pdac::photonics::DDotUnit;
use pdac::power::ArchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let w = Mat::from_fn(n, n, |r, c| (((r * 7 + c * 3) % 11) as f64 / 11.0) - 0.5);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) - 0.4).collect();
    let exact = w.matvec(&x)?;

    // 1. MZI mesh: program once (SVD + phase decomposition), then apply.
    let ptc = MziMeshPtc::program(&w)?;
    let mesh_out = ptc.matvec(&x);
    let mesh_err = exact
        .iter()
        .zip(&mesh_out)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let mapping = MappingCostModel::calibrated();
    println!("MZI-mesh PTC (n = {n}):");
    println!("  MZIs programmed        {}", ptc.mzi_count());
    println!("  functional max error   {mesh_err:.2e}");
    println!(
        "  (re)programming latency {:.3} ms  (paper quotes ~1.5 ms)",
        mapping.mapping_seconds(n) * 1e3
    );

    // 2. DDot: operands stream each cycle — row-by-row dot products.
    let arch = ArchConfig::lt_b();
    let unit = DDotUnit::ideal(n);
    let ddot_out: Vec<f64> = (0..n).map(|r| unit.dot(&w.row(r), &x).unwrap()).collect();
    let ddot_err = exact
        .iter()
        .zip(&ddot_out)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nDDot path:");
    println!("  functional max error   {ddot_err:.2e}");
    println!(
        "  operand load latency    {:.3} ns (one modulation cycle)",
        1e9 / arch.clock_hz
    );
    println!(
        "\nlatency ratio mesh/DDot ≈ {:.1e} — why SVD meshes cannot serve\n\
         dynamically-generated Q/K/V operands, and why the MZM-per-operand\n\
         design (and hence its DAC power, and hence the P-DAC) exists.",
        mapping.mapping_seconds(n) * arch.clock_hz
    );
    Ok(())
}
