//! Thread-count determinism of the GEMM engine.
//!
//! `scripts/ci.sh` runs this suite twice — under `PDAC_THREADS=1` and
//! `PDAC_THREADS=8` — so the env-driven default path is exercised at both
//! extremes in separate processes (the thread count is cached per
//! process). Within one process the explicit-thread-count API must agree
//! with the reference loop bit for bit at every count.

use pdac_math::rng::SplitMix64;
use pdac_math::Mat;

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = SplitMix64::seed_from_u64(seed);
    Mat::from_fn(rows, cols, |_, _| rng.gen_range_f64(-3.0, 3.0))
}

#[test]
fn gemm_outputs_bit_identical_across_thread_counts() {
    for (m, k, n, seed) in [
        (64, 64, 64, 1u64),
        (100, 37, 51, 2),
        (7, 129, 30, 3),
        (1, 256, 192, 4),
        (130, 130, 130, 5),
    ] {
        let a = random_mat(m, k, seed);
        let b = random_mat(k, n, seed + 100);
        let reference = a.matmul_reference(&b).unwrap();
        // The env-driven default (PDAC_THREADS when set).
        assert_eq!(a.matmul(&b).unwrap(), reference, "{m}x{k}x{n} default");
        // Every explicit thread count, including oversubscription.
        for threads in [1, 2, 3, 8, 16] {
            assert_eq!(
                a.matmul_with_threads(&b, threads).unwrap(),
                reference,
                "{m}x{k}x{n} threads={threads}"
            );
        }
    }
}

#[test]
fn matvec_outputs_bit_identical_across_thread_counts() {
    for (m, k, seed) in [(64, 64, 11u64), (300, 257, 12), (1, 500, 13)] {
        let a = random_mat(m, k, seed);
        let v: Vec<f64> = random_mat(1, k, seed + 50).row(0);
        assert_eq!(
            a.matvec(&v).unwrap(),
            a.matvec_reference(&v).unwrap(),
            "{m}x{k}"
        );
    }
}

#[test]
fn matmul_into_bit_identical_and_reuses_allocation() {
    // The in-place form shares the kernel with matmul, so it inherits the
    // same determinism obligation — including when the output buffer is
    // recycled across differently shaped products.
    let mut out = Mat::zeros(1, 1);
    for (m, k, n, seed) in [
        (64, 64, 64, 21u64),
        (100, 37, 51, 22),
        (7, 129, 30, 23),
        (1, 256, 192, 24),
    ] {
        let a = random_mat(m, k, seed);
        let b = random_mat(k, n, seed + 100);
        let reference = a.matmul_reference(&b).unwrap();
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, reference, "{m}x{k}x{n} into");
        assert_eq!(out.shape(), (m, n), "{m}x{k}x{n} reshaped");
    }
}

#[test]
fn rectangular_and_degenerate_shapes_bit_identical() {
    // Extreme aspect ratios and prime dimensions defeat every blocking
    // assumption in the tuned kernel: single cells, single rows/columns,
    // deep inner products, and block-unaligned prime sizes must all still
    // agree with the reference loop bit for bit at every thread count.
    let mut out = Mat::zeros(1, 1);
    for (m, k, n, seed) in [
        (1, 1, 1, 31u64),  // single cell
        (1, 1, 64, 32),    // outer-product row
        (64, 1, 1, 33),    // outer-product column
        (1, 512, 1, 34),   // deep dot product
        (2, 3, 2, 35),     // smaller than any block
        (7, 13, 31, 36),   // prime everywhere
        (31, 7, 13, 37),   // prime, permuted
        (129, 2, 127, 38), // thin inner dimension, prime edges
    ] {
        let a = random_mat(m, k, seed);
        let b = random_mat(k, n, seed + 100);
        let reference = a.matmul_reference(&b).unwrap();
        assert_eq!(a.matmul(&b).unwrap(), reference, "{m}x{k}x{n} default");
        for threads in [1, 2, 8, 16] {
            assert_eq!(
                a.matmul_with_threads(&b, threads).unwrap(),
                reference,
                "{m}x{k}x{n} threads={threads}"
            );
        }
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, reference, "{m}x{k}x{n} into");
        if n == 1 {
            // Column matrices double as matvec inputs; the two kernels
            // must agree on the same data.
            let v = b.col(0);
            assert_eq!(
                a.matvec(&v).unwrap(),
                reference.col(0),
                "{m}x{k} matvec-vs-gemm"
            );
        }
    }
}

#[test]
fn zero_dimension_matrices_are_rejected_at_construction() {
    // Degenerate 0×N shapes are unrepresentable by design: Mat::zeros
    // refuses them, so no kernel ever sees an empty operand.
    let err = std::panic::catch_unwind(|| Mat::zeros(0, 4));
    assert!(err.is_err(), "0-row matrix must be rejected");
    let err = std::panic::catch_unwind(|| Mat::zeros(4, 0));
    assert!(err.is_err(), "0-col matrix must be rejected");
}
