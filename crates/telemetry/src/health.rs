//! Process-wide health surface: a severity-graded alert ledger with a
//! critical latch.
//!
//! The drift sentinel (`pdac-verify`) scores live analog operations
//! against the paper's error budgets and raises alerts here; the serving
//! layer reads the surface back — the `/health` endpoint reports
//! ok/degraded/critical with the active alerts, and `TokenServer` can
//! (opt-in) fail over to the exact backend once [`critical_latched`]
//! trips. The ledger is a bounded ring in the same per-slot-mutex style
//! as [`crate::trace::TraceBuffer`]: raising an alert never blocks on
//! readers, overflow keeps the newest records, and drops are counted.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// How bad a single alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Drift above the warn fraction of a budget but still inside it.
    Warn,
    /// Drift at or beyond a paper budget.
    Critical,
}

impl Severity {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// Aggregate health verdict over the whole ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// No alerts raised since the last reset.
    Ok,
    /// Warn-level alerts only.
    Degraded,
    /// At least one critical alert latched.
    Critical,
}

impl HealthStatus {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Critical => "critical",
        }
    }
}

/// One structured alert: who drifted, by how much, against which budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRecord {
    /// Collector timestamp (ns) when the alert was raised (0 when the
    /// collector was disabled).
    pub ts_ns: u64,
    /// Alert severity.
    pub severity: Severity,
    /// Backend name as reported by the GEMM backend (e.g. `pdac-8b`).
    pub backend: String,
    /// Operation class that was sampled (e.g. `batch`, `grouped`).
    pub op: String,
    /// The measured error metric.
    pub measured: f64,
    /// The budget the metric was held against.
    pub budget: f64,
}

impl AlertRecord {
    /// One JSON object for this alert (JSONL line / `/health` payload).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ts_ns".into(), Json::Int(self.ts_ns)),
            ("severity".into(), Json::Str(self.severity.label().into())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("op".into(), Json::Str(self.op.clone())),
            ("measured".into(), Json::Num(self.measured)),
            ("budget".into(), Json::Num(self.budget)),
        ])
    }
}

/// Bounded alert ring with severity counters and a critical latch.
pub struct HealthLedger {
    slots: Box<[Mutex<Option<AlertRecord>>]>,
    head: AtomicU64,
    warn: AtomicU64,
    critical: AtomicU64,
    critical_latched: AtomicBool,
}

/// Default alert-ring capacity (overridable at first use via
/// `PDAC_HEALTH_ALERT_CAPACITY` on the global ledger).
pub const DEFAULT_ALERT_CAPACITY: usize = 256;

impl HealthLedger {
    /// A ledger holding at most `capacity` newest alerts (clamped to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            head: AtomicU64::new(0),
            warn: AtomicU64::new(0),
            critical: AtomicU64::new(0),
            critical_latched: AtomicBool::new(false),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total alerts raised since the last reset.
    pub fn raised(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Alerts evicted from the ring by overflow.
    pub fn dropped(&self) -> u64 {
        self.raised().saturating_sub(self.slots.len() as u64)
    }

    /// Warn-level alerts raised since the last reset.
    pub fn warn_count(&self) -> u64 {
        self.warn.load(Ordering::Relaxed)
    }

    /// Critical alerts raised since the last reset.
    pub fn critical_count(&self) -> u64 {
        self.critical.load(Ordering::Relaxed)
    }

    /// Whether a critical alert has latched since the last reset.
    pub fn critical_latched(&self) -> bool {
        self.critical_latched.load(Ordering::Relaxed)
    }

    /// Aggregate verdict: critical latch beats warn beats ok.
    pub fn status(&self) -> HealthStatus {
        if self.critical_latched() {
            HealthStatus::Critical
        } else if self.warn_count() > 0 {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        }
    }

    /// Record one alert (never blocks behind readers for long: each slot
    /// has its own lock).
    pub fn raise(&self, record: AlertRecord) {
        match record.severity {
            Severity::Warn => self.warn.fetch_add(1, Ordering::Relaxed),
            Severity::Critical => {
                self.critical_latched.store(true, Ordering::Relaxed);
                self.critical.fetch_add(1, Ordering::Relaxed)
            }
        };
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap() = Some(record);
    }

    /// The retained alerts, oldest first.
    pub fn alerts(&self) -> Vec<AlertRecord> {
        let head = self.head.load(Ordering::Relaxed);
        let capacity = self.slots.len() as u64;
        let start = head.saturating_sub(capacity);
        let mut out = Vec::new();
        for seq in start..head {
            let slot = (seq % capacity) as usize;
            if let Some(record) = self.slots[slot].lock().unwrap().clone() {
                out.push(record);
            }
        }
        out
    }

    /// JSONL: one line per retained alert.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for alert in self.alerts() {
            out.push_str(&alert.to_json().render());
            out.push('\n');
        }
        out
    }

    /// The full health surface as one JSON object (the `/health` body).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("status".into(), Json::Str(self.status().label().into())),
            (
                "critical_latched".into(),
                Json::Bool(self.critical_latched()),
            ),
            ("alerts_raised".into(), Json::Int(self.raised())),
            ("alerts_warn".into(), Json::Int(self.warn_count())),
            ("alerts_critical".into(), Json::Int(self.critical_count())),
            ("alerts_dropped".into(), Json::Int(self.dropped())),
            (
                "alerts".into(),
                Json::Arr(self.alerts().iter().map(AlertRecord::to_json).collect()),
            ),
        ])
    }

    /// Clear the ring, zero the counters and release the critical latch.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            *slot.lock().unwrap() = None;
        }
        self.head.store(0, Ordering::Relaxed);
        self.warn.store(0, Ordering::Relaxed);
        self.critical.store(0, Ordering::Relaxed);
        self.critical_latched.store(false, Ordering::Relaxed);
    }
}

static LEDGER: OnceLock<HealthLedger> = OnceLock::new();

/// The process-wide ledger (capacity honours `PDAC_HEALTH_ALERT_CAPACITY`
/// at first use).
pub fn ledger() -> &'static HealthLedger {
    LEDGER.get_or_init(|| {
        let capacity = std::env::var("PDAC_HEALTH_ALERT_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_ALERT_CAPACITY);
        HealthLedger::new(capacity)
    })
}

/// Raise an alert on the global ledger and bump the matching
/// `health.alert.{warn,critical}` counter.
pub fn raise(severity: Severity, backend: &str, op: &str, measured: f64, budget: f64) {
    crate::counter_add(
        match severity {
            Severity::Warn => "health.alert.warn",
            Severity::Critical => "health.alert.critical",
        },
        1,
    );
    ledger().raise(AlertRecord {
        ts_ns: crate::now_ns(),
        severity,
        backend: backend.to_string(),
        op: op.to_string(),
        measured,
        budget,
    });
}

/// Aggregate verdict of the global ledger.
pub fn status() -> HealthStatus {
    ledger().status()
}

/// Whether a critical alert has latched on the global ledger.
#[inline]
pub fn critical_latched() -> bool {
    LEDGER.get().is_some_and(HealthLedger::critical_latched)
}

/// Clear the global ledger (tests and between serve runs).
pub fn reset() {
    if let Some(ledger) = LEDGER.get() {
        ledger.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_ok() {
        let ledger = HealthLedger::new(4);
        assert_eq!(ledger.status(), HealthStatus::Ok);
        assert!(!ledger.critical_latched());
        assert!(ledger.alerts().is_empty());
        assert_eq!(ledger.dropped(), 0);
    }

    fn alert(severity: Severity, measured: f64) -> AlertRecord {
        AlertRecord {
            ts_ns: 7,
            severity,
            backend: "pdac-8b".into(),
            op: "batch".into(),
            measured,
            budget: 0.15,
        }
    }

    #[test]
    fn warn_degrades_and_critical_latches() {
        let ledger = HealthLedger::new(4);
        ledger.raise(alert(Severity::Warn, 0.08));
        assert_eq!(ledger.status(), HealthStatus::Degraded);
        ledger.raise(alert(Severity::Critical, 0.3));
        assert_eq!(ledger.status(), HealthStatus::Critical);
        assert!(ledger.critical_latched());
        assert_eq!(ledger.warn_count(), 1);
        assert_eq!(ledger.critical_count(), 1);
        // The latch survives even if the record is evicted later.
        for i in 0..8 {
            ledger.raise(alert(Severity::Warn, 0.05 + i as f64 * 0.001));
        }
        assert!(ledger.critical_latched());
        assert_eq!(ledger.status(), HealthStatus::Critical);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ledger = HealthLedger::new(3);
        for i in 0..7 {
            ledger.raise(alert(Severity::Warn, i as f64));
        }
        assert_eq!(ledger.raised(), 7);
        assert_eq!(ledger.dropped(), 4);
        let kept: Vec<f64> = ledger.alerts().iter().map(|a| a.measured).collect();
        assert_eq!(kept, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn reset_releases_the_latch() {
        let ledger = HealthLedger::new(2);
        ledger.raise(alert(Severity::Critical, 1.0));
        assert!(ledger.critical_latched());
        ledger.reset();
        assert_eq!(ledger.status(), HealthStatus::Ok);
        assert!(!ledger.critical_latched());
        assert!(ledger.alerts().is_empty());
        assert_eq!(ledger.raised(), 0);
    }

    #[test]
    fn json_payload_carries_status_and_alerts() {
        let ledger = HealthLedger::new(4);
        ledger.raise(alert(Severity::Critical, 0.42));
        let doc = ledger.to_json();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("critical"));
        let alerts = doc.get("alerts").and_then(Json::as_arr).unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].get("backend").and_then(Json::as_str),
            Some("pdac-8b")
        );
        assert_eq!(alerts[0].get("measured").and_then(Json::as_f64), Some(0.42));
        // Every line of the JSONL export parses back.
        for line in ledger.to_jsonl().lines() {
            crate::json::parse(line).expect("alert line parses");
        }
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ledger = HealthLedger::new(0);
        ledger.raise(alert(Severity::Warn, 1.0));
        assert_eq!(ledger.alerts().len(), 1);
    }
}
