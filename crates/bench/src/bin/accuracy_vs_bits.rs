//! Extension: teacher-task accuracy vs bit precision per converter —
//! the quantified form of the paper's "LLMs tolerate minor inaccuracies".
use pdac_nn::accuracy::accuracy_curve;
use pdac_nn::config::TransformerConfig;

fn main() {
    println!("Teacher-task accuracy vs precision (agreement with exact model)");
    println!("================================================================\n");
    println!("(tiny encoder, 16 classes, 20 seeded inputs per cell)\n");
    let points = accuracy_curve(TransformerConfig::tiny(), &[3, 4, 6, 8], 20, 11);
    println!("  converter            bits   accuracy%");
    for p in &points {
        println!(
            "  {:<19} {:>4}   {:>8.0}",
            p.converter,
            p.bits,
            100.0 * p.accuracy
        );
    }
}
