//! Property-based tests for the power/energy models.

use pdac_power::energy::savings;
use pdac_power::model::{power_saving, DriverKind, PowerModel};
use pdac_power::{ArchConfig, EnergyModel, OpClass, OpTrace, TechParams, TraceEntry};
use proptest::prelude::*;

fn arch_strategy() -> impl Strategy<Value = ArchConfig> {
    (1usize..16, 1usize..16, 1usize..16, 1usize..16, 1.0e9f64..10.0e9).prop_map(
        |(cores, rows, cols, wavelengths, clock_hz)| ArchConfig {
            cores,
            rows,
            cols,
            wavelengths,
            clock_hz,
        },
    )
}

proptest! {
    #[test]
    fn breakdown_entries_are_positive(arch in arch_strategy(), bits in 2u8..=16) {
        for driver in [DriverKind::ElectricalDac, DriverKind::PhotonicDac] {
            let m = PowerModel::new(arch.clone(), TechParams::calibrated(), driver);
            let b = m.breakdown(bits);
            prop_assert!(b.total_watts() > 0.0);
            for (_, w) in b.entries() {
                prop_assert!(*w >= 0.0);
            }
        }
    }

    #[test]
    fn pdac_saves_power_at_calibrated_clock(arch in arch_strategy(), bits in 3u8..=16) {
        // The calibrated constants model the P-DAC unit as *static* power
        // and the DAC as per-conversion energy, so the comparison is only
        // meaningful near the 5 GHz operating point they were fitted at;
        // at much slower clocks the DAC's dynamic energy vanishes while
        // the P-DAC's bias power does not (a real limitation of the
        // design, not of the model).
        let mut arch = arch;
        arch.clock_hz = 5e9;
        let base = PowerModel::new(arch.clone(), TechParams::calibrated(), DriverKind::ElectricalDac);
        let pdac = PowerModel::new(arch, TechParams::calibrated(), DriverKind::PhotonicDac);
        prop_assert!(power_saving(&base, &pdac, bits) > 0.0);
    }

    #[test]
    fn breakdown_monotone_in_bits(arch in arch_strategy(), bits in 2u8..=15) {
        for driver in [DriverKind::ElectricalDac, DriverKind::PhotonicDac] {
            let m = PowerModel::new(arch.clone(), TechParams::calibrated(), driver);
            prop_assert!(m.breakdown(bits + 1).total_watts() > m.breakdown(bits).total_watts());
        }
    }

    #[test]
    fn energy_additive_over_classes(
        macs_a in 1u64..1_000_000_000,
        macs_f in 1u64..1_000_000_000,
        bytes in 0u64..100_000_000,
        bits in 2u8..=16,
    ) {
        let m = PowerModel::new(ArchConfig::lt_b(), TechParams::calibrated(), DriverKind::PhotonicDac);
        let em = EnergyModel::new(m);
        let both = OpTrace {
            name: "t".into(),
            entries: vec![
                TraceEntry { class: OpClass::Attention, macs: macs_a, bytes_at_8bit: bytes, elementwise_ops: 0 },
                TraceEntry { class: OpClass::Ffn, macs: macs_f, bytes_at_8bit: bytes, elementwise_ops: 0 },
            ],
        };
        let only_a = OpTrace { name: "t".into(), entries: vec![both.entries[0]] };
        let only_f = OpTrace { name: "t".into(), entries: vec![both.entries[1]] };
        let total = em.energy(&both, bits).total_j();
        let split = em.energy(&only_a, bits).total_j() + em.energy(&only_f, bits).total_j();
        prop_assert!((total - split).abs() <= 1e-12 * (1.0 + total));
    }

    #[test]
    fn savings_bounded_by_compute_saving(
        macs in 1u64..10_000_000_000,
        bytes in 0u64..1_000_000_000,
        elems in 0u64..1_000_000_000,
        bits in 2u8..=16,
    ) {
        let base = PowerModel::new(ArchConfig::lt_b(), TechParams::calibrated(), DriverKind::ElectricalDac);
        let pdac = PowerModel::new(ArchConfig::lt_b(), TechParams::calibrated(), DriverKind::PhotonicDac);
        let compute = power_saving(&base, &pdac, bits);
        let trace = OpTrace {
            name: "t".into(),
            entries: vec![TraceEntry {
                class: OpClass::Ffn,
                macs,
                bytes_at_8bit: bytes,
                elementwise_ops: elems,
            }],
        };
        let rep = savings(
            &EnergyModel::new(base).energy(&trace, bits),
            &EnergyModel::new(pdac).energy(&trace, bits),
        );
        prop_assert!(rep.total >= -1e-12);
        prop_assert!(rep.total <= compute + 1e-12);
    }

    #[test]
    fn energy_per_mac_decreases_with_parallelism(bits in 2u8..=16, cores in 1usize..64) {
        // More cores, same support scaling: fixed laser/support amortize? No —
        // support scales linearly too, so energy/MAC is nearly constant.
        let mut arch = ArchConfig::lt_b();
        arch.cores = cores;
        let m = PowerModel::new(arch, TechParams::calibrated(), DriverKind::PhotonicDac);
        let e = m.energy_per_mac_j(bits);
        let reference = PowerModel::new(ArchConfig::lt_b(), TechParams::calibrated(), DriverKind::PhotonicDac)
            .energy_per_mac_j(bits);
        prop_assert!((e - reference).abs() < 1e-12 + reference * 1e-9);
    }
}
