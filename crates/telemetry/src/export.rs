//! Trace and metrics exporters on the in-tree serializers — zero deps.
//!
//! * [`chrome_trace`] — Chrome-trace-format JSON (`chrome://tracing`,
//!   Perfetto's legacy JSON importer) from a slice of [`SpanEvent`]s.
//! * [`prometheus_text`] — Prometheus text exposition format from a
//!   metrics [`Snapshot`].

use crate::json::Json;
use crate::registry::{Snapshot, SpanEvent};

/// Build a Chrome-trace-format document (the `{"traceEvents": [...]}`
/// object form) from completed span events.
///
/// Events are emitted as complete (`"ph": "X"`) slices with microsecond
/// `ts`/`dur`, sorted so that every parent precedes its children:
/// ascending start time, then *descending* end time (an enclosing span
/// starts no later and ends no earlier than anything it contains), then
/// ascending span id as the tie-break for zero-width spans.
///
/// Span identity travels in `args`: `id`, `parent` (0 = root) and the
/// optional user payload as `arg`, so tooling can rebuild the exact tree
/// without relying on timestamp nesting.
pub fn chrome_trace(events: &[SpanEvent]) -> Json {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.end_ns.cmp(&a.end_ns))
            .then(a.id.cmp(&b.id))
    });
    let trace_events = sorted
        .iter()
        .map(|e| {
            let mut args = vec![
                ("id".into(), Json::Int(e.id)),
                ("parent".into(), Json::Int(e.parent)),
            ];
            if let Some(arg) = e.arg {
                args.push(("arg".into(), Json::Int(arg)));
            }
            Json::Obj(vec![
                ("name".into(), Json::Str(e.name.to_string())),
                ("cat".into(), Json::Str(category(e.name).to_string())),
                ("ph".into(), Json::Str("X".to_string())),
                ("ts".into(), Json::Num(e.start_ns as f64 / 1e3)),
                ("dur".into(), Json::Num(e.elapsed_ns() as f64 / 1e3)),
                ("pid".into(), Json::Int(1)),
                ("tid".into(), Json::Int(e.thread)),
                ("args".into(), Json::Obj(args)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(trace_events)),
        ("displayTimeUnit".into(), Json::Str("ns".to_string())),
    ])
}

/// Serialize [`chrome_trace`] output to a JSON string.
pub fn chrome_trace_string(events: &[SpanEvent]) -> String {
    chrome_trace(events).render()
}

/// The trace category for a span name: its first dot-separated segment
/// (`serve.step` → `serve`), which maps onto the stack's layers
/// (serve / nn / math / accel).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Render a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as-is, histograms as summaries
/// with `quantile` labels for p50/p95/p99 plus `_sum`/`_count` series.
///
/// Metric names are sanitized to `[a-zA-Z0-9_]` and prefixed `pdac_`
/// (`serve.ttft` → `pdac_serve_ttft`).
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
            out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// Prometheus-legal metric name: `pdac_` prefix, every run of
/// non-alphanumeric characters collapsed to `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("pdac_");
    let mut last_us = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
            last_us = false;
        } else if !last_us {
            out.push('_');
            last_us = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistogramSummary;

    fn event(id: u64, parent: u64, start: u64, end: u64) -> SpanEvent {
        SpanEvent {
            name: "serve.step",
            id,
            parent,
            thread: 1,
            start_ns: start,
            end_ns: end,
            depth: 0,
            arg: None,
        }
    }

    #[test]
    fn chrome_trace_orders_parents_before_children() {
        // Child (id 2) dropped before parent (id 1) — ring order is
        // child-first; the export must invert that.
        let events = vec![event(2, 1, 500, 900), event(1, 0, 0, 1000)];
        let doc = chrome_trace(&events);
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let ids: Vec<u64> = arr
            .iter()
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("id"))
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn prometheus_text_sanitizes_and_renders_quantiles() {
        let snap = Snapshot {
            counters: vec![("serve.admitted".into(), 7)],
            gauges: vec![("serve.batch_occupancy".into(), 0.5)],
            histograms: vec![HistogramSummary {
                name: "serve.ttft".into(),
                count: 3,
                sum: 6.0,
                min: 1.0,
                max: 3.0,
                mean: 2.0,
                p50: 2.0,
                p95: 3.0,
                p99: 3.0,
            }],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE pdac_serve_admitted counter\npdac_serve_admitted 7\n"));
        assert!(text.contains("# TYPE pdac_serve_batch_occupancy gauge\n"));
        assert!(text.contains("pdac_serve_ttft{quantile=\"0.5\"} 2\n"));
        assert!(text.contains("pdac_serve_ttft_sum 6\n"));
        assert!(text.contains("pdac_serve_ttft_count 3\n"));
    }
}
